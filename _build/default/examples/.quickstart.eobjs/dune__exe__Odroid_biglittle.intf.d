examples/odroid_biglittle.mli:
