examples/spmv_composition.ml: Compose Float Fmt List Option Spmv Xpdl_compose Xpdl_query Xpdl_repo Xpdl_simhw
