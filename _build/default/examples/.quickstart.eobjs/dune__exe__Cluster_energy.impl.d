examples/cluster_energy.ml: Float Fmt List Model Power String Xpdl_core Xpdl_energy Xpdl_repo Xpdl_toolchain
