examples/myriad_power.mli:
