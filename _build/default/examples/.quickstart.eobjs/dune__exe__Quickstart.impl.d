examples/quickstart.ml: Filename Fmt List Option Sys Xpdl_query Xpdl_repo Xpdl_toolchain
