examples/app_energy.ml: Account Fmt List Predict Xpdl_energy Xpdl_microbench Xpdl_repo Xpdl_simhw
