examples/spmv_composition.mli:
