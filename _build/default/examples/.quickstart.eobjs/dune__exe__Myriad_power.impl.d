examples/myriad_power.ml: Domains Fmt List Option Power Psm Xpdl_core Xpdl_energy Xpdl_repo
