examples/quickstart.mli:
