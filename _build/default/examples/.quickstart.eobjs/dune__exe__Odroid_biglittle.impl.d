examples/odroid_biglittle.ml: Control Fmt List Model Power Schema Xpdl_core Xpdl_energy Xpdl_microbench Xpdl_repo Xpdl_simhw
