examples/app_energy.mli:
