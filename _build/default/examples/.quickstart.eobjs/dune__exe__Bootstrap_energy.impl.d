examples/bootstrap_energy.ml: Array Fmt List Model Option Power Schema String Xpdl_core Xpdl_microbench Xpdl_repo Xpdl_simhw Xpdl_units
