examples/bootstrap_energy.mli:
