examples/cluster_energy.mli:
