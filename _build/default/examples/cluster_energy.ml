(* Hierarchical energy modeling and DVFS optimization on the XScluster
   (Listing 11 + Sec. III-C/D).

   - synthesized static power, aggregated bottom-up over the model tree,
     with a per-component breakdown;
   - interconnect analysis: effective bandwidths and widest paths;
   - DVFS planning on the Xeon power state machine: race-to-idle vs pace
     vs the optimal two-speed schedule, across deadlines.

   Run with:  dune exec examples/cluster_energy.exe *)

open Xpdl_core

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let cluster =
    match Xpdl_repo.Repo.compose_by_name repo "XScluster" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  Fmt.pr "XScluster composed: %d model elements, %d cores@." (Model.size cluster)
    (Xpdl_energy.Aggregate.core_count cluster);

  (* --- synthesized static power (Sec. III-D) --- *)
  let total, table = Xpdl_energy.Aggregate.static_power_breakdown cluster in
  Fmt.pr "@.total static power: %.1f W@." total;
  Fmt.pr "per-node shares:@.";
  List.iter
    (fun (path, w) ->
      (* print the four node scopes only *)
      if String.length path = String.length "XScluster/nX"
         && String.sub path 0 11 = "XScluster/n" then
        Fmt.pr "  %-14s %7.2f W@." path w)
    table;
  let metered = total +. 55. in
  Fmt.pr "external meter reads %.1f W -> unmodeled (motherboards etc.): %.1f W@." metered
    (Xpdl_energy.Aggregate.unmodeled_share ~measured_total:metered cluster);

  (* --- interconnect analysis --- *)
  let _, reports = Xpdl_toolchain.Analysis.effective_bandwidths cluster in
  Fmt.pr "@.interconnects: %d links analyzed, %d downgraded@." (List.length reports)
    (List.length (List.filter (fun r -> r.Xpdl_toolchain.Analysis.lr_downgraded) reports));
  let g = Xpdl_toolchain.Analysis.build_graph cluster in
  List.iter
    (fun (src, dst) ->
      match Xpdl_toolchain.Analysis.path_bandwidth g ~src ~dst with
      | Some bw -> Fmt.pr "  widest path %s -> %s: %.1f GiB/s@." src dst (bw /. (1024. ** 3.))
      | None -> Fmt.pr "  %s -> %s: unreachable@." src dst)
    [ ("n0", "n2"); ("cpu1", "gpu2") ];

  (* --- DVFS planning on the node CPU's power state machine --- *)
  let pm = Power.of_element cluster in
  let sm =
    List.find (fun m -> m.Power.sm_name = "E5_2630L_psm") pm.Power.pm_machines
  in
  Fmt.pr "@.DVFS planning on %s (%d states, %d transitions)@." sm.Power.sm_name
    (List.length sm.Power.sm_states)
    (List.length sm.Power.sm_transitions);
  let cycles = 2.0e9 in
  List.iter
    (fun deadline ->
      Fmt.pr "  job of %.1fG cycles, deadline %.2f s:@." (cycles /. 1e9) deadline;
      let cmp = Xpdl_energy.Dvfs.compare_policies sm ~start:"P3" ~cycles ~deadline in
      List.iter (fun p -> Fmt.pr "    %a@." Xpdl_energy.Dvfs.pp_plan p) cmp.Xpdl_energy.Dvfs.plans;
      match cmp.Xpdl_energy.Dvfs.plans with
      | best :: _ :: _ ->
          let worst =
            List.fold_left (fun acc p -> Float.max acc p.Xpdl_energy.Dvfs.total_energy) 0.
              cmp.Xpdl_energy.Dvfs.plans
          in
          Fmt.pr "    -> optimal saves %.1f%% vs the worst policy@."
            (100. *. (1. -. (best.Xpdl_energy.Dvfs.total_energy /. worst)))
      | _ -> ())
    [ 1.05; 1.4; 2.5 ]
