(* System-wide energy accounting of a heterogeneous application.

   A small offloaded-solver pipeline on the LiU GPU server: assemble on
   the host, upload over PCIe, iterate on the GPU, download the result,
   drop the host to a low-power state while the GPU works elsewhere.
   The accountant prices every step from the bootstrapped platform model
   and attributes energy to components — the EXCESS "system-wide energy
   compositionality" premise, executable.

   Run with:  dune exec examples/app_energy.exe *)

open Xpdl_energy

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let model =
    match Xpdl_repo.Repo.compose_by_name repo "liu_gpu_server" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  (* deployment-time bootstrap first: the accountant needs real numbers *)
  let model, _ = Xpdl_microbench.Bootstrap.run ~machine:(Xpdl_simhw.Machine.create model) model in

  let n = 500_000 in
  let assemble =
    Predict.phase ~memory_accesses:(n / 8) ~parallel_fraction:0.9 ~cores_used:4
      [ ("fmul", n); ("fadd", n); ("ld", 2 * n); ("st", n) ]
  in
  let gpu_sweep nnz =
    Predict.phase ~memory_accesses:(nnz / 2) ~parallel_fraction:0.999 ~cores_used:2496
      [ ("fma", nnz); ("ld_global", 2 * nnz); ("st_global", nnz / 10) ]
  in
  let schedule =
    [
      Account.Compute { label = "assemble matrix"; component = "gpu_host"; hz = 2e9; phase = assemble };
      Account.Transfer { label = "upload CSR"; link = "connection1"; bytes = 12 * n };
      Account.Switch { machine_name = "E5_2630L_psm"; from_state = "P3"; to_state = "P1" };
      Account.Compute { label = "sweep 1"; component = "gpu1"; hz = 706e6; phase = gpu_sweep n };
      Account.Compute { label = "sweep 2"; component = "gpu1"; hz = 706e6; phase = gpu_sweep n };
      Account.Compute { label = "sweep 3"; component = "gpu1"; hz = 706e6; phase = gpu_sweep n };
      Account.Switch { machine_name = "E5_2630L_psm"; from_state = "P1"; to_state = "P3" };
      Account.Transfer { label = "download x"; link = "connection1"; bytes = 8 * 4000 };
      Account.Compute { label = "post-process"; component = "gpu_host"; hz = 2e9;
                        phase = Predict.phase ~cores_used:1 [ ("fadd", 4000); ("st", 4000) ] };
    ]
  in
  let report = Account.run model schedule in
  Fmt.pr "%a@." Account.pp_report report;

  (* what does dropping the host to P1 during the GPU phase buy?  price
     the alternative schedule without the switches *)
  let without_dvfs =
    List.filter (function Account.Switch _ -> false | _ -> true) schedule
  in
  let r2 = Account.run model without_dvfs in
  Fmt.pr "@.without the host DVFS switches: %.4f mJ dynamic (vs %.4f mJ) — switching costs %.4f mJ@."
    (r2.Account.rp_dynamic_energy *. 1e3)
    (report.Account.rp_dynamic_energy *. 1e3)
    ((report.Account.rp_dynamic_energy -. r2.Account.rp_dynamic_energy) *. 1e3);
  Fmt.pr "(the win is in the *static* host share while in P1, modeled by the PSM residency —@.";
  Fmt.pr " combine with Xpdl_energy.Psm to integrate state power over the GPU phases)@."
