(* Power domains and power states of the Movidius Myriad1 (Listings 12
   and 4-6): the embedded end of XPDL's range.

   Walks the domain structure, demonstrates the switching rules — the
   Leon island can never be switched off; the CMX scratchpad island only
   after all 8 Shave islands — and simulates a duty-cycled workload on
   the per-Shave power state machine.

   Run with:  dune exec examples/myriad_power.exe *)

open Xpdl_core
open Xpdl_energy

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let server =
    match Xpdl_repo.Repo.compose_by_name repo "myriad_server" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  let domains = Option.get (Domains.of_model server) in
  Fmt.pr "power domains of the Myriad server:@.";
  List.iter
    (fun (name, st) ->
      Fmt.pr "  %-12s %s@." name (match st with Domains.On -> "on" | Domains.Off -> "off"))
    (Domains.snapshot domains);

  Fmt.pr "@.idle power, everything on: %.3f W@." (Domains.idle_power domains);

  (* the language rules in action *)
  (match Domains.switch_off domains "main_pd" with
  | exception Domains.Switch_error msg -> Fmt.pr "switching main_pd off: REFUSED (%s)@." msg
  | () -> assert false);
  (match Domains.switch_off domains "CMX_pd" with
  | exception Domains.Switch_error msg -> Fmt.pr "switching CMX_pd off:  REFUSED (%s)@." msg
  | () -> assert false);

  Fmt.pr "@.switching all 8 Shave islands off...@.";
  Domains.switch_off_group domains "Shave_pds";
  Fmt.pr "idle power now: %.3f W@." (Domains.idle_power domains);
  Fmt.pr "switching CMX_pd off (condition now satisfied)...@.";
  Domains.switch_off domains "CMX_pd";
  Fmt.pr "idle power now: %.3f W@." (Domains.idle_power domains);

  (* --- power state machine of a Shave core --- *)
  let pm = Power.of_element server in
  let sm = List.find (fun m -> m.Power.sm_name = "Shave_psm") pm.Power.pm_machines in
  Fmt.pr "@.duty-cycled kernel on one Shave (PSM %s):@." sm.Power.sm_name;
  let psm = Psm.create ~initial:"run" sm in
  (* 10 bursts of 1.8M cycles (10 ms at 180 MHz) with 40 ms gaps *)
  for _ = 1 to 10 do
    ignore (Psm.execute psm ~cycles:1.8e6 ());
    Psm.switch_to psm "off";
    Psm.dwell psm ~duration:0.04;
    Psm.switch_to psm "run"
  done;
  Fmt.pr "  with off-gaps: %.1f ms, %.3f mJ, %d switches@." (Psm.clock psm *. 1e3)
    (Psm.consumed psm *. 1e3) (Psm.switch_count psm);

  let psm2 = Psm.create ~initial:"run" sm in
  for _ = 1 to 10 do
    ignore (Psm.execute psm2 ~cycles:1.8e6 ());
    Psm.dwell psm2 ~duration:0.04
  done;
  Fmt.pr "  staying in run:%.1f ms, %.3f mJ, %d switches@." (Psm.clock psm2 *. 1e3)
    (Psm.consumed psm2 *. 1e3) (Psm.switch_count psm2);
  Fmt.pr "  -> sleeping between bursts saves %.0f%% energy@."
    (100. *. (1. -. (Psm.consumed psm /. Psm.consumed psm2)))
