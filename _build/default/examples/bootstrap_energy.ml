(* Deployment-time energy-model bootstrap (Sec. III-C and IV, Listings
   14-15).

   The x86 instruction table ships with "?" placeholders.  The toolchain
   generates the microbenchmark driver code (shown), runs the drivers on
   the (simulated) platform, reduces repeated meter readings and writes
   the derived per-instruction energies back into the model — optionally
   as a per-frequency table like the paper's divsd rows.

   Run with:  dune exec examples/bootstrap_energy.exe *)

open Xpdl_core

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let model =
    match Xpdl_repo.Repo.compose_by_name repo "liu_gpu_server" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  let placeholders = Xpdl_microbench.Bootstrap.remaining_placeholders model in
  Fmt.pr "instructions awaiting measurement: %a@." Fmt.(list ~sep:comma string) placeholders;

  (* show a generated driver (the artifact a real deployment compiles) *)
  let pm = Power.of_element model in
  let suite = List.hd pm.Power.pm_suites in
  let bench = List.hd suite.Power.su_benches in
  Fmt.pr "@.--- generated driver %s.c (first 12 lines) ---@."
    bench.Power.mb_id;
  let src = Xpdl_microbench.Driver.generate_driver ~suite ~bench in
  List.iteri
    (fun i line -> if i < 12 then Fmt.pr "  %s@." line)
    (String.split_on_char '\n' src);

  (* run the bootstrap with a frequency sweep over the Xeon's P states *)
  let machine = Xpdl_simhw.Machine.create ~seed:7 model in
  let opts =
    {
      Xpdl_microbench.Bootstrap.repetitions = 15;
      frequencies = [ 1.2e9; 1.6e9; 2.0e9 ];
      force = false;
    }
  in
  let bootstrapped, results = Xpdl_microbench.Bootstrap.run ~opts ~machine model in

  Fmt.pr "@.--- derived energies (vs hidden simulator ground truth) ---@.";
  Fmt.pr "%-12s %-6s %12s %12s %8s@." "instruction" "mb" "derived" "truth" "error";
  List.iter
    (fun (r : Xpdl_microbench.Bootstrap.result) ->
      let truth =
        Xpdl_simhw.Truth.energy machine.Xpdl_simhw.Machine.truth ~name:r.instruction
          ~hz:machine.Xpdl_simhw.Machine.cores.(0).Xpdl_simhw.Machine.nominal_hz
      in
      Fmt.pr "%-12s %-6s %9.2f pJ %9.2f pJ %7.2f%%@." r.instruction r.benchmark
        (r.energy.Xpdl_microbench.Stats.mean *. 1e12)
        (truth *. 1e12)
        (100. *. Xpdl_microbench.Stats.relative_error ~estimate:r.energy.Xpdl_microbench.Stats.mean ~truth))
    results;

  (* the frequency sweep lands in the model as <data> rows *)
  let isa = Option.get (Model.find_by_name "x86_base_isa" bootstrapped) in
  let fmul = Option.get (Model.find_by_name "fmul" isa) in
  Fmt.pr "@.fmul energy by frequency (measured sweep, cf. Listing 14's divsd):@.";
  List.iter
    (fun (d : Model.element) ->
      match (Model.attr_quantity d "frequency", Model.attr_quantity d "energy") with
      | Some f, Some e ->
          Fmt.pr "  %4.1f GHz  %6.2f pJ@."
            (Xpdl_units.Units.value f /. 1e9)
            (Xpdl_units.Units.value e *. 1e12)
      | _ -> ())
    (Model.children_of_kind fmul Schema.Data);

  Fmt.pr "@.placeholders remaining after bootstrap: %d@."
    (List.length (Xpdl_microbench.Bootstrap.remaining_placeholders bootstrapped))
