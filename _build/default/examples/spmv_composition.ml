(* Conditional composition: the sparse matrix-vector case study (Sec. II,
   ref [3]).

   An SpMV component with three implementation variants (CPU CSR, CPU
   dense, GPU CSR) is dispatched against the LiU GPU server's platform
   model.  Selectability comes from installed software and hardware
   presence in the model; ranking comes from cost estimates computed from
   platform metadata.  The density sweep shows the crossovers and the
   speedup of tuned selection over every fixed-variant policy.

   Run with:  dune exec examples/spmv_composition.exe *)

module Q = Xpdl_query.Query
open Xpdl_compose

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let model =
    match Xpdl_repo.Repo.compose_by_name repo "liu_gpu_server" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  let query = Q.of_model model in
  let machine = Xpdl_simhw.Machine.create ~noise_sigma:0.005 model in

  Fmt.pr "platform: %s — CUDA %b, CUSPARSE %b, MKL %b, %d GPU cores@.@."
    (Option.value ~default:"?" (Q.ident (Q.root query)))
    (Q.has_installed query "CUDA_6.0")
    (Q.has_installed query "CUSPARSE_6.0")
    (Q.has_installed query "MKL_11.0")
    (match Q.devices query with d :: _ -> Q.count_cores ~within:d query | [] -> 0);

  let rows = 4000 in
  let densities = [ 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.2; 0.4; 0.6 ] in

  let run_sweep ~iterations =
    Fmt.pr "--- %d solver iteration(s), %dx%d matrix ---@." iterations rows rows;
    Fmt.pr "%-9s | %-9s | %10s %10s %10s | %8s@." "density" "chosen" "cpu_csr" "cpu_dense"
      "gpu_csr" "speedup";
    List.iter
      (fun density ->
        let ctx = Spmv.context ~iterations ~query ~machine ~rows ~density () in
        let chosen, tuned = Compose.dispatch Spmv.component ctx in
        let fixed =
          List.map
            (fun name ->
              match Compose.run_variant Spmv.component ctx name with
              | Some m -> m.Xpdl_simhw.Machine.elapsed
              | None -> nan)
            [ "cpu_csr"; "cpu_dense"; "gpu_csr" ]
        in
        let worst_fixed = List.fold_left Float.max 0. (List.filter (fun x -> not (Float.is_nan x)) fixed) in
        Fmt.pr "%-9.4f | %-9s | %10.3f %10.3f %10.3f | %7.1fx@." density chosen
          (List.nth fixed 0 *. 1e3) (List.nth fixed 1 *. 1e3) (List.nth fixed 2 *. 1e3)
          (worst_fixed /. tuned.Xpdl_simhw.Machine.elapsed);
        ignore tuned)
      densities;
    Fmt.pr "@."
  in
  run_sweep ~iterations:1;
  run_sweep ~iterations:100;

  (* the same call on a platform without GPU software: the constraints
     reject the GPU variant and dispatch falls back gracefully *)
  let myriad =
    match Xpdl_repo.Repo.compose_by_name repo "myriad_server" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  let ctx =
    {
      Compose.query = Q.of_model myriad;
      machine = Xpdl_simhw.Machine.create myriad;
      problem = [ ("rows", 1000.); ("density", 0.01); ("iterations", 1.) ];
    }
  in
  let sel = Compose.select Spmv.component ctx in
  Fmt.pr "on myriad_server (no CUDA, no MKL): %a@." Compose.pp_selection sel
