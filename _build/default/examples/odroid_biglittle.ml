(* An embedded big.LITTLE platform end-to-end: the Odroid-XU3 class board
   (Samsung Exynos 5422, 4x Cortex-A15 + 4x Cortex-A7).

   Demonstrates the extension surface on top of the paper's core:
   - heterogeneous clusters as power domains (big may switch off);
   - model-based time/energy prediction from the bootstrapped model,
     including a big-vs-LITTLE placement decision;
   - the lumped-RC thermal extension: how long can the big cluster
     sustain full power before hitting a thermal limit?

   Run with:  dune exec examples/odroid_biglittle.exe *)

open Xpdl_core

let () =
  let repo = Xpdl_repo.Repo.load_bundled () in
  let m =
    match Xpdl_repo.Repo.compose_by_name repo "odroid_xu3" with
    | Ok c -> c.Xpdl_repo.Repo.model
    | Error msg -> failwith msg
  in
  Fmt.pr "odroid_xu3: %d elements, %d cores (%d big + %d LITTLE)@." (Model.size m)
    (List.length (Model.hardware_elements_of_kind Schema.Core m))
    4 4;

  (* control view *)
  let tree = Control.derive m in
  Fmt.pr "%a@." Control.pp_tree tree;

  (* bootstrap the ARMv7 energy table *)
  let machine = Xpdl_simhw.Machine.create ~seed:5 m in
  let m, results = Xpdl_microbench.Bootstrap.run ~machine m in
  Fmt.pr "@.bootstrapped %d ARMv7 instruction energies@." (List.length results);

  (* predict a vector kernel on big vs LITTLE *)
  let n = 500_000 in
  let kernel cores =
    Xpdl_energy.Predict.phase ~memory_accesses:(n / 16) ~parallel_fraction:0.95
      ~cores_used:cores
      [ ("vmul", n); ("vadd", n); ("ldr", 2 * n); ("str", n) ]
  in
  let tb = Xpdl_energy.Predict.tables_of_model m in
  let big = Xpdl_energy.Predict.predict tb ~hz:2.0e9 (kernel 4) in
  let little = Xpdl_energy.Predict.predict tb ~hz:1.4e9 (kernel 4) in
  Fmt.pr "@.kernel placement (predicted from the platform model):@.";
  Fmt.pr "  big    cluster at 2.0 GHz: %a@." Xpdl_energy.Predict.pp_prediction big;
  Fmt.pr "  LITTLE cluster at 1.4 GHz: %a@." Xpdl_energy.Predict.pp_prediction little;
  Fmt.pr "  -> %s is faster, %s predicted@."
    (if big.Xpdl_energy.Predict.pr_time < little.Xpdl_energy.Predict.pr_time then "big"
     else "LITTLE")
    (if big.Xpdl_energy.Predict.pr_total_energy < little.Xpdl_energy.Predict.pr_total_energy
     then "big also cheaper in energy"
     else "LITTLE cheaper in energy");

  (* DVFS on the big cluster, which has a deep 'off' park state *)
  let pm = Power.of_element m in
  let sm = List.find (fun s -> s.Power.sm_name = "big_psm") pm.Power.pm_machines in
  let cmp = Xpdl_energy.Dvfs.compare_policies sm ~start:"P0" ~cycles:1.5e9 ~deadline:2.0 in
  Fmt.pr "@.DVFS on the big cluster (1.5G cycles, 2 s deadline):@.";
  List.iter (fun p -> Fmt.pr "  %a@." Xpdl_energy.Dvfs.pp_plan p) cmp.Xpdl_energy.Dvfs.plans;

  (* thermal: sustained full power on the SoC *)
  let th = Xpdl_energy.Thermal.create ~ambient:298.15 m in
  Fmt.pr "@.thermal (lumped RC, ambient 25 C):@.";
  Fmt.pr "  SoC steady state at 5.7 W: %.1f C@."
    (Xpdl_energy.Thermal.steady_state th "soc" ~power:5.7 -. 273.15);
  (match Xpdl_energy.Thermal.time_to_limit th "soc" ~power:5.7 ~limit:(273.15 +. 85.) with
  | Some t -> Fmt.pr "  85 C throttle limit reached after %.1f s at full power@." t
  | None -> Fmt.pr "  full power never reaches the 85 C throttle limit@.");
  let series =
    Xpdl_energy.Thermal.simulate th "soc"
      ~trace:[ (30., 5.7); (30., 0.6); (30., 5.7) ]
  in
  Fmt.pr "  duty-cycle trace (30 s busy / 30 s idle / 30 s busy):@.";
  List.iter (fun (t, temp) -> Fmt.pr "    t=%3.0f s  %.1f C@." t (temp -. 273.15)) series
