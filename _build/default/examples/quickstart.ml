(* Quickstart: the full XPDL flow in one page.

   1. Load the distributed model repository (the .xpdl descriptor files).
   2. Run the processing tool on a concrete system: compose referenced
      descriptors, expand groups, check constraints, analyze, bootstrap
      the energy model by microbenchmarking, and write the runtime model.
   3. Load the runtime model through the query API, as an application
      would at startup, and introspect the platform.

   Run with:  dune exec examples/quickstart.exe *)

module Q = Xpdl_query.Query

let () =
  (* 1. the model repository *)
  let repo = Xpdl_repo.Repo.load_bundled () in
  Fmt.pr "repository: %d descriptors indexed@." (Xpdl_repo.Repo.size repo);

  (* 2. the XPDL processing tool (Sec. IV) *)
  let report =
    match Xpdl_toolchain.Pipeline.run ~repo ~system:"liu_gpu_server" () with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  Fmt.pr "@.pipeline stages:@.%a" Xpdl_toolchain.Pipeline.pp_timings
    report.Xpdl_toolchain.Pipeline.timings;
  Fmt.pr "descriptors used: %a@."
    Fmt.(list ~sep:comma string)
    report.Xpdl_toolchain.Pipeline.descriptors_used;
  Fmt.pr "bootstrap derived %d instruction energies@."
    (List.length report.Xpdl_toolchain.Pipeline.bootstrap_results);

  let runtime_file = Filename.temp_file "liu_gpu_server" ".xrt" in
  Xpdl_toolchain.Ir.to_file runtime_file report.Xpdl_toolchain.Pipeline.runtime_model;
  Fmt.pr "runtime model written: %s (%d bytes)@." runtime_file
    report.Xpdl_toolchain.Pipeline.runtime_model_bytes;

  (* 3. runtime introspection (the application side, xpdl_init + getters) *)
  let q = Q.init runtime_file in
  Fmt.pr "@.--- platform introspection ---@.";
  Fmt.pr "cores:              %d@." (Q.count_cores q);
  Fmt.pr "CUDA devices:       %d@." (Q.count_cuda_devices q);
  Fmt.pr "static power:       %.2f W@." (Q.total_static_power q);
  Fmt.pr "memory:             %.1f GiB@." (Q.total_memory_bytes q /. (1024. ** 3.));
  Fmt.pr "clock range:        %.0f - %.0f MHz@."
    (Option.value ~default:0. (Q.min_frequency q) /. 1e6)
    (Option.value ~default:0. (Q.max_frequency q) /. 1e6);
  Fmt.pr "CUDA 6.0 installed: %b (path %s)@." (Q.has_installed q "CUDA_6.0")
    (Option.value ~default:"?" (Q.installed_path q "CUDA_6.0"));
  Fmt.pr "PCIe bandwidth:     %.1f GiB/s@."
    (Option.value ~default:0. (Q.link_bandwidth q "connection1") /. (1024. ** 3.));
  Fmt.pr "power meter:        %s@."
    (Option.value ~default:"none" (Q.property q "ExternalPowerMeter"));

  (* browse the model tree *)
  let gpu = Q.find_by_id_exn q "gpu1" in
  Fmt.pr "@.gpu1 is a %s with %d cores at path %s@."
    (Option.value ~default:"?" (Q.type_of gpu))
    (Q.count_cores ~within:gpu q) (Q.path gpu);
  Sys.remove runtime_file;
  Fmt.pr "@.quickstart done.@."
