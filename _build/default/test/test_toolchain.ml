(* Tests for the toolchain: runtime-model IR + codec, static analysis,
   the end-to-end pipeline, and the C++ query-API generator. *)

open Xpdl_toolchain

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let model name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c -> c.Xpdl_repo.Repo.model
  | Error msg -> Alcotest.failf "compose %s: %s" name msg

let liu_ir = lazy (Ir.of_model (model "liu_gpu_server"))

(* ------------------------------------------------------------------ *)
(* IR *)

let test_ir_structure () =
  let ir = Lazy.force liu_ir in
  Alcotest.(check bool) "nodes" true (Ir.size ir > 5000);
  let root = Ir.root ir in
  Alcotest.(check (option string)) "root" (Some "liu_gpu_server") root.Ir.n_ident;
  Alcotest.(check bool) "root has no parent" true (Ir.parent ir root = None);
  let gpu = Option.get (Ir.find_by_ident ir "gpu1") in
  Alcotest.(check (option string)) "typed" (Some "Nvidia_K20c") gpu.Ir.n_type;
  let parent = Option.get (Ir.parent ir gpu) in
  Alcotest.(check (option string)) "parent is system" (Some "liu_gpu_server") parent.Ir.n_ident

let test_ir_paths () =
  let ir = Lazy.force liu_ir in
  let gpu = Option.get (Ir.find_by_ident ir "gpu1") in
  Alcotest.(check string) "path" "liu_gpu_server/gpu1" gpu.Ir.n_path;
  let sm0 = Option.get (Ir.find_by_ident ir "SM0") in
  Alcotest.(check string) "nested path" "liu_gpu_server/gpu1/SMs/SM0" sm0.Ir.n_path

let test_ir_kind_index () =
  let ir = Lazy.force liu_ir in
  let caches = Ir.all_of_kind ir Xpdl_core.Schema.Cache in
  Alcotest.(check bool) "caches indexed" true (List.length caches > 15);
  Alcotest.(check int) "one system" 1 (List.length (Ir.all_of_kind ir Xpdl_core.Schema.System))

let test_ir_attr_values () =
  let ir = Lazy.force liu_ir in
  let gpu = Option.get (Ir.find_by_ident ir "gpu1") in
  (match Ir.attr gpu "compute_capability" with
  | Some (Ir.VFloat f) -> Alcotest.(check (float 1e-9)) "cc" 3.5 f
  | _ -> Alcotest.fail "compute_capability");
  match Ir.attr gpu "static_power" with
  | Some (Ir.VQty (v, d)) ->
      Alcotest.(check (float 1e-9)) "16 W" 16. v;
      Alcotest.(check bool) "power dim" true (d = Xpdl_units.Units.Power)
  | _ -> Alcotest.fail "static_power quantity"

let test_codec_roundtrip () =
  let ir = Lazy.force liu_ir in
  let bytes = Ir.to_bytes ir in
  let ir2 = Ir.of_bytes bytes in
  Alcotest.(check int) "same size" (Ir.size ir) (Ir.size ir2);
  let check_node i =
    let a = Ir.node ir i and b = Ir.node ir2 i in
    Alcotest.(check bool) ("node " ^ string_of_int i) true
      (a.Ir.n_ident = b.Ir.n_ident && a.Ir.n_kind = b.Ir.n_kind && a.Ir.n_path = b.Ir.n_path
     && a.Ir.n_parent = b.Ir.n_parent && a.Ir.n_attrs = b.Ir.n_attrs
     && a.Ir.n_children = b.Ir.n_children)
  in
  List.iter check_node [ 0; 1; Ir.size ir / 2; Ir.size ir - 1 ]

let test_codec_file_roundtrip () =
  let ir = Lazy.force liu_ir in
  let path = Filename.temp_file "xpdl" ".xrt" in
  Ir.to_file path ir;
  let ir2 = Ir.of_file path in
  Sys.remove path;
  Alcotest.(check int) "same size" (Ir.size ir) (Ir.size ir2);
  Alcotest.(check bool) "gpu1 findable" true (Ir.find_by_ident ir2 "gpu1" <> None)

let test_codec_rejects_garbage () =
  (match Ir.of_bytes "not a runtime model" with
  | exception Ir.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic must be rejected");
  (* bad version *)
  let ir = Ir.of_model (Xpdl_core.Elaborate.of_string_exn {|<cpu name="x"/>|}) in
  let bytes = Bytes.of_string (Ir.to_bytes ir) in
  Bytes.set bytes 6 '\xFF';
  (match Ir.of_bytes (Bytes.to_string bytes) with
  | exception Ir.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad version must be rejected");
  (* truncation *)
  let full = Ir.to_bytes ir in
  match Ir.of_bytes (String.sub full 0 (String.length full - 8)) with
  | exception Ir.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated file must be rejected"

let prop_codec_roundtrip =
  (* random small models through the codec *)
  let gen =
    QCheck2.Gen.(
      let* cores = 1 -- 8 in
      let* caches = 0 -- 3 in
      let* power = 1 -- 50 in
      return (cores, caches, power))
  in
  QCheck2.Test.make ~name:"codec round-trip on random models" ~count:50 gen
    (fun (cores, caches, power) ->
      let src =
        Fmt.str
          {|<cpu name="c" static_power="%d" static_power_unit="W"><group prefix="k" quantity="%d"><core frequency="1" frequency_unit="GHz"/></group>%s</cpu>|}
          power cores
          (String.concat ""
             (List.init caches (fun i ->
                  Fmt.str {|<cache name="L%d" size="%d" unit="KiB"/>|} i (8 * (i + 1)))))
      in
      let m, _ = Xpdl_core.Instantiate.run (Xpdl_core.Elaborate.of_string_exn src) in
      let ir = Ir.of_model m in
      let ir2 = Ir.of_bytes (Ir.to_bytes ir) in
      Ir.size ir = Ir.size ir2
      && (Ir.root ir).Ir.n_attrs = (Ir.root ir2).Ir.n_attrs)

(* ------------------------------------------------------------------ *)
(* Static analysis *)

let test_bandwidth_downgrade () =
  (* PCIe3 declares 6 GiB/s but the host DDR3_16G memory sustains only
     12 GiB/s and the GPU's global memory 150 GiB/s — no downgrade.
     Craft a system where the endpoint memory is slower than the link. *)
  let r = Xpdl_repo.Repo.create () in
  Xpdl_repo.Repo.add_string r
    {|<system id="slowmem">
        <cpu id="host"><memory id="m" type="DDR" size="1" unit="GB" bandwidth="2" bandwidth_unit="GiB/s"/></cpu>
        <device id="dev"><memory id="dm" type="x" size="1" unit="GB" bandwidth="100" bandwidth_unit="GiB/s"/></device>
        <interconnects>
          <interconnect id="link">
            <channel name="ch" max_bandwidth="6" max_bandwidth_unit="GiB/s"/>
          </interconnect>
        </interconnects>
      </system>|};
  let sys = Option.get (Xpdl_repo.Repo.find r "slowmem") in
  let sys = Xpdl_core.Model.set_attr sys "id" (Xpdl_core.Model.Str "slowmem") in
  ignore sys;
  let m = Option.get (Xpdl_repo.Repo.find r "slowmem") in
  (* give the link endpoints *)
  let m =
    let rec fix (e : Xpdl_core.Model.element) =
      let e = { e with Xpdl_core.Model.children = List.map fix e.Xpdl_core.Model.children } in
      if e.Xpdl_core.Model.id = Some "link" then
        Xpdl_core.Model.set_attr
          (Xpdl_core.Model.set_attr e "head" (Xpdl_core.Model.Str "host"))
          "tail" (Xpdl_core.Model.Str "dev")
      else e
    in
    fix m
  in
  let annotated, reports = Analysis.effective_bandwidths m in
  match reports with
  | [ rep ] ->
      Alcotest.(check bool) "downgraded" true rep.Analysis.lr_downgraded;
      (match rep.Analysis.lr_effective with
      | Some eff -> Alcotest.(check (float 1e3)) "to 2 GiB/s" (2. *. (1024. ** 3.)) eff
      | None -> Alcotest.fail "effective bandwidth");
      let link = Option.get (Xpdl_core.Model.find_by_id "link" annotated) in
      Alcotest.(check bool) "annotated" true
        (Xpdl_core.Model.attr_quantity link "effective_bandwidth" <> None)
  | l -> Alcotest.failf "expected one report, got %d" (List.length l)

let test_no_downgrade_when_fast () =
  let m = model "liu_gpu_server" in
  let _, reports = Analysis.effective_bandwidths m in
  let conn = List.find (fun r -> r.Analysis.lr_ident = "connection1") reports in
  Alcotest.(check bool) "PCIe not downgraded" false conn.Analysis.lr_downgraded

let test_cluster_path_bandwidth () =
  let m = model "XScluster" in
  let g = Analysis.build_graph m in
  (* path n0 -> n2 exists through the IB ring; bandwidth = 5 GiB/s *)
  (match Analysis.path_bandwidth g ~src:"n0" ~dst:"n2" with
  | Some bw -> Alcotest.(check (float 1e6)) "IB bottleneck" (5. *. (1024. ** 3.)) bw
  | None -> Alcotest.fail "n0 and n2 must be connected");
  (* cpu1 -> gpu1 inside a node over PCIe3 *)
  match Analysis.path_bandwidth g ~src:"cpu1" ~dst:"gpu1" with
  | Some bw -> Alcotest.(check bool) "PCIe class" true (bw > 5. *. (1024. ** 3.))
  | None -> Alcotest.fail "cpu1 and gpu1 must be connected"

let test_unreachable_path () =
  let g = { Analysis.g_nodes = [ "a"; "b" ]; g_edges = [] } in
  Alcotest.(check bool) "disconnected" true (Analysis.path_bandwidth g ~src:"a" ~dst:"b" = None)

let test_connected_components () =
  let m = model "myriad_server" in
  let g = Analysis.build_graph m in
  let comps = Analysis.connected_components g in
  Alcotest.(check int) "one component" 1 (List.length comps)

let test_filter_attributes () =
  let m = model "liu_gpu_server" in
  let filtered = Analysis.filter_attributes m in
  Xpdl_core.Model.iter
    (fun e ->
      List.iter
        (fun k ->
          if List.mem_assoc k e.Xpdl_core.Model.attrs then
            Alcotest.failf "attribute %s must be filtered" k)
        Analysis.default_filtered)
    filtered;
  (* custom drop list *)
  let f2 = Analysis.filter_attributes ~drop:[ "vendor" ] m in
  Alcotest.(check bool) "vendor gone" true
    (Xpdl_core.Model.fold
       (fun acc e -> acc && not (List.mem_assoc "vendor" e.Xpdl_core.Model.attrs))
       true f2)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_end_to_end () =
  match Pipeline.run ~repo:(Lazy.force repo) ~system:"liu_gpu_server" () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check bool) "no errors" true
        (Xpdl_core.Diagnostic.all_ok report.Pipeline.diagnostics);
      Alcotest.(check bool) "bootstrap ran" true (report.Pipeline.bootstrap_results <> []);
      Alcotest.(check bool) "ir built" true (Ir.size report.Pipeline.runtime_model > 5000);
      Alcotest.(check bool) "bytes" true (report.Pipeline.runtime_model_bytes > 100_000);
      Alcotest.(check bool) "all stages timed" true (List.length report.Pipeline.timings >= 6);
      Alcotest.(check bool) "descriptors tracked" true
        (List.mem "Nvidia_K20c" report.Pipeline.descriptors_used);
      (* no ? placeholders survive in the runtime model *)
      let survivors =
        Array.fold_left
          (fun acc n ->
            Array.fold_left
              (fun acc (_, v) -> match v with Ir.VUnknown -> acc + 1 | _ -> acc)
              acc n.Ir.n_attrs)
          0 report.Pipeline.runtime_model.Ir.nodes
      in
      Alcotest.(check int) "no unknowns left" 0 survivors

let test_pipeline_without_bootstrap () =
  let config = { Pipeline.default_config with run_bootstrap = false } in
  match Pipeline.run ~config ~repo:(Lazy.force repo) ~system:"liu_gpu_server" () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check bool) "no bootstrap results" true (report.Pipeline.bootstrap_results = []);
      (* unknown energies survive *)
      let survivors =
        Array.fold_left
          (fun acc n ->
            Array.fold_left
              (fun acc (_, v) -> match v with Ir.VUnknown -> acc + 1 | _ -> acc)
              acc n.Ir.n_attrs)
          0 report.Pipeline.runtime_model.Ir.nodes
      in
      Alcotest.(check bool) "unknowns remain" true (survivors > 0)

let test_pipeline_unknown_system () =
  match Pipeline.run ~repo:(Lazy.force repo) ~system:"ghost" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown system must fail"

let test_pipeline_emits_drivers () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "xpdl_pipe_drivers" in
  let config = { Pipeline.default_config with emit_drivers_to = Some dir } in
  (match Pipeline.run ~config ~repo:(Lazy.force repo) ~system:"liu_gpu_server" () with
  | Error msg -> Alcotest.fail msg
  | Ok _ ->
      Alcotest.(check bool) "drivers written" true
        (Sys.file_exists (Filename.concat dir "fadd.c")));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_pipeline_to_file_and_query () =
  let out = Filename.temp_file "xpdl" ".xrt" in
  (match Pipeline.run_to_file ~repo:(Lazy.force repo) ~system:"myriad_server" ~output:out () with
  | Error msg -> Alcotest.fail msg
  | Ok _ ->
      let ir = Ir.of_file out in
      Alcotest.(check bool) "loadable" true (Ir.find_by_ident ir "mv153board" <> None));
  Sys.remove out

(* ------------------------------------------------------------------ *)
(* C++ codegen *)

let test_cpp_header () =
  let header = Cpp_codegen.generate_header () in
  let contains affix =
    let al = String.length affix and sl = String.length header in
    let rec go i = i + al <= sl && (String.sub header i al = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "init entry point" true (contains "int xpdl_init(char *filename)");
  Alcotest.(check bool) "base class" true (contains "class XpdlElement");
  Alcotest.(check bool) "cpu class" true (contains "class XpdlCpu");
  Alcotest.(check bool) "cache getter" true (contains "get_size()");
  Alcotest.(check bool) "setter" true (contains "set_frequency(");
  Alcotest.(check bool) "navigation" true (contains "children_of<XpdlCore>");
  Alcotest.(check bool) "analysis fns" true (contains "count_cores");
  Alcotest.(check bool) "hundreds of getters" true (Cpp_codegen.getter_count () > 150)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "toolchain"
    [
      ( "ir",
        [
          case "structure" test_ir_structure;
          case "paths" test_ir_paths;
          case "kind index" test_ir_kind_index;
          case "attribute values" test_ir_attr_values;
          case "codec round-trip" test_codec_roundtrip;
          case "file round-trip" test_codec_file_roundtrip;
          case "rejects corrupt input" test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
      ( "analysis",
        [
          case "bandwidth downgrade" test_bandwidth_downgrade;
          case "no false downgrade" test_no_downgrade_when_fast;
          case "cluster path bandwidth" test_cluster_path_bandwidth;
          case "unreachable path" test_unreachable_path;
          case "connected components" test_connected_components;
          case "attribute filtering" test_filter_attributes;
        ] );
      ( "pipeline",
        [
          case "end to end" test_pipeline_end_to_end;
          case "bootstrap off" test_pipeline_without_bootstrap;
          case "unknown system" test_pipeline_unknown_system;
          case "driver emission" test_pipeline_emits_drivers;
          case "file output + reload" test_pipeline_to_file_and_query;
        ] );
      ("cpp", [ case "generated header" test_cpp_header ]);
    ]
