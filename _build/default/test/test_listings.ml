(* End-to-end reproduction of every listing in the paper (L1–L15 of the
   per-experiment index): each descriptor from the bundled model
   repository parses, composes and answers the structural queries the
   paper's prose promises. *)

open Xpdl_core

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let compose name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c -> c
  | Error msg -> Alcotest.failf "compose %s: %s" name msg

let compose_clean name =
  let c = compose name in
  let errors = Diagnostic.errors c.Xpdl_repo.Repo.comp_diags in
  if errors <> [] then
    Alcotest.failf "compose %s has errors: %a" name Diagnostic.pp_list errors;
  c.Xpdl_repo.Repo.model

let find name =
  match Xpdl_repo.Repo.find (Lazy.force repo) name with
  | Some e -> e
  | None -> Alcotest.failf "descriptor %S not in repository" name

let approx = Alcotest.float 1e-6

let quantity e key =
  match Model.attr_quantity e key with
  | Some q -> Xpdl_units.Units.value q
  | None -> Alcotest.failf "no quantity attribute %s" key

let named_caches model name =
  List.filter (fun (c : Model.element) -> c.Model.name = Some name)
    (Model.elements_of_kind Schema.Cache model)

(* Listing 1: the Xeon E5-2630L meta-model — L1 private, L2 shared by 2
   cores, L3 shared by all, expressed by scoping. *)
let test_listing1 () =
  let m, diags = Instantiate.run (find "Intel_Xeon_E5_2630L") in
  Alcotest.(check bool) "no errors" true (Diagnostic.all_ok diags);
  Alcotest.(check int) "4 cores" 4 (List.length (Model.elements_of_kind Schema.Core m));
  Alcotest.(check int) "4 private L1" 4 (List.length (named_caches m "L1"));
  Alcotest.(check int) "2 shared L2" 2 (List.length (named_caches m "L2"));
  Alcotest.(check int) "1 shared L3" 1 (List.length (named_caches m "L3"));
  let l3 = List.hd (named_caches m "L3") in
  Alcotest.check approx "L3 = 15 MiB" (15. *. 1024. *. 1024.) (quantity l3 "size");
  (* scoping: each L2 shares a scope with exactly 2 cores *)
  let outer_groups = Model.children_of_kind m Schema.Group in
  List.iter
    (fun g ->
      Alcotest.(check int) "L2 per core pair" 1 (List.length (Model.children_of_kind g Schema.Cache));
      Alcotest.(check int) "2 cores under L2 scope" 2
        (List.length (Model.elements_of_kind Schema.Core g)))
    outer_groups

(* Listing 2: the two memory-module descriptor files. *)
let test_listing2 () =
  let l2 = find "ShaveL2" in
  Alcotest.check approx "128 KiB" (128. *. 1024.) (quantity l2 "size");
  Alcotest.(check (option int)) "sets" (Some 2) (Model.attr_int l2 "sets");
  Alcotest.(check (option string)) "replacement" (Some "LRU") (Model.attr_string l2 "replacement");
  Alcotest.(check (option string)) "write policy" (Some "copyback")
    (Model.attr_string l2 "write_policy");
  let ddr = find "DDR3_16G" in
  Alcotest.(check (option string)) "technology label" (Some "DDR3") ddr.Model.type_ref;
  Alcotest.check approx "16 GB" (16. *. (1024. ** 3.)) (quantity ddr "size");
  Alcotest.check approx "4 W static" 4. (quantity ddr "static_power")

(* Listing 3: PCIe3 with separate up/down channels carrying "?" offsets. *)
let test_listing3 () =
  let pcie = find "pcie3" in
  let channels = Model.children_of_kind pcie Schema.Channel in
  Alcotest.(check (list string)) "channels" [ "up_link"; "down_link" ]
    (List.filter_map (fun (c : Model.element) -> c.Model.name) channels);
  let up = List.hd channels in
  Alcotest.check approx "6 GiB/s" (6. *. (1024. ** 3.)) (quantity up "max_bandwidth");
  Alcotest.(check bool) "time offset unknown" true (Model.attr_is_unknown up "time_offset_per_message");
  Alcotest.check approx "8 pJ/B" 8e-12 (quantity up "energy_per_byte");
  Alcotest.(check bool) "energy offset unknown" true
    (Model.attr_is_unknown up "energy_offset_per_message")

(* Listing 4: the concrete Myriad server with four host-board links. *)
let test_listing4 () =
  let m = compose_clean "myriad_server" in
  Alcotest.(check bool) "host present" true (Model.find_by_id "myriad_host" m <> None);
  Alcotest.(check bool) "board present" true (Model.find_by_id "mv153board" m <> None);
  let links = Model.elements_of_kind Schema.Interconnect m in
  Alcotest.(check int) "4 links" 4 (List.length links);
  List.iter
    (fun (l : Model.element) ->
      Alcotest.(check (option string)) "head" (Some "myriad_host") (Model.attr_string l "head");
      Alcotest.(check (option string)) "tail" (Some "mv153board") (Model.attr_string l "tail"))
    links;
  let types = List.filter_map (fun (l : Model.element) -> l.Model.type_ref) links in
  Alcotest.(check (list string)) "link technologies" [ "SPI"; "usb_2.0"; "hdmi"; "JTAG" ] types;
  (* the host resolves through the Xeon1 alias chain to the E5-2630L *)
  let host = Option.get (Model.find_by_id "myriad_host" m) in
  Alcotest.(check int) "host has 4 cores" 4
    (List.length (Model.hardware_elements_of_kind Schema.Core host));
  Alcotest.(check (option string)) "role survives" (Some "master") (Model.attr_string host "role")

(* Listing 5 + 6: the MV153 board containing the Myriad1: one Leon core,
   8 Shave cores with per-core caches, CMX/LRAM/DDR memories. *)
let test_listing5_6 () =
  let m = compose_clean "myriad_server" in
  let board = Option.get (Model.find_by_id "mv153board" m) in
  let myriad_cores = Model.hardware_elements_of_kind Schema.Core board in
  Alcotest.(check int) "1 Leon + 8 Shaves" 9 (List.length myriad_cores);
  let leon = Option.get (Model.find_by_id "Leon" board) in
  Alcotest.(check (option string)) "Leon is SPARC V8" (Some "Sparc_V8") leon.Model.type_ref;
  Alcotest.(check (option string)) "Leon big-endian" (Some "BE") (Model.attr_string leon "endian");
  Alcotest.(check int) "Leon I+D caches" 2 (List.length (Model.elements_of_kind Schema.Cache leon));
  let shave_ids =
    List.filter_map (fun (c : Model.element) -> c.Model.id) myriad_cores
    |> List.filter (fun i -> String.length i >= 5 && String.sub i 0 5 = "shave")
  in
  Alcotest.(check (list string)) "shave0..7"
    [ "shave0"; "shave1"; "shave2"; "shave3"; "shave4"; "shave5"; "shave6"; "shave7" ]
    shave_ids;
  let mems = Model.elements_of_kind Schema.Memory board in
  let mem_names = List.filter_map (fun (x : Model.element) -> x.Model.name) mems in
  Alcotest.(check bool) "CMX" true (List.mem "Movidius_CMX" mem_names);
  Alcotest.(check bool) "LRAM" true (List.mem "LRAM" mem_names);
  Alcotest.(check bool) "DDR" true (List.mem "DDR" mem_names);
  let cmx = Option.get (Model.find_by_name "Movidius_CMX" board) in
  Alcotest.(check (option int)) "8 CMX slices" (Some 8) (Model.attr_int cmx "slices");
  Alcotest.(check (option string)) "CMX little-endian" (Some "LE") (Model.attr_string cmx "endian")

(* Listing 7 + 10: the LiU GPU server with the K20c fixed at 32+32 KB. *)
let test_listing7_10 () =
  let m = compose_clean "liu_gpu_server" in
  let gpu = Option.get (Model.find_by_id "gpu1" m) in
  Alcotest.(check (option string)) "typed as K20c" (Some "Nvidia_K20c") gpu.Model.type_ref;
  (* the fixed configuration must satisfy the Kepler constraint (checked
     during compose — compose_clean would have failed otherwise) and
     appear in the expanded caches *)
  let l1s =
    List.filter (fun (c : Model.element) -> c.Model.name = Some "L1")
      (Model.elements_of_kind Schema.Cache gpu)
  in
  Alcotest.(check int) "13 SMs' L1" 13 (List.length l1s);
  List.iter (fun l1 -> Alcotest.check approx "L1 = 32 KB" (32. *. 1024.) (quantity l1 "size")) l1s;
  let shms =
    List.filter (fun (x : Model.element) -> x.Model.name = Some "shm")
      (Model.elements_of_kind Schema.Memory gpu)
  in
  Alcotest.(check int) "13 shm" 13 (List.length shms);
  List.iter (fun s -> Alcotest.check approx "shm = 32 KB" (32. *. 1024.) (quantity s "size")) shms

(* Listing 8 + 9: inheritance within the Nvidia family. *)
let test_listing8_9 () =
  let m = compose_clean "liu_gpu_server" in
  let gpu = Option.get (Model.find_by_id "gpu1" m) in
  (* K20c overrides compute_capability 3.0 -> 3.5 *)
  Alcotest.(check (option (float 1e-9))) "cc override" (Some 3.5)
    (Model.attr_float gpu "compute_capability");
  (* role worker inherited from Nvidia_GPU via Nvidia_Kepler *)
  Alcotest.(check (option string)) "role inherited" (Some "worker") (Model.attr_string gpu "role");
  (* num_SM=13 x coresperSM=192 *)
  Alcotest.(check int) "2496 SP cores" (13 * 192)
    (List.length (Model.hardware_elements_of_kind Schema.Core gpu));
  (* cfrq=706 MHz reached the cores *)
  let one_core = List.hd (Model.hardware_elements_of_kind Schema.Core gpu) in
  Alcotest.check approx "core at 706 MHz" 7.06e8 (quantity one_core "frequency");
  (* gmsz=5 GB global memory *)
  let gmem = Option.get (Model.find_by_name "gmem" gpu) in
  Alcotest.check approx "5 GB" (5. *. (1024. ** 3.)) (quantity gmem "size");
  (* programming models are labels, preserved *)
  let pms = Model.elements_of_kind Schema.Programming_model gpu in
  Alcotest.(check bool) "cuda6.0 label" true
    (List.exists (fun (p : Model.element) -> p.Model.type_ref = Some "cuda6.0") pms)

(* Listing 8's constraint: a bad configuration must be rejected. *)
let test_listing8_constraint_violation () =
  let c =
    Xpdl_repo.Repo.compose (Lazy.force repo)
      (Elaborate.of_string_exn ~lenient:true
         {|<device id="bad_gpu" type="Nvidia_K20c">
             <param name="L1size" size="48" unit="KB"/>
             <param name="shmsize" size="48" unit="KB"/>
           </device>|})
  in
  Alcotest.(check bool) "48+48 != 64 rejected" true
    (List.exists Diagnostic.is_error c.Xpdl_repo.Repo.comp_diags)

let test_listing8_range_violation () =
  let c =
    Xpdl_repo.Repo.compose (Lazy.force repo)
      (Elaborate.of_string_exn ~lenient:true
         {|<device id="bad_gpu" type="Nvidia_K20c">
             <param name="L1size" size="24" unit="KB"/>
             <param name="shmsize" size="40" unit="KB"/>
           </device>|})
  in
  Alcotest.(check bool) "24 outside {16,32,48}" true
    (List.exists Diagnostic.is_error c.Xpdl_repo.Repo.comp_diags)

(* Listing 11: the XScluster. *)
let test_listing11 () =
  let m = compose_clean "XScluster" in
  let nodes = Model.elements_of_kind Schema.Node m in
  Alcotest.(check int) "4 nodes" 4 (List.length nodes);
  let node0 = List.hd nodes in
  Alcotest.(check int) "2 CPUs per node" 2 (List.length (Model.elements_of_kind Schema.Cpu node0));
  Alcotest.(check int) "4 memory modules" 4
    (List.length
       (List.filter (fun (x : Model.element) -> x.Model.type_ref = Some "DDR3_4G")
          (Model.elements_of_kind Schema.Memory node0)));
  Alcotest.(check int) "2 GPUs per node" 2 (List.length (Model.children_of_kind node0 Schema.Device));
  (* node scopes n0..n3 exist, and inter-node InfiniBand links bind them *)
  List.iter
    (fun n -> Alcotest.(check bool) n true (Model.find_by_id n m <> None))
    [ "n0"; "n1"; "n2"; "n3" ];
  let ib =
    List.filter (fun (l : Model.element) -> l.Model.type_ref = Some "infiniband1")
      (Model.elements_of_kind Schema.Interconnect m)
  in
  Alcotest.(check int) "4 IB links" 4 (List.length ib);
  (* software: StarPU and CUDA are declared installed *)
  let installed = Model.elements_of_kind Schema.Installed m in
  let types = List.filter_map (fun (i : Model.element) -> i.Model.type_ref) installed in
  Alcotest.(check bool) "StarPU installed" true (List.mem "StarPU_1.0" types);
  Alcotest.(check bool) "CUDA installed" true (List.mem "CUDA_6.0" types)

(* Listing 12: Myriad power domains. *)
let test_listing12 () =
  let pd, diags = Instantiate.run (find "Myriad1_power_domains") in
  Alcotest.(check bool) "expands clean" true (Diagnostic.all_ok diags);
  let domains = Power.extract_domains pd in
  Alcotest.(check int) "1 main + 8 shave + 1 CMX" 10 (List.length domains);
  let main = List.find (fun d -> d.Power.pd_name = "main_pd") domains in
  Alcotest.(check bool) "main cannot switch off" false main.Power.pd_switchable;
  let cmx = List.find (fun d -> d.Power.pd_name = "CMX_pd") domains in
  (match cmx.Power.pd_condition with
  | Some cond ->
      Alcotest.(check string) "requires Shave_pds" "Shave_pds" cond.Power.requires_group;
      Alcotest.(check bool) "off required" true (cond.Power.required_state = `Off)
  | None -> Alcotest.fail "CMX_pd needs a switchoffCondition");
  let shave_domains =
    List.filter (fun d ->
        String.length d.Power.pd_name >= 8 && String.sub d.Power.pd_name 0 8 = "Shave_pd"
        && d.Power.pd_name <> "Shave_pds")
      domains
  in
  Alcotest.(check int) "8 shave domains" 8 (List.length shave_domains)

(* Listing 13: the pseudo-CPU power state machine descriptor. *)
let test_listing13 () =
  let pm = Power.of_element (find "power_state_machine1") in
  let sm = List.hd pm.Power.pm_machines in
  Alcotest.(check (option string)) "domain ref" (Some "xyCPU_core_pd") sm.Power.sm_domain;
  Alcotest.(check int) "3 P states" 3 (List.length sm.Power.sm_states);
  Alcotest.(check int) "3 transitions" 3 (List.length sm.Power.sm_transitions);
  (* the paper's cycle P1->P3->P2->P1 is modeled; P1->P2 only via P3? no:
     P2->P1 direct, P1->P2 must route P1->P3->P2 *)
  Alcotest.(check bool) "P2->P1 direct" true
    (Power.find_transition sm ~from_state:"P2" ~to_state:"P1" <> None);
  Alcotest.(check bool) "P1->P2 not direct" true
    (Power.find_transition sm ~from_state:"P1" ~to_state:"P2" = None)

(* Listing 14: the x86 instruction energy table with ? placeholders and
   the measured divsd frequency table. *)
let test_listing14 () =
  let pm = Power.of_element (find "x86_base_isa") in
  let isa = List.hd pm.Power.pm_isas in
  Alcotest.(check string) "isa name" "x86_base_isa" isa.Power.isa_name;
  Alcotest.(check (option string)) "suite ref" (Some "mb_x86_base_1") isa.Power.isa_default_mb;
  let unresolved = List.map (fun i -> i.Power.in_name) (Power.unresolved_instructions isa) in
  Alcotest.(check bool) "fmul needs benchmarking" true (List.mem "fmul" unresolved);
  Alcotest.(check bool) "divsd has data" false (List.mem "divsd" unresolved);
  let divsd = List.find (fun i -> i.Power.in_name = "divsd") isa.Power.isa_instructions in
  (match divsd.Power.in_energy with
  | Power.By_frequency rows ->
      Alcotest.(check int) "7 rows" 7 (List.length rows);
      let f0, e0 = List.hd rows in
      Alcotest.check approx "2.8 GHz row" 2.8e9 f0;
      Alcotest.check (Alcotest.float 1e-12) "18.625 nJ" 18.625e-9 e0
  | _ -> Alcotest.fail "divsd must carry a frequency table");
  let fmul = List.find (fun i -> i.Power.in_name = "fmul") isa.Power.isa_instructions in
  Alcotest.(check (option string)) "fmul mb ref" (Some "fm1") fmul.Power.in_mb

(* Listing 15: the microbenchmark suite. *)
let test_listing15 () =
  let pm = Power.of_element (find "mb_x86_base_1") in
  let suite = List.hd pm.Power.pm_suites in
  Alcotest.(check string) "id" "mb_x86_base_1" suite.Power.su_id;
  Alcotest.(check (option string)) "instruction_set" (Some "x86_base_isa")
    suite.Power.su_instruction_set;
  Alcotest.(check (option string)) "command" (Some "mbscript.sh") suite.Power.su_command;
  Alcotest.(check bool) "has fa1" true
    (List.exists (fun b -> b.Power.mb_id = "fa1") suite.Power.su_benches);
  let fa1 = List.find (fun b -> b.Power.mb_id = "fa1") suite.Power.su_benches in
  Alcotest.(check string) "measures fadd" "fadd" fa1.Power.mb_instruction;
  Alcotest.(check (option string)) "source file" (Some "fadd.c") fa1.Power.mb_file;
  Alcotest.(check (option string)) "cflags" (Some "-O0") fa1.Power.mb_cflags

(* The heterogeneous EXCESS-style cluster (beyond the paper's listings):
   mixed GPU and Phi nodes plus a big.LITTLE login node in one model. *)
let test_excess_cluster () =
  let m = compose_clean "excess_cluster" in
  Alcotest.(check int) "5 nodes" 5 (List.length (Model.elements_of_kind Schema.Node m));
  (* 2 gpu nodes: 8 + 2496; 2 phi nodes: 8 + 60; login: 8 big.LITTLE *)
  Alcotest.(check int) "5152 cores" ((2 * (8 + 2496)) + (2 * (8 + 60)) + 8)
    (List.length (Model.hardware_elements_of_kind Schema.Core m));
  let devices = Model.elements_of_kind Schema.Device m in
  Alcotest.(check int) "4 accelerators" 4 (List.length devices);
  Alcotest.(check int) "2 K20c" 2
    (List.length
       (List.filter (fun (d : Model.element) -> d.Model.type_ref = Some "Nvidia_K20c") devices));
  Alcotest.(check int) "2 Phi" 2
    (List.length
       (List.filter (fun (d : Model.element) -> d.Model.type_ref = Some "Xeon_Phi_5110P") devices));
  (* the IB chain connects gpu nodes to the login node *)
  let g = Xpdl_toolchain.Analysis.build_graph m in
  (match Xpdl_toolchain.Analysis.path_bandwidth g ~src:"gpu_node0" ~dst:"login" with
  | Some bw -> Alcotest.(check (Alcotest.float 1e6)) "IB bottleneck" (5. *. (1024. ** 3.)) bw
  | None -> Alcotest.fail "gpu_node0 must reach login")

(* Whole-repository health: every descriptor parses without errors. *)
let test_repository_clean () =
  let r = Lazy.force repo in
  let errors = Diagnostic.errors (Xpdl_repo.Repo.diagnostics r) in
  if errors <> [] then Alcotest.failf "repository has errors: %a" Diagnostic.pp_list errors;
  Alcotest.(check bool) "dozens of descriptors" true (Xpdl_repo.Repo.size r >= 40)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "listings"
    [
      ( "paper",
        [
          case "listing 1: Xeon scoping" test_listing1;
          case "listing 2: memory modules" test_listing2;
          case "listing 3: PCIe channels" test_listing3;
          case "listing 4: Myriad server" test_listing4;
          case "listings 5-6: MV153 + Myriad1" test_listing5_6;
          case "listings 7+10: GPU server" test_listing7_10;
          case "listings 8-9: Kepler inheritance" test_listing8_9;
          case "listing 8: constraint violation" test_listing8_constraint_violation;
          case "listing 8: range violation" test_listing8_range_violation;
          case "listing 11: XScluster" test_listing11;
          case "listing 12: power domains" test_listing12;
          case "listing 13: power state machine" test_listing13;
          case "listing 14: instruction energy" test_listing14;
          case "listing 15: microbenchmarks" test_listing15;
          case "heterogeneous excess cluster" test_excess_cluster;
          case "repository health" test_repository_clean;
        ] );
    ]
