(* Tests for conditional composition: selectability constraints over the
   runtime model, tuned dispatch, and the SpMV case-study shape. *)

module Q = Xpdl_query.Query
open Xpdl_compose

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let model name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c -> c.Xpdl_repo.Repo.model
  | Error msg -> Alcotest.failf "compose %s: %s" name msg

let liu_ctx ?(iterations = 1) ~rows ~density () =
  let m = model "liu_gpu_server" in
  Spmv.context ~iterations ~query:(Q.of_model m)
    ~machine:(Xpdl_simhw.Machine.create ~noise_sigma:0.005 m)
    ~rows ~density ()

(* a platform without GPU software: myriad server *)
let myriad_ctx ~rows ~density =
  let m = model "myriad_server" in
  {
    Compose.query = Q.of_model m;
    machine = Xpdl_simhw.Machine.create m;
    problem = [ ("rows", float_of_int rows); ("density", density); ("iterations", 1.) ];
  }

let test_selection_all_available () =
  let ctx = liu_ctx ~rows:2000 ~density:0.01 () in
  let sel = Compose.select Spmv.component ctx in
  Alcotest.(check bool) "chose something" true (sel.Compose.s_chosen <> None);
  Alcotest.(check int) "three estimates" 3 (List.length sel.Compose.s_estimates);
  Alcotest.(check int) "no rejections" 0 (List.length sel.Compose.s_rejections)

let test_software_constraint_rejects_gpu () =
  (* the myriad server has no CUDA/CUSPARSE/MKL installed *)
  let ctx = myriad_ctx ~rows:1000 ~density:0.01 in
  let sel = Compose.select Spmv.component ctx in
  Alcotest.(check bool) "gpu rejected" true
    (List.exists (fun r -> r.Compose.r_variant = "gpu_csr") sel.Compose.s_rejections);
  Alcotest.(check bool) "cpu_csr rejected (no MKL)" true
    (List.exists (fun r -> r.Compose.r_variant = "cpu_csr") sel.Compose.s_rejections);
  (match sel.Compose.s_chosen with
  | Some v -> Alcotest.(check string) "fallback variant" "cpu_dense" v.Compose.v_name
  | None -> Alcotest.fail "cpu_dense has no requirements")

let test_memory_constraint_rejects_dense () =
  (* a dense 200k x 200k matrix needs 320 GB > the 21 GB modeled *)
  let ctx = liu_ctx ~rows:200_000 ~density:0.0001 () in
  let sel = Compose.select Spmv.component ctx in
  Alcotest.(check bool) "dense rejected" true
    (List.exists (fun r -> r.Compose.r_variant = "cpu_dense") sel.Compose.s_rejections)

let test_selection_mid_density_prefers_csr () =
  (* mid density: enough work per transferred byte for the CPU to win,
     not yet enough regularity for dense *)
  let ctx = liu_ctx ~rows:4000 ~density:0.05 () in
  match (Compose.select Spmv.component ctx).Compose.s_chosen with
  | Some v -> Alcotest.(check string) "mid density -> cpu_csr" "cpu_csr" v.Compose.v_name
  | None -> Alcotest.fail "selection"

let test_selection_ultra_sparse_prefers_gpu () =
  (* ultra sparse: the CPU pays cache misses on every irregular gather
     while the GPU hides them across thousands of lanes, and the tiny
     matrix makes the transfer negligible *)
  let ctx = liu_ctx ~rows:4000 ~density:0.0005 () in
  match (Compose.select Spmv.component ctx).Compose.s_chosen with
  | Some v -> Alcotest.(check string) "ultra sparse -> gpu_csr" "gpu_csr" v.Compose.v_name
  | None -> Alcotest.fail "selection"

let test_selection_dense_prefers_dense () =
  let ctx = liu_ctx ~rows:4000 ~density:0.6 () in
  match (Compose.select Spmv.component ctx).Compose.s_chosen with
  | Some v -> Alcotest.(check string) "dense -> cpu_dense" "cpu_dense" v.Compose.v_name
  | None -> Alcotest.fail "selection"

let test_selection_iterative_prefers_gpu () =
  (* 100 solver sweeps amortize the PCIe transfer *)
  let ctx = liu_ctx ~iterations:100 ~rows:4000 ~density:0.05 () in
  match (Compose.select Spmv.component ctx).Compose.s_chosen with
  | Some v -> Alcotest.(check string) "iterative -> gpu" "gpu_csr" v.Compose.v_name
  | None -> Alcotest.fail "selection"

let test_dispatch_runs () =
  let ctx = liu_ctx ~rows:1000 ~density:0.02 () in
  let name, meas = Compose.dispatch Spmv.component ctx in
  Alcotest.(check bool) "variant named" true (List.mem name (Compose.variant_names Spmv.component));
  Alcotest.(check bool) "time positive" true (meas.Xpdl_simhw.Machine.elapsed > 0.);
  Alcotest.(check bool) "energy positive" true (meas.Xpdl_simhw.Machine.total_energy > 0.)

let test_dispatch_no_variant () =
  let component =
    {
      Compose.c_name = "impossible";
      c_variants =
        [
          {
            Compose.v_name = "needs_unicorn";
            v_requires = [ "Unicorn_1.0" ];
            v_selectable = (fun _ -> true);
            v_estimate = (fun _ -> None);
            v_run = (fun _ -> Alcotest.fail "must not run");
          };
        ];
    }
  in
  let ctx = liu_ctx ~rows:10 ~density:0.5 () in
  match Compose.dispatch component ctx with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "dispatch with no selectable variant must fail"

let test_run_variant_by_name () =
  let ctx = liu_ctx ~rows:500 ~density:0.1 () in
  Alcotest.(check bool) "known" true (Compose.run_variant Spmv.component ctx "cpu_dense" <> None);
  Alcotest.(check bool) "unknown" true (Compose.run_variant Spmv.component ctx "ghost" = None)

let test_problem_params () =
  let ctx = liu_ctx ~rows:10 ~density:0.5 () in
  Alcotest.(check (option (float 1e-9))) "density" (Some 0.5)
    (Compose.problem_param ctx "density");
  Alcotest.(check bool) "missing param" true (Compose.problem_param ctx "ghost" = None);
  match Compose.problem_param_exn ctx "ghost" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "problem_param_exn must raise"

(* the headline shape of the case study (E6): tuned selection is never
   slower than any fixed-variant policy across the density sweep, within
   measurement noise *)
let test_tuned_never_loses () =
  let densities = [ 0.001; 0.01; 0.05; 0.2; 0.6 ] in
  List.iter
    (fun density ->
      let ctx = liu_ctx ~rows:2000 ~density () in
      let _, tuned = Compose.dispatch Spmv.component ctx in
      List.iter
        (fun name ->
          match Compose.run_variant Spmv.component ctx name with
          | Some fixed ->
              Alcotest.(check bool)
                (Fmt.str "tuned <= %s at d=%.3f" name density)
                true
                (tuned.Xpdl_simhw.Machine.elapsed
                 <= (fixed.Xpdl_simhw.Machine.elapsed *. 1.15) +. 1e-6)
          | None -> ())
        (Compose.variant_names Spmv.component))
    densities

let test_estimates_track_measurements () =
  (* cost estimates from platform metadata must rank variants in the same
     order as actual measurements (that is what makes tuning work) *)
  let ctx = liu_ctx ~rows:4000 ~density:0.3 () in
  let sel = Compose.select Spmv.component ctx in
  let measured =
    List.filter_map
      (fun (name, _) ->
        Option.map
          (fun m -> (name, m.Xpdl_simhw.Machine.elapsed))
          (Compose.run_variant Spmv.component ctx name))
      sel.Compose.s_estimates
  in
  let rank l = List.map fst (List.sort (fun (_, a) (_, b) -> Float.compare a b) l) in
  Alcotest.(check (list string)) "same ranking" (rank sel.Compose.s_estimates) (rank measured)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "compose"
    [
      ( "selection",
        [
          case "all variants available" test_selection_all_available;
          case "software constraints" test_software_constraint_rejects_gpu;
          case "memory constraint" test_memory_constraint_rejects_dense;
          case "mid density -> cpu_csr" test_selection_mid_density_prefers_csr;
          case "ultra sparse -> gpu_csr" test_selection_ultra_sparse_prefers_gpu;
          case "dense -> cpu_dense" test_selection_dense_prefers_dense;
          case "iterative -> gpu_csr" test_selection_iterative_prefers_gpu;
        ] );
      ( "dispatch",
        [
          case "runs chosen variant" test_dispatch_runs;
          case "no selectable variant" test_dispatch_no_variant;
          case "run by name" test_run_variant_by_name;
          case "problem parameters" test_problem_params;
        ] );
      ( "case study",
        [
          case "tuned never loses" test_tuned_never_loses;
          case "estimates track measurements" test_estimates_track_measurements;
        ] );
    ]
