(* Tests for the PEPPHER PDL baseline: parsing, control-relation rules,
   the property query language, conversion from XPDL, and the Sec. II
   comparison points (what PDL cannot check statically). *)

open Xpdl_pdl

let sample =
  {|<Platform id="gpu_server">
      <Master id="cpu0" type="CPU">
        <Property name="x86_MAX_CLOCK_FREQUENCY" value="2000000000"/>
        <Property name="NUM_CORES" value="4" mandatory="true"/>
        <Worker id="gpu0" type="GPU">
          <Property name="CUDA_CC" value="3.5"/>
        </Worker>
        <Hybrid id="mic0" type="MIC">
          <Worker id="mic0_core" type="CORE"/>
        </Hybrid>
      </Master>
      <MemoryRegion id="main" scope="global">
        <Property name="SIZE_BYTES" value="17179869184"/>
      </MemoryRegion>
      <Interconnect id="pcie" endpoints="cpu0 gpu0">
        <Property name="BW" value="6442450944"/>
      </Interconnect>
      <Property name="INSTALLED_CUDA" value="/usr/local/cuda"/>
    </Platform>|}

let platform = lazy (Pdl.of_string sample)

let test_parse_structure () =
  let p = Lazy.force platform in
  Alcotest.(check string) "id" "gpu_server" p.Pdl.platform_id;
  Alcotest.(check bool) "master root" true (p.Pdl.control.Pdl.pu_role = Pdl.Master);
  Alcotest.(check int) "all PUs" 4 (List.length (Pdl.all_pus p));
  Alcotest.(check int) "1 memory region" 1 (List.length (p.Pdl.memory_regions));
  Alcotest.(check int) "1 interconnect" 1 (List.length (p.Pdl.interconnects))

let test_control_roles () =
  let p = Lazy.force platform in
  Alcotest.(check int) "1 master" 1 (List.length (Pdl.pus_with_role p Pdl.Master));
  Alcotest.(check int) "2 workers" 2 (List.length (Pdl.pus_with_role p Pdl.Worker));
  Alcotest.(check int) "1 hybrid" 1 (List.length (Pdl.pus_with_role p Pdl.Hybrid))

let test_exactly_one_master () =
  (match Pdl.of_string {|<Platform id="p"><Master id="a"/><Master id="b"/></Platform>|} with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "two masters rejected");
  match Pdl.of_string {|<Platform id="p"><Worker id="w"/></Platform>|} with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "no master rejected"

let test_worker_is_leaf () =
  match
    Pdl.of_string
      {|<Platform id="p"><Master id="m"><Worker id="w"><Worker id="x"/></Worker></Master></Platform>|}
  with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "workers cannot control other PUs"

let test_no_nested_master () =
  match
    Pdl.of_string
      {|<Platform id="p"><Master id="m"><Master id="m2"/></Master></Platform>|}
  with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "nested master rejected"

let test_property_lookup () =
  let p = Lazy.force platform in
  Alcotest.(check (option string)) "frequency" (Some "2000000000")
    (Pdl.pu_property p ~pu:"cpu0" ~name:"x86_MAX_CLOCK_FREQUENCY");
  Alcotest.(check (option string)) "platform prop" (Some "/usr/local/cuda")
    (Pdl.platform_property p "INSTALLED_CUDA");
  (* the Sec. II-C weakness: a typo silently looks like absence *)
  Alcotest.(check (option string)) "typo undetected" None
    (Pdl.pu_property p ~pu:"cpu0" ~name:"x86_MAX_CLOCK_FREQENCY")

let test_query_language () =
  let p = Lazy.force platform in
  Alcotest.(check bool) "exists" true
    (Pdl.query p "exists(cpu0.NUM_CORES)" = Pdl.QBool true);
  Alcotest.(check bool) "not exists" true
    (Pdl.query p "exists(cpu0.GHOST)" = Pdl.QBool false);
  Alcotest.(check bool) "value" true
    (Pdl.query p "value(gpu0.CUDA_CC)" = Pdl.QString "3.5");
  Alcotest.(check bool) "memory region entity" true
    (Pdl.query p "value(main.SIZE_BYTES)" = Pdl.QString "17179869184");
  Alcotest.(check bool) "count workers" true (Pdl.query p "count(worker)" = Pdl.QInt 2);
  Alcotest.(check bool) "count master" true (Pdl.query p "count(master)" = Pdl.QInt 1)

let test_query_errors () =
  let p = Lazy.force platform in
  (match Pdl.query p "value(cpu0.GHOST)" with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "value of absent property");
  (match Pdl.query p "count(alien)" with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "unknown role");
  match Pdl.query p "gibberish" with
  | exception Pdl.Pdl_error _ -> ()
  | _ -> Alcotest.fail "malformed query"

let test_print_reparse () =
  let p = Lazy.force platform in
  let p2 = Pdl.of_string (Pdl.to_string p) in
  Alcotest.(check int) "same PUs" (List.length (Pdl.all_pus p)) (List.length (Pdl.all_pus p2));
  Alcotest.(check (option string)) "props survive" (Some "3.5")
    (Pdl.pu_property p2 ~pu:"gpu0" ~name:"CUDA_CC")

(* --- PDL's untypedness: the comparison points of experiment E9 --- *)

let test_pdl_accepts_nonsense_values () =
  (* XPDL rejects "MRU" replacement and "GHz"-dimensioned cache sizes at
     elaboration; PDL accepts any string as a property value *)
  let p =
    Pdl.of_string
      {|<Platform id="p"><Master id="m">
          <Property name="CACHE_REPLACEMENT" value="MRU_NOT_A_POLICY"/>
          <Property name="L1_SIZE" value="thirty-two kibibytes"/>
        </Master></Platform>|}
  in
  Alcotest.(check (option string)) "nonsense accepted"
    (Some "thirty-two kibibytes")
    (Pdl.pu_property p ~pu:"m" ~name:"L1_SIZE")

let test_xpdl_rejects_same_nonsense () =
  match Xpdl_core.Elaborate.of_string {|<cache name="L1" size="thirty-two" unit="KiB"/>|} with
  | Ok (_, diags) ->
      Alcotest.(check bool) "xpdl flags it" true
        (List.exists Xpdl_core.Diagnostic.is_error diags)
  | Error _ -> ()

(* --- conversion from XPDL (monolithic downgrade) --- *)

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let xpdl_model name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c -> c.Xpdl_repo.Repo.model
  | Error msg -> Alcotest.failf "compose: %s" msg

let test_of_xpdl () =
  let m = xpdl_model "liu_gpu_server" in
  let p = Pdl.of_xpdl m in
  Alcotest.(check string) "platform id" "liu_gpu_server" p.Pdl.platform_id;
  Alcotest.(check int) "one master" 1 (List.length (Pdl.pus_with_role p Pdl.Master));
  Alcotest.(check bool) "gpu became a worker" true
    (List.exists (fun pu -> pu.Pdl.pu_id = "gpu1") (Pdl.pus_with_role p Pdl.Worker));
  (* installed software became string properties *)
  Alcotest.(check bool) "software flattened" true
    (Pdl.platform_property p "INSTALLED_CUDA_6.0" <> None);
  (* parses back *)
  let p2 = Pdl.of_string (Pdl.to_string p) in
  Alcotest.(check int) "round-trips" (List.length (Pdl.all_pus p)) (List.length (Pdl.all_pus p2))

let test_of_xpdl_cluster () =
  (* the whole XScluster flattens into one monolithic control tree: the
     8 GPUs become workers, the 7 further CPUs hybrids *)
  let m = xpdl_model "XScluster" in
  let p = Pdl.of_xpdl m in
  Alcotest.(check int) "8 workers" 8 (List.length (Pdl.pus_with_role p Pdl.Worker));
  Alcotest.(check int) "7 hybrids" 7 (List.length (Pdl.pus_with_role p Pdl.Hybrid));
  Alcotest.(check int) "1 master" 1 (List.length (Pdl.pus_with_role p Pdl.Master));
  (* round-trip of the large document *)
  let p2 = Pdl.of_string (Pdl.to_string p) in
  Alcotest.(check int) "round-trips" (List.length (Pdl.all_pus p)) (List.length (Pdl.all_pus p2))

let test_standalone_no_hybrid () =
  (* "the Cell/B.E., if used stand-alone ... has no hybrid PUs" (Sec. II-A) *)
  let p =
    Pdl.of_string
      {|<Platform id="cell_standalone">
          <Master id="ppe" type="PPE">
            <Worker id="spe0" type="SPE"/><Worker id="spe1" type="SPE"/>
            <Worker id="spe2" type="SPE"/><Worker id="spe3" type="SPE"/>
            <Worker id="spe4" type="SPE"/><Worker id="spe5" type="SPE"/>
            <Worker id="spe6" type="SPE"/><Worker id="spe7" type="SPE"/>
          </Master>
        </Platform>|}
  in
  Alcotest.(check int) "no hybrids" 0 (List.length (Pdl.pus_with_role p Pdl.Hybrid));
  Alcotest.(check int) "8 SPEs" 8 (List.length (Pdl.pus_with_role p Pdl.Worker));
  Alcotest.(check bool) "count query agrees" true (Pdl.query p "count(worker)" = Pdl.QInt 8)

let test_monolithic_size_penalty () =
  (* E9 shape check: the monolithic PDL dump of a composed system is much
     larger than the modular XPDL source that generated it, because XPDL
     reuses descriptors (the K20c content is written once, referenced
     everywhere) while PDL must inline everything *)
  let m = xpdl_model "XScluster" in
  let pdl_bytes = String.length (Pdl.to_string (Pdl.of_xpdl m)) in
  let xpdl_source_bytes =
    List.fold_left
      (fun acc f ->
        let ic = open_in f in
        let n = in_channel_length ic in
        close_in ic;
        acc + n)
      0
      (List.filter_map
         (fun name ->
           let paths =
             [ "../models/hardware"; "../models/systems"; "../models/software";
               "../models/microbench" ]
           in
           List.find_map
             (fun dir ->
               let base = String.lowercase_ascii name ^ ".xpdl" in
               let p = Filename.concat dir base in
               if Sys.file_exists p then Some p else None)
             paths)
         [ "xscluster" ])
  in
  Alcotest.(check bool) "modular source is smaller" true (xpdl_source_bytes * 5 < pdl_bytes)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "pdl"
    [
      ( "parse",
        [
          case "structure" test_parse_structure;
          case "control roles" test_control_roles;
          case "exactly one master" test_exactly_one_master;
          case "workers are leaves" test_worker_is_leaf;
          case "no nested master" test_no_nested_master;
          case "print/reparse" test_print_reparse;
        ] );
      ( "query",
        [
          case "property lookup" test_property_lookup;
          case "query language" test_query_language;
          case "query errors" test_query_errors;
        ] );
      ( "comparison",
        [
          case "PDL accepts nonsense" test_pdl_accepts_nonsense_values;
          case "XPDL rejects it" test_xpdl_rejects_same_nonsense;
          case "downgrade from XPDL" test_of_xpdl;
          case "cluster downgrade" test_of_xpdl_cluster;
          case "standalone Cell has no hybrids" test_standalone_no_hybrid;
          case "monolithic size penalty" test_monolithic_size_penalty;
        ] );
    ]
