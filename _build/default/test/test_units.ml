(* Tests for the unit system. *)

open Xpdl_units

let approx ?(eps = 1e-9) () = Alcotest.float eps

let test_size_parsing () =
  Alcotest.check (approx ()) "32 KiB" (32. *. 1024.) (Units.value (Units.of_string "32" "KiB"));
  Alcotest.check (approx ()) "KB is binary (datasheet convention)" (4. *. 1024.)
    (Units.value (Units.of_string "4" "KB"));
  Alcotest.check (approx ()) "15 MiB" (15. *. 1024. *. 1024.)
    (Units.value (Units.of_string "15" "MiB"));
  Alcotest.check (approx ()) "16 GB" (16. *. (1024. ** 3.)) (Units.value (Units.of_string "16" "GB"))

let test_frequency_parsing () =
  Alcotest.check (approx ()) "2 GHz" 2e9 (Units.value (Units.of_string "2" "GHz"));
  Alcotest.check (approx ()) "180 MHz" 1.8e8 (Units.value (Units.of_string "180" "MHz"));
  Alcotest.check (approx ()) "706 MHz" 7.06e8 (Units.value (Units.of_string "706" "MHz"))

let test_power_energy_time () =
  Alcotest.check (approx ()) "4 W" 4. (Units.value (Units.of_string "4" "W"));
  Alcotest.check (approx ()) "18.625 nJ" 18.625e-9 (Units.value (Units.of_string "18.625" "nJ"));
  Alcotest.check (approx ()) "8 pJ" 8e-12 (Units.value (Units.of_string "8" "pJ"));
  Alcotest.check (approx ()) "10 us" 1e-5 (Units.value (Units.of_string "10" "us"));
  Alcotest.check (approx ()) "1 Wh" 3600. (Units.value (Units.of_string "1" "Wh"))

let test_bandwidth () =
  Alcotest.check (approx ()) "6 GiB/s" (6. *. (1024. ** 3.))
    (Units.value (Units.of_string "6" "GiB/s"))

let test_dimension_detect () =
  Alcotest.(check bool) "size" true (Units.dim (Units.of_string "1" "KiB") = Units.Size);
  Alcotest.(check bool) "freq" true (Units.dim (Units.of_string "1" "GHz") = Units.Frequency);
  Alcotest.(check bool) "power" true (Units.dim (Units.of_string "1" "mW") = Units.Power);
  Alcotest.(check bool) "energy" true (Units.dim (Units.of_string "1" "kWh") = Units.Energy);
  Alcotest.(check bool) "time" true (Units.dim (Units.of_string "1" "ns") = Units.Time);
  Alcotest.(check bool) "bandwidth" true (Units.dim (Units.of_string "1" "MB/s") = Units.Bandwidth)

let test_unknown_unit () =
  (match Units.of_string "1" "parsec" with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "parsec must be rejected");
  Alcotest.(check bool) "of_string_opt" true (Units.of_string_opt "1" "parsec" = None);
  Alcotest.(check bool) "is_known_unit" false (Units.is_known_unit "parsec");
  Alcotest.(check bool) "GHz known" true (Units.is_known_unit "GHz")

let test_malformed_number () =
  match Units.of_string "not-a-number" "W" with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "malformed number must be rejected"

let test_to_unit () =
  let q = Units.of_string "2" "GHz" in
  Alcotest.check (approx ()) "GHz->MHz" 2000. (Units.to_unit q "MHz");
  let s = Units.of_string "256" "KiB" in
  Alcotest.check (approx ()) "KiB->MiB" 0.25 (Units.to_unit s "MiB")

let test_to_unit_dimension_mismatch () =
  match Units.to_unit (Units.of_string "1" "W") "GHz" with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "W cannot convert to GHz"

let test_arithmetic () =
  let a = Units.watts 3. and b = Units.watts 4. in
  Alcotest.check (approx ()) "add" 7. (Units.value (Units.add a b));
  Alcotest.check (approx ()) "sub" (-1.) (Units.value (Units.sub a b));
  Alcotest.check (approx ()) "scale" 6. (Units.value (Units.scale 2. a));
  Alcotest.check (approx ()) "neg" (-3.) (Units.value (Units.neg a));
  Alcotest.check (approx ()) "ratio" 0.75 (Units.ratio a b)

let test_arithmetic_dimension_check () =
  match Units.add (Units.watts 1.) (Units.seconds 1.) with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "adding W + s must fail"

let test_derived_products () =
  let e = Units.energy_of_power_time (Units.watts 20.) (Units.seconds 2.) in
  Alcotest.check (approx ()) "E = P*t" 40. (Units.value e);
  Alcotest.(check bool) "dim" true (Units.dim e = Units.Energy);
  let p = Units.power_of_energy_time e (Units.seconds 2.) in
  Alcotest.check (approx ()) "P = E/t" 20. (Units.value p);
  let t = Units.time_of_size_bandwidth (Units.bytes 1024.) (Units.bytes_per_second 512.) in
  Alcotest.check (approx ()) "t = s/bw" 2. (Units.value t);
  let t2 = Units.time_of_cycles_frequency 2e9 (Units.hertz 2e9) in
  Alcotest.check (approx ()) "t = c/f" 1. (Units.value t2)

let test_derived_products_guards () =
  (match Units.energy_of_power_time (Units.seconds 1.) (Units.seconds 1.) with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "energy_of_power_time needs power x time");
  match Units.time_of_size_bandwidth (Units.watts 1.) (Units.bytes_per_second 1.) with
  | exception Units.Unit_error _ -> ()
  | _ -> Alcotest.fail "time_of_size_bandwidth needs size / bandwidth"

let test_compare_equal () =
  Alcotest.(check int) "lt" (-1) (Units.compare (Units.watts 1.) (Units.watts 2.));
  Alcotest.(check bool) "equal" true (Units.equal (Units.watts 1.) (Units.watts (1. +. 1e-12)));
  Alcotest.(check bool) "not equal dims" false (Units.equal (Units.watts 1.) (Units.seconds 1.))

let test_pretty_printing () =
  Alcotest.(check string) "GHz" "2 GHz" (Units.to_string (Units.hertz 2e9));
  Alcotest.(check string) "KiB" "32 KiB" (Units.to_string (Units.bytes (32. *. 1024.)));
  Alcotest.(check string) "nJ" "18.625 nJ" (Units.to_string (Units.joules 18.625e-9));
  Alcotest.(check string) "ms" "1.5 ms" (Units.to_string (Units.seconds 1.5e-3))

let test_all_spellings_roundtrip () =
  (* every unit spelling the table recognizes parses and roundtrips *)
  List.iter
    (fun u ->
      Alcotest.(check bool) (u ^ " known") true (Units.is_known_unit u);
      let q = Units.of_value 3.5 u in
      Alcotest.check (approx ~eps:1e-9 ()) (u ^ " roundtrip") 3.5 (Units.to_unit q u))
    [ "B"; "byte"; "bytes"; "kB"; "KB"; "KiB"; "kiB"; "MB"; "MiB"; "GB"; "GiB"; "TB"; "TiB";
      "Hz"; "kHz"; "KHz"; "MHz"; "GHz"; "W"; "mW"; "uW"; "kW"; "J"; "mJ"; "uJ"; "nJ"; "pJ";
      "kJ"; "Wh"; "kWh"; "s"; "sec"; "ms"; "us"; "ns"; "ps"; "min"; "h"; "B/s"; "kB/s";
      "KB/s"; "KiB/s"; "MB/s"; "MiB/s"; "GB/s"; "GiB/s"; "TB/s"; "V"; "mV"; "K" ]

(* property tests *)

let gen_unit_spelling =
  QCheck2.Gen.oneofl
    [ "B"; "KiB"; "MiB"; "GB"; "Hz"; "MHz"; "GHz"; "W"; "mW"; "J"; "nJ"; "pJ"; "s"; "ms"; "us";
      "ns"; "B/s"; "MB/s"; "GiB/s"; "V" ]

let prop_roundtrip_unit =
  QCheck2.Test.make ~name:"of_value/to_unit round-trip" ~count:300
    QCheck2.Gen.(pair (float_bound_exclusive 1e6) gen_unit_spelling)
    (fun (v, u) ->
      let q = Units.of_value v u in
      Float.abs (Units.to_unit q u -. v) <= 1e-9 *. Float.max 1. (Float.abs v))

let prop_add_commutative =
  QCheck2.Test.make ~name:"add commutative" ~count:200
    QCheck2.Gen.(pair (float_bound_exclusive 1e9) (float_bound_exclusive 1e9))
    (fun (a, b) ->
      Units.equal (Units.add (Units.watts a) (Units.watts b))
        (Units.add (Units.watts b) (Units.watts a)))

let prop_scale_linear =
  QCheck2.Test.make ~name:"scale distributes over add" ~count:200
    QCheck2.Gen.(triple (float_bound_exclusive 1e3) (float_bound_exclusive 1e3) (float_bound_exclusive 100.))
    (fun (a, b, k) ->
      Units.equal ~eps:1e-6
        (Units.scale k (Units.add (Units.joules a) (Units.joules b)))
        (Units.add (Units.scale k (Units.joules a)) (Units.scale k (Units.joules b))))

let () =
  Alcotest.run "units"
    [
      ( "parsing",
        [
          Alcotest.test_case "sizes" `Quick test_size_parsing;
          Alcotest.test_case "frequencies" `Quick test_frequency_parsing;
          Alcotest.test_case "power/energy/time" `Quick test_power_energy_time;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth;
          Alcotest.test_case "dimension detection" `Quick test_dimension_detect;
          Alcotest.test_case "unknown unit" `Quick test_unknown_unit;
          Alcotest.test_case "malformed number" `Quick test_malformed_number;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "to_unit" `Quick test_to_unit;
          Alcotest.test_case "dimension mismatch" `Quick test_to_unit_dimension_mismatch;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "add/sub/scale/ratio" `Quick test_arithmetic;
          Alcotest.test_case "dimension check" `Quick test_arithmetic_dimension_check;
          Alcotest.test_case "derived products" `Quick test_derived_products;
          Alcotest.test_case "derived product guards" `Quick test_derived_products_guards;
          Alcotest.test_case "compare/equal" `Quick test_compare_equal;
        ] );
      ( "printing",
        [
          Alcotest.test_case "human units" `Quick test_pretty_printing;
          Alcotest.test_case "all spellings" `Quick test_all_spellings_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip_unit; prop_add_commutative; prop_scale_linear ] );
    ]
