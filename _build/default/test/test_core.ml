(* Tests for the XPDL core language: schema, elaboration, inheritance,
   instantiation (groups/params/constraints), validation, power views. *)

open Xpdl_core

let elab s = Elaborate.of_string_exn ~lenient:true s

let elab_with_diags s =
  match Elaborate.of_string ~lenient:true s with
  | Ok (e, diags) -> (e, diags)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let has_error diags = List.exists Diagnostic.is_error diags
let approx = Alcotest.float 1e-6

let quantity e key =
  match Model.attr_quantity e key with
  | Some q -> Xpdl_units.Units.value q
  | None -> Alcotest.failf "no quantity attribute %s" key

(* ------------------------------------------------------------------ *)
(* Schema *)

let test_kind_roundtrip () =
  List.iter
    (fun tag ->
      Alcotest.(check string) tag tag (Schema.tag_of_kind (Schema.kind_of_tag tag)))
    [ "system"; "cluster"; "node"; "socket"; "cpu"; "core"; "cache"; "memory"; "device";
      "interconnect"; "channel"; "group"; "software"; "hostOS"; "installed"; "power_model";
      "power_domains"; "power_domain"; "power_state_machine"; "power_state"; "transition";
      "instructions"; "inst"; "data"; "microbenchmarks"; "microbenchmark"; "const"; "param";
      "constraint"; "properties"; "property"; "weird_extension_tag" ]

let test_gpu_maps_to_device () =
  Alcotest.(check bool) "gpu tag" true (Schema.kind_of_tag "gpu" = Schema.Device)

let test_attr_spec_lookup () =
  Alcotest.(check bool) "cache size" true (Schema.attr_spec Schema.Cache "size" <> None);
  Alcotest.(check bool) "cache bogus" true (Schema.attr_spec Schema.Cache "bogus" = None);
  Alcotest.(check bool) "common name everywhere" true (Schema.attr_spec Schema.Memory "name" <> None)

let test_child_allowed () =
  Alcotest.(check bool) "core in cpu" true (Schema.child_allowed ~parent:Schema.Cpu ~child:Schema.Core);
  Alcotest.(check bool) "cpu in cache" false
    (Schema.child_allowed ~parent:Schema.Cache ~child:Schema.Cpu);
  Alcotest.(check bool) "extension allowed" true
    (Schema.child_allowed ~parent:Schema.Cache ~child:(Schema.Other "vendor_ext"))

let test_is_hardware () =
  Alcotest.(check bool) "cpu" true (Schema.is_hardware Schema.Cpu);
  Alcotest.(check bool) "param" false (Schema.is_hardware Schema.Param);
  Alcotest.(check bool) "software" false (Schema.is_hardware Schema.Software)

(* ------------------------------------------------------------------ *)
(* Elaboration *)

let test_elaborate_structural_attrs () =
  let e = elab {|<cpu name="X" type="Y" extends="A B" id="z"/>|} in
  Alcotest.(check (option string)) "name" (Some "X") e.Model.name;
  Alcotest.(check (option string)) "id" (Some "z") e.Model.id;
  Alcotest.(check (option string)) "type" (Some "Y") e.Model.type_ref;
  Alcotest.(check (list string)) "extends" [ "A"; "B" ] e.Model.extends

let test_elaborate_quantity_pairing () =
  let e = elab {|<core frequency="2" frequency_unit="GHz"/>|} in
  Alcotest.check approx "2 GHz normalized" 2e9 (quantity e "frequency");
  let c = elab {|<cache name="L1" size="32" unit="KiB"/>|} in
  Alcotest.check approx "size via bare unit" (32. *. 1024.) (quantity c "size")

let test_elaborate_param_unit () =
  (* param metrics use the bare [unit] companion (Listing 9) *)
  let p = elab {|<param name="cfrq" frequency="706" unit="MHz"/>|} in
  Alcotest.check approx "param frequency" 7.06e8 (quantity p "frequency");
  let g = elab {|<param name="gmsz" size="5" unit="GB"/>|} in
  Alcotest.check approx "param size" (5. *. (1024. ** 3.)) (quantity g "size")

let test_elaborate_unknown_placeholder () =
  let e = elab {|<inst name="fmul" energy="?" energy_unit="pJ"/>|} in
  Alcotest.(check bool) "unknown" true (Model.attr_is_unknown e "energy")

let test_elaborate_typed_attrs () =
  let e = elab {|<cache name="c" sets="2" replacement="LRU" shared="true"/>|} in
  Alcotest.(check (option int)) "sets" (Some 2) (Model.attr_int e "sets");
  Alcotest.(check (option string)) "replacement" (Some "LRU") (Model.attr_string e "replacement");
  Alcotest.(check (option bool)) "shared" (Some true) (Model.attr_bool e "shared")

let test_elaborate_bad_enum () =
  let _, diags = elab_with_diags {|<cache name="c" replacement="MRU"/>|} in
  Alcotest.(check bool) "bad enum flagged" true (has_error diags)

let test_elaborate_bad_int () =
  let _, diags = elab_with_diags {|<cache name="c" sets="two"/>|} in
  Alcotest.(check bool) "bad int flagged" true (has_error diags)

let test_elaborate_bad_unit_dimension () =
  let _, diags = elab_with_diags {|<cache name="c" size="32" unit="GHz"/>|} in
  Alcotest.(check bool) "GHz is not a size" true (has_error diags)

let test_elaborate_unknown_attr_warns () =
  let _, diags = elab_with_diags {|<cache name="c" colour="red"/>|} in
  Alcotest.(check bool) "warns" true (List.length diags > 0);
  Alcotest.(check bool) "but not an error" false (has_error diags)

let test_elaborate_unknown_tag_preserved () =
  let e, diags = elab_with_diags {|<cpu name="x"><thermal_sensor id="t1"/></cpu>|} in
  Alcotest.(check bool) "warns" true (List.length diags > 0);
  Alcotest.(check bool) "no error" false (has_error diags);
  match e.Model.children with
  | [ c ] -> Alcotest.(check bool) "kept as Other" true (c.Model.kind = Schema.Other "thermal_sensor")
  | _ -> Alcotest.fail "extension child must be preserved"

let test_elaborate_containment () =
  let _, diags = elab_with_diags {|<cache name="c"><cpu name="inner"/></cache>|} in
  Alcotest.(check bool) "cpu inside cache is an error" true (has_error diags)

let test_elaborate_expr_attr () =
  let e = elab {|<group quantity="num_SM" prefix="SM"/>|} in
  match Model.attr e "quantity" with
  | Some (Model.Expr (Xpdl_expr.Expr.Ident "num_SM", _)) -> ()
  | _ -> Alcotest.fail "quantity must elaborate to an identifier expression"

let test_elaborate_metric_param_reference () =
  (* frequency="cfrq": a parameter standing in for a quantity (Listing 8) *)
  let e = elab {|<core frequency="cfrq"/>|} in
  match Model.attr e "frequency" with
  | Some (Model.Expr (Xpdl_expr.Expr.Ident "cfrq", _)) -> ()
  | _ -> Alcotest.fail "frequency param reference must become an expression"

let test_to_xml_roundtrip () =
  let src = {|<cpu name="X"><core frequency="2" frequency_unit="GHz"/><cache name="L1" size="32" unit="KiB"/></cpu>|} in
  let e = elab src in
  let xml = Model.to_xml e in
  let e2, diags = Elaborate.of_xml xml in
  Alcotest.(check bool) "no diags" false (has_error diags);
  Alcotest.check approx "frequency preserved" 2e9
    (quantity (List.hd e2.Model.children) "frequency");
  Alcotest.(check (option string)) "name preserved" (Some "X") e2.Model.name

(* ------------------------------------------------------------------ *)
(* Inheritance *)

let lookup_of_list l name = List.assoc_opt name l

let test_extends_merge () =
  let base = elab {|<device name="Base" role="worker" compute_capability="3.0"><const name="k" value="1"/></device>|} in
  let sub = elab {|<device name="Sub" extends="Base" compute_capability="3.5"/>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("Base", base) ]) sub in
  Alcotest.(check (option (float 1e-9))) "override wins" (Some 3.5) (Model.attr_float r "compute_capability");
  Alcotest.(check (option string)) "inherited attr" (Some "worker") (Model.attr_string r "role");
  Alcotest.(check int) "inherited child" 1 (List.length r.Model.children);
  Alcotest.(check (list string)) "extends consumed" [] r.Model.extends

let test_keyed_child_override () =
  (* K20c's <param name="num_SM" value="13"/> refines Kepler's declaration *)
  let base = elab {|<device name="Fam"><param name="num_SM" type="integer"/><param name="other" type="integer"/></device>|} in
  let sub = elab {|<device name="K" extends="Fam"><param name="num_SM" value="13"/></device>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("Fam", base) ]) sub in
  Alcotest.(check int) "no duplicate param" 2 (List.length r.Model.children);
  let p = Option.get (Model.find_by_name "num_SM" r) in
  Alcotest.(check bool) "value set" true (Model.attr p "value" <> None);
  Alcotest.(check (option string)) "declared type kept" (Some "integer") p.Model.type_ref

let test_multiple_inheritance_leftmost_wins () =
  let a = elab {|<device name="A" vendor="Alpha" role="worker"/>|} in
  let b = elab {|<device name="B" vendor="Beta" compute_capability="9"/>|} in
  let sub = elab {|<device name="S" extends="A B"/>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("A", a); ("B", b) ]) sub in
  Alcotest.(check (option string)) "leftmost vendor" (Some "Alpha") (Model.attr_string r "vendor");
  Alcotest.(check (option string)) "role from A" (Some "worker") (Model.attr_string r "role");
  Alcotest.(check (option (float 1e-9))) "cc from B" (Some 9.) (Model.attr_float r "compute_capability")

let test_type_instantiation_keeps_identity () =
  let meta = elab {|<cpu name="XeonT" frequency="2" frequency_unit="GHz"/>|} in
  let inst = elab {|<cpu id="cpu0" type="XeonT"/>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("XeonT", meta) ]) inst in
  Alcotest.(check (option string)) "id kept" (Some "cpu0") r.Model.id;
  Alcotest.(check (option string)) "type kept" (Some "XeonT") r.Model.type_ref;
  Alcotest.check approx "content merged" 2e9 (quantity r "frequency")

let test_reference_adopts_name () =
  let isa = elab {|<instructions name="isa1"><inst name="add"/></instructions>|} in
  let ref_el = elab {|<instructions type="isa1"/>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("isa1", isa) ]) ref_el in
  Alcotest.(check (option string)) "adopted name" (Some "isa1") r.Model.name;
  Alcotest.(check int) "content" 1 (List.length r.Model.children)

let test_no_double_merge () =
  (* a chain A -> B -> C must not duplicate unkeyed children *)
  let c = elab {|<device name="C"><group quantity="2" prefix="u"><core/></group></device>|} in
  let b = elab {|<device name="B" extends="C"/>|} in
  let a = elab {|<device id="a1" type="B"/>|} in
  let r = Inheritance.resolve (lookup_of_list [ ("B", b); ("C", c) ]) a in
  Alcotest.(check int) "exactly one group child" 1 (List.length r.Model.children)

let test_unresolved_reference () =
  let sub = elab {|<device name="S" extends="Ghost"/>|} in
  (match Inheritance.resolve (lookup_of_list []) sub with
  | exception Inheritance.Unresolved { missing; _ } ->
      Alcotest.(check string) "missing name" "Ghost" missing
  | _ -> Alcotest.fail "must raise Unresolved");
  let _, diags = Inheritance.resolve_lenient (lookup_of_list []) sub in
  Alcotest.(check bool) "lenient reports" true (has_error diags)

let test_inheritance_cycle () =
  let a = elab {|<device name="A" extends="B"/>|} in
  let b = elab {|<device name="B" extends="A"/>|} in
  let lookup = lookup_of_list [ ("A", a); ("B", b) ] in
  (match Inheritance.resolve lookup a with
  | exception Inheritance.Cycle _ -> ()
  | _ -> Alcotest.fail "must raise Cycle");
  let _, diags = Inheritance.resolve_lenient lookup a in
  Alcotest.(check bool) "lenient reports cycle" true (has_error diags)

let test_memory_type_is_label () =
  let m = elab {|<memory name="DDR3_16G" type="DDR3" size="16" unit="GB"/>|} in
  let r = Inheritance.resolve (lookup_of_list []) m in
  Alcotest.(check (option string)) "label kept" (Some "DDR3") r.Model.type_ref

let test_power_domain_selector_not_resolved () =
  let pd = elab {|<power_domains name="pds"><power_domain name="d"><core type="Leon"/></power_domain></power_domains>|} in
  (* no "Leon" in the lookup — must NOT raise *)
  let r = Inheritance.resolve (lookup_of_list []) pd in
  Alcotest.(check int) "structure intact" 1 (List.length r.Model.children)

(* ------------------------------------------------------------------ *)
(* Instantiation: groups, params, constraints *)

let listing1 =
  {|<cpu name="Intel_Xeon_E5_2630L">
      <group prefix="core_group" quantity="2">
        <group prefix="core" quantity="2">
          <core frequency="2" frequency_unit="GHz" />
          <cache name="L1" size="32" unit="KiB" />
        </group>
        <cache name="L2" size="256" unit="KiB" />
      </group>
      <cache name="L3" size="15" unit="MiB" />
    </cpu>|}

let test_group_expansion_counts () =
  let expanded, diags = Instantiate.run (elab listing1) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "4 cores" 4 (List.length (Model.elements_of_kind Schema.Core expanded));
  Alcotest.(check int) "4 L1" 4
    (List.length
       (List.filter (fun (c : Model.element) -> c.Model.name = Some "L1")
          (Model.elements_of_kind Schema.Cache expanded)));
  Alcotest.(check int) "2 L2" 2
    (List.length
       (List.filter (fun (c : Model.element) -> c.Model.name = Some "L2")
          (Model.elements_of_kind Schema.Cache expanded)))

let test_group_member_ids () =
  let expanded, _ = Instantiate.run (elab listing1) in
  let core_ids =
    List.filter_map (fun (c : Model.element) -> c.Model.id)
      (Model.elements_of_kind Schema.Core expanded)
  in
  Alcotest.(check (list string)) "prefix ids" [ "core0"; "core1"; "core0"; "core1" ] core_ids;
  let scope_ids =
    List.filter_map (fun (g : Model.element) -> g.Model.id)
      (Model.children_of_kind expanded Schema.Group)
  in
  Alcotest.(check (list string)) "outer scopes" [ "core_group0"; "core_group1" ] scope_ids

let test_scoping_preserved () =
  (* L2 must remain a sibling of the inner core group: shared by 2 cores *)
  let expanded, _ = Instantiate.run (elab listing1) in
  let outer0 = List.hd (Model.children_of_kind expanded Schema.Group) in
  Alcotest.(check int) "L2 in scope" 1 (List.length (Model.children_of_kind outer0 Schema.Cache));
  Alcotest.(check int) "2 core scopes" 2 (List.length (Model.children_of_kind outer0 Schema.Group))

let test_quantity_param_binding () =
  let src =
    {|<device name="G">
        <param name="n" value="3"/>
        <group prefix="sm" quantity="n"><core/></group>
      </device>|}
  in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "3 cores" 3 (List.length (Model.elements_of_kind Schema.Core expanded))

let test_quantity_external_config () =
  let src = {|<device name="G"><param name="n"/><group prefix="sm" quantity="n"><core/></group></device>|} in
  let expanded, diags =
    Instantiate.run ~env:[ ("n", Xpdl_expr.Expr.Num 5.) ] (elab src)
  in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "5 cores" 5 (List.length (Model.elements_of_kind Schema.Core expanded))

let test_unbound_quantity_diagnosed () =
  let src = {|<device name="G"><group prefix="sm" quantity="n"><core/></group></device>|} in
  let _, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "error reported" true (has_error diags)

let test_param_substitution_into_quantity_attr () =
  let src =
    {|<device name="G">
        <const name="base" value="16384"/>
        <param name="L1size" value="base * 2"/>
        <cache name="L1" size="L1size"/>
      </device>|}
  in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  let cache = Option.get (Model.find_by_name "L1" expanded) in
  Alcotest.check approx "size substituted" 32768. (quantity cache "size")

let test_constraint_satisfied () =
  let src =
    {|<device name="G">
        <const name="total" size="64" unit="KB"/>
        <param name="a" size="16" unit="KB"/>
        <param name="b" size="48" unit="KB"/>
        <constraints><constraint expr="a + b == total"/></constraints>
      </device>|}
  in
  let _, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "holds" false (has_error diags)

let test_constraint_violated () =
  let src =
    {|<device name="G">
        <const name="total" size="64" unit="KB"/>
        <param name="a" size="32" unit="KB"/>
        <param name="b" size="48" unit="KB"/>
        <constraints><constraint expr="a + b == total"/></constraints>
      </device>|}
  in
  let _, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "violation reported" true (has_error diags)

let test_range_check () =
  let ok = {|<device name="G"><param name="p" range="16, 32, 48" unit="KB" size="32" Xunit="KB"/></device>|} in
  ignore ok;
  let in_range =
    {|<device name="G"><param name="p" range="16, 32, 48" unit="KB" size="32" /></device>|}
  in
  let _, diags = Instantiate.run (elab in_range) in
  Alcotest.(check bool) "32 in range" false (has_error diags);
  let out_of_range =
    {|<device name="G"><param name="p" range="16, 32, 48" unit="KB" size="24" /></device>|}
  in
  let _, diags = Instantiate.run (elab out_of_range) in
  Alcotest.(check bool) "24 not in range" true (has_error diags)

let test_unbound_params_listed () =
  let src = {|<device name="G"><param name="x"/><param name="y" value="1"/></device>|} in
  Alcotest.(check (list string)) "only x unbound" [ "x" ] (Instantiate.unbound_params (elab src))

let test_group_without_prefix_suffixes_names () =
  (* Listing 12: 8 copies of Shave_pd become Shave_pd0..7 under a named wrapper *)
  let src =
    {|<power_domains name="pds">
        <group name="Shave_pds" quantity="3">
          <power_domain name="Shave_pd"><core type="Shave"/></power_domain>
        </group>
      </power_domains>|}
  in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  let wrapper = List.hd (Model.children_of_kind expanded Schema.Group) in
  Alcotest.(check (option string)) "wrapper named" (Some "Shave_pds") wrapper.Model.name;
  let names =
    List.filter_map (fun (d : Model.element) -> d.Model.name)
      (Model.elements_of_kind Schema.Power_domain expanded)
  in
  Alcotest.(check (list string)) "suffixed" [ "Shave_pd0"; "Shave_pd1"; "Shave_pd2" ] names

let test_zero_quantity_group () =
  let src = {|<cpu name="c"><group prefix="x" quantity="0"><core/></group></cpu>|} in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "no cores" 0 (List.length (Model.elements_of_kind Schema.Core expanded))

let test_negative_quantity_diagnosed () =
  let src = {|<cpu name="c"><group prefix="x" quantity="0 - 2"><core/></group></cpu>|} in
  let _, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "negative rejected" true (has_error diags)

let test_param_shadowing () =
  (* an inner param declaration shadows the outer scope's *)
  let src =
    {|<device name="G">
        <param name="n" value="2"/>
        <group prefix="outer" quantity="n"><core/></group>
        <cpu name="Inner">
          <param name="n" value="3"/>
          <group prefix="inner" quantity="n"><core/></group>
        </cpu>
      </device>|}
  in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  let inner = Option.get (Model.find_by_name "Inner" expanded) in
  Alcotest.(check int) "inner sees 3" 3 (List.length (Model.elements_of_kind Schema.Core inner));
  Alcotest.(check int) "total 2 + 3" 5 (List.length (Model.elements_of_kind Schema.Core expanded))

let test_external_config_overrides_default () =
  (* deployment configuration wins over the param's declared value *)
  let src = {|<device name="G"><param name="n" value="2"/><group prefix="c" quantity="n"><core/></group></device>|} in
  let expanded, diags = Instantiate.run ~env:[ ("n", Xpdl_expr.Expr.Num 6.) ] (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "override wins" 6 (List.length (Model.elements_of_kind Schema.Core expanded))

let test_group_multiple_unidentified_children () =
  (* with several unidentified children, none silently steals the member
     id; the scope wrapper still carries it *)
  let src = {|<cpu name="c"><group prefix="p" quantity="2"><core/><core/></group></cpu>|} in
  let expanded, _ = Instantiate.run (elab src) in
  let cores = Model.elements_of_kind Schema.Core expanded in
  Alcotest.(check int) "4 cores" 4 (List.length cores);
  Alcotest.(check bool) "cores stay anonymous" true
    (List.for_all (fun (c : Model.element) -> c.Model.id = None) cores);
  let scopes = Model.children_of_kind expanded Schema.Group in
  Alcotest.(check (list string)) "scopes identified" [ "p0"; "p1" ]
    (List.filter_map (fun (g : Model.element) -> g.Model.id) scopes)

let test_nested_quantity_product () =
  let src =
    {|<device name="G">
        <param name="a" value="3"/><param name="b" value="4"/>
        <group prefix="x" quantity="a"><group prefix="y" quantity="b"><core/></group></group>
      </device>|}
  in
  let expanded, diags = Instantiate.run (elab src) in
  Alcotest.(check bool) "no errors" false (has_error diags);
  Alcotest.(check int) "3 * 4" 12 (List.length (Model.elements_of_kind Schema.Core expanded))

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_validate_interconnect_endpoints () =
  let good =
    elab
      {|<system id="s"><cpu id="c"/><device id="d"/>
          <interconnects><interconnect id="l" type="x" head="c" tail="d"/></interconnects></system>|}
  in
  (* type "x" unresolved is a compose-time concern; endpoint check: *)
  Alcotest.(check bool) "good endpoints" false
    (has_error (Validate.check_interconnect_endpoints good));
  let bad =
    elab
      {|<system id="s"><cpu id="c"/>
          <interconnects><interconnect id="l" type="x" head="c" tail="ghost"/></interconnects></system>|}
  in
  Alcotest.(check bool) "dangling tail" true (has_error (Validate.check_interconnect_endpoints bad))

let test_validate_duplicate_ids () =
  let bad = elab {|<system id="s"><cpu id="c"/><device id="c"/></system>|} in
  Alcotest.(check bool) "dup flagged" true (has_error (Validate.check_unique_ids bad))

let test_validate_required_attrs () =
  let bad = elab {|<power_state_machine name="m"><transitions><transition time="1" time_unit="us"/></transitions></power_state_machine>|} in
  Alcotest.(check bool) "transition needs head/tail" true
    (has_error (Validate.check_required_attrs bad))

let test_validate_bad_identifier () =
  let bad = elab {|<cpu name="0badname"/>|} in
  Alcotest.(check bool) "bad ident" true (has_error (Validate.check_identifiers bad))

let test_validate_psm () =
  let bad =
    elab
      {|<power_state_machine name="m">
          <power_states><power_state name="P1" frequency="1" frequency_unit="GHz" power="1" power_unit="W"/></power_states>
          <transitions><transition head="P1" tail="P9" time="1" time_unit="us" energy="1" energy_unit="nJ"/></transitions>
        </power_state_machine>|}
  in
  Alcotest.(check bool) "unknown state flagged" true (has_error (Validate.check_power_models bad))

(* ------------------------------------------------------------------ *)
(* Power views *)

let psm_listing13 =
  {|<power_state_machine name="power_state_machine1" power_domain="xyCPU_core_pd">
      <power_states>
        <power_state name="P1" frequency="1.2" frequency_unit="GHz" power="20" power_unit="W" />
        <power_state name="P2" frequency="1.6" frequency_unit="GHz" power="27" power_unit="W" />
        <power_state name="P3" frequency="2.0" frequency_unit="GHz" power="36" power_unit="W" />
      </power_states>
      <transitions>
        <transition head="P2" tail="P1" time="1" time_unit="us" energy="2" energy_unit="nJ" />
        <transition head="P3" tail="P2" time="1" time_unit="us" energy="2" energy_unit="nJ" />
        <transition head="P1" tail="P3" time="2" time_unit="us" energy="5" energy_unit="nJ" />
      </transitions>
    </power_state_machine>|}

let test_power_psm_extraction () =
  let pm = Power.of_element (elab psm_listing13) in
  match pm.Power.pm_machines with
  | [ sm ] ->
      Alcotest.(check string) "name" "power_state_machine1" sm.Power.sm_name;
      Alcotest.(check (option string)) "domain" (Some "xyCPU_core_pd") sm.Power.sm_domain;
      Alcotest.(check int) "3 states" 3 (List.length sm.Power.sm_states);
      Alcotest.(check int) "3 transitions" 3 (List.length sm.Power.sm_transitions);
      let p2 = Option.get (Power.find_state sm "P2") in
      Alcotest.check approx "P2 freq" 1.6e9 p2.Power.ps_frequency;
      Alcotest.check approx "P2 power" 27. p2.Power.ps_power;
      let tr = Option.get (Power.find_transition sm ~from_state:"P2" ~to_state:"P1") in
      Alcotest.check approx "time" 1e-6 tr.Power.tr_time;
      Alcotest.check approx "energy" 2e-9 tr.Power.tr_energy;
      Alcotest.(check bool) "valid" false (has_error (Power.validate_state_machine sm))
  | l -> Alcotest.failf "expected 1 machine, got %d" (List.length l)

let test_power_instruction_table () =
  let src =
    {|<instructions name="isa" mb="suite">
        <inst name="fmul" energy="?" energy_unit="pJ" mb="fm1"/>
        <inst name="fixed" energy="7" energy_unit="pJ"/>
        <inst name="divsd">
          <data frequency="2.8" frequency_unit="GHz" energy="18.625" energy_unit="nJ"/>
          <data frequency="3.4" frequency_unit="GHz" energy="21.023" energy_unit="nJ"/>
        </inst>
      </instructions>|}
  in
  let pm = Power.of_element (elab src) in
  let isa = List.hd pm.Power.pm_isas in
  Alcotest.(check int) "3 instructions" 3 (List.length isa.Power.isa_instructions);
  Alcotest.(check (list string)) "unresolved" [ "fmul" ]
    (List.map (fun i -> i.Power.in_name) (Power.unresolved_instructions isa));
  let divsd = List.find (fun i -> i.Power.in_name = "divsd") isa.Power.isa_instructions in
  (* interpolation: midpoint of the table *)
  (match Power.instruction_energy_at divsd ~hz:3.1e9 with
  | Some e -> Alcotest.check (Alcotest.float 1e-11) "interp" 19.824e-9 e
  | None -> Alcotest.fail "divsd has a table");
  (* clamping *)
  (match Power.instruction_energy_at divsd ~hz:1e9 with
  | Some e -> Alcotest.check (Alcotest.float 1e-12) "clamp low" 18.625e-9 e
  | None -> Alcotest.fail "clamp low");
  let fixed = List.find (fun i -> i.Power.in_name = "fixed") isa.Power.isa_instructions in
  match Power.instruction_energy_at fixed ~hz:9e9 with
  | Some e -> Alcotest.check (Alcotest.float 1e-15) "fixed" 7e-12 e
  | None -> Alcotest.fail "fixed energy"

let test_power_domains_extraction () =
  let src =
    {|<power_domains name="pds">
        <power_domain name="main_pd" enableSwitchOff="false"><core type="Leon"/></power_domain>
        <group name="g" quantity="2">
          <power_domain name="d"><core type="S"/></power_domain>
        </group>
        <power_domain name="c_pd" switchoffCondition="g off"><memory type="CMX"/></power_domain>
      </power_domains>|}
  in
  let expanded, _ = Instantiate.run (elab src) in
  let domains = Power.extract_domains expanded in
  Alcotest.(check int) "4 domains" 4 (List.length domains);
  let main = List.find (fun d -> d.Power.pd_name = "main_pd") domains in
  Alcotest.(check bool) "main not switchable" false main.Power.pd_switchable;
  let cmx = List.find (fun d -> d.Power.pd_name = "c_pd") domains in
  (match cmx.Power.pd_condition with
  | Some c ->
      Alcotest.(check string) "requires group" "g" c.Power.requires_group;
      Alcotest.(check bool) "off" true (c.Power.required_state = `Off)
  | None -> Alcotest.fail "condition expected")

let test_psm_unreachable_state_warns () =
  let src =
    {|<power_state_machine name="m">
        <power_states>
          <power_state name="A" frequency="1" frequency_unit="GHz" power="1" power_unit="W"/>
          <power_state name="B" frequency="2" frequency_unit="GHz" power="2" power_unit="W"/>
        </power_states>
        <transitions/>
      </power_state_machine>|}
  in
  let pm = Power.of_element (elab src) in
  let diags = Power.validate_state_machine (List.hd pm.Power.pm_machines) in
  Alcotest.(check bool) "warns about B" true (List.length diags > 0)

let () =
  Alcotest.run "core"
    [
      ( "schema",
        [
          Alcotest.test_case "kind round-trip" `Quick test_kind_roundtrip;
          Alcotest.test_case "gpu -> device" `Quick test_gpu_maps_to_device;
          Alcotest.test_case "attr specs" `Quick test_attr_spec_lookup;
          Alcotest.test_case "containment" `Quick test_child_allowed;
          Alcotest.test_case "hardware kinds" `Quick test_is_hardware;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "structural attrs" `Quick test_elaborate_structural_attrs;
          Alcotest.test_case "metric_unit pairing" `Quick test_elaborate_quantity_pairing;
          Alcotest.test_case "param unit companion" `Quick test_elaborate_param_unit;
          Alcotest.test_case "? placeholder" `Quick test_elaborate_unknown_placeholder;
          Alcotest.test_case "typed attributes" `Quick test_elaborate_typed_attrs;
          Alcotest.test_case "bad enum" `Quick test_elaborate_bad_enum;
          Alcotest.test_case "bad int" `Quick test_elaborate_bad_int;
          Alcotest.test_case "unit dimension mismatch" `Quick test_elaborate_bad_unit_dimension;
          Alcotest.test_case "unknown attribute warns" `Quick test_elaborate_unknown_attr_warns;
          Alcotest.test_case "unknown tag preserved" `Quick test_elaborate_unknown_tag_preserved;
          Alcotest.test_case "containment checked" `Quick test_elaborate_containment;
          Alcotest.test_case "expression attribute" `Quick test_elaborate_expr_attr;
          Alcotest.test_case "metric param reference" `Quick test_elaborate_metric_param_reference;
          Alcotest.test_case "to_xml round-trip" `Quick test_to_xml_roundtrip;
        ] );
      ( "inheritance",
        [
          Alcotest.test_case "extends merge + override" `Quick test_extends_merge;
          Alcotest.test_case "keyed child override" `Quick test_keyed_child_override;
          Alcotest.test_case "multiple inheritance priority" `Quick
            test_multiple_inheritance_leftmost_wins;
          Alcotest.test_case "type instantiation identity" `Quick
            test_type_instantiation_keeps_identity;
          Alcotest.test_case "reference adopts name" `Quick test_reference_adopts_name;
          Alcotest.test_case "no double merge" `Quick test_no_double_merge;
          Alcotest.test_case "unresolved reference" `Quick test_unresolved_reference;
          Alcotest.test_case "cycle detection" `Quick test_inheritance_cycle;
          Alcotest.test_case "memory type is a label" `Quick test_memory_type_is_label;
          Alcotest.test_case "power-domain selector" `Quick test_power_domain_selector_not_resolved;
        ] );
      ( "instantiate",
        [
          Alcotest.test_case "listing 1 counts" `Quick test_group_expansion_counts;
          Alcotest.test_case "listing 1 member ids" `Quick test_group_member_ids;
          Alcotest.test_case "scoping preserved" `Quick test_scoping_preserved;
          Alcotest.test_case "quantity from param" `Quick test_quantity_param_binding;
          Alcotest.test_case "external config" `Quick test_quantity_external_config;
          Alcotest.test_case "unbound quantity" `Quick test_unbound_quantity_diagnosed;
          Alcotest.test_case "param substitution" `Quick test_param_substitution_into_quantity_attr;
          Alcotest.test_case "constraint satisfied" `Quick test_constraint_satisfied;
          Alcotest.test_case "constraint violated" `Quick test_constraint_violated;
          Alcotest.test_case "range check" `Quick test_range_check;
          Alcotest.test_case "unbound params listed" `Quick test_unbound_params_listed;
          Alcotest.test_case "unprefixed group naming" `Quick
            test_group_without_prefix_suffixes_names;
          Alcotest.test_case "zero quantity" `Quick test_zero_quantity_group;
          Alcotest.test_case "negative quantity" `Quick test_negative_quantity_diagnosed;
          Alcotest.test_case "param shadowing" `Quick test_param_shadowing;
          Alcotest.test_case "external config override" `Quick
            test_external_config_overrides_default;
          Alcotest.test_case "multiple unidentified members" `Quick
            test_group_multiple_unidentified_children;
          Alcotest.test_case "nested quantity product" `Quick test_nested_quantity_product;
        ] );
      ( "validate",
        [
          Alcotest.test_case "interconnect endpoints" `Quick test_validate_interconnect_endpoints;
          Alcotest.test_case "duplicate ids" `Quick test_validate_duplicate_ids;
          Alcotest.test_case "required attributes" `Quick test_validate_required_attrs;
          Alcotest.test_case "identifier syntax" `Quick test_validate_bad_identifier;
          Alcotest.test_case "psm well-formedness" `Quick test_validate_psm;
        ] );
      ( "power",
        [
          Alcotest.test_case "listing 13 extraction" `Quick test_power_psm_extraction;
          Alcotest.test_case "listing 14 energy table" `Quick test_power_instruction_table;
          Alcotest.test_case "listing 12 domains" `Quick test_power_domains_extraction;
          Alcotest.test_case "unreachable state warning" `Quick test_psm_unreachable_state_warns;
        ] );
    ]
