test/test_expr.ml: Alcotest Expr Float Fmt List QCheck2 QCheck_alcotest Xpdl_expr
