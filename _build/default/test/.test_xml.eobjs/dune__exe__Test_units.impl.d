test/test_units.ml: Alcotest Float List QCheck2 QCheck_alcotest Units Xpdl_units
