test/test_toolchain.ml: Alcotest Analysis Array Bytes Cpp_codegen Filename Fmt Ir Lazy List Option Pipeline QCheck2 QCheck_alcotest String Sys Xpdl_core Xpdl_repo Xpdl_toolchain Xpdl_units
