test/test_compose.ml: Alcotest Compose Float Fmt Lazy List Option Spmv Xpdl_compose Xpdl_query Xpdl_repo Xpdl_simhw
