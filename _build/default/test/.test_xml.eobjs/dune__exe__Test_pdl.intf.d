test/test_pdl.mli:
