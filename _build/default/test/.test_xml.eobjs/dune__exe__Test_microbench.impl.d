test/test_microbench.ml: Alcotest Array Bootstrap Driver Filename Float Lazy List Option Stats String Sys Xpdl_core Xpdl_microbench Xpdl_repo Xpdl_simhw Xpdl_units
