test/test_listings.mli:
