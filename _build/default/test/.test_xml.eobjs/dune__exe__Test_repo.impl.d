test/test_repo.ml: Alcotest Diagnostic Filename Fmt List Model Option QCheck2 QCheck_alcotest Schema Sys Xpdl_core Xpdl_energy Xpdl_expr Xpdl_query Xpdl_repo Xpdl_units
