test/test_query.ml: Alcotest Filename Lazy List Option String Sys Xpdl_core Xpdl_energy Xpdl_query Xpdl_repo Xpdl_toolchain Xpdl_units
