test/test_core.ml: Alcotest Diagnostic Elaborate Inheritance Instantiate List Model Option Power Schema Validate Xpdl_core Xpdl_expr Xpdl_units
