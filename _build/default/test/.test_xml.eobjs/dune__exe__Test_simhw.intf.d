test/test_simhw.mli:
