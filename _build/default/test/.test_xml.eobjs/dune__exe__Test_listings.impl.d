test/test_listings.ml: Alcotest Diagnostic Elaborate Instantiate Lazy List Model Option Power Schema String Xpdl_core Xpdl_repo Xpdl_toolchain Xpdl_units
