test/test_pdl.ml: Alcotest Filename Lazy List Pdl String Sys Xpdl_core Xpdl_pdl Xpdl_repo
