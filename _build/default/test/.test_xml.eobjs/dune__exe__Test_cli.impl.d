test/test_cli.ml: Alcotest Array Filename Fmt List String Sys Xpdl_pdl Xpdl_toolchain Xpdl_xml
