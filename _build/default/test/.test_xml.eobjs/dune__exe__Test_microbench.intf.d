test/test_microbench.mli:
