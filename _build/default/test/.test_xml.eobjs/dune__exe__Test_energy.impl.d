test/test_energy.ml: Aggregate Alcotest Domains Dvfs Elaborate Fmt Lazy List Option Power Psm QCheck2 QCheck_alcotest Xpdl_core Xpdl_energy Xpdl_repo
