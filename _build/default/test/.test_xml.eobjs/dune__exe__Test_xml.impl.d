test/test_xml.ml: Alcotest Buffer Dom Fmt List Parse Path Print QCheck2 QCheck_alcotest String Xpdl_xml
