test/test_simhw.ml: Alcotest Array Float Hashtbl Kernels Lazy List Machine Option QCheck2 QCheck_alcotest Rng String Truth Xpdl_core Xpdl_repo Xpdl_simhw
