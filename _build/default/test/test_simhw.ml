(* Tests for the simulated hardware substrate: RNG, ground truth,
   machine execution, transfers, DVFS effects. *)

open Xpdl_simhw

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let model name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c -> c.Xpdl_repo.Repo.model
  | Error msg -> Alcotest.failf "compose %s: %s" name msg

let liu = lazy (model "liu_gpu_server")

(* ------------------------------------------------------------------ *)
(* RNG *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_range () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %f" x;
    let i = Rng.int r 10 in
    if i < 0 || i >= 10 then Alcotest.failf "int out of range: %d" i
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:2 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian r) in
  let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
  let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.) < 0.1)

let test_noise_factor_positive () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    if Rng.noise_factor r ~sigma:0.5 <= 0. then Alcotest.fail "noise factor must stay positive"
  done

let test_rng_split () =
  let r = Rng.create ~seed:4 in
  let a = Rng.split r "core0" and b = Rng.split r "core1" in
  Alcotest.(check bool) "independent streams" true (Rng.float a <> Rng.float b)

(* ------------------------------------------------------------------ *)
(* Ground truth *)

let test_truth_deterministic () =
  Alcotest.(check (float 0.)) "stable synthesis"
    (Truth.synthesized_base_energy "fadd")
    (Truth.synthesized_base_energy "fadd");
  Alcotest.(check bool) "distinct instructions" true
    (Truth.synthesized_base_energy "fadd" <> Truth.synthesized_base_energy "fmul")

let test_truth_range () =
  List.iter
    (fun name ->
      let e = Truth.synthesized_base_energy name in
      if e < 5e-12 || e > 80e-12 then Alcotest.failf "%s energy %g outside 5-80 pJ" name e)
    [ "fadd"; "fmul"; "mov"; "ld"; "st"; "nop"; "weird_op_17" ]

let test_truth_frequency_law () =
  let t = Truth.synthetic () in
  let e1 = Truth.energy t ~name:"fadd" ~hz:1e9 in
  let e2 = Truth.energy t ~name:"fadd" ~hz:2e9 in
  let e4 = Truth.energy t ~name:"fadd" ~hz:4e9 in
  Alcotest.(check bool) "monotone in f" true (e1 < e2 && e2 < e4);
  (* E(f) = E0(a + (1-a) (f/f0)^2) with f0=2GHz: E(2GHz) is the base *)
  let base = Hashtbl.find t.Truth.base_energy "fadd" in
  Alcotest.(check (float 1e-18)) "reference point" base e2

let test_truth_model_table_wins () =
  (* the divsd frequency table from Listing 14 is authoritative *)
  let isa_src =
    {|<instructions name="i">
        <inst name="divsd">
          <data frequency="2.8" frequency_unit="GHz" energy="18.625" energy_unit="nJ"/>
          <data frequency="3.4" frequency_unit="GHz" energy="21.023" energy_unit="nJ"/>
        </inst>
      </instructions>|}
  in
  let isa =
    List.hd (Xpdl_core.Power.of_element (Xpdl_core.Elaborate.of_string_exn isa_src)).pm_isas
  in
  let t = Truth.of_isa isa in
  Alcotest.(check (float 1e-12)) "table low end" 18.625e-9 (Truth.energy t ~name:"divsd" ~hz:2.8e9);
  Alcotest.(check (float 1e-12)) "table high end" 21.023e-9 (Truth.energy t ~name:"divsd" ~hz:3.4e9);
  let mid = Truth.energy t ~name:"divsd" ~hz:3.1e9 in
  Alcotest.(check bool) "interpolates" true (mid > 18.625e-9 && mid < 21.023e-9)

(* ------------------------------------------------------------------ *)
(* Machine *)

let test_machine_core_collection () =
  let m = Machine.create (Lazy.force liu) in
  (* 4 host cores + 2496 GPU cores, no power-domain selectors *)
  Alcotest.(check int) "core count" 2500 (Machine.core_count m)

let test_machine_static_power () =
  let m = Machine.create (Lazy.force liu) in
  (* Xeon 10 + DDR3_16G 4 + K20c 16 + gmem 8 + pcie 1.5 + SP cores 2496*0.01 *)
  Alcotest.(check bool) "positive" true (m.Machine.static_power > 30.);
  Alcotest.(check bool) "sane" true (m.Machine.static_power < 200.)

let test_run_deterministic () =
  let w = Kernels.axpy ~n:100_000 in
  let m1 = Machine.create ~seed:5 (Lazy.force liu) in
  let m2 = Machine.create ~seed:5 (Lazy.force liu) in
  let r1 = Machine.run m1 w and r2 = Machine.run m2 w in
  Alcotest.(check (float 0.)) "same elapsed" r1.Machine.elapsed r2.Machine.elapsed;
  Alcotest.(check (float 0.)) "same energy" r1.Machine.total_energy r2.Machine.total_energy

let test_run_scaling () =
  let m = Machine.create ~noise_sigma:0. (Lazy.force liu) in
  let small = Machine.run m (Kernels.axpy ~n:10_000) in
  let large = Machine.run m (Kernels.axpy ~n:100_000) in
  let ratio = large.Machine.elapsed /. small.Machine.elapsed in
  Alcotest.(check bool) "time scales ~10x" true (ratio > 8. && ratio < 12.);
  let eratio = large.Machine.dynamic_energy /. small.Machine.dynamic_energy in
  Alcotest.(check bool) "energy scales ~10x" true (eratio > 8. && eratio < 12.)

let test_run_parallel_speedup () =
  let m = Machine.create ~noise_sigma:0. (Lazy.force liu) in
  let w = Kernels.spmv_csr_cpu (Kernels.spmv ~rows:2000 ~density:0.05 ()) in
  let serial = Machine.run ~cores_used:1 m w in
  let quad = Machine.run ~cores_used:4 m w in
  let speedup = serial.Machine.elapsed /. quad.Machine.elapsed in
  Alcotest.(check bool) "amdahl speedup in (2,4)" true (speedup > 2. && speedup < 4.)

let test_energy_accounting_invariant () =
  let m = Machine.create ~noise_sigma:0. (Lazy.force liu) in
  let r = Machine.run m (Kernels.axpy ~n:50_000) in
  Alcotest.(check (float 1e-9)) "total = dynamic + static*t"
    (r.Machine.dynamic_energy +. (m.Machine.static_power *. r.Machine.elapsed))
    r.Machine.total_energy;
  Alcotest.(check (float 1e-6)) "avg power consistent"
    (r.Machine.total_energy /. r.Machine.elapsed)
    r.Machine.average_power

let test_dvfs_effect () =
  let m = Machine.create ~noise_sigma:0. (Lazy.force liu) in
  let w = Kernels.single_instruction ~name:"fadd" ~iterations:100_000 in
  let fast = Machine.run m w in
  Machine.set_frequency m 1e9;
  let slow = Machine.run m w in
  Alcotest.(check bool) "lower f is slower" true
    (slow.Machine.elapsed > fast.Machine.elapsed *. 1.5);
  Alcotest.(check bool) "lower f cuts dynamic energy" true
    (slow.Machine.dynamic_energy < fast.Machine.dynamic_energy)

let test_transfer_model () =
  let m = Machine.create ~noise_sigma:0. (Lazy.force liu) in
  let t1, e1 = Machine.transfer m ~link:"connection1" ~bytes:1_000_000 in
  let t2, e2 = Machine.transfer m ~link:"connection1" ~bytes:10_000_000 in
  Alcotest.(check bool) "time grows" true (t2 > t1);
  Alcotest.(check bool) "energy grows" true (e2 > e1);
  (* bandwidth term dominates for 10 MB over PCIe3: ~1.55 ms *)
  Alcotest.(check bool) "plausible PCIe time" true (t2 > 1e-3 && t2 < 3e-3)

let test_transfer_unknown_link () =
  let m = Machine.create (Lazy.force liu) in
  match Machine.transfer m ~link:"no_such_link" ~bytes:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown link must be rejected"

let test_run_unknown_core () =
  let m = Machine.create (Lazy.force liu) in
  match Machine.run ~core:"ghost_core" m (Kernels.axpy ~n:10) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown core must be rejected"

let test_idle_power_sampling () =
  let m = Machine.create (Lazy.force liu) in
  let p = Machine.sample_idle_power m ~duration:1.0 in
  Alcotest.(check bool) "near static power" true
    (Float.abs (p -. m.Machine.static_power) /. m.Machine.static_power < 0.2)

let test_set_frequency_scoped () =
  let m = Machine.create (Lazy.force liu) in
  (* only the GPU cores (paths contain gpu1) change *)
  Machine.set_frequency ~within:"gpu1" m 3.33e8;
  let host = Option.get (Machine.find_core m "core0") in
  Alcotest.(check (float 1.)) "host untouched" 2e9 host.Machine.hz;
  let gpu_core =
    Array.to_list m.Machine.cores
    |> List.find (fun (c : Machine.core) ->
           String.length c.Machine.core_ident > 4
           && String.sub c.Machine.core_ident 0 19 = "liu_gpu_server/gpu1")
  in
  Alcotest.(check (float 1.)) "gpu scoped" 3.33e8 gpu_core.Machine.hz

let test_transfer_deterministic () =
  let a = Machine.create ~seed:9 (Lazy.force liu) in
  let b = Machine.create ~seed:9 (Lazy.force liu) in
  Alcotest.(check (pair (float 0.) (float 0.))) "same observation"
    (Machine.transfer a ~link:"connection1" ~bytes:123_456)
    (Machine.transfer b ~link:"connection1" ~bytes:123_456)

(* ------------------------------------------------------------------ *)
(* Kernels *)

let test_spmv_nonzeros () =
  let m = Kernels.spmv ~rows:1000 ~density:0.01 () in
  Alcotest.(check int) "nnz" 10_000 (Kernels.nonzeros m);
  Alcotest.(check int) "flops" 20_000 (Kernels.spmv_flops m)

let test_spmv_density_validation () =
  (match Kernels.spmv ~rows:10 ~density:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "density 0 rejected");
  match Kernels.spmv ~rows:10 ~density:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "density > 1 rejected"

let test_transfer_bytes_monotone () =
  let small = Kernels.spmv_transfer_bytes (Kernels.spmv ~rows:100 ~density:0.1 ()) in
  let large = Kernels.spmv_transfer_bytes (Kernels.spmv ~rows:1000 ~density:0.1 ()) in
  Alcotest.(check bool) "more rows, more bytes" true (large > small)

let test_repeat_workload () =
  let w = Kernels.axpy ~n:100 in
  let w3 = Kernels.repeat 3 w in
  let count name ws =
    Option.value ~default:0 (List.assoc_opt name ws.Machine.instructions)
  in
  Alcotest.(check int) "3x fmul" (3 * count "fmul" w) (count "fmul" w3);
  Alcotest.(check int) "3x memory" (3 * w.Machine.memory_accesses) w3.Machine.memory_accesses;
  Alcotest.(check bool) "repeat 1 is identity" true (Kernels.repeat 1 w == w)

(* property: run results are always physically sensible *)
let prop_run_positive =
  QCheck2.Test.make ~name:"runs yield positive time and energy" ~count:50
    QCheck2.Gen.(pair (1 -- 200_000) (1 -- 16))
    (fun (n, cores) ->
      let m = Machine.create (Lazy.force liu) in
      let r = Machine.run ~cores_used:cores m (Kernels.axpy ~n) in
      r.Machine.elapsed > 0. && r.Machine.dynamic_energy > 0.
      && r.Machine.total_energy >= r.Machine.dynamic_energy)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "simhw"
    [
      ( "rng",
        [
          case "deterministic" test_rng_deterministic;
          case "seed sensitivity" test_rng_seed_sensitivity;
          case "ranges" test_rng_range;
          case "gaussian moments" test_rng_gaussian_moments;
          case "noise factor positive" test_noise_factor_positive;
          case "split streams" test_rng_split;
        ] );
      ( "truth",
        [
          case "deterministic synthesis" test_truth_deterministic;
          case "plausible pJ range" test_truth_range;
          case "frequency law" test_truth_frequency_law;
          case "model table authoritative" test_truth_model_table_wins;
        ] );
      ( "machine",
        [
          case "core collection" test_machine_core_collection;
          case "static power" test_machine_static_power;
          case "deterministic runs" test_run_deterministic;
          case "workload scaling" test_run_scaling;
          case "parallel speedup" test_run_parallel_speedup;
          case "energy accounting" test_energy_accounting_invariant;
          case "dvfs effect" test_dvfs_effect;
          case "transfer model" test_transfer_model;
          case "unknown link" test_transfer_unknown_link;
          case "unknown core" test_run_unknown_core;
          case "idle power meter" test_idle_power_sampling;
          case "scoped set_frequency" test_set_frequency_scoped;
          case "deterministic transfers" test_transfer_deterministic;
        ] );
      ( "kernels",
        [
          case "spmv shape" test_spmv_nonzeros;
          case "density validation" test_spmv_density_validation;
          case "transfer bytes" test_transfer_bytes_monotone;
          case "repeat" test_repeat_workload;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_run_positive ]);
    ]
