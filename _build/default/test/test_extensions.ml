(* Tests for the extension surface: control relations & platform patterns
   (Sec. II), the UML and XSD views, model-based energy prediction, the
   thermal extension, runtime path selectors, and the big.LITTLE model. *)

open Xpdl_core

let repo = lazy (Xpdl_repo.Repo.load_bundled ())

let model name =
  match Xpdl_repo.Repo.compose_by_name (Lazy.force repo) name with
  | Ok c ->
      if not (Diagnostic.all_ok c.Xpdl_repo.Repo.comp_diags) then
        Alcotest.failf "compose %s: %a" name Diagnostic.pp_list
          (Diagnostic.errors c.Xpdl_repo.Repo.comp_diags);
      c.Xpdl_repo.Repo.model
  | Error msg -> Alcotest.failf "compose %s: %s" name msg

let contains ~affix s =
  let al = String.length affix and sl = String.length s in
  let rec go i = i + al <= sl && (String.sub s i al = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Control relations and platform patterns *)

let test_control_explicit_master () =
  (* Listing 4 declares role="master" on the host *)
  let t = Control.derive (model "myriad_server") in
  Alcotest.(check string) "master" "myriad_host" t.Control.ct_root.Control.cu_ident;
  Alcotest.(check bool) "explicit" true t.Control.ct_root.Control.cu_explicit;
  Alcotest.(check int) "board is the worker" 1 (List.length (Control.workers t))

let test_control_inferred_master () =
  (* the GPU server has no role attributes on the host: a lone CPU is
     promoted, the device defaults to worker (role=worker inherited from
     Nvidia_GPU actually makes it explicit) *)
  let t = Control.derive (model "liu_gpu_server") in
  Alcotest.(check string) "promoted host" "gpu_host" t.Control.ct_root.Control.cu_ident;
  Alcotest.(check bool) "inferred" false t.Control.ct_root.Control.cu_explicit;
  match Control.workers t with
  | [ w ] ->
      Alcotest.(check string) "gpu is worker" "gpu1" w.Control.cu_ident;
      Alcotest.(check bool) "worker role explicit (inherited)" true w.Control.cu_explicit
  | l -> Alcotest.failf "expected 1 worker, got %d" (List.length l)

let test_control_dual_cpu_synthetic_root () =
  (* the paper's dual-CPU argument: no unique master exists *)
  let src =
    {|<system id="dual"><socket><cpu id="cpu0"><core/></cpu></socket>
        <socket><cpu id="cpu1"><core/></cpu></socket></system>|}
  in
  let m = Elaborate.of_string_exn src in
  let t = Control.derive m in
  Alcotest.(check string) "synthetic root" "runtime_system" t.Control.ct_root.Control.cu_ident;
  Alcotest.(check int) "both hybrids" 2 (List.length (Control.hybrids t))

let test_control_no_pus () =
  match Control.derive (Elaborate.of_string_exn {|<system id="empty"/>|}) with
  | exception Control.Control_error _ -> ()
  | _ -> Alcotest.fail "empty system has no control hierarchy"

let test_pattern_host_accelerator () =
  let t = Control.derive (model "liu_gpu_server") in
  Alcotest.(check bool) "matches host_accelerator" true
    (Control.matches Control.host_accelerator t);
  Alcotest.(check bool) "matches multi_gpu_node" false
    (Control.matches Control.multi_gpu_node t)

let test_pattern_multi_gpu () =
  (* one XScluster node seen standalone has 2 Nvidia workers *)
  let node = List.hd (Model.elements_of_kind Schema.Node (model "XScluster")) in
  let t = Control.derive node in
  Alcotest.(check bool) "matches multi_gpu_node" true
    (Control.matches Control.multi_gpu_node t);
  match Control.assign Control.multi_gpu_node t with
  | Some bindings ->
      let _, gpus = List.nth bindings 1 in
      Alcotest.(check int) "2 gpus bound" 2 (List.length gpus)
  | None -> Alcotest.fail "assignment"

let test_pattern_symmetric () =
  let t = Control.derive (model "odroid_xu3") in
  Alcotest.(check bool) "odroid is symmetric multicore" true
    (Control.matches Control.symmetric_multicore t);
  match Control.classify t with
  | Some p -> Alcotest.(check string) "classified" "symmetric_multicore" p.Control.pat_name
  | None -> Alcotest.fail "classify"

let test_pattern_host_coprocessor () =
  (* the Xeon Phi server: explicit master + a hybrid coprocessor *)
  let t = Control.derive (model "phi_server") in
  Alcotest.(check string) "master" "phi_host" t.Control.ct_root.Control.cu_ident;
  (match Control.hybrids t with
  | [ h ] ->
      Alcotest.(check string) "mic0 hybrid" "mic0" h.Control.cu_ident;
      Alcotest.(check bool) "explicit role" true h.Control.cu_explicit
  | l -> Alcotest.failf "expected 1 hybrid, got %d" (List.length l));
  match Control.classify t with
  | Some p -> Alcotest.(check string) "classified" "host_coprocessor" p.Control.pat_name
  | None -> Alcotest.fail "classify"

let test_phi_server_structure () =
  let m = model "phi_server" in
  let mic = Option.get (Model.find_by_id "mic0" m) in
  Alcotest.(check int) "60 mic cores" 60
    (List.length (Model.hardware_elements_of_kind Schema.Core mic));
  Alcotest.(check int) "64 cores total" 64
    (List.length (Model.hardware_elements_of_kind Schema.Core m))

(* ------------------------------------------------------------------ *)
(* UML and XSD views *)

let test_uml_metamodel () =
  let uml = Xpdl_toolchain.Uml.metamodel_diagram () in
  Alcotest.(check bool) "plantuml" true (contains ~affix:"@startuml" uml && contains ~affix:"@enduml" uml);
  Alcotest.(check bool) "cpu class" true (contains ~affix:"class XpdlCpu" uml);
  Alcotest.(check bool) "containment" true (contains ~affix:"XpdlCpu *--" uml);
  Alcotest.(check bool) "inheritance root" true (contains ~affix:"XpdlElement <|-- XpdlCache" uml);
  Alcotest.(check bool) "typed attr" true (contains ~affix:"size : size" uml)

let test_uml_model_diagram () =
  let uml = Xpdl_toolchain.Uml.model_diagram ~max_depth:2 (model "myriad_server") in
  Alcotest.(check bool) "object for host" true (contains ~affix:"myriad_host" uml);
  Alcotest.(check bool) "depth cut note" true (contains ~affix:"nested elements" uml);
  Alcotest.(check bool) "well formed" true (contains ~affix:"@enduml" uml)

let test_json_view () =
  (* the JSON rendering of every bundled system is well-formed and keeps
     the structure *)
  List.iter
    (fun name ->
      let json = Xpdl_toolchain.Json.to_string (model name) in
      (match Xpdl_toolchain.Json.check json with
      | () -> ()
      | exception Xpdl_toolchain.Json.Invalid_json msg ->
          Alcotest.failf "%s JSON invalid: %s" name msg);
      Alcotest.(check bool) "mentions the system id" true
        (contains ~affix:(Fmt.str "\"id\": \"%s\"" name) json))
    [ "myriad_server"; "liu_gpu_server"; "odroid_xu3"; "phi_server" ];
  (* compact mode is also valid *)
  Xpdl_toolchain.Json.check (Xpdl_toolchain.Json.to_string ~indent:false (model "myriad_server"));
  (* quantities are value/unit objects, ? is null *)
  let pcie =
    Xpdl_toolchain.Json.to_string
      (Option.get (Xpdl_repo.Repo.find (Lazy.force repo) "pcie3"))
  in
  Xpdl_toolchain.Json.check pcie;
  Alcotest.(check bool) "quantity object" true (contains ~affix:"\"unit\": \"B/s\"" pcie);
  Alcotest.(check bool) "? is null" true
    (contains ~affix:"\"time_offset_per_message\": null" pcie)

let test_xsd_generation () =
  let xsd = Xpdl_toolchain.Xsd.generate () in
  (* it must itself be well-formed XML *)
  (match Xpdl_xml.Parse.string xsd with
  | Ok root -> Alcotest.(check string) "schema root" "xs:schema" root.Xpdl_xml.Dom.tag
  | Error msg -> Alcotest.failf "generated xsd does not parse: %s" msg);
  Alcotest.(check bool) "cpu element" true (contains ~affix:{|<xs:element name="cpu">|} xsd);
  Alcotest.(check bool) "enum restriction" true (contains ~affix:{|<xs:enumeration value="LRU"/>|} xsd);
  Alcotest.(check bool) "unit companion" true (contains ~affix:{|name="frequency_unit"|} xsd);
  Alcotest.(check bool) "extensibility" true (contains ~affix:"xs:anyAttribute" xsd)

(* ------------------------------------------------------------------ *)
(* Energy prediction *)

let bootstrapped_liu =
  lazy
    (let m = model "liu_gpu_server" in
     let machine = Xpdl_simhw.Machine.create ~seed:23 m in
     let m', _ = Xpdl_microbench.Bootstrap.run ~machine m in
     (m', machine))

let axpy_phase n =
  Xpdl_energy.Predict.phase ~memory_accesses:(n / 8) ~parallel_fraction:0.9 ~cores_used:4
    [ ("fmul", n); ("fadd", n); ("ld", 2 * n); ("st", n) ]

let test_predict_matches_simulation () =
  let m, machine = Lazy.force bootstrapped_liu in
  let n = 200_000 in
  let p = Xpdl_energy.Predict.predict_on_model m ~hz:2e9 (axpy_phase n) in
  Alcotest.(check (list string)) "fully modeled" [] p.Xpdl_energy.Predict.pr_unmodeled;
  (* run the same thing on a noise-free machine *)
  let quiet = Xpdl_simhw.Machine.create ~noise_sigma:0. machine.Xpdl_simhw.Machine.model in
  let meas = Xpdl_simhw.Machine.run ~cores_used:4 quiet (Xpdl_simhw.Kernels.axpy ~n) in
  let terr =
    Xpdl_microbench.Stats.relative_error ~estimate:p.Xpdl_energy.Predict.pr_time
      ~truth:meas.Xpdl_simhw.Machine.elapsed
  in
  let eerr =
    Xpdl_microbench.Stats.relative_error
      ~estimate:p.Xpdl_energy.Predict.pr_dynamic_energy
      ~truth:meas.Xpdl_simhw.Machine.dynamic_energy
  in
  if terr > 0.05 then Alcotest.failf "time error %.1f%%" (terr *. 100.);
  if eerr > 0.05 then Alcotest.failf "energy error %.1f%%" (eerr *. 100.)

let test_predict_unbootstrapped_reports_gaps () =
  let m = model "liu_gpu_server" in
  let p = Xpdl_energy.Predict.predict_on_model m ~hz:2e9 (axpy_phase 1000) in
  Alcotest.(check bool) "unmodeled instructions listed" true
    (List.mem "fmul" p.Xpdl_energy.Predict.pr_unmodeled)

let test_predict_energy_decomposition () =
  let m, _ = Lazy.force bootstrapped_liu in
  let p = Xpdl_energy.Predict.predict_on_model m ~hz:2e9 (axpy_phase 50_000) in
  Alcotest.(check (Alcotest.float 1e-9)) "total = dyn + static"
    (p.Xpdl_energy.Predict.pr_dynamic_energy +. p.Xpdl_energy.Predict.pr_static_energy)
    p.Xpdl_energy.Predict.pr_total_energy

let test_predict_frequency_sweep () =
  let m, _ = Lazy.force bootstrapped_liu in
  let tb = Xpdl_energy.Predict.tables_of_model m in
  let sweep =
    Xpdl_energy.Predict.frequency_sweep tb ~frequencies:[ 1.2e9; 1.6e9; 2.0e9 ]
      (axpy_phase 100_000)
  in
  let times = List.map (fun (_, t, _) -> t) sweep in
  Alcotest.(check bool) "time decreases with f" true
    (List.sort (fun a b -> Float.compare b a) times = times)

(* ------------------------------------------------------------------ *)
(* Thermal *)

let test_thermal_steady_state () =
  let th = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  Alcotest.(check (Alcotest.float 1e-9)) "ambient start" 300.
    (Xpdl_energy.Thermal.temperature th "gpu_host");
  (* Xeon default R = 0.45 K/W at 60 W -> 327 K steady state *)
  Alcotest.(check (Alcotest.float 1e-6)) "steady state" 327.
    (Xpdl_energy.Thermal.steady_state th "gpu_host" ~power:60.)

let test_thermal_approach_curve () =
  let th = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  (* one long step is equivalent to many short ones (exact integration) *)
  let series = Xpdl_energy.Thermal.simulate th "gpu_host" ~trace:[ (10., 60.); (10., 60.) ] in
  let th2 = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  let series2 = Xpdl_energy.Thermal.simulate th2 "gpu_host" ~trace:[ (20., 60.) ] in
  let _, t_a = List.nth series 1 and _, t_b = List.hd series2 in
  Alcotest.(check (Alcotest.float 1e-9)) "piecewise consistency" t_b t_a;
  Alcotest.(check bool) "below steady state" true (t_a < 327.);
  Alcotest.(check bool) "heated up" true (t_a > 310.)

let test_thermal_cooldown () =
  let th = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  ignore (Xpdl_energy.Thermal.simulate th "gpu_host" ~trace:[ (100., 60.) ]);
  let hot = Xpdl_energy.Thermal.temperature th "gpu_host" in
  ignore (Xpdl_energy.Thermal.simulate th "gpu_host" ~trace:[ (1000., 0.) ]);
  let cold = Xpdl_energy.Thermal.temperature th "gpu_host" in
  Alcotest.(check bool) "cooled" true (cold < hot);
  Alcotest.(check (Alcotest.float 0.1)) "back to ambient" 300. cold

let test_thermal_time_to_limit () =
  let th = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  (match Xpdl_energy.Thermal.time_to_limit th "gpu_host" ~power:60. ~limit:320. with
  | Some t -> Alcotest.(check bool) "finite, positive" true (t > 0. && t < 1000.)
  | None -> Alcotest.fail "60 W must eventually exceed 320 K");
  match Xpdl_energy.Thermal.time_to_limit th "gpu_host" ~power:10. ~limit:320. with
  | None -> ()
  | Some _ -> Alcotest.fail "10 W steady state (304.5 K) never reaches 320 K"

let test_thermal_hottest () =
  let th = Xpdl_energy.Thermal.create ~ambient:300. (model "liu_gpu_server") in
  Xpdl_energy.Thermal.step th ~powers:[ ("gpu1", 120.) ] ~dt:50.;
  match Xpdl_energy.Thermal.hottest th with
  | Some b -> Alcotest.(check string) "gpu runs hottest" "gpu1" b.Xpdl_energy.Thermal.th_ident
  | None -> Alcotest.fail "blocks exist"

(* ------------------------------------------------------------------ *)
(* System-wide energy accounting *)

let gpu_phase nnz =
  Xpdl_energy.Predict.phase
    ~memory_accesses:(nnz / 2)
    ~parallel_fraction:0.999 ~cores_used:2496
    [ ("fma", nnz); ("ld_global", 2 * nnz); ("st_global", nnz / 10) ]

let test_account_schedule () =
  let m, _ = Lazy.force bootstrapped_liu in
  let steps =
    [
      Xpdl_energy.Account.Compute
        { label = "assemble"; component = "gpu_host"; hz = 2e9; phase = axpy_phase 100_000 };
      Xpdl_energy.Account.Transfer { label = "upload"; link = "connection1"; bytes = 2_000_000 };
      Xpdl_energy.Account.Compute
        { label = "solve"; component = "gpu1"; hz = 706e6; phase = gpu_phase 40_000 };
      Xpdl_energy.Account.Transfer { label = "download"; link = "connection1"; bytes = 32_000 };
      Xpdl_energy.Account.Switch
        { machine_name = "E5_2630L_psm"; from_state = "P3"; to_state = "P1" };
      Xpdl_energy.Account.Idle { label = "wait"; duration = 0.001 };
    ]
  in
  let r = Xpdl_energy.Account.run m steps in
  Alcotest.(check int) "6 step costs" 6 (List.length r.Xpdl_energy.Account.rp_steps);
  Alcotest.(check bool) "positive duration" true (r.Xpdl_energy.Account.rp_duration > 0.);
  (* totals decompose *)
  Alcotest.(check (Alcotest.float 1e-9)) "total = dyn + static"
    (r.Xpdl_energy.Account.rp_dynamic_energy +. r.Xpdl_energy.Account.rp_static_energy)
    r.Xpdl_energy.Account.rp_total_energy;
  (* per-component shares sum to the dynamic total *)
  let share_sum = List.fold_left (fun a (_, e) -> a +. e) 0. r.Xpdl_energy.Account.rp_by_component in
  Alcotest.(check (Alcotest.float 1e-12)) "shares sum" r.Xpdl_energy.Account.rp_dynamic_energy
    share_sum;
  (* the idle step costs time but no dynamic energy *)
  let idle = List.find (fun c -> c.Xpdl_energy.Account.sc_label = "wait") r.Xpdl_energy.Account.rp_steps in
  Alcotest.(check (Alcotest.float 0.)) "idle energy" 0. idle.Xpdl_energy.Account.sc_energy

let test_account_compositionality () =
  (* the predicted schedule total must match the simulated machine
     executing the same schedule (compute + transfer steps), within the
     bootstrap's measurement error *)
  let m, machine = Lazy.force bootstrapped_liu in
  let n = 150_000 in
  let steps =
    [
      Xpdl_energy.Account.Compute
        { label = "cpu"; component = "gpu_host"; hz = 2e9; phase = axpy_phase n };
      Xpdl_energy.Account.Transfer { label = "xfer"; link = "connection1"; bytes = 1_000_000 };
    ]
  in
  let predicted = Xpdl_energy.Account.run m steps in
  let quiet = Xpdl_simhw.Machine.create ~noise_sigma:0. machine.Xpdl_simhw.Machine.model in
  let meas = Xpdl_simhw.Machine.run ~cores_used:4 quiet (Xpdl_simhw.Kernels.axpy ~n) in
  let xfer_t, xfer_e = Xpdl_simhw.Machine.transfer quiet ~link:"connection1" ~bytes:1_000_000 in
  let sim_time = meas.Xpdl_simhw.Machine.elapsed +. xfer_t in
  let sim_dyn = meas.Xpdl_simhw.Machine.dynamic_energy +. xfer_e in
  let terr =
    Xpdl_microbench.Stats.relative_error ~estimate:predicted.Xpdl_energy.Account.rp_duration
      ~truth:sim_time
  in
  let eerr =
    Xpdl_microbench.Stats.relative_error
      ~estimate:predicted.Xpdl_energy.Account.rp_dynamic_energy ~truth:sim_dyn
  in
  if terr > 0.05 then Alcotest.failf "time error %.1f%%" (terr *. 100.);
  if eerr > 0.05 then Alcotest.failf "energy error %.1f%%" (eerr *. 100.)

let test_account_errors () =
  let m, _ = Lazy.force bootstrapped_liu in
  (match
     Xpdl_energy.Account.run m
       [ Xpdl_energy.Account.Compute
           { label = "x"; component = "ghost"; hz = 1e9; phase = axpy_phase 10 } ]
   with
  | exception Xpdl_energy.Account.Account_error _ -> ()
  | _ -> Alcotest.fail "unknown component");
  (match
     Xpdl_energy.Account.run m
       [ Xpdl_energy.Account.Transfer { label = "x"; link = "ghost"; bytes = 1 } ]
   with
  | exception Xpdl_energy.Account.Account_error _ -> ()
  | _ -> Alcotest.fail "unknown link");
  match
    Xpdl_energy.Account.run m
      [ Xpdl_energy.Account.Switch
          { machine_name = "ghost_psm"; from_state = "a"; to_state = "b" } ]
  with
  | exception Xpdl_energy.Account.Account_error _ -> ()
  | _ -> Alcotest.fail "unknown machine"

(* ------------------------------------------------------------------ *)
(* Query path selectors *)

let test_query_select () =
  let q = Xpdl_query.Query.of_model (model "liu_gpu_server") in
  (* 20 physical caches (7 Xeon + 13 Kepler L1) plus the uncore power
     domain's <cache type="L3"/> selector: select walks the raw tree *)
  Alcotest.(check int) "all caches" 21
    (List.length (Xpdl_query.Query.select q "//cache"));
  Alcotest.(check int) "L3 by level" 1
    (List.length (Xpdl_query.Query.select q "//cache[@level=3]"));
  (match Xpdl_query.Query.select_one q "//device[@id=gpu1]" with
  | Some e -> Alcotest.(check (option string)) "gpu1" (Some "gpu1") (Xpdl_query.Query.ident e)
  | None -> Alcotest.fail "select device");
  Alcotest.(check int) "typed memories" 13
    (List.length (Xpdl_query.Query.select q "//memory[@name=shm]"));
  Alcotest.(check int) "rooted path" 1
    (List.length (Xpdl_query.Query.select q "system/device"));
  Alcotest.(check int) "no match" 0 (List.length (Xpdl_query.Query.select q "//cluster"))

(* ------------------------------------------------------------------ *)
(* The big.LITTLE platform *)

let test_odroid_structure () =
  let m = model "odroid_xu3" in
  Alcotest.(check int) "8 cores" 8 (List.length (Model.hardware_elements_of_kind Schema.Core m));
  let soc = Option.get (Model.find_by_id "soc" m) in
  let big = Option.get (Model.find_by_id "big_cluster" soc) in
  let little = Option.get (Model.find_by_id "little_cluster" soc) in
  Alcotest.(check int) "4 big" 4 (List.length (Model.hardware_elements_of_kind Schema.Core big));
  Alcotest.(check int) "4 little" 4
    (List.length (Model.hardware_elements_of_kind Schema.Core little));
  (* heterogeneous clocks *)
  let freq_of cluster =
    match Model.hardware_elements_of_kind Schema.Core cluster with
    | c :: _ -> Xpdl_units.Units.value (Option.get (Model.attr_quantity c "frequency"))
    | [] -> 0.
  in
  Alcotest.(check (Alcotest.float 1.)) "big at 2 GHz" 2e9 (freq_of big);
  Alcotest.(check (Alcotest.float 1.)) "little at 1.4 GHz" 1.4e9 (freq_of little)

let test_odroid_biglittle_domains () =
  let m = model "odroid_xu3" in
  let d = Option.get (Xpdl_energy.Domains.of_model m) in
  (* the big cluster may be shut down (LITTLE-only mode); LITTLE may not *)
  Xpdl_energy.Domains.switch_off d "big_pd";
  Alcotest.(check bool) "big off" true (Xpdl_energy.Domains.is_off d "big_pd");
  match Xpdl_energy.Domains.switch_off d "little_pd" with
  | exception Xpdl_energy.Domains.Switch_error _ -> ()
  | _ -> Alcotest.fail "little_pd hosts the OS and must refuse"

let test_odroid_bootstrap_and_race_vs_pace () =
  let m = model "odroid_xu3" in
  let machine = Xpdl_simhw.Machine.create ~seed:3 m in
  let m', results = Xpdl_microbench.Bootstrap.run ~machine m in
  Alcotest.(check int) "5 armv7 instructions measured" 5 (List.length results);
  Alcotest.(check (list string)) "none left" []
    (Xpdl_microbench.Bootstrap.remaining_placeholders m');
  (* big cluster PSM: both policies exploit the 0.05 W 'off' state to
     park their slack, so with the convex power curve pacing still wins;
     what the deep sleep state changes is that both plans end parked off *)
  let pm = Power.of_element m' in
  let sm = List.find (fun s -> s.Power.sm_name = "big_psm") pm.Power.pm_machines in
  let race =
    Option.get (Xpdl_energy.Dvfs.race_to_idle sm ~start:"P0" ~cycles:1e9 ~deadline:4.)
  in
  let pace = Option.get (Xpdl_energy.Dvfs.pace sm ~start:"P0" ~cycles:1e9 ~deadline:4.) in
  let parks_off (p : Xpdl_energy.Dvfs.plan) =
    match List.rev p.Xpdl_energy.Dvfs.steps with
    | last :: _ -> last.Xpdl_energy.Dvfs.step_state = "off"
    | [] -> false
  in
  Alcotest.(check bool) "race parks in off" true (parks_off race);
  Alcotest.(check bool) "pace parks in off" true (parks_off pace);
  Alcotest.(check bool) "convex curve: pace beats race" true
    (pace.Xpdl_energy.Dvfs.total_energy < race.Xpdl_energy.Dvfs.total_energy);
  let opt = Option.get (Xpdl_energy.Dvfs.optimal sm ~start:"P0" ~cycles:1e9 ~deadline:4.) in
  Alcotest.(check bool) "optimal <= pace" true
    (opt.Xpdl_energy.Dvfs.total_energy <= pace.Xpdl_energy.Dvfs.total_energy +. 1e-9)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "extensions"
    [
      ( "control",
        [
          case "explicit master (Listing 4)" test_control_explicit_master;
          case "inferred master" test_control_inferred_master;
          case "dual-CPU synthetic root" test_control_dual_cpu_synthetic_root;
          case "no processing units" test_control_no_pus;
          case "host_accelerator pattern" test_pattern_host_accelerator;
          case "multi_gpu_node pattern" test_pattern_multi_gpu;
          case "symmetric pattern + classify" test_pattern_symmetric;
          case "host_coprocessor pattern" test_pattern_host_coprocessor;
          case "phi server structure" test_phi_server_structure;
        ] );
      ( "views",
        [
          case "UML meta-model" test_uml_metamodel;
          case "UML object diagram" test_uml_model_diagram;
          case "xpdl.xsd generation" test_xsd_generation;
          case "JSON view (HPP-DL style)" test_json_view;
        ] );
      ( "predict",
        [
          case "matches simulation" test_predict_matches_simulation;
          case "unbootstrapped gaps" test_predict_unbootstrapped_reports_gaps;
          case "energy decomposition" test_predict_energy_decomposition;
          case "frequency sweep" test_predict_frequency_sweep;
        ] );
      ( "thermal",
        [
          case "steady state" test_thermal_steady_state;
          case "approach curve" test_thermal_approach_curve;
          case "cooldown" test_thermal_cooldown;
          case "time to limit" test_thermal_time_to_limit;
          case "hottest block" test_thermal_hottest;
        ] );
      ( "account",
        [
          case "schedule pricing" test_account_schedule;
          case "compositionality vs simulation" test_account_compositionality;
          case "error reporting" test_account_errors;
        ] );
      ("select", [ case "path expressions" test_query_select ]);
      ( "biglittle",
        [
          case "odroid structure" test_odroid_structure;
          case "big.LITTLE domains" test_odroid_biglittle_domains;
          case "bootstrap + race vs pace" test_odroid_bootstrap_and_race_vs_pace;
        ] );
    ]
