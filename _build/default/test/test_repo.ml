(* Tests for the model repository: indexing, search path, hyperlinks,
   shadowing, composition. *)

open Xpdl_core

let has_error diags = List.exists Diagnostic.is_error diags

let mem_repo descs =
  let r = Xpdl_repo.Repo.create () in
  List.iter (fun (file, s) -> Xpdl_repo.Repo.add_string r ~file s) descs;
  r

let test_indexing () =
  let r =
    mem_repo
      [ ("a.xpdl", {|<cpu name="A"/>|}); ("b.xpdl", {|<system id="B"><cpu id="c"/></system>|}) ]
  in
  Alcotest.(check int) "2 entries" 2 (Xpdl_repo.Repo.size r);
  Alcotest.(check (list string)) "identifiers" [ "A"; "B" ] (Xpdl_repo.Repo.identifiers r);
  Alcotest.(check bool) "find A" true (Xpdl_repo.Repo.find r "A" <> None);
  Alcotest.(check bool) "find nothing" true (Xpdl_repo.Repo.find r "Z" = None)

let test_wrapper_element () =
  let r = mem_repo [ ("multi.xpdl", {|<xpdl><cpu name="A"/><memory name="M" type="DDR"/></xpdl>|}) ] in
  Alcotest.(check int) "both indexed" 2 (Xpdl_repo.Repo.size r)

let test_anonymous_descriptor_rejected () =
  let r = mem_repo [ ("anon.xpdl", {|<cpu frequency="1" frequency_unit="GHz"/>|}) ] in
  Alcotest.(check int) "not indexed" 0 (Xpdl_repo.Repo.size r);
  Alcotest.(check bool) "diagnosed" true (has_error (Xpdl_repo.Repo.diagnostics r))

let test_shadowing_warns () =
  let r = mem_repo [ ("a.xpdl", {|<cpu name="X"/>|}); ("b.xpdl", {|<cpu name="X" vendor="V"/>|}) ] in
  Alcotest.(check int) "one entry" 1 (Xpdl_repo.Repo.size r);
  Alcotest.(check bool) "warned" true (List.length (Xpdl_repo.Repo.diagnostics r) > 0);
  (* later definition wins *)
  let x = Option.get (Xpdl_repo.Repo.find r "X") in
  Alcotest.(check (option string)) "later wins" (Some "V") (Model.attr_string x "vendor")

let test_malformed_file_diagnosed () =
  let r = mem_repo [ ("bad.xpdl", "<cpu name=\"X\"") ] in
  Alcotest.(check bool) "parse error recorded" true (has_error (Xpdl_repo.Repo.diagnostics r))

let test_hyperlinks () =
  let dir = Filename.temp_file "xpdlrepo" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "vendor_cpu.xpdl") in
  output_string oc {|<cpu name="VendorCPU" frequency="3" frequency_unit="GHz"/>|};
  close_out oc;
  let r = Xpdl_repo.Repo.create () in
  Xpdl_repo.Repo.add_remote r ~authority:"vendor.example.com" ~root:dir;
  Xpdl_repo.Repo.add_string r
    {|<system id="sys"><socket><cpu id="c0" type="xpdl://vendor.example.com/VendorCPU"/></socket></system>|};
  (match Xpdl_repo.Repo.compose_by_name r "sys" with
  | Ok c ->
      Alcotest.(check bool) "no errors" false (has_error c.Xpdl_repo.Repo.comp_diags);
      let cpu = Option.get (Model.find_by_id "c0" c.Xpdl_repo.Repo.model) in
      Alcotest.(check (option (Alcotest.float 1.)) )
        "merged remote content" (Some 3e9)
        (Option.map Xpdl_units.Units.value (Model.attr_quantity cpu "frequency"))
  | Error msg -> Alcotest.fail msg);
  Sys.remove (Filename.concat dir "vendor_cpu.xpdl");
  Sys.rmdir dir

let test_unknown_authority () =
  let r = Xpdl_repo.Repo.create () in
  Xpdl_repo.Repo.add_string r
    {|<system id="sys"><cpu id="c0" type="xpdl://nowhere.example/X"/></system>|};
  match Xpdl_repo.Repo.compose_by_name r "sys" with
  | Ok c -> Alcotest.(check bool) "diagnosed" true (has_error c.Xpdl_repo.Repo.comp_diags
                                                    || has_error (Xpdl_repo.Repo.diagnostics r))
  | Error _ -> ()

let test_compose_by_name_missing () =
  let r = mem_repo [] in
  match Xpdl_repo.Repo.compose_by_name r "ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "composing an unknown model must fail"

let test_descriptors_used () =
  let r =
    mem_repo
      [
        ("base.xpdl", {|<cpu name="Base"/>|});
        ("sub.xpdl", {|<cpu name="Sub" extends="Base"/>|});
        ("sys.xpdl", {|<system id="S"><cpu id="c" type="Sub"/></system>|});
      ]
  in
  match Xpdl_repo.Repo.compose_by_name r "S" with
  | Ok c ->
      Alcotest.(check (list string)) "transitive closure" [ "Sub"; "Base" ]
        c.Xpdl_repo.Repo.descriptors_used
  | Error msg -> Alcotest.fail msg

let test_config_overrides () =
  let r =
    mem_repo
      [
        ( "g.xpdl",
          {|<device name="G"><param name="n"/><group prefix="c" quantity="n"><core/></group></device>|}
        );
        ("sys.xpdl", {|<system id="S"><device id="d" type="G"/></system>|});
      ]
  in
  match Xpdl_repo.Repo.compose_by_name ~config:[ ("n", Xpdl_expr.Expr.Num 7.) ] r "S" with
  | Ok c ->
      Alcotest.(check bool) "no errors" false (has_error c.Xpdl_repo.Repo.comp_diags);
      Alcotest.(check int) "7 cores" 7
        (List.length (Model.elements_of_kind Schema.Core c.Xpdl_repo.Repo.model))
  | Error msg -> Alcotest.fail msg

let test_total_elements () =
  let r = mem_repo [ ("a.xpdl", {|<cpu name="A"><core/><core/></cpu>|}) ] in
  Alcotest.(check int) "3 elements" 3 (Xpdl_repo.Repo.total_elements r)

let test_locate_bundled () =
  (* the dune test sandbox exposes ../models *)
  match Xpdl_repo.Repo.locate_models () with
  | Some _ -> Alcotest.(check bool) "loads" true (Xpdl_repo.Repo.size (Xpdl_repo.Repo.load_bundled ()) > 0)
  | None -> Alcotest.fail "bundled models not locatable"

(* end-to-end property: a randomly generated repository (a CPU family
   with inherited content, a device with parameterized SM groups, and a
   system instantiating both) composes without errors, and the core count
   predicted arithmetically matches the expanded model, the aggregation
   rule, and the runtime query API *)
let prop_random_repo_end_to_end =
  let gen =
    QCheck2.Gen.(
      let* cpu_cores = 1 -- 8 in
      let* sm_count = 1 -- 6 in
      let* cores_per_sm = 1 -- 32 in
      let* use_param = bool in
      return (cpu_cores, sm_count, cores_per_sm, use_param))
  in
  QCheck2.Test.make ~name:"random repository composes consistently" ~count:40 gen
    (fun (cpu_cores, sm_count, cores_per_sm, use_param) ->
      let r = mem_repo [] in
      Xpdl_repo.Repo.add_string r
        (Fmt.str
           {|<cpu name="BaseCpu" vendor="Gen" static_power="5" static_power_unit="W">
               <group prefix="c" quantity="%d">
                 <core frequency="2" frequency_unit="GHz"/>
                 <cache name="L1" size="32" unit="KiB"/>
               </group>
             </cpu>|}
           cpu_cores);
      Xpdl_repo.Repo.add_string r {|<cpu name="SubCpu" extends="BaseCpu" vendor="Sub"/>|};
      Xpdl_repo.Repo.add_string r
        (if use_param then
           Fmt.str
             {|<device name="Dev" role="worker">
                 <param name="nsm" value="%d"/>
                 <group prefix="sm" quantity="nsm">
                   <group prefix="u" quantity="%d"><core frequency="1" frequency_unit="GHz"/></group>
                 </group>
               </device>|}
             sm_count cores_per_sm
         else
           Fmt.str
             {|<device name="Dev" role="worker">
                 <group prefix="sm" quantity="%d">
                   <group prefix="u" quantity="%d"><core frequency="1" frequency_unit="GHz"/></group>
                 </group>
               </device>|}
             sm_count cores_per_sm);
      Xpdl_repo.Repo.add_string r
        {|<system id="sys">
            <socket><cpu id="cpu0" type="SubCpu"/></socket>
            <device id="dev0" type="Dev"/>
          </system>|};
      match Xpdl_repo.Repo.compose_by_name r "sys" with
      | Error msg -> QCheck2.Test.fail_reportf "compose failed: %s" msg
      | Ok c ->
          let expected = cpu_cores + (sm_count * cores_per_sm) in
          let model_count =
            List.length
              (Xpdl_core.Model.hardware_elements_of_kind Xpdl_core.Schema.Core
                 c.Xpdl_repo.Repo.model)
          in
          let agg_count = Xpdl_energy.Aggregate.core_count c.Xpdl_repo.Repo.model in
          let query_count =
            Xpdl_query.Query.count_cores (Xpdl_query.Query.of_model c.Xpdl_repo.Repo.model)
          in
          has_error c.Xpdl_repo.Repo.comp_diags = false
          && model_count = expected && agg_count = expected && query_count = expected)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "repo"
    [
      ( "index",
        [
          case "by name and id" test_indexing;
          case "xpdl wrapper file" test_wrapper_element;
          case "anonymous descriptor" test_anonymous_descriptor_rejected;
          case "shadowing warns, later wins" test_shadowing_warns;
          case "malformed file" test_malformed_file_diagnosed;
          case "total elements" test_total_elements;
          case "bundled models" test_locate_bundled;
        ] );
      ( "hyperlinks",
        [ case "remote authority" test_hyperlinks; case "unknown authority" test_unknown_authority ]
      );
      ( "compose",
        [
          case "missing model" test_compose_by_name_missing;
          case "descriptors used" test_descriptors_used;
          case "deployment config" test_config_overrides;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_repo_end_to_end ]);
    ]
