lib/query/query.mli: Model Schema Xpdl_core Xpdl_toolchain Xpdl_units
