lib/query/query.ml: Array Float Fmt List Option Schema String Xpdl_core Xpdl_toolchain Xpdl_units Xpdl_xml
