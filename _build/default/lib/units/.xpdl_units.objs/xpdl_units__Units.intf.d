lib/units/units.mli: Format
