lib/units/units.ml: Float Fmt Option String
