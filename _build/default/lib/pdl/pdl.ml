(** PEPPHER PDL — the predecessor platform description language
    (Sandrieser et al. [1]), implemented as the baseline for the paper's
    Sec. II comparison (experiment E9).

    PDL models a single-node heterogeneous system as a {e control
    hierarchy} of processing units — one [Master] (root), inner [Hybrid]
    PUs, leaf [Worker] PUs — plus memory regions and interconnects.
    Everything else (installed software, clock frequencies, cache sizes,
    ...) is expressed as free-form string key-value {e properties}, looked
    up through a basic query language.  The design points the paper
    criticizes are visible in the types: control role as the overarching
    structure, strings everywhere (no units, no static checking), and one
    monolithic document (no cross-file reuse). *)

type role = Master | Hybrid | Worker

let role_name = function Master -> "Master" | Hybrid -> "Hybrid" | Worker -> "Worker"

let pp_role ppf r = Fmt.string ppf (role_name r)

(** A property: both key and value are strings (footnote 1 of the paper). *)
type property = { p_name : string; p_value : string; p_mandatory : bool }

(** A processing unit in the control hierarchy. *)
type pu = {
  pu_id : string;
  pu_role : role;
  pu_type : string option;  (** free-form hardware hint, e.g. "CPU", "GPU" *)
  pu_properties : property list;
  pu_children : pu list;  (** PUs this one can launch computations on *)
}

type memory_region = {
  mr_id : string;
  mr_scope : string option;  (** e.g. "global", "device" *)
  mr_properties : property list;
}

type interconnect = {
  ic_id : string;
  ic_endpoints : string list;  (** PU / memory region ids *)
  ic_properties : property list;
}

type t = {
  platform_id : string;
  control : pu;  (** the control tree rooted at the Master *)
  memory_regions : memory_region list;
  interconnects : interconnect list;
  platform_properties : property list;
}

exception Pdl_error of string

let error fmt = Fmt.kstr (fun m -> raise (Pdl_error m)) fmt

(** {1 Parsing}

    PDL document shape (after [1]):
    {v
    <Platform id="...">
      <Master id="cpu0" type="CPU">
        <Property name="x86_MAX_CLOCK_FREQUENCY" value="2000000000"/>
        <Worker id="gpu0" type="GPU"> <Property .../> </Worker>
        <Hybrid id="..."> ... </Hybrid>
      </Master>
      <MemoryRegion id="main" scope="global"> <Property .../> </MemoryRegion>
      <Interconnect id="pcie" endpoints="cpu0 gpu0"> ... </Interconnect>
      <Property name="..." value="..."/>
    </Platform>
    v} *)

open Xpdl_xml

let parse_property (e : Dom.element) : property =
  {
    p_name = Option.value ~default:"" (Dom.attribute e "name");
    p_value = Option.value ~default:"" (Dom.attribute e "value");
    p_mandatory =
      (match Dom.attribute e "mandatory" with Some "true" -> true | _ -> false);
  }

let properties_of (e : Dom.element) =
  List.map parse_property (Dom.children_named e "Property")

let rec parse_pu (e : Dom.element) : pu =
  let role =
    match e.Dom.tag with
    | "Master" -> Master
    | "Hybrid" -> Hybrid
    | "Worker" -> Worker
    | tag -> error "unknown PU element <%s>" tag
  in
  let children =
    List.filter_map
      (fun (c : Dom.element) ->
        match c.Dom.tag with
        | "Master" -> error "Master PU cannot be nested"
        | "Hybrid" | "Worker" -> Some (parse_pu c)
        | _ -> None)
      (Dom.child_elements e)
  in
  (match (role, children) with
  | Worker, _ :: _ -> error "Worker PU %S cannot control other PUs"
                        (Option.value ~default:"?" (Dom.attribute e "id"))
  | _ -> ());
  {
    pu_id = Option.value ~default:"?" (Dom.attribute e "id");
    pu_role = role;
    pu_type = Dom.attribute e "type";
    pu_properties = properties_of e;
    pu_children = children;
  }

let parse_memory_region (e : Dom.element) : memory_region =
  {
    mr_id = Option.value ~default:"?" (Dom.attribute e "id");
    mr_scope = Dom.attribute e "scope";
    mr_properties = properties_of e;
  }

let parse_interconnect (e : Dom.element) : interconnect =
  {
    ic_id = Option.value ~default:"?" (Dom.attribute e "id");
    ic_endpoints =
      (match Dom.attribute e "endpoints" with
      | Some s -> String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
      | None -> []);
    ic_properties = properties_of e;
  }

(** Parse a PDL platform document. *)
let of_xml (root : Dom.element) : t =
  if not (String.equal root.Dom.tag "Platform") then
    error "PDL document must be rooted at <Platform>, found <%s>" root.Dom.tag;
  let masters = Dom.children_named root "Master" in
  let control =
    match masters with
    | [ m ] -> parse_pu m
    | [] -> error "PDL platform has no Master PU (exactly one required)"
    | _ -> error "PDL platform has %d Master PUs (exactly one required)" (List.length masters)
  in
  {
    platform_id = Option.value ~default:"?" (Dom.attribute root "id");
    control;
    memory_regions = List.map parse_memory_region (Dom.children_named root "MemoryRegion");
    interconnects = List.map parse_interconnect (Dom.children_named root "Interconnect");
    platform_properties = properties_of root;
  }

let of_string s =
  match Parse.string ~lenient:true s with
  | Ok x -> of_xml x
  | Error msg -> error "%s" msg

let of_file path =
  match Parse.file ~lenient:true path with
  | Ok x -> of_xml x
  | Error msg -> error "%s" msg

(** {1 Navigation and the property query language} *)

let rec fold_pus f acc pu = List.fold_left (fold_pus f) (f acc pu) pu.pu_children

let all_pus t = List.rev (fold_pus (fun acc p -> p :: acc) [] t.control)

let find_pu t ident = List.find_opt (fun p -> String.equal p.pu_id ident) (all_pus t)

let pus_with_role t role = List.filter (fun p -> p.pu_role = role) (all_pus t)

let property_value props name =
  List.find_map (fun p -> if String.equal p.p_name name then Some p.p_value else None) props

(** Property lookup on a PU by id; [None] if PU or property is absent —
    note that a misspelled property name is indistinguishable from an
    absent one (the weakness the paper's Sec. II-C discusses). *)
let pu_property t ~pu ~name =
  Option.bind (find_pu t pu) (fun p -> property_value p.pu_properties name)

let platform_property t name = property_value t.platform_properties name

(** The "basic query language" for property existence/values:
    {v
      query ::= "exists(" entity "." key ")"
              | "value("  entity "." key ")"
              | "count("  role ")"
      entity ::= "platform" | PU id | memory region id
    v} *)
type query_result = QBool of bool | QString of string | QInt of int

let query t q : query_result =
  let q = String.trim q in
  let parse_call fname =
    let plen = String.length fname + 1 in
    if
      String.length q > plen + 1
      && String.equal (String.sub q 0 (plen - 1)) fname
      && Char.equal q.[plen - 1] '('
      && Char.equal q.[String.length q - 1] ')'
    then Some (String.sub q plen (String.length q - plen - 1))
    else None
  in
  let entity_props entity =
    if String.equal entity "platform" then Some t.platform_properties
    else
      match find_pu t entity with
      | Some p -> Some p.pu_properties
      | None -> (
          match List.find_opt (fun m -> String.equal m.mr_id entity) t.memory_regions with
          | Some m -> Some m.mr_properties
          | None -> None)
  in
  let split_entity_key arg =
    match String.index_opt arg '.' with
    | Some i -> (String.sub arg 0 i, String.sub arg (i + 1) (String.length arg - i - 1))
    | None -> error "malformed query argument %S (expected entity.key)" arg
  in
  match parse_call "exists" with
  | Some arg ->
      let entity, key = split_entity_key arg in
      QBool
        (match entity_props entity with
        | Some props -> property_value props key <> None
        | None -> false)
  | None -> (
      match parse_call "value" with
      | Some arg -> (
          let entity, key = split_entity_key arg in
          match Option.bind (entity_props entity) (fun props -> property_value props key) with
          | Some v -> QString v
          | None -> error "no value for %s" arg)
      | None -> (
          match parse_call "count" with
          | Some "master" -> QInt (List.length (pus_with_role t Master))
          | Some "hybrid" -> QInt (List.length (pus_with_role t Hybrid))
          | Some "worker" -> QInt (List.length (pus_with_role t Worker))
          | Some other -> error "count(%s): unknown role" other
          | None -> error "malformed query %S" q))

(** {1 Printing} *)

let property_to_xml (p : property) : Dom.element =
  Dom.element "Property"
    ~attrs:
      ([ Dom.attr "name" p.p_name; Dom.attr "value" p.p_value ]
      @ if p.p_mandatory then [ Dom.attr "mandatory" "true" ] else [])

let rec pu_to_xml (p : pu) : Dom.element =
  Dom.element (role_name p.pu_role)
    ~attrs:
      (Dom.attr "id" p.pu_id
      :: (match p.pu_type with Some ty -> [ Dom.attr "type" ty ] | None -> []))
    ~children:
      (List.map (fun pr -> Dom.Element (property_to_xml pr)) p.pu_properties
      @ List.map (fun c -> Dom.Element (pu_to_xml c)) p.pu_children)

let to_xml (t : t) : Dom.element =
  Dom.element "Platform"
    ~attrs:[ Dom.attr "id" t.platform_id ]
    ~children:
      ((Dom.Element (pu_to_xml t.control)
       :: List.map
            (fun m ->
              Dom.Element
                (Dom.element "MemoryRegion"
                   ~attrs:
                     (Dom.attr "id" m.mr_id
                     :: (match m.mr_scope with Some s -> [ Dom.attr "scope" s ] | None -> []))
                   ~children:(List.map (fun p -> Dom.Element (property_to_xml p)) m.mr_properties)))
            t.memory_regions)
      @ List.map
          (fun ic ->
            Dom.Element
              (Dom.element "Interconnect"
                 ~attrs:
                   [ Dom.attr "id" ic.ic_id; Dom.attr "endpoints" (String.concat " " ic.ic_endpoints) ]
                 ~children:(List.map (fun p -> Dom.Element (property_to_xml p)) ic.ic_properties)))
          t.interconnects
      @ List.map (fun p -> Dom.Element (property_to_xml p)) t.platform_properties)

let to_string t = Print.to_string (to_xml t)

(** {1 Conversion from XPDL}

    Downgrade a composed XPDL model to a monolithic PDL document: CPUs
    become the Master (first) and further PUs, devices become Workers, all
    typed attributes collapse into string properties.  Used by E9 to
    compare specification size, reuse and the loss of static checking. *)

let property_of_attr prefix (k, v) =
  {
    p_name = String.uppercase_ascii (prefix ^ "_" ^ k);
    p_value = Fmt.str "%a" Xpdl_core.Model.pp_attr_value v;
    p_mandatory = false;
  }

let of_xpdl (model : Xpdl_core.Model.element) : t =
  let open Xpdl_core in
  let cpus = Model.elements_of_kind Schema.Cpu model in
  let devices = Model.elements_of_kind Schema.Device model in
  let pu_of_element role (e : Model.element) i =
    let ident =
      match Model.identifier e with
      | Some x -> x
      | None -> Fmt.str "%s%d" (Schema.tag_of_kind e.Model.kind) i
    in
    {
      pu_id = ident;
      pu_role = role;
      pu_type = Some (Schema.tag_of_kind e.Model.kind |> String.uppercase_ascii);
      pu_properties =
        List.map (property_of_attr ident) e.Model.attrs
        @ [
            {
              p_name = String.uppercase_ascii (ident ^ "_NUM_CORES");
              p_value = string_of_int (List.length (Model.elements_of_kind Schema.Core e));
              p_mandatory = false;
            };
          ];
      pu_children = [];
    }
  in
  let workers =
    List.mapi (fun i d -> pu_of_element Worker d i) devices
    @ List.mapi (fun i c -> pu_of_element Hybrid c (i + 1000)) (match cpus with [] -> [] | _ :: rest -> rest)
  in
  let master =
    match cpus with
    | m :: _ -> { (pu_of_element Master m 0) with pu_children = workers }
    | [] -> { pu_id = "master"; pu_role = Master; pu_type = None; pu_properties = []; pu_children = workers }
  in
  let memory_regions =
    List.mapi
      (fun i (m : Model.element) ->
        {
          mr_id = Option.value ~default:(Fmt.str "mem%d" i) (Model.identifier m);
          mr_scope = Some "global";
          mr_properties = List.map (property_of_attr "MEM") m.Model.attrs;
        })
      (Model.elements_of_kind Schema.Memory model)
  in
  let interconnects =
    List.filter_map
      (fun (ic : Model.element) ->
        Option.map
          (fun ident ->
            {
              ic_id = ident;
              ic_endpoints =
                Option.to_list (Model.attr_string ic "head")
                @ Option.to_list (Model.attr_string ic "tail");
              ic_properties = List.map (property_of_attr ident) ic.Model.attrs;
            })
          (Model.identifier ic))
      (Model.elements_of_kind Schema.Interconnect model)
  in
  let software_props =
    List.map
      (fun (sw : Model.element) ->
        {
          p_name =
            String.uppercase_ascii
              ("INSTALLED_"
              ^ Option.value ~default:"UNKNOWN"
                  (match sw.Model.type_ref with Some t -> Some t | None -> Model.identifier sw));
          p_value = Option.value ~default:"" (Model.attr_string sw "path");
          p_mandatory = false;
        })
      (Model.elements_of_kind Schema.Installed model)
  in
  {
    platform_id = Option.value ~default:"pdl_platform" (Model.identifier model);
    control = master;
    memory_regions;
    interconnects;
    platform_properties = software_props;
  }
