(** PEPPHER PDL — the predecessor platform description language
    (Sandrieser et al. [1]), the baseline for the paper's Sec. II
    comparison: a control hierarchy of processing units (one Master,
    inner Hybrids, leaf Workers), memory regions, interconnects, and
    free-form string key-value properties with a basic query language. *)

type role = Master | Hybrid | Worker

val role_name : role -> string
val pp_role : Format.formatter -> role -> unit

(** Both key and value are strings (footnote 1 of the paper). *)
type property = { p_name : string; p_value : string; p_mandatory : bool }

type pu = {
  pu_id : string;
  pu_role : role;
  pu_type : string option;  (** free-form hardware hint *)
  pu_properties : property list;
  pu_children : pu list;  (** PUs this one can launch computations on *)
}

type memory_region = {
  mr_id : string;
  mr_scope : string option;
  mr_properties : property list;
}

type interconnect = {
  ic_id : string;
  ic_endpoints : string list;
  ic_properties : property list;
}

type t = {
  platform_id : string;
  control : pu;  (** the control tree rooted at the Master *)
  memory_regions : memory_region list;
  interconnects : interconnect list;
  platform_properties : property list;
}

exception Pdl_error of string

(** Parse a [<Platform>] document; raises {!Pdl_error} on control-rule
    violations (no/multiple Masters, nested Masters, Workers with
    children). *)
val of_xml : Xpdl_xml.Dom.element -> t

val of_string : string -> t
val of_file : string -> t

val fold_pus : ('a -> pu -> 'a) -> 'a -> pu -> 'a
val all_pus : t -> pu list
val find_pu : t -> string -> pu option
val pus_with_role : t -> role -> pu list

(** Property lookup on a PU; a misspelled name is indistinguishable from
    an absent one — the Sec. II-C weakness. *)
val pu_property : t -> pu:string -> name:string -> string option

val platform_property : t -> string -> string option

(** The basic query language:
    [exists(entity.key)], [value(entity.key)], [count(role)] where
    entity is ["platform"], a PU id, or a memory-region id. *)
type query_result = QBool of bool | QString of string | QInt of int

val query : t -> string -> query_result

val to_xml : t -> Xpdl_xml.Dom.element
val to_string : t -> string

(** Downgrade a composed XPDL model to a monolithic PDL document: CPUs
    and devices become PUs, typed attributes collapse into string
    properties, everything else is lost (experiment E9). *)
val of_xpdl : Xpdl_core.Model.element -> t
