lib/pdl/pdl.ml: Char Dom Fmt List Model Option Parse Print Schema String Xpdl_core Xpdl_xml
