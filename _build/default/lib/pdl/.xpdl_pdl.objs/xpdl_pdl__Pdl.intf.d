lib/pdl/pdl.mli: Format Xpdl_core Xpdl_xml
