(** Microbenchmark driver-code generation (Sec. IV, Listing 15): the C
    driver per instruction (pin, warm up, unrolled loop between meter
    reads) and the suite's build-and-run script.  On the simulated
    platform the drivers are "executed" by the bootstrap; the generated
    sources are what a hardware deployment would compile. *)

open Xpdl_core

(** Loop unrolling factor used in generated drivers. *)
val unroll_factor : int

(** Representative inline-asm body for one instruction (a volatile no-op
    for unknown names, so generated code always compiles). *)
val asm_for_instruction : string -> string

(** The C source of one driver. *)
val generate_driver : suite:Power.suite -> bench:Power.microbenchmark -> string

(** The suite's [mbscript.sh]: builds and runs every driver, appending
    one [instruction iterations joules] line per benchmark. *)
val generate_script : Power.suite -> string

(** Write all drivers and the script into [dir] (created if missing);
    returns the generated file names. *)
val emit_suite : dir:string -> Power.suite -> string list
