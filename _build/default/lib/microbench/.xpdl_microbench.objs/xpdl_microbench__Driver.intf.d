lib/microbench/driver.mli: Power Xpdl_core
