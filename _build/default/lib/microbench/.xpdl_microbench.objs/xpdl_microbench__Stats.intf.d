lib/microbench/stats.mli: Format
