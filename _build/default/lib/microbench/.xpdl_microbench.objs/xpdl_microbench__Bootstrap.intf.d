lib/microbench/bootstrap.mli: Model Power Stats Xpdl_core Xpdl_simhw
