lib/microbench/stats.ml: Array Float Fmt List
