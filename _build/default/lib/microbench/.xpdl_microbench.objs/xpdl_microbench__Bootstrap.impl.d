lib/microbench/bootstrap.ml: Array Float List Model Option Power Schema Stats String Xpdl_core Xpdl_simhw Xpdl_units
