lib/microbench/driver.ml: Buffer Filename Fmt Fun List Option Power Sys Xpdl_core
