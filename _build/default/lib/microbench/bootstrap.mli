(** Deployment-time bootstrap of the energy model (Sec. III-C, IV): run
    the microbenchmark for every ["?"] energy entry on the target
    platform, reduce repeated meter readings with {!Stats}, and write the
    derived values back into the model (optionally as per-frequency
    [<data>] tables like Listing 14's [divsd]).  Channel offsets declared
    ["?"] (Listing 3) are calibrated with 1-byte transfers. *)

open Xpdl_core

type options = {
  repetitions : int;  (** meter readings per benchmark *)
  frequencies : float list;  (** Hz sweep; [] = current frequency only *)
  force : bool;  (** re-measure even specified energies ("on request") *)
}

(** 9 repetitions, no sweep, no force. *)
val default_options : options

(** One derived energy entry. *)
type result = {
  instruction : string;
  benchmark : string;  (** microbenchmark id used *)
  energy : Stats.summary;  (** J per instruction at the current frequency *)
  per_frequency : (float * float) list;  (** (Hz, J) when a sweep ran *)
  runs : int;
}

(** Measure J/instruction on the machine at its current clocks. *)
val measure :
  Xpdl_simhw.Machine.t -> opts:options -> name:string -> iterations:int -> Stats.summary

(** Adaptive measurement: sample until the 95% CI half-width is within
    [target_rci] of the mean (default 1%) or [max_samples] (default 200)
    is reached; at least 3 samples are taken. *)
val measure_adaptive :
  ?target_rci:float ->
  ?max_samples:int ->
  Xpdl_simhw.Machine.t ->
  name:string ->
  iterations:int ->
  Stats.summary

(** Bootstrap one ISA. *)
val run_isa :
  ?opts:options ->
  Xpdl_simhw.Machine.t ->
  Power.isa ->
  Power.suite list ->
  result list

(** Write derived entries back into the model tree, replacing the ["?"]
    placeholders. *)
val apply_results : result list -> Model.element -> Model.element

(** Calibrate interconnect-channel ["?"] offsets on the machine. *)
val resolve_link_offsets :
  ?opts:options -> Xpdl_simhw.Machine.t -> Model.element -> Model.element

(** Full bootstrap of a composed model: instruction energies and link
    offsets.  [machine] defaults to a machine built from the model. *)
val run :
  ?opts:options ->
  ?machine:Xpdl_simhw.Machine.t ->
  Model.element ->
  Model.element * result list

(** Instructions still unresolved (empty after a successful bootstrap). *)
val remaining_placeholders : Model.element -> string list
