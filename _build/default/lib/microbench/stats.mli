(** Robust statistics over repeated microbenchmark measurements: point
    estimates with confidence intervals after MAD-based outlier
    rejection. *)

type summary = {
  n : int;  (** samples kept after outlier rejection *)
  rejected : int;
  mean : float;
  median : float;
  stddev : float;
  ci95_half_width : float;  (** half-width of the 95% CI of the mean *)
  minimum : float;
  maximum : float;
}

val mean : float list -> float
val median : float list -> float
val stddev : float list -> float

(** Median absolute deviation. *)
val mad : float list -> float

(** Partition into (kept, rejected): samples farther than [k]·MAD·1.4826
    from the median are rejected (k = 3.5 ≈ 3σ for Gaussian data). *)
val reject_outliers : ?k:float -> float list -> float list * float list

(** Summarize; raises [Invalid_argument] on an empty sample. *)
val summarize : ?k:float -> float list -> summary

val relative_error : estimate:float -> truth:float -> float
val pp_summary : Format.formatter -> summary -> unit
