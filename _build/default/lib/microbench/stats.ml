(** Robust statistics over repeated microbenchmark measurements.

    Deployment-time microbenchmarking observes noisy samples of a true
    per-instruction energy; the harness reduces them to a point estimate
    with a confidence interval, after rejecting outliers (a run perturbed
    by a simulated background blip should not skew the model). *)

type summary = {
  n : int;  (** samples kept after outlier rejection *)
  rejected : int;  (** samples discarded as outliers *)
  mean : float;
  median : float;
  stddev : float;
  ci95_half_width : float;  (** half-width of the 95% CI of the mean *)
  minimum : float;
  maximum : float;
}

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let median xs =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
      Float.sqrt (ss /. (n -. 1.))

(** Median absolute deviation, the robust scale estimate used for
    outlier rejection. *)
let mad xs =
  let m = median xs in
  median (List.map (fun x -> Float.abs (x -. m)) xs)

(** Reject samples farther than [k]·MAD from the median (k = 3.5 by
    convention ≈ 3σ for Gaussian data, MAD·1.4826 ≈ σ). *)
let reject_outliers ?(k = 3.5) xs =
  match xs with
  | [] | [ _ ] | [ _; _ ] -> (xs, [])
  | _ ->
      let med = median xs in
      let scale = mad xs *. 1.4826 in
      if scale <= 0. then (xs, [])
      else List.partition (fun x -> Float.abs (x -. med) <= k *. scale) xs

(** Summarize a sample list; raises [Invalid_argument] on empty input. *)
let summarize ?(k = 3.5) xs =
  if xs = [] then invalid_arg "Stats.summarize: no samples";
  let kept, out = reject_outliers ~k xs in
  let kept = if kept = [] then xs else kept in
  let n = List.length kept in
  let sd = stddev kept in
  {
    n;
    rejected = List.length out;
    mean = mean kept;
    median = median kept;
    stddev = sd;
    ci95_half_width = 1.96 *. sd /. Float.sqrt (float_of_int n);
    minimum = List.fold_left Float.min Float.infinity kept;
    maximum = List.fold_left Float.max Float.neg_infinity kept;
  }

(** Relative error of an estimate against a reference value. *)
let relative_error ~estimate ~truth =
  if truth = 0. then Float.abs estimate else Float.abs (estimate -. truth) /. Float.abs truth

let pp_summary ppf s =
  Fmt.pf ppf "mean=%.4g median=%.4g sd=%.3g ci95=±%.3g n=%d rej=%d" s.mean s.median s.stddev
    s.ci95_half_width s.n s.rejected
