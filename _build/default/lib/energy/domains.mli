(** Runtime power-domain state tracking (Sec. III-C, Listing 12):
    on/off state per island, enforcement of [enableSwitchOff] and
    [switchoffCondition], and idle power of a configuration. *)

open Xpdl_core

type status = On | Off

type t

exception Switch_error of string

(** Build from a [<power_domains>] subtree; all domains start [On].
    [model] supplies the hardware tree for member matching. *)
val create : ?model:Model.element -> Model.element -> t

(** Aggregate every [<power_domains>] specification found in the model
    (one per power-modeled component); [None] if there are none. *)
val of_model : Model.element -> t option

val find_domain : t -> string -> Power.domain option

(** Raises {!Switch_error} on unknown domains. *)
val status : t -> string -> status

val is_off : t -> string -> bool

(** Domain names of a group (a bare domain name stands for itself). *)
val group_members : t -> string -> string list

(** [Ok true] if switchable now; [Ok false] if [enableSwitchOff=false];
    [Error reason] if a [switchoffCondition] is unmet. *)
val can_switch_off : t -> string -> (bool, string) result

(** Raises {!Switch_error} if the language rules forbid it. *)
val switch_off : t -> string -> unit

val switch_on : t -> string -> unit
val switch_off_group : t -> string -> unit
val switch_on_group : t -> string -> unit

(** Hardware elements of the model belonging to a domain; [index] selects
    the i-th match for domains replicated by a group. *)
val members_in_model : t -> Power.domain -> ?index:int -> unit -> Model.element list

(** Idle power (W) of the current configuration: [On] domains contribute
    their declared [idle_power] (or their members' static power);
    [Off] domains contribute nothing. *)
val idle_power : t -> float

(** All domains with their current status. *)
val snapshot : t -> (string * status) list
