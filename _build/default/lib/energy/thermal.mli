(** A lumped-RC thermal extension: each coarse hardware block (CPU,
    device, memory) gets the classic single-node model
    [C dT/dt = P − (T − T_amb)/R], with R/C from
    [thermal_resistance]/[thermal_capacitance] extension attributes or
    kind-based defaults.  Integration is exact per piecewise-constant
    power step. *)

open Xpdl_core

type block = {
  th_ident : string;
  th_resistance : float;  (** K/W *)
  th_capacitance : float;  (** J/K *)
  mutable th_temperature : float;  (** K *)
}

type t = { ambient : float; blocks : block list }

(** Build the network for the CPUs, devices and memories of a composed
    model, all starting at [ambient] (default 298.15 K). *)
val create : ?ambient:float -> Model.element -> t

val find : t -> string -> block option

(** Raises [Invalid_argument] on unknown blocks. *)
val temperature : t -> string -> float

(** Advance the whole network by [dt] s under the per-block power map
    (W; absent blocks dissipate 0). *)
val step : t -> powers:(string * float) list -> dt:float -> unit

(** Steady-state temperature of a block under constant power. *)
val steady_state : t -> string -> power:float -> float

(** Simulate a piecewise-constant (duration, power) trace for one block;
    returns the (time, temperature) series after each segment. *)
val simulate : t -> string -> trace:(float * float) list -> (float * float) list

val hottest : t -> block option

(** Time for a block at constant power to reach [limit] K; [None] when
    the steady state stays below it. *)
val time_to_limit : t -> string -> power:float -> limit:float -> float option
