(** A lumped-RC thermal extension to the energy model.

    The paper motivates hardware-structural organization partly because
    "power consumption and temperature metrics and measurement values
    naturally can be attributed to coarse-grain hardware blocks"; thermal
    modeling itself is future work there.  This extension gives each
    hardware block the classic single-node RC model used by HotSpot-style
    tools at coarse grain:

    {v  C dT/dt = P(t) − (T − T_amb) / R  v}

    with thermal resistance R (K/W) and capacitance C (J/K) either taken
    from [thermal_resistance]/[thermal_capacitance] attributes (an
    extensibility demonstration: unknown attributes elaborate to typed
    strings and are read back here) or defaulted from the block's size
    class.  Integration is exact per piecewise-constant power step:

    {v  T(t+dt) = T_ss + (T(t) − T_ss)·exp(−dt/RC),  T_ss = T_amb + P·R  v} *)

open Xpdl_core

type block = {
  th_ident : string;
  th_resistance : float;  (** K/W *)
  th_capacitance : float;  (** J/K *)
  mutable th_temperature : float;  (** K *)
}

type t = { ambient : float; blocks : block list }

(* Default RC per component kind: bigger silicon → lower R, higher C. *)
let default_rc = function
  | Schema.Cpu -> (0.45, 60.)
  | Schema.Device -> (0.30, 120.)
  | Schema.Core -> (4.0, 2.5)
  | Schema.Memory -> (1.2, 30.)
  | Schema.Cache -> (6.0, 1.0)
  | _ -> (1.0, 10.)

let attr_float_string (e : Model.element) key =
  (* extension attributes elaborate to Str; accept plain numbers *)
  match Model.attr e key with
  | Some (Model.Float f) -> Some f
  | Some (Model.Str s) -> float_of_string_opt s
  | Some (Model.Int i) -> Some (float_of_int i)
  | _ -> None

(** Build the thermal network for the coarse blocks (CPUs, devices,
    memories) of a composed model, all starting at ambient. *)
let create ?(ambient = 298.15) (model : Model.element) : t =
  let interesting (e : Model.element) =
    match e.Model.kind with Schema.Cpu | Schema.Device | Schema.Memory -> true | _ -> false
  in
  let blocks =
    List.filteri (fun _ _ -> true)
      (Model.hardware_fold
         (fun acc (e : Model.element) ->
           if interesting e then
             let r_default, c_default = default_rc e.Model.kind in
             {
               th_ident =
                 Option.value ~default:(Schema.tag_of_kind e.Model.kind)
                   (Model.identifier e);
               th_resistance =
                 Option.value ~default:r_default (attr_float_string e "thermal_resistance");
               th_capacitance =
                 Option.value ~default:c_default (attr_float_string e "thermal_capacitance");
               th_temperature = ambient;
             }
             :: acc
           else acc)
         [] model)
  in
  { ambient; blocks = List.rev blocks }

let find t ident = List.find_opt (fun b -> String.equal b.th_ident ident) t.blocks

let temperature t ident =
  match find t ident with
  | Some b -> b.th_temperature
  | None -> Fmt.invalid_arg "Thermal.temperature: unknown block %S" ident

(** Advance one block by [dt] seconds under constant dissipation
    [power] W. *)
let step_block t (b : block) ~power ~dt =
  let t_ss = t.ambient +. (power *. b.th_resistance) in
  let tau = b.th_resistance *. b.th_capacitance in
  b.th_temperature <- t_ss +. ((b.th_temperature -. t_ss) *. Float.exp (-.dt /. tau))

(** Advance the whole network by [dt] under the per-block power map
    (W; blocks absent from the map dissipate 0). *)
let step t ~(powers : (string * float) list) ~dt =
  List.iter
    (fun b ->
      let p = Option.value ~default:0. (List.assoc_opt b.th_ident powers) in
      step_block t b ~power:p ~dt)
    t.blocks

(** Steady-state temperature of a block under constant power. *)
let steady_state t ident ~power =
  match find t ident with
  | Some b -> t.ambient +. (power *. b.th_resistance)
  | None -> Fmt.invalid_arg "Thermal.steady_state: unknown block %S" ident

(** Simulate a piecewise-constant power trace for one block; returns the
    (time, temperature) series sampled after each segment. *)
let simulate t ident ~(trace : (float * float) list) : (float * float) list =
  match find t ident with
  | None -> Fmt.invalid_arg "Thermal.simulate: unknown block %S" ident
  | Some b ->
      let clock = ref 0. in
      List.map
        (fun (duration, power) ->
          step_block t b ~power ~dt:duration;
          clock := !clock +. duration;
          (!clock, b.th_temperature))
        trace

(** Hottest block of the network. *)
let hottest t =
  match t.blocks with
  | [] -> None
  | b :: rest ->
      Some
        (List.fold_left
           (fun best x -> if x.th_temperature > best.th_temperature then x else best)
           b rest)

(** Time for [ident] at constant [power] to reach [limit] K, if ever
    ([None] when the steady state stays below the limit). *)
let time_to_limit t ident ~power ~limit =
  match find t ident with
  | None -> Fmt.invalid_arg "Thermal.time_to_limit: unknown block %S" ident
  | Some b ->
      let t_ss = t.ambient +. (power *. b.th_resistance) in
      if t_ss <= limit then None
      else begin
        (* limit = t_ss + (T0 - t_ss) exp(-t/tau) *)
        let tau = b.th_resistance *. b.th_capacitance in
        let ratio = (limit -. t_ss) /. (b.th_temperature -. t_ss) in
        if ratio <= 0. || ratio >= 1. then Some 0.
        else Some (-.tau *. Float.log ratio)
      end
