(** Runtime power-domain state tracking (Sec. III-C, Listing 12).

    Power domains are groups of components switched together.  This module
    tracks which domains are on or off, enforces the language's switching
    rules — [enableSwitchOff="false"] islands can never be turned off, and
    [switchoffCondition="G off"] islands only once every domain of group
    [G] is off — and computes the idle power of a configuration, matching
    domain member selectors against the concrete hardware tree. *)

open Xpdl_core

type status = On | Off

type t = {
  domains : Power.domain list;
  groups : (string * string list) list;  (** group name → member domain names *)
  state : (string, status) Hashtbl.t;
  model : Model.element option;  (** hardware tree for member matching *)
}

exception Switch_error of string

let error fmt = Fmt.kstr (fun m -> raise (Switch_error m)) fmt

(* Collect (group name → domain names) from the power_domains element:
   Listing 12's <group name="Shave_pds"> wrapper. *)
let collect_groups (e : Model.element) : (string * string list) list =
  let rec domain_names (x : Model.element) =
    match x.Model.kind with
    | Schema.Power_domain -> Option.to_list (Model.identifier x)
    | Schema.Group | Schema.Power_domains -> List.concat_map domain_names x.Model.children
    | _ -> []
  in
  List.rev
    (Model.fold
       (fun acc (x : Model.element) ->
         if Schema.equal_kind x.Model.kind Schema.Group then
           match Model.identifier x with
           | Some g -> (g, domain_names x) :: acc
           | None -> acc
         else acc)
       [] e)

(** Build the domain tracker from a model subtree containing a
    [<power_domains>] specification.  All domains start [On]. *)
let create ?model (power_domains_element : Model.element) : t =
  let domains = Power.extract_domains power_domains_element in
  let state = Hashtbl.create 16 in
  List.iter (fun (d : Power.domain) -> Hashtbl.replace state d.pd_name On) domains;
  { domains; groups = collect_groups power_domains_element; state; model }

(** Build from any model: aggregates every [<power_domains>] specification
    found (a heterogeneous system has one per power-modeled component —
    the host CPU's and the accelerator's). *)
let of_model (model : Model.element) : t option =
  match Model.elements_of_kind Schema.Power_domains model with
  | [] -> None
  | pds ->
      let domains = List.concat_map Power.extract_domains pds in
      let groups =
        List.concat_map collect_groups pds
        |> List.filter (fun (_, members) -> members <> [])
      in
      let state = Hashtbl.create 16 in
      List.iter (fun (d : Power.domain) -> Hashtbl.replace state d.Power.pd_name On) domains;
      Some { domains; groups; state; model = Some model }

let find_domain t name = List.find_opt (fun (d : Power.domain) -> String.equal d.Power.pd_name name) t.domains

let status t name =
  match Hashtbl.find_opt t.state name with
  | Some s -> s
  | None -> error "unknown power domain %S" name

let is_off t name = status t name = Off

let group_members t g =
  match List.assoc_opt g t.groups with
  | Some members -> members
  | None ->
      (* a bare domain name may be used where a group is expected *)
      if Hashtbl.mem t.state g then [ g ] else error "unknown power-domain group %S" g

(** Can [name] be switched off right now?  Checks [enableSwitchOff] and
    the [switchoffCondition]. *)
let can_switch_off t name =
  match find_domain t name with
  | None -> error "unknown power domain %S" name
  | Some d ->
      if not d.Power.pd_switchable then Ok false
      else (
        match d.Power.pd_condition with
        | None -> Ok true
        | Some cond ->
            let members = group_members t cond.Power.requires_group in
            let required = match cond.Power.required_state with `Off -> Off | `On -> On in
            if List.for_all (fun m -> status t m = required) members then Ok true
            else
              Error
                (Fmt.str "domain %s requires group %s to be %s" name cond.Power.requires_group
                   (match required with Off -> "off" | On -> "on")))

(** Switch a domain off; raises {!Switch_error} if the language rules
    forbid it (main domain, or unmet [switchoffCondition]). *)
let switch_off t name =
  match can_switch_off t name with
  | Ok true -> Hashtbl.replace t.state name Off
  | Ok false -> error "power domain %S cannot be switched off (enableSwitchOff=false)" name
  | Error msg -> error "%s" msg

(** Switching a domain back on: legal unless turning it on would violate
    nothing (always allowed in XPDL). *)
let switch_on t name =
  if not (Hashtbl.mem t.state name) then error "unknown power domain %S" name;
  (* a domain that conditionally switched off may not constrain power-on *)
  Hashtbl.replace t.state name On

(** Switch off every domain in a group (Listing 12's "Shave_pds off"
    precondition is established by switching each Shave_pd). *)
let switch_off_group t g = List.iter (switch_off t) (group_members t g)

let switch_on_group t g = List.iter (switch_on t) (group_members t g)

(** {1 Idle power of a configuration} *)

(* Does domain member selector [sel] match hardware element [hw]?  By
   kind, then by type/id/name when the selector carries a [type]. *)
let member_matches (sel : Model.element) (hw : Model.element) =
  Schema.equal_kind sel.Model.kind hw.Model.kind
  &&
  match sel.Model.type_ref with
  | None -> true
  | Some ty ->
      let eq = function Some s -> String.equal s ty | None -> false in
      eq hw.Model.type_ref || eq hw.Model.id || eq hw.Model.name

(** Hardware elements of the model belonging to [domain].  With [index]
    given (the domain's position within its replicated group), the i-th
    match is selected — one Shave core per Shave_pd{i}. *)
let members_in_model t (domain : Power.domain) ?index () : Model.element list =
  match t.model with
  | None -> []
  | Some model ->
      let matches sel =
        List.rev
          (Model.fold (fun acc hw -> if member_matches sel hw then hw :: acc else acc) [] model)
      in
      List.concat_map
        (fun sel ->
          let all = matches sel in
          match index with
          | None -> all
          | Some i -> ( match List.nth_opt all i with Some x -> [ x ] | None -> []))
        domain.Power.pd_members

(* Index of a domain within its replication group: Shave_pd3 → 3. *)
let replica_index name =
  let len = String.length name in
  let rec digits i = if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then digits (i - 1) else i in
  let start = digits len in
  if start = len then None else int_of_string_opt (String.sub name start (len - start))

(** Idle (static) power of the current configuration in W: domains that
    are [On] contribute their [idle_power] (or the static power of their
    members when not declared); [Off] domains contribute nothing. *)
let idle_power t : float =
  List.fold_left
    (fun acc (d : Power.domain) ->
      if status t d.Power.pd_name = Off then acc
      else
        let idle =
          match d.Power.pd_idle_power with
          | Some w -> w
          | None ->
              (* fall back to the members' declared static power *)
              let members = members_in_model t d ?index:(replica_index d.Power.pd_name) () in
              List.fold_left
                (fun a m ->
                  match Model.attr_quantity m "static_power" with
                  | Some q -> a +. Xpdl_units.Units.value q
                  | None -> a)
                0. members
        in
        acc +. idle)
    0. t.domains

(** Names of all domains with their current status. *)
let snapshot t : (string * status) list =
  List.map (fun (d : Power.domain) -> (d.Power.pd_name, status t d.Power.pd_name)) t.domains
