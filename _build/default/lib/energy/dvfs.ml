(** DVFS energy optimization over XPDL power state machines.

    The use case that motivates modeling power states with their
    transition costs (Sec. III-C): given a computation of [cycles] clock
    cycles and a [deadline], choose the power-state schedule of minimal
    energy.  Policies compared (experiment E7):

    - {b race-to-idle}: run at the fastest P state, then drop to the
      deepest sleep state until the deadline;
    - {b pace (single state)}: the slowest single P state that still meets
      the deadline, idling in place afterwards;
    - {b optimal}: exhaustive search over single states and ordered pairs
      of P states with the split point chosen optimally — with convex
      power curves the optimal schedule uses at most two (adjacent)
      speeds, so this search is exact for the machines XPDL models — all
      including the modeled switching time/energy.

    Energy here is the domain's static/state power integrated over time
    plus transition energies; per-instruction dynamic energy is orthogonal
    (added by the caller from the instruction tables). *)

open Xpdl_core

type schedule_step = { step_state : string; step_duration : float (* s *) }

type plan = {
  policy : string;
  steps : schedule_step list;
  total_time : float;  (** s, including switching *)
  total_energy : float;  (** J, state residency + switching *)
  feasible : bool;  (** meets the deadline *)
}

let p_states (sm : Power.state_machine) =
  List.filter (fun (s : Power.power_state) -> s.Power.ps_frequency > 0.) sm.Power.sm_states

let sleep_states (sm : Power.state_machine) =
  List.filter (fun (s : Power.power_state) -> s.Power.ps_frequency <= 0.) sm.Power.sm_states
  |> List.sort (fun a b -> Float.compare a.Power.ps_power b.Power.ps_power)

let fastest sm =
  match
    List.sort (fun a b -> Float.compare b.Power.ps_frequency a.Power.ps_frequency) (p_states sm)
  with
  | [] -> None
  | s :: _ -> Some s

(* Cost of: switch from [start] to [s1], run c1 cycles, optionally switch
   to [s2] and run the rest, then park in [park] until the deadline (or
   just idle in the last state if no park state is cheaper). *)
let evaluate sm ~start ~cycles ~deadline (segments : (Power.power_state * float) list) :
    plan option =
  let rec run current time energy steps = function
    | [] -> Some (current, time, energy, steps)
    | ((s : Power.power_state), c) :: rest ->
        if c <= 0. then run current time energy steps rest
        else
          (match Psm.switch_cost sm ~from_state:current ~to_state:s.Power.ps_name with
          | None -> None
          | Some (st, se) ->
              let exec_t = c /. s.Power.ps_frequency in
              let step = { step_state = s.Power.ps_name; step_duration = exec_t } in
              run s.Power.ps_name
                (time +. st +. exec_t)
                (energy +. se +. (s.Power.ps_power *. exec_t))
                (step :: steps) rest)
  in
  ignore cycles;
  match run start 0. 0. [] segments with
  | None -> None
  | Some (final_state, time, energy, steps) ->
      let slack = deadline -. time in
      if slack < 0. then
        Some
          {
            policy = "";
            steps = List.rev steps;
            total_time = time;
            total_energy = energy;
            feasible = false;
          }
      else begin
        (* spend the slack as cheaply as possible: stay, or pay the switch
           into a sleep state if the saving over the slack outweighs it *)
        let stay_power =
          match Power.find_state sm final_state with
          | Some s -> s.Power.ps_power
          | None -> 0.
        in
        let candidates =
          (final_state, stay_power *. slack, 0.)
          :: List.filter_map
               (fun (sl : Power.power_state) ->
                 match Psm.switch_cost sm ~from_state:final_state ~to_state:sl.Power.ps_name with
                 | Some (st, se) when st <= slack ->
                     Some (sl.Power.ps_name, se +. (sl.Power.ps_power *. (slack -. st)), st)
                 | Some _ | None -> None)
               (sleep_states sm)
        in
        let best_state, park_energy, park_switch_time =
          List.fold_left
            (fun ((_, be, _) as best) ((_, e, _) as cand) -> if e < be then cand else best)
            (List.hd candidates) (List.tl candidates)
        in
        let steps =
          if slack > 0. then
            List.rev
              ({ step_state = best_state; step_duration = slack -. park_switch_time } :: steps)
          else List.rev steps
        in
        Some
          {
            policy = "";
            steps;
            total_time = deadline;
            total_energy = energy +. park_energy;
            feasible = true;
          }
      end

let named policy = Option.map (fun p -> { p with policy })

(** Race-to-idle: fastest P state for all cycles, then park. *)
let race_to_idle sm ~start ~cycles ~deadline : plan option =
  Option.bind (fastest sm) (fun s ->
      named "race-to-idle" (evaluate sm ~start ~cycles ~deadline [ (s, cycles) ]))

(** Slowest feasible single P state. *)
let pace sm ~start ~cycles ~deadline : plan option =
  let feasible_plans =
    List.filter_map
      (fun s -> named "pace" (evaluate sm ~start ~cycles ~deadline [ (s, cycles) ]))
      (p_states sm)
    |> List.filter (fun p -> p.feasible)
  in
  match List.sort (fun a b -> Float.compare a.total_energy b.total_energy) feasible_plans with
  | [] -> None
  | best :: _ -> Some best

(** Exact optimum over one- and two-state schedules with optimal split.
    For two states (f₁ > f₂) the split solves
    c₁/f₁ + c₂/f₂ = available time; we search the split on a fine grid,
    which is exact to grid resolution and robust to switching costs. *)
let optimal ?(grid = 64) sm ~start ~cycles ~deadline : plan option =
  let ps = p_states sm in
  let singles =
    List.filter_map (fun s -> evaluate sm ~start ~cycles ~deadline [ (s, cycles) ]) ps
  in
  let pairs =
    List.concat_map
      (fun s1 ->
        List.concat_map
          (fun s2 ->
            if String.equal s1.Power.ps_name s2.Power.ps_name then []
            else
              List.filter_map
                (fun i ->
                  let frac = float_of_int i /. float_of_int grid in
                  let c1 = cycles *. frac in
                  evaluate sm ~start ~cycles ~deadline [ (s1, c1); (s2, cycles -. c1) ])
                (List.init (grid - 1) (fun i -> i + 1)))
          ps)
      ps
  in
  let feasible = List.filter (fun p -> p.feasible) (singles @ pairs) in
  match List.sort (fun a b -> Float.compare a.total_energy b.total_energy) feasible with
  | [] -> None
  | best :: _ -> Some { best with policy = "optimal" }

(** Compare the three policies on one problem. *)
type comparison = {
  cycles : float;
  deadline : float;
  plans : plan list;  (** feasible plans, best energy first *)
}

let compare_policies ?grid sm ~start ~cycles ~deadline : comparison =
  (* ties go to the more general policy: the optimal search subsumes the
     single-state plans, so equal energy should rank it first *)
  let rank p =
    match p.policy with "optimal" -> 0 | "pace" -> 1 | "race-to-idle" -> 2 | _ -> 3
  in
  let plans =
    List.filter_map Fun.id
      [
        race_to_idle sm ~start ~cycles ~deadline;
        pace sm ~start ~cycles ~deadline;
        optimal ?grid sm ~start ~cycles ~deadline;
      ]
    |> List.filter (fun p -> p.feasible)
    |> List.sort (fun a b ->
           match Float.compare a.total_energy b.total_energy with
           | 0 -> Int.compare (rank a) (rank b)
           | c -> if Float.abs (a.total_energy -. b.total_energy) < 1e-12 then Int.compare (rank a) (rank b) else c)
  in
  { cycles; deadline; plans }

let pp_plan ppf p =
  Fmt.pf ppf "%-13s %8.3f ms %10.4f mJ%s  [%a]" p.policy (p.total_time *. 1e3)
    (p.total_energy *. 1e3)
    (if p.feasible then "" else " INFEASIBLE")
    Fmt.(list ~sep:(any " -> ") (fun ppf s -> Fmt.pf ppf "%s:%.2fms" s.step_state (s.step_duration *. 1e3)))
    p.steps
