lib/energy/thermal.ml: Float Fmt List Model Option Schema String Xpdl_core
