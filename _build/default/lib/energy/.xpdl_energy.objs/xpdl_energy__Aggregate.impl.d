lib/energy/aggregate.ml: Float List Model Option Schema Units Xpdl_core Xpdl_units
