lib/energy/account.mli: Format Model Predict Xpdl_core
