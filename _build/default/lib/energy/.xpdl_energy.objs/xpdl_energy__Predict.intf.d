lib/energy/predict.mli: Format Model Xpdl_core
