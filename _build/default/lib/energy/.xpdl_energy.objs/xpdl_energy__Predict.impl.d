lib/energy/predict.ml: Aggregate Fmt Hashtbl List Model Option Power Schema Xpdl_core Xpdl_units
