lib/energy/thermal.mli: Model Xpdl_core
