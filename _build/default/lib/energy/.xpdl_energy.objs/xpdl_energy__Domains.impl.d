lib/energy/domains.ml: Fmt Hashtbl List Model Option Power Schema String Xpdl_core Xpdl_units
