lib/energy/account.ml: Aggregate Float Fmt List Model Option Power Predict Psm Schema String Xpdl_core Xpdl_units
