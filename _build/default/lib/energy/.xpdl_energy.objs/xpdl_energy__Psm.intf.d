lib/energy/psm.mli: Power Xpdl_core
