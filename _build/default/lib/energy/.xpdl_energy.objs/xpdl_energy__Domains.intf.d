lib/energy/domains.mli: Model Power Xpdl_core
