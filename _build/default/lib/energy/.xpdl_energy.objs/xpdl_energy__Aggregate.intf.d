lib/energy/aggregate.mli: Model Xpdl_core
