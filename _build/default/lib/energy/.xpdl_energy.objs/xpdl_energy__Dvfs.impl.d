lib/energy/dvfs.ml: Float Fmt Fun Int List Option Power Psm String Xpdl_core
