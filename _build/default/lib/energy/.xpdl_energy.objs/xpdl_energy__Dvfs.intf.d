lib/energy/dvfs.mli: Format Power Xpdl_core
