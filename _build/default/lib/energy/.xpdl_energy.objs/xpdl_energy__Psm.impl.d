lib/energy/psm.ml: Fmt Hashtbl List Option Power String Xpdl_core
