(** System-wide energy accounting for multi-phase applications.

    The EXCESS framework the paper serves aims at "system-wide energy
    optimization", building on the validated premise that system energy
    composes from per-component shares (the project's deliverable D1.1
    [7], which the paper cites for instruction-type-dependent dynamic
    power).  This module implements that composition over XPDL models: an
    application is a sequence of {!step}s — compute phases on named
    components at chosen power states, data transfers over interconnects,
    DVFS switches, idle gaps — and the accountant prices each step with
    {!Predict} and the power-state machinery, attributing energy to the
    hardware component it occurs on.

    The result is a per-component, per-step energy breakdown whose total
    the tests validate against the simulated machine running the same
    schedule (compositionality within measurement noise). *)

open Xpdl_core

type step =
  | Compute of {
      label : string;
      component : string;  (** hardware component id (cpu/device/…) *)
      hz : float;  (** clock during the phase *)
      phase : Predict.phase;
    }
  | Transfer of { label : string; link : string; bytes : int }
  | Switch of { machine_name : string; from_state : string; to_state : string }
  | Idle of { label : string; duration : float }

type step_cost = {
  sc_label : string;
  sc_component : string;  (** component (or link/psm) the energy is attributed to *)
  sc_time : float;  (** s *)
  sc_energy : float;  (** J, dynamic + switching; static accounted separately *)
}

type report = {
  rp_steps : step_cost list;  (** in schedule order *)
  rp_duration : float;  (** s, total wall clock *)
  rp_dynamic_energy : float;  (** J, sum over steps *)
  rp_static_energy : float;  (** J, machine static power × duration *)
  rp_total_energy : float;
  rp_by_component : (string * float) list;  (** dynamic energy shares *)
}

exception Account_error of string

let error fmt = Fmt.kstr (fun m -> raise (Account_error m)) fmt

(* Link parameters from the model (mirrors the simulator's view). *)
let link_params (model : Model.element) ident =
  match Model.find_by_id ident model with
  | None -> error "unknown interconnect %S" ident
  | Some ic -> (
      let channels = Model.elements_of_kind Schema.Channel ic in
      let q e key = Option.map Xpdl_units.Units.value (Model.attr_quantity e key) in
      match channels with
      | ch :: _ ->
          ( Option.value ~default:1e9 (q ch "max_bandwidth"),
            Option.value ~default:500e-9 (q ch "time_offset_per_message"),
            Option.value ~default:10e-12 (q ch "energy_per_byte"),
            Option.value ~default:600e-12 (q ch "energy_offset_per_message") )
      | [] ->
          ( Option.value ~default:1e9 (q ic "max_bandwidth"),
            500e-9,
            10e-12,
            600e-12 ))

let find_machine (pm : Power.t) name =
  match
    List.find_opt (fun (sm : Power.state_machine) -> String.equal sm.Power.sm_name name)
      pm.Power.pm_machines
  with
  | Some sm -> sm
  | None -> error "unknown power state machine %S" name

(** Price an application schedule against a composed (bootstrapped)
    model.  Raises {!Account_error} on references to unknown components,
    links or power-state machines. *)
let run (model : Model.element) (steps : step list) : report =
  let tables = Predict.tables_of_model model in
  let pm = Power.of_element model in
  let costs =
    List.map
      (fun step ->
        match step with
        | Compute { label; component; hz; phase } ->
            if Model.find_by_id component model = None then
              error "unknown component %S in phase %s" component label;
            let p = Predict.predict tables ~hz phase in
            {
              sc_label = label;
              sc_component = component;
              sc_time = p.Predict.pr_time;
              sc_energy = p.Predict.pr_dynamic_energy;
            }
        | Transfer { label; link; bytes } ->
            let bw, toff, epb, eoff = link_params model link in
            {
              sc_label = label;
              sc_component = link;
              sc_time = toff +. (float_of_int bytes /. bw);
              sc_energy = eoff +. (float_of_int bytes *. epb);
            }
        | Switch { machine_name; from_state; to_state } -> (
            let sm = find_machine pm machine_name in
            match Psm.switch_cost sm ~from_state ~to_state with
            | Some (t, e) ->
                {
                  sc_label = Fmt.str "%s: %s->%s" machine_name from_state to_state;
                  sc_component = machine_name;
                  sc_time = t;
                  sc_energy = e;
                }
            | None ->
                error "no modeled transition path %s -> %s in %s" from_state to_state
                  machine_name)
        | Idle { label; duration } ->
            { sc_label = label; sc_component = "idle"; sc_time = duration; sc_energy = 0. })
      steps
  in
  let duration = List.fold_left (fun acc c -> acc +. c.sc_time) 0. costs in
  let dynamic = List.fold_left (fun acc c -> acc +. c.sc_energy) 0. costs in
  let static = Aggregate.static_power model *. duration in
  let by_component =
    List.fold_left
      (fun acc c ->
        let prev = Option.value ~default:0. (List.assoc_opt c.sc_component acc) in
        (c.sc_component, prev +. c.sc_energy) :: List.remove_assoc c.sc_component acc)
      [] costs
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  {
    rp_steps = costs;
    rp_duration = duration;
    rp_dynamic_energy = dynamic;
    rp_static_energy = static;
    rp_total_energy = dynamic +. static;
    rp_by_component = by_component;
  }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>schedule: %.3f ms, %.4f mJ total (%.4f dynamic + %.4f static)"
    (r.rp_duration *. 1e3) (r.rp_total_energy *. 1e3) (r.rp_dynamic_energy *. 1e3)
    (r.rp_static_energy *. 1e3);
  List.iter
    (fun c ->
      Fmt.pf ppf "@,  %-28s %-12s %9.4f ms %10.5f mJ" c.sc_label c.sc_component
        (c.sc_time *. 1e3) (c.sc_energy *. 1e3))
    r.rp_steps;
  Fmt.pf ppf "@,per component:";
  List.iter
    (fun (comp, e) -> Fmt.pf ppf "@,  %-12s %10.5f mJ" comp (e *. 1e3))
    r.rp_by_component;
  Fmt.pf ppf "@]"
