(** Model-based time/energy prediction — what the bootstrapped platform
    model is {e for}.

    Once the toolchain has filled in the per-instruction energy tables
    (Sec. III-C) the upper optimization layers can predict "the expected
    communication time or the energy cost" (Sec. IV) of a computation
    phase without running it.  This module prices an abstract phase —
    instruction counts, memory traffic, parallelism — against a composed
    model: instruction energies from the ISA tables (interpolated by
    frequency), latencies from the declared pipeline metadata, memory
    costs from the memory descriptors, static power from the synthesized
    aggregate.

    Tests validate predictions against the simulated machine: both derive
    from the same platform parameters, so agreement is bounded by the
    bootstrap's measurement error. *)

open Xpdl_core

(** An abstract computation phase. *)
type phase = {
  ph_instructions : (string * int) list;  (** instruction name → count *)
  ph_memory_accesses : int;  (** cache-missing accesses *)
  ph_parallel_fraction : float;
  ph_cores_used : int;
}

let phase ?(memory_accesses = 0) ?(parallel_fraction = 0.) ?(cores_used = 1) instructions =
  {
    ph_instructions = instructions;
    ph_memory_accesses = memory_accesses;
    ph_parallel_fraction = parallel_fraction;
    ph_cores_used = max 1 cores_used;
  }

type prediction = {
  pr_time : float;  (** s *)
  pr_dynamic_energy : float;  (** J *)
  pr_static_energy : float;  (** J = machine static power × time *)
  pr_total_energy : float;  (** J *)
  pr_unmodeled : string list;  (** instructions with no energy entry *)
}

(* ISA lookup tables assembled once per model. *)
type tables = {
  tb_energy : (string, Power.instruction) Hashtbl.t;
  tb_static_power : float;
  tb_mem_energy : float;
  tb_mem_latency : float;
}

let mean default = function
  | [] -> default
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(** Build the pricing tables from a composed (ideally bootstrapped)
    model. *)
let tables_of_model (model : Model.element) : tables =
  let tb_energy = Hashtbl.create 32 in
  List.iter
    (fun isa ->
      List.iter
        (fun (i : Power.instruction) ->
          if not (Hashtbl.mem tb_energy i.Power.in_name) then
            Hashtbl.add tb_energy i.Power.in_name i)
        isa.Power.isa_instructions)
    (Power.of_element model).Power.pm_isas;
  let mems = Model.elements_of_kind Schema.Memory model in
  let q key m = Option.map Xpdl_units.Units.value (Model.attr_quantity m key) in
  {
    tb_energy;
    tb_static_power = Aggregate.static_power model;
    tb_mem_energy = mean 5e-9 (List.filter_map (q "energy_per_access") mems);
    tb_mem_latency = mean 60e-9 (List.filter_map (q "latency") mems);
  }

(** Predict the cost of [ph] at clock [hz].  Instructions without an
    energy entry (un-bootstrapped ["?"]) contribute zero energy and are
    reported in [pr_unmodeled] — run the bootstrap first. *)
let predict (tb : tables) ~(hz : float) (ph : phase) : prediction =
  let unmodeled = ref [] in
  let cycles, energy =
    List.fold_left
      (fun (cy, en) (name, count) ->
        let c = float_of_int count in
        match Hashtbl.find_opt tb.tb_energy name with
        | Some i ->
            let lat = float_of_int (Option.value ~default:4 i.Power.in_latency) in
            let e =
              match Power.instruction_energy_at i ~hz with
              | Some e -> e
              | None ->
                  unmodeled := name :: !unmodeled;
                  0.
            in
            (cy +. (c *. lat), en +. (c *. e))
        | None ->
            unmodeled := name :: !unmodeled;
            (cy +. (c *. 4.), en))
      (0., 0.) ph.ph_instructions
  in
  let serial =
    (cycles /. hz) +. (float_of_int ph.ph_memory_accesses *. tb.tb_mem_latency)
  in
  let pf = ph.ph_parallel_fraction in
  let time = (serial *. (1. -. pf)) +. (serial *. pf /. float_of_int ph.ph_cores_used) in
  let dynamic =
    energy +. (float_of_int ph.ph_memory_accesses *. tb.tb_mem_energy)
  in
  let static = tb.tb_static_power *. time in
  {
    pr_time = time;
    pr_dynamic_energy = dynamic;
    pr_static_energy = static;
    pr_total_energy = dynamic +. static;
    pr_unmodeled = List.rev !unmodeled;
  }

(** One-shot convenience: tables + predict. *)
let predict_on_model model ~hz ph = predict (tables_of_model model) ~hz ph

(** Energy-to-solution comparison of running the same phase at different
    frequencies (uses the per-frequency tables when the bootstrap swept
    them): returns (hz, time, total energy) triples. *)
let frequency_sweep (tb : tables) ~(frequencies : float list) (ph : phase) :
    (float * float * float) list =
  List.map
    (fun hz ->
      let p = predict tb ~hz ph in
      (hz, p.pr_time, p.pr_total_energy))
    frequencies

let pp_prediction ppf p =
  Fmt.pf ppf "time %.3g ms, energy %.3g mJ (dyn %.3g + static %.3g)%a" (p.pr_time *. 1e3)
    (p.pr_total_energy *. 1e3) (p.pr_dynamic_energy *. 1e3) (p.pr_static_energy *. 1e3)
    (fun ppf -> function
      | [] -> ()
      | l -> Fmt.pf ppf " [unmodeled: %a]" Fmt.(list ~sep:comma string) l)
    p.pr_unmodeled
