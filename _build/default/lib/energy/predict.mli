(** Model-based time/energy prediction from a bootstrapped platform
    model: prices an abstract computation phase against the ISA energy
    tables (frequency-interpolated), declared latencies, memory
    descriptors and the synthesized static power.  Agreement with the
    simulated machine is bounded by the bootstrap's measurement error
    (experiment E11). *)

open Xpdl_core

type phase = {
  ph_instructions : (string * int) list;  (** instruction name → count *)
  ph_memory_accesses : int;
  ph_parallel_fraction : float;
  ph_cores_used : int;
}

val phase :
  ?memory_accesses:int ->
  ?parallel_fraction:float ->
  ?cores_used:int ->
  (string * int) list ->
  phase

type prediction = {
  pr_time : float;  (** s *)
  pr_dynamic_energy : float;  (** J *)
  pr_static_energy : float;  (** J = machine static power × time *)
  pr_total_energy : float;  (** J *)
  pr_unmodeled : string list;  (** instructions with no energy entry *)
}

(** Pricing tables assembled once per model. *)
type tables

val tables_of_model : Model.element -> tables

(** Predict the cost of a phase at clock [hz].  Un-bootstrapped
    instructions contribute zero energy and are reported in
    [pr_unmodeled]. *)
val predict : tables -> hz:float -> phase -> prediction

val predict_on_model : Model.element -> hz:float -> phase -> prediction

(** (hz, time, total energy) for each frequency (uses per-frequency
    [<data>] tables when the bootstrap swept them). *)
val frequency_sweep : tables -> frequencies:float list -> phase -> (float * float * float) list

val pp_prediction : Format.formatter -> prediction -> unit
