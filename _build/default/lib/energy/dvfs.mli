(** DVFS energy optimization over XPDL power state machines (experiment
    E7): choose the power-state schedule of minimal energy for a job of
    [cycles] under a [deadline], with all modeled switching costs, and
    park the slack in the cheapest reachable state. *)

open Xpdl_core

type schedule_step = { step_state : string; step_duration : float  (** s *) }

type plan = {
  policy : string;
  steps : schedule_step list;
  total_time : float;  (** s, including switching *)
  total_energy : float;  (** J, state residency + switching *)
  feasible : bool;  (** meets the deadline *)
}

(** Run at the fastest P state, then park. *)
val race_to_idle :
  Power.state_machine -> start:string -> cycles:float -> deadline:float -> plan option

(** The cheapest feasible single P state, then park. *)
val pace :
  Power.state_machine -> start:string -> cycles:float -> deadline:float -> plan option

(** Exact optimum over one- and two-state schedules with the split
    searched on a [grid] (default 64) — with convex power curves optimal
    schedules use at most two speeds. *)
val optimal :
  ?grid:int ->
  Power.state_machine ->
  start:string ->
  cycles:float ->
  deadline:float ->
  plan option

type comparison = {
  cycles : float;
  deadline : float;
  plans : plan list;  (** feasible plans, best energy first; ties rank optimal first *)
}

val compare_policies :
  ?grid:int ->
  Power.state_machine ->
  start:string ->
  cycles:float ->
  deadline:float ->
  comparison

val pp_plan : Format.formatter -> plan -> unit
