(** System-wide energy accounting for multi-phase applications: price a
    schedule of compute phases, transfers, DVFS switches and idle gaps
    against a composed (bootstrapped) XPDL model, attributing energy to
    components — the EXCESS "energy compositionality" premise [7]
    implemented over the platform model. *)

open Xpdl_core

type step =
  | Compute of {
      label : string;
      component : string;  (** hardware component id *)
      hz : float;  (** clock during the phase *)
      phase : Predict.phase;
    }
  | Transfer of { label : string; link : string; bytes : int }
  | Switch of { machine_name : string; from_state : string; to_state : string }
  | Idle of { label : string; duration : float }

type step_cost = {
  sc_label : string;
  sc_component : string;
  sc_time : float;  (** s *)
  sc_energy : float;  (** J, dynamic + switching *)
}

type report = {
  rp_steps : step_cost list;  (** in schedule order *)
  rp_duration : float;
  rp_dynamic_energy : float;
  rp_static_energy : float;  (** machine static power × duration *)
  rp_total_energy : float;
  rp_by_component : (string * float) list;  (** dynamic shares, largest first *)
}

exception Account_error of string

(** Raises {!Account_error} on unknown components, links or power-state
    machines. *)
val run : Model.element -> step list -> report

val pp_report : Format.formatter -> report -> unit
