(** Static validation of XPDL models against the {!Schema} — the checks
    PDL's free-form string properties cannot support (Sec. II-C). *)

val is_valid_identifier : string -> bool

(** Individual checks (also run by {!run}); each returns its
    diagnostics. *)

val check_identifiers : Model.element -> Diagnostic.t list
val check_required_attrs : Model.element -> Diagnostic.t list

(** Ids must be unique among siblings of the same scope. *)
val check_unique_ids : Model.element -> Diagnostic.t list

(** [head]/[tail] of interconnect instances must name components within
    the enclosing system (Listing 4). *)
val check_interconnect_endpoints : Model.element -> Diagnostic.t list

(** Power state machines must be internally consistent. *)
val check_power_models : Model.element -> Diagnostic.t list

val check_microbenchmark_refs : Model.element -> Diagnostic.t list

(** Referenced meta-models must exist when a [lookup] is supplied. *)
val check_references : ?lookup:Inheritance.lookup -> Model.element -> Diagnostic.t list

(** Run every check. *)
val run : ?lookup:Inheritance.lookup -> Model.element -> Diagnostic.t list

(** True if {!run} yields no errors (warnings allowed). *)
val is_valid : ?lookup:Inheritance.lookup -> Model.element -> bool
