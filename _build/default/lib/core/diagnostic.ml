(** Diagnostics produced by elaboration and validation.

    Every message carries the source position of the offending XML node so
    tools can report [file:line:col]-style errors over [.xpdl] files. *)

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

type t = { severity : severity; pos : Xpdl_xml.Dom.position; message : string }

let error ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Error; pos; message }) fmt

let warning ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Warning; pos; message }) fmt

let info ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Info; pos; message }) fmt

let is_error d = d.severity = Error

let pp ppf d =
  Fmt.pf ppf "%a: %a: %s" Xpdl_xml.Dom.pp_position d.pos pp_severity d.severity d.message

let pp_list ppf ds = Fmt.(list ~sep:cut pp) ppf ds

(** True if no diagnostic in the list is an error. *)
let all_ok ds = not (List.exists is_error ds)

let errors ds = List.filter is_error ds

(** Raise [Failure] with a rendered message list if any error is present. *)
let check_exn ds =
  if not (all_ok ds) then failwith (Fmt.str "@[<v>%a@]" pp_list (errors ds))
