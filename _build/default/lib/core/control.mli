(** Control relations and abstract platform patterns — the "secondary
    aspect" of Sec. II: derive Master/Hybrid/Worker hierarchies from the
    hardware-structural model (explicit [role] attributes win) and match
    platforms against reusable patterns. *)

type role = Master | Hybrid | Worker

val role_name : role -> string
val pp_role : Format.formatter -> role -> unit

type pu = {
  cu_ident : string;
  cu_role : role;
  cu_element : Model.element;
  cu_explicit : bool;  (** role came from a [role] attribute *)
}

type tree = {
  ct_root : pu;  (** the Master (synthetic ["runtime_system"] when no unique master exists) *)
  ct_children : pu list;
}

exception Control_error of string

(** The control-relevant processing units: CPUs and devices not nested
    inside other devices. *)
val processing_units : Model.element -> Model.element list

(** Derive the control hierarchy; raises {!Control_error} if the model
    has no processing unit. *)
val derive : Model.element -> tree

val workers : tree -> pu list
val hybrids : tree -> pu list
val pp_tree : Format.formatter -> tree -> unit

(** {1 Abstract platform patterns} *)

type slot_constraint = {
  sc_role : role;
  sc_min : int;
  sc_max : int option;
  sc_type_affix : string option;
}

type pattern = { pat_name : string; pat_slots : slot_constraint list }

val slot : ?min:int -> ?max:int -> ?type_affix:string -> role -> slot_constraint

(** Canonical patterns. *)
val host_accelerator : pattern

val symmetric_multicore : pattern
val multi_gpu_node : pattern

(** Host plus self-scheduling coprocessors (Xeon Phi class). *)
val host_coprocessor : pattern

(** Bind each pattern slot to the concrete PUs satisfying it; [None] if
    any slot's multiplicity cannot be met. *)
val assign : pattern -> tree -> (slot_constraint * pu list) list option

val matches : pattern -> tree -> bool

(** The most specific canonical pattern the platform matches, if any. *)
val classify : tree -> pattern option
