(** The core XPDL meta-model: element kinds and their attribute schemas —
    the OCaml counterpart of the central [xpdl.xsd] (Sec. IV).  The
    toolchain's views ([xpdl.xsd], UML, the C++ query API) are generated
    from these tables, and {!Validate} checks models against them. *)

(** Element kinds of the XPDL language, one per XML tag. *)
type kind =
  | System
  | Cluster
  | Node
  | Socket
  | Cpu
  | Core
  | Cache
  | Memory
  | Device  (** accelerator board: GPU, DSP card, ... *)
  | Interconnect
  | Interconnects  (** container grouping interconnect instances *)
  | Channel  (** directional sub-link of an interconnect (Listing 3) *)
  | Group  (** grouping/replication construct (prefix/quantity) *)
  | Software
  | Host_os
  | Installed
  | Programming_model
  | Power_model
  | Power_domains
  | Power_domain
  | Power_state_machine
  | Power_states
  | Power_state
  | Transitions
  | Transition
  | Instructions
  | Instruction  (** [<inst>] *)
  | Data  (** per-frequency value row inside [<inst>] (Listing 14) *)
  | Microbenchmarks
  | Microbenchmark
  | Const
  | Param
  | Constraints
  | Constraint
  | Properties
  | Property
  | Other of string  (** unknown tag, preserved for extensibility *)

val kind_of_tag : string -> kind
val tag_of_kind : kind -> string
val equal_kind : kind -> kind -> bool
val pp_kind : Format.formatter -> kind -> unit

(** Declared type of an attribute value. *)
type attr_type =
  | A_string
  | A_int
  | A_float
  | A_bool
  | A_ident  (** a reference to a named model/meta-model *)
  | A_quantity of Xpdl_units.Units.dimension
      (** numeric metric whose unit comes from the sibling
          [<metric>_unit] attribute ([unit] for [size]) *)
  | A_enum of string list
  | A_expr  (** an {!Xpdl_expr.Expr} expression *)

type attr_spec = { a_name : string; a_type : attr_type; a_required : bool }

(** Attributes common to every element kind ([name], [id], [type],
    [extends], [role]). *)
val common_attrs : attr_spec list

(** Kind-specific attribute table. *)
val specific_attrs : kind -> attr_spec list

(** All attribute specs admitted by [kind] (common + specific). *)
val attrs_of_kind : kind -> attr_spec list

val attr_spec : kind -> string -> attr_spec option

(** Param-type names usable in [<param type="...">] (not meta-model
    references): [msize], [integer], [frequency], ... *)
val param_type_names : string list

val is_param_type : string -> bool

(** Structural containment: which child kinds may appear under each
    parent (Sec. III-B). *)
val allowed_children : kind -> kind list

(** True if [child] may structurally appear directly under [parent];
    unknown ([Other]) children are always allowed (extensibility). *)
val child_allowed : parent:kind -> child:kind -> bool

(** Kinds denoting hardware components that contribute static power —
    the nodes of the hierarchical energy model (Sec. III-D). *)
val is_hardware : kind -> bool
