(** Instantiation: parameter binding, group expansion, constraint
    checking (Sec. III-B).

    Walks an inheritance-flattened model top-down with a scoped
    environment of [<const>]/[<param>] bindings, substitutes parameter
    values into attribute expressions, verifies declared [range]s and
    [<constraint>]s, and expands [group] elements: [quantity=n] becomes
    [n] sibling scope copies, identified [prefix0 .. prefix(n-1)]
    (Listing 1's [core0..core3]). *)

(** External configuration overrides: name → SI-normalized value. *)
type env = (string * Xpdl_expr.Expr.value) list

(** Instantiate; the tree is usable even with diagnostics present
    (erroneous parts are left unexpanded). *)
val run : ?env:env -> Model.element -> Model.element * Diagnostic.t list

(** Parameter names still unbound in the subtree (required deployment
    configuration). *)
val unbound_params : Model.element -> string list
