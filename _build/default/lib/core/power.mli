(** Typed views of XPDL power models (Sec. III-C): power domains, power
    state machines, instruction energy tables and microbenchmark suites,
    extracted from generic {!Model} elements.  All values SI-normalized
    (Hz, W, J, s). *)

(** One power state: an abstract DVFS/shutdown level (P/C state). *)
type power_state = {
  ps_name : string;
  ps_frequency : float;  (** Hz; 0 for pure sleep states *)
  ps_power : float;  (** W, static power at this state *)
}

(** A legal transition between power states with its switching costs. *)
type transition = {
  tr_from : string;
  tr_to : string;
  tr_time : float;  (** s *)
  tr_energy : float;  (** J *)
}

type state_machine = {
  sm_name : string;
  sm_domain : string option;  (** the [power_domain] it governs *)
  sm_states : power_state list;
  sm_transitions : transition list;
}

(** The [switchoffCondition="<group> off"] of Listing 12. *)
type switchoff_condition = { requires_group : string; required_state : [ `Off | `On ] }

(** A power domain/island: components switched together. *)
type domain = {
  pd_name : string;
  pd_switchable : bool;  (** [enableSwitchOff]; the main domain is [false] *)
  pd_condition : switchoff_condition option;
  pd_idle_power : float option;  (** W while powered but idle *)
  pd_members : Model.element list;  (** member selectors *)
}

(** Dynamic energy specification of one instruction (Listing 14). *)
type instruction_energy =
  | Fixed of float  (** J per instruction, given in-line *)
  | By_frequency of (float * float) list  (** sorted (Hz, J) table *)
  | To_benchmark  (** ["?"]: derive by microbenchmarking at deployment *)

type instruction = {
  in_name : string;
  in_energy : instruction_energy;
  in_mb : string option;  (** microbenchmark id that measures it *)
  in_latency : int option;  (** cycles *)
  in_throughput : float option;  (** instructions/cycle *)
}

type isa = {
  isa_name : string;
  isa_default_mb : string option;
  isa_instructions : instruction list;
}

(** One microbenchmark of a suite (Listing 15). *)
type microbenchmark = {
  mb_id : string;
  mb_instruction : string;  (** instruction measured (the [type]) *)
  mb_file : string option;
  mb_cflags : string option;
  mb_lflags : string option;
  mb_iterations : int;
}

type suite = {
  su_id : string;
  su_instruction_set : string option;
  su_path : string option;
  su_command : string option;
  su_benches : microbenchmark list;
}

(** A complete power model. *)
type t = {
  pm_name : string option;
  pm_domains : domain list;
  pm_machines : state_machine list;
  pm_isas : isa list;
  pm_suites : suite list;
}

val extract_domain : Model.element -> domain

(** Domains of a [<power_domains>] subtree, descending through groups. *)
val extract_domains : Model.element -> domain list

val extract_state_machine : Model.element -> state_machine
val extract_isa : Model.element -> isa
val extract_suite : Model.element -> suite

(** Extract every power-modeling structure present in the subtree. *)
val of_element : Model.element -> t

(** Internal consistency of a state machine: duplicate states, dangling
    transition endpoints, negative costs, unreachable states. *)
val validate_state_machine : state_machine -> Diagnostic.t list

val find_state : state_machine -> string -> power_state option
val find_transition : state_machine -> from_state:string -> to_state:string -> transition option

(** Instructions whose energy must be derived by microbenchmarking. *)
val unresolved_instructions : isa -> instruction list

(** Energy of one execution at clock [hz]: fixed values as-is, frequency
    tables interpolated linearly and clamped; [None] for
    [To_benchmark]. *)
val instruction_energy_at : instruction -> hz:float -> float option
