(** Resolution of [extends] inheritance and [type] meta-model references
    (Sec. III-A).

    Merge rules, highest priority first: the element's own attributes and
    children; supertypes left to right.  Children merge by (kind,
    identifier) key — [<param name="num_SM" value="13"/>] refines the
    inherited declaration.  [type] on memory elements doubles as a
    technology label when unresolvable, and [type] inside power domains
    is a member selector, never resolved. *)

exception Unresolved of { referer : Model.element; missing : string }
exception Cycle of string list

(** Source of meta-model definitions by name; the repository provides
    this. *)
type lookup = string -> Model.element option

(** Merge [sub] over [super] (sub's fields win); exposed for tests. *)
val merge : super:Model.element -> sub:Model.element -> Model.element

(** Fully flatten all [extends]/[type] references in the subtree.
    Raises {!Unresolved} / {!Cycle}.  [keep_type_ref] (default [true])
    retains the [type] attribute on instances so queries can still ask
    "is this a Nvidia_K20c". *)
val resolve : ?keep_type_ref:bool -> lookup -> Model.element -> Model.element

(** Like {!resolve} but collecting failures as diagnostics; unresolved
    references are left in place. *)
val resolve_lenient : lookup -> Model.element -> Model.element * Diagnostic.t list
