(** Diagnostics produced by elaboration and validation, each carrying the
    source position of the offending XML node. *)

type severity = Error | Warning | Info

val pp_severity : Format.formatter -> severity -> unit

type t = { severity : severity; pos : Xpdl_xml.Dom.position; message : string }

val error : ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** True if no diagnostic in the list is an error (warnings allowed). *)
val all_ok : t list -> bool

val errors : t list -> t list

(** Raise [Failure] with a rendered message list if any error is present. *)
val check_exn : t list -> unit
