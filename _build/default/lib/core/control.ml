(** Control relations and abstract platform patterns (Sec. II).

    The paper argues that the control relation (PDL's Master / Hybrid /
    Worker hierarchy) should not be the overarching structure of a
    platform description, but that XPDL "should still allow the
    definition of abstract platform (i.e., generic control hierarchy)
    patterns ... as a secondary aspect to a more architecture oriented
    structural specification", with control relations "optionally
    model[ed] separately (referencing the involved hardware entities)" or
    inferred "from the hardware entities alone" where possible.

    This module implements that secondary aspect:

    - {!derive} infers a control hierarchy from a composed model:
      explicit [role] attributes win (Listing 4's
      [<cpu id="myriad_host" role="master"/>]); otherwise CPUs default
      to control-capable and devices to workers.  A dual-CPU system gets
      hybrid CPUs under a synthetic root, reflecting the paper's point
      that a unique Master is often a fiction of the programming model.
    - {!matches} checks a concrete platform against an abstract pattern
      (counts and type constraints per role), and {!assign} instantiates
      the pattern by binding its role slots to concrete hardware. *)

type role = Master | Hybrid | Worker

let role_name = function Master -> "master" | Hybrid -> "hybrid" | Worker -> "worker"
let pp_role ppf r = Fmt.string ppf (role_name r)

type pu = {
  cu_ident : string;
  cu_role : role;
  cu_element : Model.element;
  cu_explicit : bool;  (** role came from a [role] attribute *)
}

type tree = {
  ct_root : pu;  (** the Master (possibly synthetic for multi-master) *)
  ct_children : pu list;  (** hybrids and workers controlled by the root *)
}

let role_of_string = function
  | "master" -> Some Master
  | "hybrid" -> Some Hybrid
  | "worker" -> Some Worker
  | _ -> None

let declared_role (e : Model.element) =
  Option.bind (Model.attr_string e "role") role_of_string

(* Control-relevant hardware: CPUs and devices directly reachable outside
   other devices (a device's internal CPU is not independently
   launchable). *)
let processing_units (root : Model.element) : Model.element list =
  let acc = ref [] in
  let rec walk ~inside_device (e : Model.element) =
    if Model.is_metadata_subtree e.Model.kind then ()
    else begin
      (match e.Model.kind with
      | Schema.Cpu when not inside_device -> acc := e :: !acc
      | Schema.Device when not inside_device -> acc := e :: !acc
      | _ -> ());
      let inside_device = inside_device || Schema.equal_kind e.Model.kind Schema.Device in
      List.iter (walk ~inside_device) e.Model.children
    end
  in
  walk ~inside_device:false root;
  List.rev !acc

exception Control_error of string

(** Derive the control hierarchy of a composed system.  Raises
    {!Control_error} only if the model contains no processing unit. *)
let derive (root : Model.element) : tree =
  let pus = processing_units root in
  if pus = [] then raise (Control_error "model has no processing units");
  let classified =
    List.mapi
      (fun i (e : Model.element) ->
        let ident =
          match Model.identifier e with
          | Some x -> x
          | None -> Fmt.str "%s%d" (Schema.tag_of_kind e.Model.kind) i
        in
        match declared_role e with
        | Some r -> { cu_ident = ident; cu_role = r; cu_element = e; cu_explicit = true }
        | None ->
            let r =
              match e.Model.kind with Schema.Device -> Worker | _ -> Hybrid
            in
            { cu_ident = ident; cu_role = r; cu_element = e; cu_explicit = false })
      pus
  in
  let masters = List.filter (fun p -> p.cu_role = Master) classified in
  match masters with
  | [ m ] -> { ct_root = m; ct_children = List.filter (fun p -> p != m) classified }
  | [] -> (
      (* no explicit master: promote a lone control-capable CPU, else keep
         everyone hybrid under a synthetic root (the dual-CPU case) *)
      let cpus = List.filter (fun p -> Schema.equal_kind p.cu_element.Model.kind Schema.Cpu) classified in
      match cpus with
      | [ cpu ] ->
          let m = { cpu with cu_role = Master } in
          { ct_root = m; ct_children = List.filter (fun p -> p.cu_ident <> cpu.cu_ident) classified }
      | _ ->
          let synthetic =
            {
              cu_ident = "runtime_system";
              cu_role = Master;
              cu_element = root;
              cu_explicit = false;
            }
          in
          { ct_root = synthetic; ct_children = classified })
  | _ :: _ :: _ ->
      (* several explicit masters: the runtime system arbitrates *)
      let synthetic =
        { cu_ident = "runtime_system"; cu_role = Master; cu_element = root; cu_explicit = false }
      in
      { ct_root = synthetic; ct_children = classified }

let workers t = List.filter (fun p -> p.cu_role = Worker) t.ct_children
let hybrids t = List.filter (fun p -> p.cu_role = Hybrid) t.ct_children

let pp_tree ppf t =
  Fmt.pf ppf "@[<v 2>%s (master%s)" t.ct_root.cu_ident
    (if t.ct_root.cu_explicit then "" else ", inferred");
  List.iter
    (fun p -> Fmt.pf ppf "@,+- %s (%a%s)" p.cu_ident pp_role p.cu_role
        (if p.cu_explicit then "" else ", inferred"))
    t.ct_children;
  Fmt.pf ppf "@]"

(** {1 Abstract platform patterns}

    A pattern constrains the shape of the control hierarchy — PDL's
    platform patterns, recast as predicates over the derived (or
    explicitly specified) control relation plus hardware types. *)

type slot_constraint = {
  sc_role : role;
  sc_min : int;
  sc_max : int option;
  sc_type_affix : string option;
      (** substring the PU's [type] reference (or kind tag) must contain *)
}

type pattern = { pat_name : string; pat_slots : slot_constraint list }

let slot ?(min = 1) ?max ?type_affix role =
  { sc_role = role; sc_min = min; sc_max = max; sc_type_affix = type_affix }

(** Canonical patterns from the heterogeneous-computing literature. *)
let host_accelerator : pattern =
  { pat_name = "host_accelerator"; pat_slots = [ slot Master; slot Worker ] }

let symmetric_multicore : pattern =
  {
    pat_name = "symmetric_multicore";
    pat_slots = [ slot Master; slot ~min:0 ~max:0 Worker; slot ~min:0 ~max:0 Hybrid ];
  }

let multi_gpu_node : pattern =
  {
    pat_name = "multi_gpu_node";
    pat_slots = [ slot Master; slot ~min:2 ~type_affix:"Nvidia" Worker ];
  }

(** Host plus self-scheduling coprocessors (Xeon Phi class). *)
let host_coprocessor : pattern =
  { pat_name = "host_coprocessor"; pat_slots = [ slot Master; slot Hybrid ] }

let contains_affix ~affix s =
  let al = String.length affix and sl = String.length s in
  let rec go i = i + al <= sl && (String.sub s i al = affix || go (i + 1)) in
  go 0

let pu_matches_constraint (c : slot_constraint) (p : pu) =
  p.cu_role = c.sc_role
  &&
  match c.sc_type_affix with
  | None -> true
  | Some affix -> (
      match p.cu_element.Model.type_ref with
      | Some t -> contains_affix ~affix t
      | None -> contains_affix ~affix (Schema.tag_of_kind p.cu_element.Model.kind))

(** Bind each pattern slot to the concrete PUs satisfying it; [None] if
    any slot's multiplicity cannot be met. *)
let assign (pat : pattern) (t : tree) : (slot_constraint * pu list) list option =
  let all = t.ct_root :: t.ct_children in
  let bindings =
    List.map (fun c -> (c, List.filter (pu_matches_constraint c) all)) pat.pat_slots
  in
  let ok =
    List.for_all
      (fun ((c : slot_constraint), pus) ->
        let n = List.length pus in
        n >= c.sc_min && match c.sc_max with Some m -> n <= m | None -> true)
      bindings
  in
  if ok then Some bindings else None

(** Does the platform instantiate the pattern? *)
let matches pat t = assign pat t <> None

(** The most specific canonical pattern the platform matches, if any. *)
let classify (t : tree) : pattern option =
  List.find_opt (fun p -> matches p t)
    [ multi_gpu_node; host_accelerator; host_coprocessor; symmetric_multicore ]
