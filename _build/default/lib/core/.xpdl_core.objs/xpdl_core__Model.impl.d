lib/core/model.ml: Bool Float Fmt Hashtbl Int List Option Schema String Units Xpdl_expr Xpdl_units Xpdl_xml
