lib/core/elaborate.ml: Diagnostic List Model Schema String Units Xpdl_expr Xpdl_units Xpdl_xml
