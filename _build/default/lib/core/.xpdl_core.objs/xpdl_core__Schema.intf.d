lib/core/schema.mli: Format Xpdl_units
