lib/core/instantiate.ml: Diagnostic Float List Model Option Schema String Units Xpdl_expr Xpdl_units
