lib/core/control.ml: Fmt List Model Option Schema String
