lib/core/diagnostic.ml: Fmt List Xpdl_xml
