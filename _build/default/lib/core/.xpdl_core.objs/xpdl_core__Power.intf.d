lib/core/power.mli: Diagnostic Model
