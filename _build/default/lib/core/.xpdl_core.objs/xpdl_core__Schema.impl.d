lib/core/schema.ml: Fmt List String Units Xpdl_units
