lib/core/instantiate.mli: Diagnostic Model Xpdl_expr
