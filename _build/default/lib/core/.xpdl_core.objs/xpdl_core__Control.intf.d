lib/core/control.mli: Format Model
