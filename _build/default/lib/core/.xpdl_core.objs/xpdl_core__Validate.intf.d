lib/core/validate.mli: Diagnostic Inheritance Model
