lib/core/validate.ml: Diagnostic Hashtbl Inheritance List Model Option Power Schema String
