lib/core/power.ml: Diagnostic Hashtbl List Model Option Schema String Units Xpdl_units
