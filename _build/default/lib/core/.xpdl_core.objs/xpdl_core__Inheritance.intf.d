lib/core/inheritance.mli: Diagnostic Model
