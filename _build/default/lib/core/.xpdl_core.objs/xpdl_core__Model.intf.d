lib/core/model.mli: Format Schema Xpdl_expr Xpdl_units Xpdl_xml
