lib/core/inheritance.ml: Diagnostic List Model Option Schema String
