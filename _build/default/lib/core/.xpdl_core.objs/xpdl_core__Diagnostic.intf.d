lib/core/diagnostic.mli: Format Xpdl_xml
