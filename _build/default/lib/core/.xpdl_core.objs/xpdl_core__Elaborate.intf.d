lib/core/elaborate.mli: Diagnostic Model Xpdl_xml
