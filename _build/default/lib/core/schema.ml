(** The core XPDL meta-model: element kinds and their attribute schemas.

    This module is the OCaml counterpart of the central [xpdl.xsd] schema
    from which the paper generates the C++ runtime classes (Sec. IV).  It
    enumerates every element kind the language defines, which attributes
    each kind admits, the type/dimension of each attribute, and which
    kinds may nest inside which.  {!Validate} checks models against these
    tables; PDL, by contrast, can only model such information as untyped
    string properties (Sec. II-C), which is one of the comparisons in the
    E9 experiment. *)

(** Element kinds of the XPDL language, one per XML tag. *)
type kind =
  | System  (** top-level concrete machine model *)
  | Cluster
  | Node
  | Socket
  | Cpu
  | Core
  | Cache
  | Memory
  | Device  (** accelerator board: GPU, DSP card, ... *)
  | Interconnect
  | Interconnects  (** container grouping interconnect instances *)
  | Channel  (** directional sub-link of an interconnect (Listing 3) *)
  | Group  (** grouping/replication construct (prefix/quantity) *)
  | Software  (** container for installed system software *)
  | Host_os
  | Installed
  | Programming_model
  | Power_model
  | Power_domains
  | Power_domain
  | Power_state_machine
  | Power_states
  | Power_state
  | Transitions
  | Transition
  | Instructions
  | Instruction  (** [<inst>] *)
  | Data  (** per-frequency value row inside [<inst>] (Listing 14) *)
  | Microbenchmarks
  | Microbenchmark
  | Const
  | Param
  | Constraints
  | Constraint
  | Properties
  | Property
  | Other of string  (** unknown tag, preserved for extensibility *)

let kind_of_tag = function
  | "system" -> System
  | "cluster" -> Cluster
  | "node" -> Node
  | "socket" -> Socket
  | "cpu" -> Cpu
  | "core" -> Core
  | "cache" -> Cache
  | "memory" -> Memory
  | "device" | "gpu" -> Device
  | "interconnect" -> Interconnect
  | "interconnects" -> Interconnects
  | "channel" -> Channel
  | "group" -> Group
  | "software" -> Software
  | "hostOS" -> Host_os
  | "installed" -> Installed
  | "programming_model" -> Programming_model
  | "power_model" -> Power_model
  | "power_domains" -> Power_domains
  | "power_domain" -> Power_domain
  | "power_state_machine" -> Power_state_machine
  | "power_states" -> Power_states
  | "power_state" -> Power_state
  | "transitions" -> Transitions
  | "transition" -> Transition
  | "instructions" -> Instructions
  | "inst" -> Instruction
  | "data" -> Data
  | "microbenchmarks" -> Microbenchmarks
  | "microbenchmark" -> Microbenchmark
  | "const" -> Const
  | "param" -> Param
  | "constraints" -> Constraints
  | "constraint" -> Constraint
  | "properties" -> Properties
  | "property" -> Property
  | tag -> Other tag

let tag_of_kind = function
  | System -> "system"
  | Cluster -> "cluster"
  | Node -> "node"
  | Socket -> "socket"
  | Cpu -> "cpu"
  | Core -> "core"
  | Cache -> "cache"
  | Memory -> "memory"
  | Device -> "device"
  | Interconnect -> "interconnect"
  | Interconnects -> "interconnects"
  | Channel -> "channel"
  | Group -> "group"
  | Software -> "software"
  | Host_os -> "hostOS"
  | Installed -> "installed"
  | Programming_model -> "programming_model"
  | Power_model -> "power_model"
  | Power_domains -> "power_domains"
  | Power_domain -> "power_domain"
  | Power_state_machine -> "power_state_machine"
  | Power_states -> "power_states"
  | Power_state -> "power_state"
  | Transitions -> "transitions"
  | Transition -> "transition"
  | Instructions -> "instructions"
  | Instruction -> "inst"
  | Data -> "data"
  | Microbenchmarks -> "microbenchmarks"
  | Microbenchmark -> "microbenchmark"
  | Const -> "const"
  | Param -> "param"
  | Constraints -> "constraints"
  | Constraint -> "constraint"
  | Properties -> "properties"
  | Property -> "property"
  | Other tag -> tag

let equal_kind (a : kind) (b : kind) =
  match (a, b) with
  | Other x, Other y -> String.equal x y
  | _ -> a = b

let pp_kind ppf k = Fmt.string ppf (tag_of_kind k)

(** Declared type of an attribute value in the schema. *)
type attr_type =
  | A_string
  | A_int
  | A_float
  | A_bool
  | A_ident  (** a reference to a named model/meta-model *)
  | A_quantity of Xpdl_units.Units.dimension
      (** numeric metric whose unit comes from the sibling [<metric>_unit]
          attribute (or [unit] for [size]) *)
  | A_enum of string list
  | A_expr  (** an {!Xpdl_expr.Expr} expression *)

(** Schema entry for one attribute of one element kind. *)
type attr_spec = {
  a_name : string;
  a_type : attr_type;
  a_required : bool;
}

let req name ty = { a_name = name; a_type = ty; a_required = true }
let opt name ty = { a_name = name; a_type = ty; a_required = false }

(* Attributes common to every element kind: identification and reuse
   machinery (Sec. III-A). *)
let common_attrs =
  [
    opt "name" A_ident;  (* meta-model identifier *)
    opt "id" A_ident;  (* concrete-model identifier *)
    opt "type" A_ident;  (* reference to a meta-model *)
    opt "extends" A_string;  (* whitespace-separated supertype list *)
    opt "role" (A_enum [ "master"; "worker"; "hybrid" ]);
  ]

open Xpdl_units

(* Kind-specific attribute tables.  Metric attributes are declared once;
   the elaborator pairs them with their metric_unit sibling. *)
let specific_attrs : kind -> attr_spec list = function
  | System | Node | Socket | Cluster -> [ opt "static_power" (A_quantity Units.Power) ]
  | Cpu ->
      [
        opt "frequency" (A_quantity Units.Frequency);
        opt "cores" A_int;
        opt "static_power" (A_quantity Units.Power);
        opt "max_power" (A_quantity Units.Power);
        opt "lithography" A_string;
        opt "vendor" A_string;
      ]
  | Core ->
      [
        opt "frequency" (A_quantity Units.Frequency);
        opt "endian" (A_enum [ "LE"; "BE" ]);
        opt "isa" A_ident;
        opt "static_power" (A_quantity Units.Power);
        opt "threads" A_int;
      ]
  | Cache ->
      [
        opt "size" (A_quantity Units.Size);
        opt "sets" A_int;
        opt "ways" A_int;
        opt "line_size" (A_quantity Units.Size);
        opt "replacement" (A_enum [ "LRU"; "FIFO"; "random"; "PLRU" ]);
        opt "write_policy" (A_enum [ "copyback"; "writethrough" ]);
        opt "latency" (A_quantity Units.Time);
        opt "energy_per_access" (A_quantity Units.Energy);
        opt "level" A_int;
        opt "static_power" (A_quantity Units.Power);
        opt "shared" A_bool;
      ]
  | Memory ->
      [
        opt "size" (A_quantity Units.Size);
        opt "static_power" (A_quantity Units.Power);
        opt "latency" (A_quantity Units.Time);
        opt "bandwidth" (A_quantity Units.Bandwidth);
        opt "energy_per_access" (A_quantity Units.Energy);
        opt "slices" A_int;
        opt "endian" (A_enum [ "LE"; "BE" ]);
        opt "ecc" A_bool;
      ]
  | Device ->
      [
        opt "compute_capability" A_float;
        opt "static_power" (A_quantity Units.Power);
        opt "max_power" (A_quantity Units.Power);
        opt "frequency" (A_quantity Units.Frequency);
        opt "vendor" A_string;
      ]
  | Interconnect ->
      [
        opt "head" A_ident;
        opt "tail" A_ident;
        opt "max_bandwidth" (A_quantity Units.Bandwidth);
        opt "latency" (A_quantity Units.Time);
        opt "static_power" (A_quantity Units.Power);
        opt "duplex" (A_enum [ "half"; "full" ]);
      ]
  | Interconnects -> []
  | Channel ->
      [
        opt "max_bandwidth" (A_quantity Units.Bandwidth);
        opt "time_offset_per_message" (A_quantity Units.Time);
        opt "energy_per_byte" (A_quantity Units.Energy);
        opt "energy_offset_per_message" (A_quantity Units.Energy);
        opt "latency" (A_quantity Units.Time);
      ]
  | Group ->
      [
        opt "prefix" A_string;
        opt "quantity" A_expr;  (* integer literal or parameter name, Listing 8 *)
      ]
  | Software -> []
  | Host_os -> [ opt "kernel" A_string; opt "version" A_string ]
  | Installed -> [ opt "path" A_string; opt "version" A_string ]
  | Programming_model -> []
  | Power_model -> []
  | Power_domains -> []
  | Power_domain ->
      [
        opt "enableSwitchOff" A_bool;
        opt "switchoffCondition" A_string;  (* "<group> off" per Listing 12 *)
        opt "idle_power" (A_quantity Units.Power);
      ]
  | Power_state_machine -> [ opt "power_domain" A_ident ]
  | Power_states -> []
  | Power_state ->
      [
        opt "frequency" (A_quantity Units.Frequency);
        opt "power" (A_quantity Units.Power);
        opt "voltage" (A_quantity Units.Voltage);
        opt "kind" (A_enum [ "P"; "C" ]);
      ]
  | Transitions -> []
  | Transition ->
      [
        req "head" A_ident;
        req "tail" A_ident;
        opt "time" (A_quantity Units.Time);
        opt "energy" (A_quantity Units.Energy);
      ]
  | Instructions -> [ opt "mb" A_ident ]
  | Instruction ->
      [
        opt "energy" (A_quantity Units.Energy);
        opt "latency" A_int;  (* cycles *)
        opt "throughput" A_float;  (* instructions/cycle *)
        opt "mb" A_ident;
      ]
  | Data ->
      [
        opt "frequency" (A_quantity Units.Frequency);
        opt "energy" (A_quantity Units.Energy);
        opt "power" (A_quantity Units.Power);
      ]
  | Microbenchmarks ->
      [ opt "instruction_set" A_ident; opt "path" A_string; opt "command" A_string ]
  | Microbenchmark ->
      [ opt "file" A_string; opt "cflags" A_string; opt "lflags" A_string; opt "iterations" A_int ]
  | Const -> [ opt "size" (A_quantity Units.Size); opt "value" A_expr; opt "unit" A_string ]
  | Param ->
      [
        opt "configurable" A_bool;
        opt "value" A_expr;
        opt "range" A_string;  (* comma-separated allowed values *)
        opt "size" (A_quantity Units.Size);
        opt "frequency" (A_quantity Units.Frequency);
        opt "unit" A_string;
      ]
  | Constraints -> []
  | Constraint -> [ req "expr" A_expr ]
  | Properties -> []
  | Property -> [ opt "value" A_string; opt "command" A_string ]
  | Other _ -> []

(** All attribute specs admitted by [kind] (common + specific). *)
let attrs_of_kind kind = common_attrs @ specific_attrs kind

(** Look up the spec of attribute [name] on [kind]. *)
let attr_spec kind name =
  List.find_opt (fun s -> String.equal s.a_name name) (attrs_of_kind kind)

(* "type" on <param name="..." type="msize"/> in Listing 8 declares the
   param's value type rather than a meta-model reference; recognized
   param-type names: *)
let param_type_names = [ "msize"; "integer"; "frequency"; "float"; "string"; "boolean" ]

let is_param_type name = List.mem name param_type_names

(** Which child kinds may appear under each parent kind (structural
    containment, Sec. III-B).  [Group] is transparent: it may appear
    anywhere a structural child may, and admits the parent's children. *)
let allowed_children : kind -> kind list = function
  | System ->
      [ Cluster; Node; Socket; Cpu; Memory; Device; Interconnects; Interconnect; Software;
        Properties; Group; Power_model ]
  | Cluster -> [ Node; Group; Interconnects; Interconnect; Properties ]
  | Node ->
      [ Socket; Cpu; Memory; Device; Interconnects; Interconnect; Group; Properties; Power_model ]
  | Socket -> [ Cpu; Group ]
  | Cpu ->
      [ Core; Cache; Memory; Group; Power_model; Instructions; Properties; Const; Param;
        Constraints ]
  | Core -> [ Cache; Group; Power_model; Instructions; Properties ]
  | Cache -> []
  | Memory -> []
  | Device ->
      [ Socket; Cpu; Core; Cache; Memory; Group; Power_model; Programming_model; Const; Param;
        Constraints; Properties; Instructions ]
  | Interconnect -> [ Channel; Properties ]
  | Interconnects -> [ Interconnect; Group ]
  | Channel -> []
  | Group ->
      [ Core; Cache; Memory; Cpu; Socket; Node; Device; Group; Interconnect; Power_domain;
        Power_state; Memory ]
  | Software -> [ Host_os; Installed; Programming_model ]
  | Host_os -> []
  | Installed -> []
  | Programming_model -> []
  | Power_model -> [ Power_domains; Power_state_machine; Instructions; Microbenchmarks ]
  | Power_domains -> [ Power_domain; Group ]
  | Power_domain -> [ Core; Cpu; Memory; Cache; Device; Group ]
  | Power_state_machine -> [ Power_states; Transitions ]
  | Power_states -> [ Power_state; Group ]
  | Power_state -> []
  | Transitions -> [ Transition ]
  | Transition -> []
  | Instructions -> [ Instruction ]
  | Instruction -> [ Data ]
  | Data -> []
  | Microbenchmarks -> [ Microbenchmark ]
  | Microbenchmark -> []
  | Const -> []
  | Param -> []
  | Constraints -> [ Constraint ]
  | Constraint -> []
  | Properties -> [ Property ]
  | Property -> []
  | Other _ -> []

(** True if [child] may structurally appear directly under [parent]. *)
let child_allowed ~parent ~child =
  match child with
  | Other _ -> true (* extensibility escape hatch *)
  | _ -> List.exists (fun k -> equal_kind k child) (allowed_children parent)

(** Kinds that denote hardware components contributing static power
    (the nodes of the hierarchical energy model, Sec. III-D). *)
let is_hardware = function
  | System | Cluster | Node | Socket | Cpu | Core | Cache | Memory | Device | Interconnect
  | Channel ->
      true
  | Interconnects | Group | Software | Host_os | Installed | Programming_model | Power_model
  | Power_domains | Power_domain | Power_state_machine | Power_states | Power_state
  | Transitions | Transition | Instructions | Instruction | Data | Microbenchmarks
  | Microbenchmark | Const | Param | Constraints | Constraint | Properties | Property
  | Other _ ->
      false
