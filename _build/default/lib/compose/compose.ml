(** Conditional composition: platform-guided selection of implementation
    variants (Sec. II "Using Platform Descriptions for Conditional
    Composition" and Sec. IV; the PEPPHER composition tool [2], [3]).

    A multi-variant {e component} bundles implementations of one
    functionality.  Each variant declares a {e selectability constraint} —
    a predicate over the platform's runtime model (is a library installed?
    is a CUDA device present?) and over runtime problem parameters (the
    nonzero density of the case study) — and a cost estimator derived from
    platform metadata.  The {e dispatcher} evaluates constraints through
    the {!Xpdl_query} API at call time and routes the call to the
    cheapest selectable variant: exactly the adaptive dynamic optimization
    the runtime query API exists for. *)

(** Everything a selectability constraint or cost model may consult. *)
type context = {
  query : Xpdl_query.Query.t;  (** the platform's runtime model *)
  machine : Xpdl_simhw.Machine.t;  (** the execution substrate *)
  problem : (string * float) list;  (** runtime call parameters *)
}

let problem_param ctx name = List.assoc_opt name ctx.problem

let problem_param_exn ctx name =
  match problem_param ctx name with
  | Some v -> v
  | None -> Fmt.invalid_arg "missing problem parameter %S" name

(** One implementation variant of a component. *)
type variant = {
  v_name : string;
  v_requires : string list;  (** software packages that must be installed *)
  v_selectable : context -> bool;  (** further constraints (hardware, size) *)
  v_estimate : context -> float option;
      (** predicted execution time (s) from platform metadata; [None] if
          the variant cannot predict for this problem *)
  v_run : context -> Xpdl_simhw.Machine.measurement;  (** execute for real *)
}

type component = { c_name : string; c_variants : variant list }

(** Why a variant was ruled out (for reports). *)
type rejection = { r_variant : string; r_reason : string }

type selection = {
  s_component : string;
  s_chosen : variant option;
  s_estimates : (string * float) list;  (** selectable variants, est. time *)
  s_rejections : rejection list;
}

let software_ok ctx v =
  List.filter_map
    (fun pkg ->
      if Xpdl_query.Query.has_installed ctx.query pkg then None
      else Some { r_variant = v.v_name; r_reason = Fmt.str "%s not installed" pkg })
    v.v_requires

(** Evaluate selectability of all variants and choose the one with the
    lowest estimated time (the "tuned selection of implementation
    variants" of the abstract). *)
let select (c : component) (ctx : context) : selection =
  let rejections = ref [] in
  let candidates =
    List.filter
      (fun v ->
        match software_ok ctx v with
        | [] ->
            if v.v_selectable ctx then true
            else begin
              rejections :=
                { r_variant = v.v_name; r_reason = "selectability constraint failed" }
                :: !rejections;
              false
            end
        | missing ->
            rejections := missing @ !rejections;
            false)
      c.c_variants
  in
  let estimates =
    List.filter_map
      (fun v -> Option.map (fun e -> (v, e)) (v.v_estimate ctx))
      candidates
  in
  let chosen =
    match List.sort (fun (_, a) (_, b) -> Float.compare a b) estimates with
    | (v, _) :: _ -> Some v
    | [] -> ( match candidates with v :: _ -> Some v | [] -> None)
  in
  {
    s_component = c.c_name;
    s_chosen = chosen;
    s_estimates = List.map (fun (v, e) -> (v.v_name, e)) estimates;
    s_rejections = List.rev !rejections;
  }

(** Dispatch: select and execute; returns the variant used and the
    measurement.  Raises if no variant is selectable. *)
let dispatch (c : component) (ctx : context) : string * Xpdl_simhw.Machine.measurement =
  match (select c ctx).s_chosen with
  | Some v -> (v.v_name, v.v_run ctx)
  | None ->
      Fmt.failwith "component %s: no selectable variant (%a)" c.c_name
        Fmt.(list ~sep:comma (fun ppf r -> Fmt.pf ppf "%s: %s" r.r_variant r.r_reason))
        (select c ctx).s_rejections

(** Run a specific variant by name regardless of tuning (baselines). *)
let run_variant (c : component) (ctx : context) name : Xpdl_simhw.Machine.measurement option =
  Option.map
    (fun v -> v.v_run ctx)
    (List.find_opt (fun v -> String.equal v.v_name name) c.c_variants)

let variant_names c = List.map (fun v -> v.v_name) c.c_variants

let pp_selection ppf s =
  Fmt.pf ppf "%s -> %s (estimates: %a; rejected: %a)" s.s_component
    (match s.s_chosen with Some v -> v.v_name | None -> "<none>")
    Fmt.(list ~sep:comma (fun ppf (n, e) -> Fmt.pf ppf "%s=%.3gms" n (e *. 1e3)))
    s.s_estimates
    Fmt.(list ~sep:comma (fun ppf r -> Fmt.pf ppf "%s(%s)" r.r_variant r.r_reason))
    s.s_rejections
