(** Conditional composition (Sec. II, IV; refs [2], [3]): multi-variant
    components whose selectability constraints are evaluated against the
    platform's runtime model at call time, with tuned dispatch to the
    variant of lowest estimated cost. *)

(** Everything a selectability constraint or cost model may consult. *)
type context = {
  query : Xpdl_query.Query.t;  (** the platform's runtime model *)
  machine : Xpdl_simhw.Machine.t;  (** the execution substrate *)
  problem : (string * float) list;  (** runtime call parameters *)
}

val problem_param : context -> string -> float option

(** Raises [Invalid_argument] on missing parameters. *)
val problem_param_exn : context -> string -> float

(** One implementation variant of a component. *)
type variant = {
  v_name : string;
  v_requires : string list;  (** software packages that must be installed *)
  v_selectable : context -> bool;  (** further constraints *)
  v_estimate : context -> float option;  (** predicted execution time (s) *)
  v_run : context -> Xpdl_simhw.Machine.measurement;
}

type component = { c_name : string; c_variants : variant list }

type rejection = { r_variant : string; r_reason : string }

type selection = {
  s_component : string;
  s_chosen : variant option;
  s_estimates : (string * float) list;  (** selectable variants, est. time *)
  s_rejections : rejection list;
}

(** Evaluate selectability and choose the lowest-estimated variant. *)
val select : component -> context -> selection

(** Select and execute; raises [Failure] if no variant is selectable. *)
val dispatch : component -> context -> string * Xpdl_simhw.Machine.measurement

(** Run a specific variant by name regardless of tuning (baselines). *)
val run_variant : component -> context -> string -> Xpdl_simhw.Machine.measurement option

val variant_names : component -> string list
val pp_selection : Format.formatter -> selection -> unit
