(** The sparse matrix–vector multiply case study (Sec. II, ref. [3]).

    Three implementation variants of one SpMV component:

    - [cpu_csr]: multithreaded CSR on the host cores; requires a CPU
      sparse BLAS (MKL).
    - [cpu_dense]: dense MV on the host — prices every element but with
      regular, vectorizable accesses; wins at very high density.
    - [gpu_csr]: CUSPARSE-style CSR on the CUDA device, paying the PCIe
      transfer of the matrix and vectors; requires CUDA + CUSPARSE and a
      CUDA-capable device in the platform model.

    Selectability comes from the platform model (installed software,
    device presence); ranking comes from analytic cost estimates computed
    {e only} from platform metadata exposed by the query API — core
    counts, clock frequencies, effective link bandwidth — exactly the
    information flow the paper describes.  Problem parameters: [rows],
    [cols], [density], and [iterations] — the number of SpMV sweeps an
    iterative solver performs on the same matrix, over which the GPU
    amortizes its one-time PCIe transfer. *)

open Compose

let iterations_of_ctx ctx =
  int_of_float (Option.value ~default:1. (problem_param ctx "iterations"))

let spmv_of_ctx ctx =
  Xpdl_simhw.Kernels.spmv
    ~rows:(int_of_float (problem_param_exn ctx "rows"))
    ~cols:(int_of_float (Option.value ~default:(problem_param_exn ctx "rows") (problem_param ctx "cols")))
    ~density:(problem_param_exn ctx "density") ()

(* Host CPU facts from the runtime model: core count and min frequency of
   cores outside any device. *)
let host_facts ctx =
  let q = ctx.query in
  let root = Xpdl_query.Query.root q in
  let device_paths =
    List.map (fun d -> Xpdl_query.Query.path d) (Xpdl_query.Query.devices q)
  in
  let in_device (e : Xpdl_query.Query.element) =
    let p = Xpdl_query.Query.path e in
    List.exists
      (fun dp -> String.length p >= String.length dp && String.sub p 0 (String.length dp) = dp)
      device_paths
  in
  let host_cores =
    List.filter
      (fun c -> not (in_device c))
      (Xpdl_query.Query.hardware_of_kind q Xpdl_core.Schema.Core)
  in
  let freq =
    List.fold_left
      (fun acc c ->
        match Xpdl_query.Query.get c "frequency" with
        | Some (Xpdl_toolchain.Ir.VQty (v, _)) -> Float.max acc v
        | _ -> acc)
      0. host_cores
  in
  ignore root;
  (List.length host_cores, if freq > 0. then freq else 2e9)

let gpu_facts ctx =
  let q = ctx.query in
  List.find_map
    (fun d ->
      let cores = Xpdl_query.Query.count_cores ~within:d q in
      if cores = 0 then None
      else
        let freq =
          List.fold_left
            (fun acc c ->
              match Xpdl_query.Query.get c "frequency" with
              | Some (Xpdl_toolchain.Ir.VQty (v, _)) -> Float.max acc v
              | _ -> acc)
            0.
            (Xpdl_query.Query.hardware_of_kind ~within:d q Xpdl_core.Schema.Core)
        in
        Some (d, cores, if freq > 0. then freq else 700e6))
    (Xpdl_query.Query.devices q)

(* The PCIe link reaching the device, if modeled. *)
let gpu_link ctx =
  let q = ctx.query in
  List.find_map
    (fun (ic : Xpdl_query.Query.element) ->
      match Xpdl_query.Query.ident ic with
      | Some ident -> (
          match Xpdl_query.Query.link_bandwidth q ident with
          | Some bw -> Some (ident, bw)
          | None -> None)
      | None -> None)
    (Xpdl_query.Query.all_of_kind q Xpdl_core.Schema.Interconnect)

(* --- metadata-driven workload pricing ------------------------------

   The composition tool predicts a variant's execution time from the
   platform description alone: per-instruction latencies from the model's
   <instructions> tables, memory latencies from the <memory> descriptors,
   clock frequencies and core counts from the hardware tree.  This is the
   same information the simulated machine is built from, so a good
   prediction tracks (noisy) measurements — which is precisely why tuned
   selection works in the case study. *)

let instruction_latency ctx name ~default =
  let q = ctx.query in
  List.find_map
    (fun (inst : Xpdl_query.Query.element) ->
      match Xpdl_query.Query.ident inst with
      | Some n when String.equal n name -> Xpdl_query.Query.get_int inst "latency"
      | _ -> None)
    (Xpdl_query.Query.all_of_kind q Xpdl_core.Schema.Instruction)
  |> Option.value ~default

(* mean declared memory latency: the machine prices a cache-missing
   access at this figure *)
let mean_memory_latency ctx =
  let lats =
    List.filter_map
      (fun m -> Xpdl_query.Query.get_float m "latency")
      (Xpdl_query.Query.all_of_kind ctx.query Xpdl_core.Schema.Memory)
  in
  match lats with
  | [] -> 60e-9
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(** Predicted wall-clock of a workload on [cores] cores at [hz]. *)
let price ctx (w : Xpdl_simhw.Machine.workload) ~hz ~cores =
  let cycles =
    List.fold_left
      (fun acc (name, count) ->
        acc +. (float_of_int count *. float_of_int (instruction_latency ctx name ~default:4)))
      0. w.Xpdl_simhw.Machine.instructions
  in
  let serial =
    (cycles /. hz)
    +. (float_of_int w.Xpdl_simhw.Machine.memory_accesses *. mean_memory_latency ctx)
  in
  let pf = w.Xpdl_simhw.Machine.parallel_fraction in
  (serial *. (1. -. pf)) +. (serial *. pf /. float_of_int (max 1 cores))

(** {1 Variants} *)

let cpu_csr : variant =
  {
    v_name = "cpu_csr";
    v_requires = [ "MKL_11.0" ];
    v_selectable = (fun _ -> true);
    v_estimate =
      (fun ctx ->
        let m = spmv_of_ctx ctx in
        let cores, hz = host_facts ctx in
        let w =
          Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx) (Xpdl_simhw.Kernels.spmv_csr_cpu m)
        in
        Some (price ctx w ~hz ~cores));
    v_run =
      (fun ctx ->
        let m = spmv_of_ctx ctx in
        let cores, _ = host_facts ctx in
        Xpdl_simhw.Machine.run ~cores_used:(max 1 cores) ctx.machine
          (Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx) (Xpdl_simhw.Kernels.spmv_csr_cpu m)));
  }

let cpu_dense : variant =
  {
    v_name = "cpu_dense";
    v_requires = [];
    v_selectable =
      (fun ctx ->
        (* dense storage of the full matrix must fit in modeled memory *)
        let m = spmv_of_ctx ctx in
        let bytes = float_of_int m.rows *. float_of_int m.cols *. 8. in
        bytes <= Xpdl_query.Query.total_memory_bytes ctx.query);
    v_estimate =
      (fun ctx ->
        let m = spmv_of_ctx ctx in
        let cores, hz = host_facts ctx in
        let w =
          Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx) (Xpdl_simhw.Kernels.mv_dense_cpu m)
        in
        Some (price ctx w ~hz ~cores));
    v_run =
      (fun ctx ->
        let m = spmv_of_ctx ctx in
        let cores, _ = host_facts ctx in
        Xpdl_simhw.Machine.run ~cores_used:(max 1 cores) ctx.machine
          (Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx) (Xpdl_simhw.Kernels.mv_dense_cpu m)));
  }

let gpu_csr : variant =
  {
    v_name = "gpu_csr";
    v_requires = [ "CUDA_6.0"; "CUSPARSE_6.0" ];
    v_selectable = (fun ctx -> gpu_facts ctx <> None);
    v_estimate =
      (fun ctx ->
        match (gpu_facts ctx, gpu_link ctx) with
        | Some (_, cores, hz), Some (_, bw) ->
            let m = spmv_of_ctx ctx in
            (* the matrix crosses the link once per solve; the kernel runs
               once per sweep *)
            let xfer = float_of_int (Xpdl_simhw.Kernels.spmv_transfer_bytes m) /. bw in
            let w =
              Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx)
                (Xpdl_simhw.Kernels.spmv_csr_gpu m)
            in
            Some (xfer +. price ctx w ~hz ~cores)
        | _ -> None);
    v_run =
      (fun ctx ->
        match (gpu_facts ctx, gpu_link ctx) with
        | Some (_, cores, _), Some (link, _) ->
            let m = spmv_of_ctx ctx in
            let xfer_t, xfer_e =
              Xpdl_simhw.Machine.transfer ctx.machine ~link
                ~bytes:(Xpdl_simhw.Kernels.spmv_transfer_bytes m)
            in
            let gpu_core =
              (* run on a device core: any core whose path is inside a device *)
              Array.find_opt
                (fun (c : Xpdl_simhw.Machine.core) ->
                  match Xpdl_core.Model.attr_string c.core_element "isa" with
                  | Some "ptx_isa" -> true
                  | _ -> false)
                ctx.machine.Xpdl_simhw.Machine.cores
            in
            let meas =
              Xpdl_simhw.Machine.run
                ?core:(Option.map (fun c -> c.Xpdl_simhw.Machine.core_ident) gpu_core)
                ~cores_used:cores ctx.machine
                (Xpdl_simhw.Kernels.repeat (iterations_of_ctx ctx)
                   (Xpdl_simhw.Kernels.spmv_csr_gpu m))
            in
            {
              meas with
              Xpdl_simhw.Machine.elapsed = meas.Xpdl_simhw.Machine.elapsed +. xfer_t;
              dynamic_energy = meas.Xpdl_simhw.Machine.dynamic_energy +. xfer_e;
              total_energy = meas.Xpdl_simhw.Machine.total_energy +. xfer_e;
            }
        | _ -> Fmt.failwith "gpu_csr: platform model has no CUDA device or link");
  }

(** The SpMV component of the case study. *)
let component : component = { c_name = "spmv"; c_variants = [ cpu_csr; cpu_dense; gpu_csr ] }

(** Convenience: a context for an SpMV solve of the given shape.
    [iterations] is the number of solver sweeps over the same matrix. *)
let context ?(iterations = 1) ~query ~machine ~rows ~density () : context =
  {
    query;
    machine;
    problem =
      [
        ("rows", float_of_int rows);
        ("density", density);
        ("iterations", float_of_int iterations);
      ];
  }
