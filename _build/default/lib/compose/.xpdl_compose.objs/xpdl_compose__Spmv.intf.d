lib/compose/spmv.mli: Compose Xpdl_query Xpdl_simhw
