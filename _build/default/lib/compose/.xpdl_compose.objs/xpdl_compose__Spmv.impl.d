lib/compose/spmv.ml: Array Compose Float Fmt List Option String Xpdl_core Xpdl_query Xpdl_simhw Xpdl_toolchain
