lib/compose/compose.mli: Format Xpdl_query Xpdl_simhw
