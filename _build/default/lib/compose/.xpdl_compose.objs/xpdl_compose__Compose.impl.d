lib/compose/compose.ml: Float Fmt List Option String Xpdl_query Xpdl_simhw
