(** The sparse matrix–vector multiply case study (Sec. II, ref [3]):
    three variants — [cpu_csr] (requires MKL), [cpu_dense] (requires the
    dense matrix to fit modeled memory), [gpu_csr] (requires
    CUDA + CUSPARSE and a CUDA device; pays the PCIe transfer once per
    solve).  Cost estimates are priced from platform metadata through
    the query API.  Problem parameters: [rows], [cols], [density],
    [iterations]. *)

val cpu_csr : Compose.variant
val cpu_dense : Compose.variant
val gpu_csr : Compose.variant

(** The SpMV component bundling the three variants. *)
val component : Compose.component

(** Context for one SpMV solve; [iterations] is the number of solver
    sweeps over the same matrix (default 1). *)
val context :
  ?iterations:int ->
  query:Xpdl_query.Query.t ->
  machine:Xpdl_simhw.Machine.t ->
  rows:int ->
  density:float ->
  unit ->
  Compose.context
