(** A JSON view of composed XPDL models, in the style of HPP-DL (the
    JSON-based language of the paper's related work, Sec. V): typed
    attribute values, quantities as [{"value", "unit"}] objects in SI
    units, ["?"] as [null]. *)

open Xpdl_core

(** Render a model as JSON text ([indent] defaults to pretty). *)
val to_string : ?indent:bool -> Model.element -> string

exception Invalid_json of string

(** Minimal JSON well-formedness check (for tests and the CLI);
    raises {!Invalid_json}. *)
val check : string -> unit
