(** The XPDL processing tool: the end-to-end static pipeline of Sec. IV —
    browse + parse the repository, compose, static analysis, driver
    generation, microbenchmark bootstrap, filtering, runtime-model build
    and serialization.  Each stage is timed. *)

open Xpdl_core

type config = {
  search_path : string list;  (** repository roots *)
  parameter_config : Instantiate.env;  (** deployment-time param choices *)
  run_bootstrap : bool;
  bootstrap_opts : Xpdl_microbench.Bootstrap.options;
  filter_drop : string list;
  emit_drivers_to : string option;  (** directory for generated driver code *)
  machine_seed : int;
}

val default_config : config

type stage_timing = { stage : string; seconds : float }

type report = {
  system : string;
  runtime_model : Ir.t;
  model : Model.element;  (** analyzed, bootstrapped model *)
  diagnostics : Diagnostic.t list;
  link_reports : Analysis.link_report list;
  bootstrap_results : Xpdl_microbench.Bootstrap.result list;
  descriptors_used : string list;
  timings : stage_timing list;
  runtime_model_bytes : int;
}

(** Run the pipeline for the system named [system].  [repo] may be
    supplied pre-loaded to amortize parsing across runs. *)
val run :
  ?config:config -> ?repo:Xpdl_repo.Repo.t -> system:string -> unit -> (report, string) result

(** Run and write the runtime-model file. *)
val run_to_file :
  ?config:config ->
  ?repo:Xpdl_repo.Repo.t ->
  system:string ->
  output:string ->
  unit ->
  (report, string) result

val pp_timings : Format.formatter -> stage_timing list -> unit
