(** The UML view of XPDL (Sec. III: "XPDL offers multiple views: XML,
    UML, and C++"), emitted as PlantUML text. *)

open Xpdl_core

(** Class diagram of the language itself: one class per schema kind with
    its typed attributes and the containment associations. *)
val metamodel_diagram : unit -> string

(** Object diagram of a concrete composed model, cut off at [max_depth]
    (deep replicated structure is summarized as a count note). *)
val model_diagram : ?max_depth:int -> Model.element -> string
