(** The light-weight runtime model (Sec. IV): a composed XPDL model
    flattened into arrays with integer child links and pre-built
    identifier/kind indexes, plus a small versioned binary codec (magic
    ["XPDLRT"]) for the file loaded by [xpdl_init] at application
    startup. *)

open Xpdl_core

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Xpdl_units.Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

val pp_value : Format.formatter -> value -> unit

type node = {
  n_index : int;  (** position in the node array *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (string * value) array;
  n_parent : int;  (** -1 for the root *)
  n_children : int array;
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SMs/SM0"] *)
}

type t = {
  nodes : node array;
  root : int;
  by_ident : (string, int list) Hashtbl.t;
  by_kind : (string, int list) Hashtbl.t;
}

val value_of_attr : Model.attr_value -> value

(** Flatten a composed model into the runtime representation. *)
val of_model : Model.element -> t

(** {1 Accessors} *)

val size : t -> int
val node : t -> int -> node
val root : t -> node
val parent : t -> node -> node option
val children : t -> node -> node list
val attr : node -> string -> value option
val find_by_ident : t -> string -> node option
val all_by_ident : t -> string -> node list
val all_of_kind : t -> Schema.kind -> node list
val fold_subtree : t -> ('a -> node -> 'a) -> 'a -> node -> 'a

(** {1 Binary codec} *)

val magic : string
val format_version : int

exception Corrupt of string

val to_bytes : t -> string

(** Deserialize; raises {!Corrupt} on malformed input (bad magic or
    version, truncation, dangling indexes). *)
val of_bytes : string -> t

val to_file : string -> t -> unit
val of_file : string -> t
