(** Generation of the central [xpdl.xsd] W3C XML Schema document from
    {!Xpdl_core.Schema} — the downloadable shared schema of Sec. IV.
    The output is well-formed XML (tested) with one element declaration
    per kind, enumerations as restrictions, unit-companion attributes,
    and [xs:anyAttribute] as the extensibility escape hatch. *)

val generate : unit -> string

(** Number of element declarations emitted. *)
val element_count : unit -> int
