(** The light-weight runtime model: a flat, indexed intermediate
    representation of a composed XPDL model, and its on-disk codec.

    The XPDL processing tool "builds a light-weight run-time data
    structure for the composed model that is finally written into a file";
    the application loads that file at startup and introspects it through
    the query API (Sec. IV).  Flattening the element tree into arrays with
    integer child links and pre-built identifier/kind indexes is what
    makes runtime queries cheap compared to re-parsing XML — measured in
    experiment E5.

    The file format is a small versioned binary codec (magic ["XPDLRT"],
    format version 1): length-prefixed strings, varint-free fixed 64-bit
    ints, IEEE doubles.  A hand-rolled codec rather than [Marshal] so the
    format is stable across compiler versions and checkable. *)

open Xpdl_core
open Xpdl_units

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

let pp_value ppf = function
  | VStr s -> Fmt.pf ppf "%S" s
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.pf ppf "%g" f
  | VBool b -> Fmt.bool ppf b
  | VQty (v, d) -> Fmt.pf ppf "%a" Units.pp (Units.make v d)
  | VUnknown -> Fmt.string ppf "?"

type node = {
  n_index : int;  (** position in {!t.nodes} *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (string * value) array;
  n_parent : int;  (** -1 for the root *)
  n_children : int array;
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SM0"] *)
}

type t = {
  nodes : node array;
  root : int;
  by_ident : (string, int list) Hashtbl.t;  (** ident → node indexes *)
  by_kind : (string, int list) Hashtbl.t;  (** tag → node indexes *)
}

(** {1 Building from a model} *)

let value_of_attr : Model.attr_value -> value = function
  | Model.Str s -> VStr s
  | Model.Int i -> VInt i
  | Model.Float f -> VFloat f
  | Model.Bool b -> VBool b
  | Model.Quantity (q, _) -> VQty (Units.value q, Units.dim q)
  | Model.Expr (_, src) -> VStr src
  | Model.Unknown -> VUnknown

(** Flatten a composed model into the runtime representation. *)
let of_model (root_el : Model.element) : t =
  let nodes = ref [] in
  let count = ref 0 in
  let rec build parent path (e : Model.element) : int =
    let index = !count in
    incr count;
    let ident = Model.identifier e in
    let path =
      match ident with
      | Some i -> if path = "" then i else path ^ "/" ^ i
      | None -> path
    in
    (* reserve the slot; children fill in after *)
    nodes := (index, e, parent, path, ref []) :: !nodes;
    let self = List.hd !nodes in
    let _, _, _, _, kids = self in
    List.iter (fun c -> kids := build index path c :: !kids) e.children;
    index
  in
  let root_idx = build (-1) "" root_el in
  let arr = Array.make !count None in
  List.iter
    (fun (index, e, parent, path, kids) ->
      arr.(index) <-
        Some
          {
            n_index = index;
            n_kind = e.Model.kind;
            n_ident = Model.identifier e;
            n_type = e.Model.type_ref;
            n_attrs =
              Array.of_list (List.map (fun (k, v) -> (k, value_of_attr v)) e.Model.attrs);
            n_parent = parent;
            n_children = Array.of_list (List.rev !kids);
            n_path = path;
          })
    !nodes;
  let nodes =
    Array.map (function Some n -> n | None -> assert false) arr
  in
  let by_ident = Hashtbl.create (Array.length nodes) in
  let by_kind = Hashtbl.create 32 in
  Array.iter
    (fun n ->
      (match n.n_ident with
      | Some i ->
          Hashtbl.replace by_ident i (n.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_ident i))
      | None -> ());
      let tag = Schema.tag_of_kind n.n_kind in
      Hashtbl.replace by_kind tag (n.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_kind tag)))
    nodes;
  (* restore document order in the indexes *)
  Hashtbl.iter (fun k v -> Hashtbl.replace by_ident k (List.rev v)) by_ident;
  Hashtbl.iter (fun k v -> Hashtbl.replace by_kind k (List.rev v)) by_kind;
  { nodes; root = root_idx; by_ident; by_kind }

(** {1 Accessors (used by the query API)} *)

let size t = Array.length t.nodes
let node t i = t.nodes.(i)
let root t = t.nodes.(t.root)
let parent t (n : node) = if n.n_parent < 0 then None else Some t.nodes.(n.n_parent)
let children t (n : node) = Array.to_list (Array.map (fun i -> t.nodes.(i)) n.n_children)

let attr (n : node) key =
  let len = Array.length n.n_attrs in
  let rec scan i =
    if i >= len then None
    else
      let k, v = n.n_attrs.(i) in
      if String.equal k key then Some v else scan (i + 1)
  in
  scan 0

let find_by_ident t ident =
  match Hashtbl.find_opt t.by_ident ident with
  | Some (i :: _) -> Some t.nodes.(i)
  | Some [] | None -> None

let all_by_ident t ident =
  List.map (fun i -> t.nodes.(i)) (Option.value ~default:[] (Hashtbl.find_opt t.by_ident ident))

let all_of_kind t kind =
  List.map (fun i -> t.nodes.(i))
    (Option.value ~default:[] (Hashtbl.find_opt t.by_kind (Schema.tag_of_kind kind)))

(** Depth-first fold over the subtree of [n]. *)
let rec fold_subtree t f acc (n : node) =
  let acc = f acc n in
  Array.fold_left (fun acc i -> fold_subtree t f acc t.nodes.(i)) acc n.n_children

(** {1 Binary codec} *)

let magic = "XPDLRT"
let format_version = 1

let dim_code = function
  | Units.Size -> 0
  | Units.Frequency -> 1
  | Units.Power -> 2
  | Units.Energy -> 3
  | Units.Time -> 4
  | Units.Bandwidth -> 5
  | Units.Voltage -> 6
  | Units.Temperature -> 7
  | Units.Scalar -> 8

let dim_of_code = function
  | 0 -> Units.Size
  | 1 -> Units.Frequency
  | 2 -> Units.Power
  | 3 -> Units.Energy
  | 4 -> Units.Time
  | 5 -> Units.Bandwidth
  | 6 -> Units.Voltage
  | 7 -> Units.Temperature
  | 8 -> Units.Scalar
  | n -> Fmt.failwith "Ir: bad dimension code %d" n

let put_int buf i = Buffer.add_int64_le buf (Int64.of_int i)
let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_opt_string buf = function
  | None -> put_int buf (-1)
  | Some s -> put_string buf s

let put_value buf = function
  | VStr s ->
      Buffer.add_char buf 'S';
      put_string buf s
  | VInt i ->
      Buffer.add_char buf 'I';
      put_int buf i
  | VFloat f ->
      Buffer.add_char buf 'F';
      put_float buf f
  | VBool b -> Buffer.add_char buf (if b then 'T' else 'f')
  | VQty (v, d) ->
      Buffer.add_char buf 'Q';
      put_float buf v;
      put_int buf (dim_code d)
  | VUnknown -> Buffer.add_char buf '?'

(** Serialize the runtime model to bytes. *)
let to_bytes t : string =
  let buf = Buffer.create (Array.length t.nodes * 64) in
  Buffer.add_string buf magic;
  put_int buf format_version;
  put_int buf (Array.length t.nodes);
  put_int buf t.root;
  Array.iter
    (fun n ->
      put_string buf (Schema.tag_of_kind n.n_kind);
      put_opt_string buf n.n_ident;
      put_opt_string buf n.n_type;
      put_string buf n.n_path;
      put_int buf n.n_parent;
      put_int buf (Array.length n.n_children);
      Array.iter (put_int buf) n.n_children;
      put_int buf (Array.length n.n_attrs);
      Array.iter
        (fun (k, v) ->
          put_string buf k;
          put_value buf v)
        n.n_attrs)
    t.nodes;
  Buffer.contents buf

exception Corrupt of string

type reader = { src : string; mutable off : int }

let need r n =
  if r.off + n > String.length r.src then raise (Corrupt "truncated runtime model file")

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || n > String.length r.src - r.off then raise (Corrupt "bad string length");
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let get_opt_string r =
  need r 8;
  let n = Int64.to_int (String.get_int64_le r.src r.off) in
  if n = -1 then begin
    r.off <- r.off + 8;
    None
  end
  else Some (get_string r)

let get_value r =
  need r 1;
  let tag = r.src.[r.off] in
  r.off <- r.off + 1;
  match tag with
  | 'S' -> VStr (get_string r)
  | 'I' -> VInt (get_int r)
  | 'F' -> VFloat (get_float r)
  | 'T' -> VBool true
  | 'f' -> VBool false
  | 'Q' ->
      let v = get_float r in
      VQty (v, dim_of_code (get_int r))
  | '?' -> VUnknown
  | c -> raise (Corrupt (Fmt.str "bad value tag %C" c))

(** Deserialize; raises {!Corrupt} on malformed input. *)
let of_bytes (s : string) : t =
  let r = { src = s; off = 0 } in
  need r (String.length magic);
  if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    raise (Corrupt "bad magic: not a runtime model file");
  r.off <- String.length magic;
  let version = get_int r in
  if version <> format_version then
    raise (Corrupt (Fmt.str "unsupported format version %d" version));
  let count = get_int r in
  if count < 0 then raise (Corrupt "negative node count");
  let root_idx = get_int r in
  let nodes =
    Array.init count (fun index ->
        let kind = Schema.kind_of_tag (get_string r) in
        let ident = get_opt_string r in
        let ty = get_opt_string r in
        let path = get_string r in
        let parent = get_int r in
        let n_children = Array.init (get_int r) (fun _ -> get_int r) in
        let n_attrs =
          Array.init (get_int r) (fun _ ->
              let k = get_string r in
              (k, get_value r))
        in
        {
          n_index = index;
          n_kind = kind;
          n_ident = ident;
          n_type = ty;
          n_attrs;
          n_parent = parent;
          n_children;
          n_path = path;
        })
  in
  Array.iter
    (fun n ->
      if n.n_parent >= count || n.n_parent < -1 then raise (Corrupt "dangling parent index");
      Array.iter
        (fun c -> if c < 0 || c >= count then raise (Corrupt "dangling child index"))
        n.n_children)
    nodes;
  if root_idx < 0 || root_idx >= count then raise (Corrupt "bad root index");
  let by_ident = Hashtbl.create count in
  let by_kind = Hashtbl.create 32 in
  Array.iter
    (fun n ->
      (match n.n_ident with
      | Some i ->
          Hashtbl.replace by_ident i
            (n.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_ident i))
      | None -> ());
      let tag = Schema.tag_of_kind n.n_kind in
      Hashtbl.replace by_kind tag
        (n.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_kind tag)))
    nodes;
  (* restore document order *)
  Hashtbl.iter (fun k v -> Hashtbl.replace by_ident k (List.rev v)) by_ident;
  Hashtbl.iter (fun k v -> Hashtbl.replace by_kind k (List.rev v)) by_kind;
  { nodes; root = root_idx; by_ident; by_kind }

(** Write the runtime model file consumed by [xpdl_init]. *)
let to_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_bytes t))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))
