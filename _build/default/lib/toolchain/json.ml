(** A JSON view of composed XPDL models.

    The paper's related work compares XPDL with HPP-DL, whose "syntax is
    based on JSON rather than XML" (Sec. V).  This emitter renders any
    composed model in that style — demonstrating that the XML syntax "is
    not the key point" of XPDL's applicability (Sec. I) — with typed
    attribute values: quantities become [{"value": v, "unit": "..."}]
    objects in SI units, unresolved ["?"] entries become [null]. *)

open Xpdl_core

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Fmt.kstr (Buffer.add_string buf) "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string_field buf key v = Fmt.kstr (Buffer.add_string buf) "%S: \"%s\"" key (escape v)

let add_value buf (v : Model.attr_value) =
  match v with
  | Model.Str s -> Fmt.kstr (Buffer.add_string buf) "\"%s\"" (escape s)
  | Model.Int i -> Buffer.add_string buf (string_of_int i)
  | Model.Float f -> Fmt.kstr (Buffer.add_string buf) "%g" f
  | Model.Bool b -> Buffer.add_string buf (string_of_bool b)
  | Model.Quantity (q, _) ->
      Fmt.kstr (Buffer.add_string buf) {|{"value": %g, "unit": "%s"}|}
        (Xpdl_units.Units.value q)
        (escape
           (match Xpdl_units.Units.dim q with
           | Xpdl_units.Units.Size -> "B"
           | Xpdl_units.Units.Frequency -> "Hz"
           | Xpdl_units.Units.Power -> "W"
           | Xpdl_units.Units.Energy -> "J"
           | Xpdl_units.Units.Time -> "s"
           | Xpdl_units.Units.Bandwidth -> "B/s"
           | Xpdl_units.Units.Voltage -> "V"
           | Xpdl_units.Units.Temperature -> "K"
           | Xpdl_units.Units.Scalar -> ""))
  | Model.Expr (_, src) -> Fmt.kstr (Buffer.add_string buf) "\"%s\"" (escape src)
  | Model.Unknown -> Buffer.add_string buf "null"

let rec add_element buf ~indent depth (e : Model.element) =
  let pad = if indent then String.make (2 * depth) ' ' else "" in
  let pad1 = if indent then String.make (2 * (depth + 1)) ' ' else "" in
  let nl = if indent then "\n" else "" in
  Fmt.kstr (Buffer.add_string buf) "{%s" nl;
  let fields = ref [] in
  let add_field f = fields := f :: !fields in
  add_field (fun () -> string_field buf "kind" (Schema.tag_of_kind e.Model.kind));
  Option.iter (fun n -> add_field (fun () -> string_field buf "name" n)) e.Model.name;
  Option.iter (fun i -> add_field (fun () -> string_field buf "id" i)) e.Model.id;
  Option.iter (fun t -> add_field (fun () -> string_field buf "type" t)) e.Model.type_ref;
  List.iter
    (fun (k, v) ->
      add_field (fun () ->
          Fmt.kstr (Buffer.add_string buf) "%S: " k;
          add_value buf v))
    e.Model.attrs;
  if e.Model.children <> [] then
    add_field (fun () ->
        Fmt.kstr (Buffer.add_string buf) "\"children\": [%s" nl;
        List.iteri
          (fun i c ->
            if i > 0 then Fmt.kstr (Buffer.add_string buf) ",%s" nl;
            Buffer.add_string buf (if indent then String.make (2 * (depth + 2)) ' ' else "");
            add_element buf ~indent (depth + 2) c)
          e.Model.children;
        Fmt.kstr (Buffer.add_string buf) "%s%s]" nl pad1);
  let emit = List.rev !fields in
  List.iteri
    (fun i f ->
      if i > 0 then Fmt.kstr (Buffer.add_string buf) ",%s" nl;
      Buffer.add_string buf pad1;
      f ())
    emit;
  Fmt.kstr (Buffer.add_string buf) "%s%s}" nl pad

(** Render a model as JSON text ([indent] defaults to pretty). *)
let to_string ?(indent = true) (e : Model.element) : string =
  let buf = Buffer.create 4096 in
  add_element buf ~indent 0 e;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(** {1 A minimal JSON well-formedness checker}

    Enough of a parser to assert in tests that the emitter's output is
    valid JSON without pulling in a JSON library. *)

exception Invalid_json of string

let check (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Invalid_json (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then '\255' else s.[!pos] in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if peek () = c then incr pos else fail (Fmt.str "expected %C" c) in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail "expected a JSON value"
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then
      pos := !pos + String.length lit
    else fail ("expected " ^ lit)
  and number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if float_of_string_opt (String.sub s start (!pos - start)) = None then fail "bad number"
  and string_lit () =
    expect '"';
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            loop ()
        | _ ->
            incr pos;
            loop ()
    in
    loop ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        if peek () = ',' then begin
          incr pos;
          members ()
        end
        else expect '}'
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then incr pos
    else
      let rec items () =
        value ();
        skip_ws ();
        if peek () = ',' then begin
          incr pos;
          items ()
        end
        else expect ']'
      in
      items ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing content"
