lib/toolchain/xsd.mli:
