lib/toolchain/json.ml: Buffer Char Fmt List Model Option Schema String Xpdl_core Xpdl_units
