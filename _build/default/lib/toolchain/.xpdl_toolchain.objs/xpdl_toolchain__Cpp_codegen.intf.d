lib/toolchain/cpp_codegen.mli: Schema Xpdl_core
