lib/toolchain/ir.ml: Array Buffer Fmt Fun Hashtbl Int64 List Model Option Schema String Units Xpdl_core Xpdl_units
