lib/toolchain/pipeline.ml: Analysis Diagnostic Fmt Instantiate Ir List Model Power String Unix Xpdl_core Xpdl_microbench Xpdl_repo Xpdl_simhw
