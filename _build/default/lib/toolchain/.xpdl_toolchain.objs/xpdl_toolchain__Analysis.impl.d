lib/toolchain/analysis.ml: Float Hashtbl List Model Option Schema String Units Xpdl_core Xpdl_units
