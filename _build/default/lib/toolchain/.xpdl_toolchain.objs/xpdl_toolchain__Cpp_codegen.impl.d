lib/toolchain/cpp_codegen.ml: Buffer Bytes Char Fmt List Schema String Xpdl_core
