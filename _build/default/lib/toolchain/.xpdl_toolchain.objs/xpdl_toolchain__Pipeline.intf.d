lib/toolchain/pipeline.mli: Analysis Diagnostic Format Instantiate Ir Model Xpdl_core Xpdl_microbench Xpdl_repo
