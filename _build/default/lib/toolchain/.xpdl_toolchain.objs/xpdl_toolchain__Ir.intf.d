lib/toolchain/ir.mli: Format Hashtbl Model Schema Xpdl_core Xpdl_units
