lib/toolchain/uml.mli: Model Xpdl_core
