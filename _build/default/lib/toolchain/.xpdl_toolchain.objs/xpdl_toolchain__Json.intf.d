lib/toolchain/json.mli: Model Xpdl_core
