lib/toolchain/xsd.ml: Buffer Cpp_codegen Fmt Hashtbl List Schema Xpdl_core
