lib/toolchain/analysis.mli: Model Xpdl_core
