lib/toolchain/uml.ml: Buffer Cpp_codegen Fmt List Model Option Schema String Xpdl_core Xpdl_units
