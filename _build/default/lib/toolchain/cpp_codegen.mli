(** Generation of the C++ runtime query API from the schema (Sec. IV):
    one class per element kind with typed getters/setters and navigation,
    plus the [xpdl_init] entry point — "generated automatically from the
    central xpdl.xsd schema specification". *)

open Xpdl_core

(** C++ class name for a kind (e.g. [XpdlCpu]). *)
val class_name : Schema.kind -> string

(** Every concrete kind, in emission order (shared by the UML and XSD
    generators). *)
val all_kinds : Schema.kind list

(** Emit the complete generated header. *)
val generate_header : unit -> string

(** Number of generated getter functions. *)
val getter_count : unit -> int
