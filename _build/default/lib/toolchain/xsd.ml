(** Generation of the central [xpdl.xsd] schema document (Sec. IV).

    The paper's query API is "generated automatically from the central
    xpdl.xsd schema specification ... As the core XPDL schema definition
    is shared (to be made available for download on our web server), it
    will be easy to consistently update".  In this implementation the
    authoritative schema is {!Xpdl_core.Schema} (code); this module emits
    the equivalent W3C XML Schema document so external XML tooling can
    validate [.xpdl] files — the downloadable artifact. *)

open Xpdl_core

let xs_type = function
  | Schema.A_string | Schema.A_ident | Schema.A_expr -> "xs:string"
  | Schema.A_int -> "xs:integer"
  | Schema.A_float -> "xs:decimal"
  | Schema.A_bool -> "xs:boolean"
  | Schema.A_quantity _ -> "xs:string" (* value + companion unit attribute *)
  | Schema.A_enum _ -> "" (* inline simpleType below *)

let emit_attribute buf (spec : Schema.attr_spec) =
  match spec.a_type with
  | Schema.A_enum values ->
      Fmt.kstr (Buffer.add_string buf)
        "      <xs:attribute name=\"%s\"%s>\n\
        \        <xs:simpleType><xs:restriction base=\"xs:string\">\n" spec.a_name
        (if spec.a_required then " use=\"required\"" else "");
      List.iter
        (fun v ->
          Fmt.kstr (Buffer.add_string buf) "          <xs:enumeration value=\"%s\"/>\n" v)
        values;
      Buffer.add_string buf "        </xs:restriction></xs:simpleType>\n      </xs:attribute>\n"
  | ty ->
      Fmt.kstr (Buffer.add_string buf) "      <xs:attribute name=\"%s\" type=\"%s\"%s/>\n"
        spec.a_name (xs_type ty)
        (if spec.a_required then " use=\"required\"" else "")

(* Quantity metrics admit a companion unit attribute. *)
let emit_unit_companions buf kind =
  List.iter
    (fun (spec : Schema.attr_spec) ->
      match spec.a_type with
      | Schema.A_quantity _ ->
          let companion =
            match kind with
            | Schema.Param | Schema.Const -> "unit"
            | _ -> if spec.a_name = "size" then "unit" else spec.a_name ^ "_unit"
          in
          Fmt.kstr (Buffer.add_string buf)
            "      <xs:attribute name=\"%s\" type=\"xs:string\"/>\n" companion
      | _ -> ())
    (Schema.specific_attrs kind)

(** Emit the full xpdl.xsd document. *)
let generate () : string =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <!-- xpdl.xsd - generated from the core schema by the XPDL toolchain.\n\
    \     Regenerate with `xpdltool emit-xsd`. -->\n\
     <xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\" elementFormDefault=\"qualified\">\n";
  let seen_companion = Hashtbl.create 16 in
  ignore seen_companion;
  List.iter
    (fun kind ->
      let tag = Schema.tag_of_kind kind in
      Fmt.kstr (Buffer.add_string buf) "  <xs:element name=\"%s\">\n    <xs:complexType>\n" tag;
      (* children, any order and number (containment is checked by the
         elaborator with positions; XSD gives coarse structure) *)
      let children =
        List.filter (function Schema.Other _ -> false | _ -> true)
          (Schema.allowed_children kind)
      in
      if children <> [] then begin
        Buffer.add_string buf
          "      <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n";
        List.iter
          (fun c ->
            Fmt.kstr (Buffer.add_string buf) "        <xs:element ref=\"%s\"/>\n"
              (Schema.tag_of_kind c))
          (List.sort_uniq compare children);
        Buffer.add_string buf "      </xs:choice>\n"
      end;
      (* common structural attributes *)
      List.iter
        (fun n ->
          Fmt.kstr (Buffer.add_string buf)
            "      <xs:attribute name=\"%s\" type=\"xs:string\"/>\n" n)
        [ "name"; "id"; "type"; "extends" ];
      List.iter (emit_attribute buf)
        (List.filter
           (fun (s : Schema.attr_spec) -> not (List.mem s.a_name [ "name"; "id"; "type"; "extends" ]))
           (Schema.specific_attrs kind
           @ List.filter
               (fun (s : Schema.attr_spec) -> s.a_name = "role")
               Schema.common_attrs));
      emit_unit_companions buf kind;
      (* the extensibility escape hatch *)
      Buffer.add_string buf "      <xs:anyAttribute processContents=\"lax\"/>\n";
      Buffer.add_string buf "    </xs:complexType>\n  </xs:element>\n")
    Cpp_codegen.all_kinds;
  Buffer.add_string buf "</xs:schema>\n";
  Buffer.contents buf

(** Number of element declarations emitted (for reporting). *)
let element_count () = List.length Cpp_codegen.all_kinds
