(** The UML view of XPDL models (Sec. III: "XPDL offers multiple views:
    XML, UML, and C++ ... semantically equivalent, and (basically)
    convertible to each other").

    Two generators, both emitting PlantUML text:

    - {!metamodel_diagram}: the class diagram of the language itself —
      one class per {!Xpdl_core.Schema.kind} with its typed attributes
      and the containment associations (the figure [4] draws from
      xpdl.xsd);
    - {!model_diagram}: an object diagram of a concrete composed model
      (instances with their identities, types and salient attributes),
      depth-limited so cluster-scale models stay readable. *)

open Xpdl_core

let class_name kind = Cpp_codegen.class_name kind

let attr_type_name = function
  | Schema.A_string -> "string"
  | Schema.A_int -> "int"
  | Schema.A_float -> "float"
  | Schema.A_bool -> "bool"
  | Schema.A_ident -> "ref"
  | Schema.A_quantity d -> Xpdl_units.Units.dimension_name d
  | Schema.A_enum vs -> "enum{" ^ String.concat "|" vs ^ "}"
  | Schema.A_expr -> "expr"

(** PlantUML class diagram of the XPDL meta-model. *)
let metamodel_diagram () : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "@startuml\ntitle XPDL core meta-model (generated from the schema)\n";
  Buffer.add_string buf "abstract class XpdlElement {\n  name : ident\n  id : ident\n  type : ref\n  extends : ref[*]\n}\n";
  List.iter
    (fun kind ->
      Fmt.kstr (Buffer.add_string buf) "class %s {\n" (class_name kind);
      List.iter
        (fun (spec : Schema.attr_spec) ->
          Fmt.kstr (Buffer.add_string buf) "  %s%s : %s\n"
            (if spec.a_required then "+" else "")
            spec.a_name (attr_type_name spec.a_type))
        (Schema.specific_attrs kind);
      Buffer.add_string buf "}\n";
      Fmt.kstr (Buffer.add_string buf) "XpdlElement <|-- %s\n" (class_name kind))
    Cpp_codegen.all_kinds;
  (* containment associations *)
  List.iter
    (fun parent ->
      List.iter
        (fun child ->
          match child with
          | Schema.Other _ -> ()
          | _ ->
              Fmt.kstr (Buffer.add_string buf) "%s *-- \"0..*\" %s\n" (class_name parent)
                (class_name child))
        (Schema.allowed_children parent))
    Cpp_codegen.all_kinds;
  Buffer.add_string buf "@enduml\n";
  Buffer.contents buf

let sanitize_id s =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c | _ -> '_') s

(** PlantUML object diagram of a composed model, cut off at [max_depth]
    (deep replicated structure is summarized as a count note). *)
let model_diagram ?(max_depth = 3) (root : Model.element) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "@startuml\n";
  Fmt.kstr (Buffer.add_string buf) "title %s (object view)\n"
    (Option.value ~default:"model" (Model.identifier root));
  let counter = ref 0 in
  let rec emit depth parent_obj (e : Model.element) =
    incr counter;
    let obj = Fmt.str "o%d" !counter in
    let label =
      match Model.identifier e with
      | Some ident -> Fmt.str "%s : %s" (sanitize_id ident) (Schema.tag_of_kind e.Model.kind)
      | None -> Fmt.str "anon%d : %s" !counter (Schema.tag_of_kind e.Model.kind)
    in
    Fmt.kstr (Buffer.add_string buf) "object \"%s\" as %s {\n" label obj;
    (match e.Model.type_ref with
    | Some t -> Fmt.kstr (Buffer.add_string buf) "  type = %s\n" t
    | None -> ());
    List.iteri
      (fun i (k, v) ->
        if i < 4 then
          Fmt.kstr (Buffer.add_string buf) "  %s = %s\n" k
            (Fmt.str "%a" Model.pp_attr_value v))
      e.Model.attrs;
    Buffer.add_string buf "}\n";
    (match parent_obj with
    | Some p -> Fmt.kstr (Buffer.add_string buf) "%s *-- %s\n" p obj
    | None -> ());
    if depth < max_depth then List.iter (emit (depth + 1) (Some obj)) e.Model.children
    else if e.Model.children <> [] then begin
      incr counter;
      Fmt.kstr (Buffer.add_string buf) "object \"... %d nested elements\" as o%d\n"
        (Model.size e - 1) !counter;
      Fmt.kstr (Buffer.add_string buf) "%s *-- o%d\n" obj !counter
    end
  in
  emit 0 None root;
  Buffer.add_string buf "@enduml\n";
  Buffer.contents buf
