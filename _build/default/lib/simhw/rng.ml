(** Deterministic pseudo-random numbers for the hardware simulator.

    A splitmix64 generator: tiny, fast, reproducible across runs and OCaml
    versions, which the tests rely on (measurement noise must be seeded).
    Not cryptographic — strictly simulation-quality randomness. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(** Derive an independent stream (e.g. one per simulated core). *)
let split t label =
  let h = Hashtbl.hash label in
  { state = Int64.add t.state (Int64.of_int ((h * 2654435761) lor 1)) }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

(** Uniform float in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

(** Standard normal via Box–Muller. *)
let gaussian t =
  let u1 = Float.max 1e-12 (float t) in
  let u2 = float t in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

(** Multiplicative measurement noise: [1 + sigma·N(0,1)], clamped positive. *)
let noise_factor t ~sigma = Float.max 0.01 (1. +. (sigma *. gaussian t))
