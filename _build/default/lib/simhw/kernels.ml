(** Workload generators: application kernels expressed as instruction
    bags for the simulated machine.

    The conditional-composition case study of the paper (Sec. II, ref [3])
    selects among implementation variants of a sparse matrix–vector
    product component depending on platform properties and on the density
    of nonzero elements.  These generators produce the instruction/memory
    footprint of each variant so that {!Machine.run} can price them. *)

(** Parameters of a sparse matrix–vector multiply [y = A·x]. *)
type spmv = {
  rows : int;
  cols : int;
  density : float;  (** fraction of nonzeros, 0 < density ≤ 1 *)
}

let spmv ?(cols = 0) ~rows ~density () =
  if density <= 0. || density > 1. then invalid_arg "Kernels.spmv: density must be in (0,1]";
  { rows; cols = (if cols = 0 then rows else cols); density }

let nonzeros m = int_of_float (float_of_int m.rows *. float_of_int m.cols *. m.density)

(** CSR SpMV on a CPU core: per nonzero one [fmul], one [fadd], one value
    load and one column-index load; per row a result store.  Irregular
    column accesses miss caches at a rate growing with matrix size. *)
let spmv_csr_cpu (m : spmv) : Machine.workload =
  let nnz = nonzeros m in
  let miss_rate = Float.min 0.6 (0.05 +. (float_of_int m.cols /. 2e6)) in
  Machine.workload ~parallel_fraction:0.95
    ~memory_accesses:(int_of_float (float_of_int (2 * nnz) *. miss_rate) + m.rows)
    [ ("fmul", nnz); ("fadd", nnz); ("ld", 2 * nnz); ("st", m.rows); ("add", nnz) ]

(** Dense row-major MV on the CPU: prices every element, zero or not. *)
let mv_dense_cpu (m : spmv) : Machine.workload =
  let n = m.rows * m.cols in
  let miss_rate = 0.02 in
  Machine.workload ~parallel_fraction:0.97
    ~memory_accesses:(int_of_float (float_of_int n *. miss_rate) + m.rows)
    [ ("fmul", n); ("fadd", n); ("ld", n); ("st", m.rows) ]

(** CSR SpMV expressed in the GPU's PTX-like ISA: fused multiply-adds,
    global loads with coalescing losses on the irregular accesses.  Highly
    parallel — the caller spreads it over the device's cores. *)
let spmv_csr_gpu (m : spmv) : Machine.workload =
  let nnz = nonzeros m in
  (* irregular gathers coalesce poorly: effective global transactions *)
  let transactions = int_of_float (float_of_int nnz *. 0.5) + m.rows in
  Machine.workload ~parallel_fraction:0.999 ~memory_accesses:transactions
    [ ("fma", nnz); ("ld_global", 2 * nnz); ("st_global", m.rows) ]

(** Bytes that must cross the host↔device link for a GPU SpMV: CSR arrays
    (values 8B + col indices 4B per nnz, row pointers 4B per row), the
    input vector, and the result back. *)
let spmv_transfer_bytes (m : spmv) =
  let nnz = nonzeros m in
  (12 * nnz) + (4 * (m.rows + 1)) + (8 * m.cols) + (8 * m.rows)

(** A dense vector AXPY [y ← αx + y] of length [n] (quickstart demo). *)
let axpy ~n : Machine.workload =
  Machine.workload ~parallel_fraction:0.9 ~memory_accesses:(n / 8)
    [ ("fmul", n); ("fadd", n); ("ld", 2 * n); ("st", n) ]

(** A pure-compute microkernel repeating one instruction [iterations]
    times — exactly what a generated microbenchmark driver does. *)
let single_instruction ~name ~iterations : Machine.workload =
  Machine.workload ~parallel_fraction:0. [ (name, iterations) ]

(** Repeat a workload [n] times (an iterative solver calling the same
    kernel each sweep): scales instruction counts and memory traffic. *)
let repeat n (w : Machine.workload) : Machine.workload =
  if n <= 1 then w
  else
    {
      w with
      Machine.instructions = List.map (fun (i, c) -> (i, c * n)) w.Machine.instructions;
      memory_accesses = w.Machine.memory_accesses * n;
    }

(** Reference (noise-free) flop count of an SpMV, for throughput reports. *)
let spmv_flops m = 2 * nonzeros m
