(** Workload generators: application kernels expressed as instruction
    bags for the simulated machine — the variants of the SpMV
    conditional-composition case study (Sec. II, ref [3]) and smaller
    demo kernels. *)

(** Parameters of a sparse matrix–vector multiply [y = A·x]. *)
type spmv = { rows : int; cols : int; density : float }

(** Raises [Invalid_argument] unless density ∈ (0, 1];
    [cols] defaults to [rows]. *)
val spmv : ?cols:int -> rows:int -> density:float -> unit -> spmv

val nonzeros : spmv -> int

(** CSR SpMV on a CPU core: irregular gathers miss caches at a rate
    growing with the matrix size. *)
val spmv_csr_cpu : spmv -> Machine.workload

(** Dense row-major MV: prices every element, regular accesses. *)
val mv_dense_cpu : spmv -> Machine.workload

(** CSR SpMV in the GPU's PTX-like ISA: massively parallel, poorly
    coalesced gathers. *)
val spmv_csr_gpu : spmv -> Machine.workload

(** Bytes crossing the host↔device link for a GPU SpMV (CSR arrays, the
    input vector, the result). *)
val spmv_transfer_bytes : spmv -> int

(** Dense AXPY of length [n]. *)
val axpy : n:int -> Machine.workload

(** One instruction repeated — a microbenchmark driver's loop. *)
val single_instruction : name:string -> iterations:int -> Machine.workload

(** Repeat a workload [n] times (an iterative solver's sweeps). *)
val repeat : int -> Machine.workload -> Machine.workload

(** Flop count of an SpMV, for throughput reports. *)
val spmv_flops : spmv -> int
