(** Deterministic pseudo-random numbers for the hardware simulator
    (splitmix64).  Reproducible across runs; seeded measurement noise is
    what lets tests assert bootstrap accuracy.  Not cryptographic. *)

type t

val create : seed:int -> t

(** Derive an independent stream (e.g. one per simulated core). *)
val split : t -> string -> t

val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** Uniform int in [0, bound); raises [Invalid_argument] on bound <= 0. *)
val int : t -> int -> int

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** Multiplicative measurement noise: [1 + sigma·N(0,1)], clamped
    positive. *)
val noise_factor : t -> sigma:float -> float
