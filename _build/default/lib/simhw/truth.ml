(** Ground-truth energy/timing model of the simulated hardware.

    The paper's toolchain derives unspecified energy-model entries by
    running microbenchmarks on the real machine (Sec. III-C).  Our
    substitute machine needs a hidden ground truth for those quantities:
    per-instruction dynamic energy as a function of clock frequency, plus
    per-access memory energies.  The bootstrap path then measures noisy
    observations of this truth, and tests can check the derived model
    against it.

    Per-instruction base energy is synthesized deterministically from the
    instruction name (stable hash → plausible picojoule range), unless the
    XPDL model supplies a concrete value (e.g. the [divsd] frequency table
    of Listing 14, which we reproduce exactly).

    The frequency law follows the classic CMOS model: dynamic energy per
    operation scales roughly with V², and V scales roughly linearly with f
    in DVFS ranges, so E(f) = E₀·(α + (1−α)·(f/f₀)²) with α the
    frequency-insensitive share. *)

let alpha = 0.35  (** frequency-insensitive share of per-instruction energy *)

(* Stable non-negative hash of a string (FNV-1a, truncated to 62 bits so
   it always fits OCaml's native int without going negative). *)
let stable_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)

(** Synthesized base energy (J) of instruction [name] at the reference
    frequency: deterministic, in 5–80 pJ — the range reported for simple
    ALU/FPU operations on server-class cores [7]. *)
let synthesized_base_energy name =
  let h = stable_hash name in
  let r = float_of_int (h mod 10_000) /. 10_000. in
  (5. +. (75. *. r)) *. 1e-12

type t = {
  reference_hz : float;  (** frequency at which base energies are defined *)
  base_energy : (string, float) Hashtbl.t;  (** instruction → J at reference *)
  tables : (string, (float * float) list) Hashtbl.t;
      (** instruction → exact (Hz, J) rows taken from the model *)
  noise_sigma : float;  (** relative measurement noise of the power meter *)
}

(** Build the ground truth for one ISA.  Concrete energies from the XPDL
    model ([Fixed] or [By_frequency]) are authoritative; ["?"] entries get
    synthesized values — those are what microbenchmarking must recover. *)
let of_isa ?(reference_hz = 2.0e9) ?(noise_sigma = 0.02) (isa : Xpdl_core.Power.isa) =
  let t =
    {
      reference_hz;
      base_energy = Hashtbl.create 16;
      tables = Hashtbl.create 4;
      noise_sigma;
    }
  in
  List.iter
    (fun (i : Xpdl_core.Power.instruction) ->
      match i.in_energy with
      | Xpdl_core.Power.Fixed e -> Hashtbl.replace t.base_energy i.in_name e
      | Xpdl_core.Power.By_frequency rows -> Hashtbl.replace t.tables i.in_name rows
      | Xpdl_core.Power.To_benchmark ->
          Hashtbl.replace t.base_energy i.in_name (synthesized_base_energy i.in_name))
    isa.Xpdl_core.Power.isa_instructions;
  t

(** An empty truth table that synthesizes everything on demand. *)
let synthetic ?(reference_hz = 2.0e9) ?(noise_sigma = 0.02) () =
  { reference_hz; base_energy = Hashtbl.create 16; tables = Hashtbl.create 4; noise_sigma }

let frequency_scale t ~hz =
  let r = hz /. t.reference_hz in
  alpha +. ((1. -. alpha) *. r *. r)

(** True dynamic energy (J) of one execution of [name] at frequency [hz]. *)
let energy t ~name ~hz =
  match Hashtbl.find_opt t.tables name with
  | Some rows ->
      (* interpolate the exact table, clamping at the ends *)
      let rec interp = function
        | [] -> assert false
        | [ (_, e) ] -> e
        | (f1, e1) :: ((f2, e2) :: _ as rest) ->
            if hz <= f1 then e1
            else if hz <= f2 then e1 +. ((e2 -. e1) *. (hz -. f1) /. (f2 -. f1))
            else interp rest
      in
      interp rows
  | None ->
      let base =
        match Hashtbl.find_opt t.base_energy name with
        | Some e -> e
        | None ->
            let e = synthesized_base_energy name in
            Hashtbl.replace t.base_energy name e;
            e
      in
      base *. frequency_scale t ~hz

(** True latency in cycles for [name]; the model's declared latency if
    available, else synthesized in 1–8 cycles. *)
let latency_cycles ?(declared = None) name =
  match declared with
  | Some l -> l
  | None -> 1 + (stable_hash ("lat:" ^ name) mod 8)
