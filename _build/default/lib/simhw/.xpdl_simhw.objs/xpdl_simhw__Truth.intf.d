lib/simhw/truth.mli: Hashtbl Xpdl_core
