lib/simhw/rng.mli:
