lib/simhw/kernels.ml: Float List Machine
