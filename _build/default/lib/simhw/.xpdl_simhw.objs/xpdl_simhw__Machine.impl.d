lib/simhw/machine.ml: Array Filename Float Fmt Hashtbl List Model Option Power Rng Schema String Truth Xpdl_core Xpdl_units
