lib/simhw/truth.ml: Char Hashtbl Int64 List String Xpdl_core
