lib/simhw/machine.mli: Model Rng Truth Xpdl_core
