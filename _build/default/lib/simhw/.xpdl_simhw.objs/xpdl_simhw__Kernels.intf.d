lib/simhw/kernels.mli: Machine
