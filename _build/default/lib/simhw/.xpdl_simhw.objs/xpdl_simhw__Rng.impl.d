lib/simhw/rng.ml: Float Hashtbl Int64
