(** Ground-truth energy/timing model of the simulated hardware: the
    hidden quantities the microbenchmark bootstrap estimates.

    Per-instruction base energy is synthesized deterministically from the
    instruction name (stable hash → 5–80 pJ), unless the XPDL model
    supplies a concrete value (the [divsd] table of Listing 14 is
    reproduced exactly).  Frequency law: E(f) = E₀·(α + (1−α)·(f/f₀)²). *)

(** Frequency-insensitive share of per-instruction energy. *)
val alpha : float

(** Stable non-negative string hash (FNV-1a, 62-bit). *)
val stable_hash : string -> int

(** Synthesized base energy (J) at the reference frequency, in the
    5–80 pJ range. *)
val synthesized_base_energy : string -> float

type t = {
  reference_hz : float;  (** frequency at which base energies are defined *)
  base_energy : (string, float) Hashtbl.t;  (** instruction → J at reference *)
  tables : (string, (float * float) list) Hashtbl.t;
      (** instruction → exact (Hz, J) rows taken from the model *)
  noise_sigma : float;  (** relative measurement noise of the power meter *)
}

(** Ground truth for one ISA: concrete model energies are authoritative;
    ["?"] entries get synthesized values. *)
val of_isa : ?reference_hz:float -> ?noise_sigma:float -> Xpdl_core.Power.isa -> t

(** An empty truth table that synthesizes everything on demand. *)
val synthetic : ?reference_hz:float -> ?noise_sigma:float -> unit -> t

val frequency_scale : t -> hz:float -> float

(** True dynamic energy (J) of one execution of [name] at frequency
    [hz]. *)
val energy : t -> name:string -> hz:float -> float

(** True latency in cycles: the declared value if available, else
    synthesized in 1–8 cycles. *)
val latency_cycles : ?declared:int option -> string -> int
