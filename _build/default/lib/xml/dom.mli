(** DOM-lite document tree for the XML 1.0 subset used by XPDL.

    Nodes carry source positions so later stages (validation,
    elaboration, constraint checking) can report errors pointing back
    into the [.xpdl] file. *)

type position = {
  file : string;  (** source file name, or ["<string>"] for inline input *)
  line : int;  (** 1-based line *)
  column : int;  (** 1-based column *)
}

val no_position : position
val pp_position : Format.formatter -> position -> unit

(** An attribute is a [name="value"] pair, value fully entity-decoded. *)
type attribute = { attr_name : string; attr_value : string; attr_pos : position }

type node =
  | Element of element
  | Text of string * position  (** character data, entity-decoded *)
  | Cdata of string * position  (** CDATA section contents, verbatim *)
  | Comment of string * position

and element = {
  tag : string;
  attrs : attribute list;  (** in document order *)
  children : node list;  (** in document order *)
  pos : position;
}

(** {1 Constructors} *)

val element :
  ?pos:position -> ?attrs:attribute list -> ?children:node list -> string -> element

val attr : ?pos:position -> string -> string -> attribute
val text : ?pos:position -> string -> node

(** {1 Accessors} *)

val attribute : element -> string -> string option

(** Raises [Invalid_argument] with the element position on a missing
    attribute. *)
val attribute_exn : element -> string -> string

val has_attribute : element -> string -> bool

(** [set_attribute e name value] replaces an existing binding in place or
    appends a new one. *)
val set_attribute : element -> string -> string -> element

val remove_attribute : element -> string -> element

(** Child elements, in document order, ignoring text/comments. *)
val child_elements : element -> element list

val children_named : element -> string -> element list
val child_named : element -> string -> element option

(** Concatenated text of the direct text/CDATA children. *)
val text_content : element -> string

(** Depth-first fold over an element and all its descendant elements. *)
val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a

val iter_elements : (element -> unit) -> element -> unit

(** Number of elements in the subtree, including the root. *)
val element_count : element -> int

(** First element in document order (depth-first, root included)
    satisfying the predicate. *)
val find_element : (element -> bool) -> element -> element option

val filter_elements : (element -> bool) -> element -> element list

(** Structural equality ignoring positions, comments and insignificant
    whitespace. *)
val equal_element : element -> element -> bool
