(** Recursive-descent parser for the XML 1.0 subset used by XPDL.

    Supported: prolog ([<?xml ...?>] and other processing instructions),
    comments, elements with attributes, character data with the five
    predefined entities plus numeric character references, and CDATA
    sections.  Not supported (not used by XPDL): DTDs, namespaces beyond
    plain colon-in-name, parameter entities.

    A [lenient] mode additionally accepts unquoted attribute values
    ([quantity=2]), which appear in the paper's listings (Listing 1). *)

exception Parse_error of Dom.position * string

type state = {
  src : string;
  file : string;
  lenient : bool;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let position st = { Dom.file = st.file; line = st.line; column = st.off - st.bol + 1 }

let error st fmt =
  Fmt.kstr (fun msg -> raise (Parse_error (position st, msg))) fmt

let eof st = st.off >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.off]
let peek2 st = if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let advance st =
  (if not (eof st) then
     let c = st.src.[st.off] in
     st.off <- st.off + 1;
     if Char.equal c '\n' then begin
       st.line <- st.line + 1;
       st.bol <- st.off
     end)

let next st =
  let c = peek st in
  advance st;
  c

let expect st c =
  let got = peek st in
  if Char.equal got c then advance st
  else if eof st then error st "unexpected end of input, expected %C" c
  else error st "expected %C but found %C" c got

let expect_string st s =
  String.iter (fun c -> expect st c) s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '-' | '.' -> true
  | _ -> false

let skip_space st = while (not (eof st)) && is_space (peek st) do advance st done

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name, found %C" (peek st);
  let start = st.off in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  String.sub st.src start (st.off - start)

(* Decode one entity reference; the leading '&' has been consumed. *)
let parse_entity st =
  let start_pos = position st in
  let start = st.off in
  let rec scan () =
    if eof st then raise (Parse_error (start_pos, "unterminated entity reference"))
    else if Char.equal (peek st) ';' then begin
      let name = String.sub st.src start (st.off - start) in
      advance st;
      name
    end
    else if st.off - start > 10 then raise (Parse_error (start_pos, "entity reference too long"))
    else begin
      advance st;
      scan ()
    end
  in
  let name = scan () in
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length name > 1 && Char.equal name.[0] '#' then begin
        let code =
          try
            if Char.equal name.[1] 'x' || Char.equal name.[1] 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with _ -> raise (Parse_error (start_pos, "malformed character reference &" ^ name ^ ";"))
        in
        if code < 0 || code > 0x10FFFF then
          raise (Parse_error (start_pos, "character reference out of range"));
        (* UTF-8 encode. *)
        let b = Buffer.create 4 in
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents b
      end
      else raise (Parse_error (start_pos, "unknown entity &" ^ name ^ ";"))

let parse_attr_value st =
  let quote = peek st in
  if Char.equal quote '"' || Char.equal quote '\'' then begin
    advance st;
    let buf = Buffer.create 16 in
    let rec loop () =
      if eof st then error st "unterminated attribute value"
      else
        let c = next st in
        if Char.equal c quote then ()
        else if Char.equal c '&' then begin
          Buffer.add_string buf (parse_entity st);
          loop ()
        end
        else if Char.equal c '<' then error st "'<' not allowed in attribute value"
        else begin
          Buffer.add_char buf c;
          loop ()
        end
    in
    loop ();
    Buffer.contents buf
  end
  else if st.lenient then begin
    (* Unquoted value: run of characters up to whitespace, '>', or '/'. *)
    let start = st.off in
    while
      (not (eof st))
      && (not (is_space (peek st)))
      && (not (Char.equal (peek st) '>'))
      && not (Char.equal (peek st) '/' && Char.equal (peek2 st) '>')
    do
      advance st
    done;
    if st.off = start then error st "empty unquoted attribute value";
    String.sub st.src start (st.off - start)
  end
  else error st "attribute value must be quoted"

let parse_attributes st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let pos = position st in
      let name = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attr_value st in
      if List.exists (fun a -> String.equal a.Dom.attr_name name) acc then
        error st "duplicate attribute %S" name;
      loop ({ Dom.attr_name = name; attr_value = value; attr_pos = pos } :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_comment st =
  (* '<!--' consumed *)
  let pos = position st in
  let start = st.off in
  let rec loop () =
    if eof st then raise (Parse_error (pos, "unterminated comment"))
    else if Char.equal (peek st) '-' && Char.equal (peek2 st) '-' then begin
      let body = String.sub st.src start (st.off - start) in
      advance st;
      advance st;
      expect st '>';
      body
    end
    else begin
      advance st;
      loop ()
    end
  in
  (loop (), pos)

let parse_cdata st =
  (* '<![CDATA[' consumed *)
  let pos = position st in
  let start = st.off in
  let rec loop () =
    if eof st then raise (Parse_error (pos, "unterminated CDATA section"))
    else if
      Char.equal (peek st) ']' && Char.equal (peek2 st) ']'
      && st.off + 2 < String.length st.src
      && Char.equal st.src.[st.off + 2] '>'
    then begin
      let body = String.sub st.src start (st.off - start) in
      advance st;
      advance st;
      advance st;
      body
    end
    else begin
      advance st;
      loop ()
    end
  in
  (loop (), pos)

(* Skip '<?...?>' (already consumed '<?'). *)
let skip_pi st =
  let pos = position st in
  let rec loop () =
    if eof st then raise (Parse_error (pos, "unterminated processing instruction"))
    else if Char.equal (peek st) '?' && Char.equal (peek2 st) '>' then begin
      advance st;
      advance st
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

(* Skip '<!DOCTYPE ...>' including bracketed internal subset. *)
let skip_doctype st =
  let pos = position st in
  let depth = ref 0 in
  let rec loop () =
    if eof st then raise (Parse_error (pos, "unterminated DOCTYPE"))
    else
      match next st with
      | '[' ->
          incr depth;
          loop ()
      | ']' ->
          decr depth;
          loop ()
      | '>' -> if !depth > 0 then loop ()
      | _ -> loop ()
  in
  loop ()

let parse_text st =
  let pos = position st in
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st || Char.equal (peek st) '<' then ()
    else
      let c = next st in
      if Char.equal c '&' then begin
        Buffer.add_string buf (parse_entity st);
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
  in
  loop ();
  (Buffer.contents buf, pos)

let rec parse_element st =
  (* '<' consumed, name starts here *)
  let pos = position st in
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_space st;
  if Char.equal (peek st) '/' then begin
    advance st;
    expect st '>';
    { Dom.tag; attrs; children = []; pos }
  end
  else begin
    expect st '>';
    let children = parse_content st tag in
    { Dom.tag; attrs; children; pos }
  end

and parse_content st parent_tag =
  let rec loop acc =
    if eof st then error st "unterminated element <%s>" parent_tag
    else if Char.equal (peek st) '<' then begin
      advance st;
      match peek st with
      | '/' ->
          advance st;
          let close = parse_name st in
          skip_space st;
          expect st '>';
          if not (String.equal close parent_tag) then
            error st "mismatched closing tag </%s>, expected </%s>" close parent_tag;
          List.rev acc
      | '!' ->
          advance st;
          if Char.equal (peek st) '-' then begin
            expect_string st "--";
            let body, pos = parse_comment st in
            loop (Dom.Comment (body, pos) :: acc)
          end
          else begin
            expect_string st "[CDATA[";
            let body, pos = parse_cdata st in
            loop (Dom.Cdata (body, pos) :: acc)
          end
      | '?' ->
          advance st;
          skip_pi st;
          loop acc
      | _ ->
          let el = parse_element st in
          loop (Dom.Element el :: acc)
    end
    else begin
      let s, pos = parse_text st in
      loop (Dom.Text (s, pos) :: acc)
    end
  in
  loop []

(* Top level: prolog, misc, exactly one root element, trailing misc. *)
let parse_document st =
  let root = ref None in
  let rec loop () =
    skip_space st;
    if eof st then ()
    else begin
      if not (Char.equal (peek st) '<') then error st "text outside of root element";
      advance st;
      (match peek st with
      | '?' ->
          advance st;
          skip_pi st
      | '!' ->
          advance st;
          if Char.equal (peek st) '-' then begin
            expect_string st "--";
            ignore (parse_comment st)
          end
          else if Char.equal (peek st) 'D' then skip_doctype st
          else error st "unexpected markup declaration"
      | _ ->
          let el = parse_element st in
          (match !root with
          | None -> root := Some el
          | Some _ -> error st "multiple root elements"));
      loop ()
    end
  in
  loop ();
  match !root with
  | Some el -> el
  | None -> error st "no root element found"

(** [string_exn ?file ?lenient s] parses [s] into its root element.
    Raises {!Parse_error} on malformed input. *)
let string_exn ?(file = "<string>") ?(lenient = false) s =
  let st = { src = s; file; lenient; off = 0; line = 1; bol = 0 } in
  parse_document st

(** Like {!string_exn} but returning a result with a printable message. *)
let string ?file ?lenient s =
  match string_exn ?file ?lenient s with
  | el -> Ok el
  | exception Parse_error (pos, msg) ->
      Error (Fmt.str "%a: %s" Dom.pp_position pos msg)

(** Parse the contents of a file. *)
let file_exn ?lenient path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      string_exn ~file:path ?lenient s)

let file ?lenient path =
  match file_exn ?lenient path with
  | el -> Ok el
  | exception Parse_error (pos, msg) -> Error (Fmt.str "%a: %s" Dom.pp_position pos msg)
  | exception Sys_error msg -> Error msg
