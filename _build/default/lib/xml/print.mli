(** Serialization of {!Dom} trees back to XML text.

    The pretty-printed form (2-space indent, self-closing empty elements)
    round-trips through {!Parse} up to insignificant whitespace; the
    property tests rely on this. *)

(** [to_string ?decl ?indent el] renders [el].  [decl] (default [false])
    prepends the XML declaration; [indent] (default [true]) selects
    pretty layout versus a single line. *)
val to_string : ?decl:bool -> ?indent:bool -> Dom.element -> string

val pp : Format.formatter -> Dom.element -> unit

(** Write an element tree to a file as a standalone XML document. *)
val to_file : string -> Dom.element -> unit
