(** Serialization of {!Dom} trees back to XML text.

    [to_string] produces a canonical pretty-printed form (2-space indent,
    attributes in document order, self-closing empty elements); it
    round-trips through {!Parse} up to insignificant whitespace, which the
    property tests rely on. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\n' -> Buffer.add_string buf "&#10;"
      | '\t' -> Buffer.add_string buf "&#9;"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.Dom.attr_name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.Dom.attr_value);
      Buffer.add_char buf '"')
    attrs

(* An element is "inline" if its only children are text: printed on one
   line so that <const>42</const> stays readable. *)
let is_inline el =
  List.for_all (function Dom.Text _ | Dom.Cdata _ -> true | _ -> false) el.Dom.children

let rec add_element buf ~indent depth (el : Dom.element) =
  let pad = if indent then String.make (2 * depth) ' ' else "" in
  Buffer.add_string buf pad;
  Buffer.add_char buf '<';
  Buffer.add_string buf el.tag;
  add_attrs buf el.attrs;
  let significant =
    List.filter
      (function
        | Dom.Text (s, _) -> String.trim s <> ""
        | Dom.Cdata _ | Dom.Element _ | Dom.Comment _ -> true)
      el.children
  in
  if significant = [] then Buffer.add_string buf " />"
  else if is_inline el then begin
    Buffer.add_char buf '>';
    List.iter
      (function
        | Dom.Text (s, _) -> Buffer.add_string buf (escape_text s)
        | Dom.Cdata (s, _) ->
            Buffer.add_string buf "<![CDATA[";
            Buffer.add_string buf s;
            Buffer.add_string buf "]]>"
        | Dom.Element _ | Dom.Comment _ -> assert false)
      significant;
    Buffer.add_string buf "</";
    Buffer.add_string buf el.tag;
    Buffer.add_char buf '>'
  end
  else begin
    Buffer.add_char buf '>';
    if indent then Buffer.add_char buf '\n';
    List.iter
      (fun child ->
        (match child with
        | Dom.Element e -> add_element buf ~indent (depth + 1) e
        | Dom.Text (s, _) ->
            if String.trim s <> "" then begin
              if indent then Buffer.add_string buf (String.make (2 * (depth + 1)) ' ');
              Buffer.add_string buf (escape_text (String.trim s))
            end
        | Dom.Cdata (s, _) ->
            if indent then Buffer.add_string buf (String.make (2 * (depth + 1)) ' ');
            Buffer.add_string buf "<![CDATA[";
            Buffer.add_string buf s;
            Buffer.add_string buf "]]>"
        | Dom.Comment (s, _) ->
            if indent then Buffer.add_string buf (String.make (2 * (depth + 1)) ' ');
            Buffer.add_string buf "<!--";
            Buffer.add_string buf s;
            Buffer.add_string buf "-->");
        match child with
        | Dom.Text (s, _) when String.trim s = "" -> ()
        | _ -> if indent then Buffer.add_char buf '\n')
      el.children;
    Buffer.add_string buf pad;
    Buffer.add_string buf "</";
    Buffer.add_string buf el.tag;
    Buffer.add_char buf '>'
  end

(** Pretty-print an element tree.  [decl] (default true) prepends the
    [<?xml version="1.0"?>] declaration; [indent] (default true) selects
    pretty layout versus a single line. *)
let to_string ?(decl = false) ?(indent = true) el =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add_element buf ~indent 0 el;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf el = Fmt.string ppf (to_string el)

(** Write an element tree to [path] as a standalone XML document. *)
let to_file path el =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ~decl:true el))
