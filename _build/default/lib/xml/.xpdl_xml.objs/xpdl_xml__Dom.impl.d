lib/xml/dom.ml: Buffer Fmt List Option String
