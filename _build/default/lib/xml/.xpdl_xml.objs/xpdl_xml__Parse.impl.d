lib/xml/parse.ml: Buffer Char Dom Fmt Fun List String
