lib/xml/print.ml: Buffer Dom Fmt Fun List String
