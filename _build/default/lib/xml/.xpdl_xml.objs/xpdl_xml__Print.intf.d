lib/xml/print.mli: Dom Format
