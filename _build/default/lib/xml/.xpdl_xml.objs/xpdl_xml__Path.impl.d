lib/xml/path.ml: Char Dom Fmt List Option String
