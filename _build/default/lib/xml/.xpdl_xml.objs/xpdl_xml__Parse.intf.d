lib/xml/parse.mli: Dom
