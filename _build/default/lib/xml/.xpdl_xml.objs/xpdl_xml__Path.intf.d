lib/xml/path.mli: Dom
