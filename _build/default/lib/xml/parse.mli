(** Recursive-descent parser for the XML 1.0 subset used by XPDL.

    Supported: prolog and processing instructions, comments, elements
    with attributes, character data with the five predefined entities
    plus numeric character references, CDATA sections, and DOCTYPE
    skipping.  A [lenient] mode additionally accepts unquoted attribute
    values ([quantity=2]), which appear in the paper's listings. *)

exception Parse_error of Dom.position * string

(** Parse a string into its root element; raises {!Parse_error}. *)
val string_exn : ?file:string -> ?lenient:bool -> string -> Dom.element

(** Like {!string_exn} with the error rendered as ["file:line:col: msg"]. *)
val string : ?file:string -> ?lenient:bool -> string -> (Dom.element, string) result

(** Parse the contents of a file; raises {!Parse_error} or [Sys_error]. *)
val file_exn : ?lenient:bool -> string -> Dom.element

val file : ?lenient:bool -> string -> (Dom.element, string) result
