lib/expr/expr.ml: Bool Float Fmt Hashtbl List String
