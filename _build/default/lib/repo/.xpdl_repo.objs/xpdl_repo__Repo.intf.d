lib/repo/repo.mli: Diagnostic Inheritance Instantiate Model Xpdl_core
