lib/repo/repo.ml: Array Diagnostic Elaborate Filename Fmt Hashtbl Inheritance Instantiate List Model Option String Sys Validate Xpdl_core Xpdl_xml
