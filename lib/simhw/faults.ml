(** Deterministic fault injection for the simulated machine (see the
    interface).  All randomness comes from a private splitmix64 stream
    derived from the plan's seed, independent of the machine's
    measurement-noise stream: attaching a plan perturbs {e which} reads
    fail without reordering the noise applied to clean reads. *)

type kind = Timeout | Nan_read | Outlier | Stuck | Transient

let kind_name = function
  | Timeout -> "timeout"
  | Nan_read -> "nan"
  | Outlier -> "outlier"
  | Stuck -> "stuck"
  | Transient -> "transient"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

exception Meter_timeout of string
exception Core_offline of string

type event = { ev_read : int; ev_kind : kind; ev_target : string }

type plan = {
  fp_seed : int;
  fp_rate : float;
  fp_kinds : kind array;  (** non-empty *)
  fp_offline_after : int option;
  fp_rng : Rng.t;
  fp_offline_pick : int;  (** raw core pick, machine mods by its core count *)
  mutable fp_script : kind option list;  (** forced outcomes, consumed first *)
  mutable fp_reads : int;
  mutable fp_events : event list;  (** newest first *)
  mutable fp_last : float option;  (** last clean value, for [Stuck] *)
  mutable fp_burst : int;  (** remaining reads of a transient burst *)
  mutable fp_offline_fired : bool;
}

let all_kinds = [ Timeout; Nan_read; Outlier; Stuck; Transient ]

let create ?(rate = 0.) ?(kinds = all_kinds) ?(script = []) ?offline_after ~seed () =
  let kinds = match kinds with [] -> all_kinds | l -> l in
  let rng = Rng.create ~seed in
  let offline_pick = Rng.int (Rng.split rng "offline") 1_000_000 in
  {
    fp_seed = seed;
    fp_rate = rate;
    fp_kinds = Array.of_list kinds;
    fp_offline_after = offline_after;
    fp_rng = rng;
    fp_offline_pick = offline_pick;
    fp_script = script;
    fp_reads = 0;
    fp_events = [];
    fp_last = None;
    fp_burst = 0;
    fp_offline_fired = false;
  }

let seed p = p.fp_seed
let reads p = p.fp_reads
let events p = List.rev p.fp_events

let record p kind target =
  p.fp_events <- { ev_read = p.fp_reads; ev_kind = kind; ev_target = target } :: p.fp_events

(* Apply one fault kind to the true value [v]. *)
let fire p ~target v kind =
  record p kind target;
  match kind with
  | Timeout -> raise (Meter_timeout target)
  | Nan_read -> Float.nan
  | Outlier ->
      (* a wild but finite reading, the kind MAD-based rejection catches *)
      v *. Rng.uniform p.fp_rng ~lo:8. ~hi:50.
  | Stuck -> ( match p.fp_last with Some prev -> prev | None -> v *. 0.25)
  | Transient ->
      p.fp_burst <- Rng.int p.fp_rng 3;
      Float.nan

let observe p ~target v =
  p.fp_reads <- p.fp_reads + 1;
  let result =
    if p.fp_burst > 0 then begin
      p.fp_burst <- p.fp_burst - 1;
      record p Transient target;
      Float.nan
    end
    else
      match p.fp_script with
      | forced :: rest -> (
          p.fp_script <- rest;
          match forced with None -> v | Some k -> fire p ~target v k)
      | [] ->
          if p.fp_rate > 0. && Rng.float p.fp_rng < p.fp_rate then
            fire p ~target v (p.fp_kinds.(Rng.int p.fp_rng (Array.length p.fp_kinds)))
          else v
  in
  if Float.is_finite result && result = v then p.fp_last <- Some v;
  result

let pending_offline p =
  match p.fp_offline_after with
  | Some n when (not p.fp_offline_fired) && p.fp_reads >= n ->
      p.fp_offline_fired <- true;
      Some p.fp_offline_pick
  | _ -> None
