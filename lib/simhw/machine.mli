(** The simulated target machine: stands in for the physical EXCESS
    platforms.  Built from a composed XPDL model, it executes instruction
    workloads on its cores, transfers data over its interconnects, and
    exposes a simulated external power meter.  All observations are
    seeded-noisy measurements of the hidden {!Truth} model. *)

open Xpdl_core

type core = {
  core_ident : string;  (** path-like unique id *)
  core_element : Model.element;
  mutable hz : float;  (** current clock (DVFS state) *)
  nominal_hz : float;
  isa : string option;
  mutable core_offline : bool;  (** dropped by a fault plan; refuses work *)
}

type link = {
  link_ident : string;
  head : string option;
  tail : string option;
  bandwidth : float;  (** B/s *)
  time_offset : float;  (** s per message *)
  energy_per_byte : float;  (** J/B *)
  energy_offset : float;  (** J per message *)
}

type t = {
  model : Model.element;
  cores : core array;
  links : link array;
  truth : Truth.t;
  static_power : float;  (** W, whole machine, all domains on *)
  mem_access_energy : float;  (** J per (cache-missing) memory access *)
  mem_access_time : float;  (** s per memory access *)
  rng : Rng.t;
  mutable faults : Faults.plan option;  (** attached fault-injection plan *)
}

(** Sum of declared [static_power] over all physical hardware. *)
val total_static_power : Model.element -> float

(** Build a simulated machine.  [seed] fixes the noise stream;
    [noise_sigma] is the relative meter noise (default 2%). *)
val create : ?seed:int -> ?noise_sigma:float -> Model.element -> t

val core_count : t -> int

(** {1 Fault injection}

    With a {!Faults.plan} attached, every meter reading (instruction
    runs, transfers, idle-power samples) passes through the plan: it may
    come back NaN, wildly off, stuck at a stale value, raise
    {!Faults.Meter_timeout}, or — once the plan decides — take a core
    offline, after which {!run} on that core raises
    {!Faults.Core_offline}.  Without a plan behavior is unchanged. *)

val inject_faults : t -> Faults.plan -> unit
val clear_faults : t -> unit
val faults : t -> Faults.plan option

(** Find a core by its full path identifier or basename. *)
val find_core : t -> string -> core option

val find_link : t -> string -> link option

(** Set the clock of every core whose path contains [within] (all cores
    when omitted) — the effect of a DVFS power-state switch. *)
val set_frequency : ?within:string -> t -> float -> unit

(** A workload: a bag of instruction executions plus memory traffic. *)
type workload = {
  instructions : (string * int) list;  (** instruction name → count *)
  memory_accesses : int;  (** cache-missing accesses *)
  parallel_fraction : float;  (** Amdahl fraction that scales with cores *)
}

val workload :
  ?memory_accesses:int -> ?parallel_fraction:float -> (string * int) list -> workload

(** Result of a run, as observed through the simulated power meter. *)
type measurement = {
  elapsed : float;  (** s, wall-clock of the run *)
  dynamic_energy : float;  (** J attributed to the computation *)
  total_energy : float;  (** J including the machine's static share *)
  average_power : float;  (** W over the run *)
}

(** Execute on the core identified by [core] (default: first core);
    [cores_used] spreads the parallel fraction (Amdahl).  Raises
    [Invalid_argument] on an unknown core or a core-less machine,
    [Faults.Core_offline] on a core a fault plan took down, and
    [Faults.Meter_timeout] on a hung meter read. *)
val run : ?core:string -> ?cores_used:int -> t -> workload -> measurement

(** Transfer [bytes] over a link: noisy (time, energy).  Raises
    [Invalid_argument] on an unknown link. *)
val transfer : t -> link:string -> bytes:int -> float * float

(** Sample the external power meter while the machine idles. *)
val sample_idle_power : t -> duration:float -> float
