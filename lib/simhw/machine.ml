(** The simulated target machine.

    A {!t} is constructed from a composed XPDL model (the output of the
    toolchain front end) and plays the role of the physical EXCESS
    platforms in the paper: it executes instruction workloads on its
    cores, transfers data over its interconnects, and exposes a simulated
    external power meter — the [ExternalPowerMeter] property of
    Listing 11.  All observations are noisy measurements of the hidden
    {!Truth} model, so the microbenchmarking bootstrap has something real
    to estimate.

    The execution model is deliberately simple and analytic (an in-order
    core: cycles = Σ count·latency; energy = static + Σ count·E(f) +
    accesses·E_access), because the paper's toolchain only needs
    per-instruction averages, transfer costs and power samples. *)

open Xpdl_core

type core = {
  core_ident : string;  (** path-like unique id *)
  core_element : Model.element;
  mutable hz : float;  (** current clock (DVFS state) *)
  nominal_hz : float;
  isa : string option;
  mutable core_offline : bool;  (** dropped by a fault plan; refuses work *)
}

type link = {
  link_ident : string;
  head : string option;
  tail : string option;
  bandwidth : float;  (** B/s *)
  time_offset : float;  (** s per message *)
  energy_per_byte : float;  (** J/B *)
  energy_offset : float;  (** J per message *)
}

type t = {
  model : Model.element;
  cores : core array;
  links : link array;
  truth : Truth.t;
  static_power : float;  (** W, whole machine, all domains on *)
  mem_access_energy : float;  (** J per (cache-missing) memory access *)
  mem_access_time : float;  (** s per memory access *)
  rng : Rng.t;
  mutable faults : Faults.plan option;  (** attached fault-injection plan *)
}

let path_ident prefix (e : Model.element) fallback =
  match Model.identifier e with
  | Some i -> if prefix = "" then i else prefix ^ "/" ^ i
  | None -> if prefix = "" then fallback else prefix ^ "/" ^ fallback

(* Collect cores with their path identifiers and clock frequencies. *)
let collect_cores (root : Model.element) : core list =
  let acc = ref [] in
  let counter = ref 0 in
  let rec walk prefix (e : Model.element) =
    if Model.is_metadata_subtree e.kind then ()
    else begin
    let ident = path_ident prefix e (Schema.tag_of_kind e.kind ^ string_of_int !counter) in
    (if Schema.equal_kind e.kind Schema.Core then begin
       incr counter;
       let hz =
         match Model.attr_quantity e "frequency" with
         | Some q -> Xpdl_units.Units.value q
         | None -> 1.0e9
       in
       acc :=
         {
           core_ident = ident;
           core_element = e;
           hz;
           nominal_hz = hz;
           isa = Model.attr_string e "isa";
           core_offline = false;
         }
         :: !acc
     end);
    List.iter (walk ident) e.children
    end
  in
  walk "" root;
  List.rev !acc

(* Hidden defaults for "?" link offsets, stable per link name. *)
let default_time_offset name =
  1e-9 *. float_of_int (200 + (Truth.stable_hash ("toff:" ^ name) mod 600))

let default_energy_offset name =
  1e-12 *. float_of_int (300 + (Truth.stable_hash ("eoff:" ^ name) mod 900))

let channel_float (e : Model.element) key default =
  match Model.attr_quantity e key with
  | Some q -> Xpdl_units.Units.value q
  | None -> default

let collect_links (root : Model.element) : link list =
  let links = Model.elements_of_kind Schema.Interconnect root in
  List.filter_map
    (fun (ic : Model.element) ->
      let ident = Option.value ~default:"link" (Model.identifier ic) in
      let channels = Model.elements_of_kind Schema.Channel ic in
      (* aggregate over channels: a transfer uses one direction; take the
         first channel as representative (they are symmetric in our
         models) *)
      let bw, toff, epb, eoff =
        match channels with
        | [] ->
            ( channel_float ic "max_bandwidth" 1e9,
              default_time_offset ident,
              10e-12,
              default_energy_offset ident )
        | ch :: _ ->
            ( channel_float ch "max_bandwidth" 1e9,
              (if Model.attr_is_unknown ch "time_offset_per_message" then
                 default_time_offset ident
               else channel_float ch "time_offset_per_message" (default_time_offset ident)),
              channel_float ch "energy_per_byte" 10e-12,
              if Model.attr_is_unknown ch "energy_offset_per_message" then
                default_energy_offset ident
              else channel_float ch "energy_offset_per_message" (default_energy_offset ident) )
      in
      if bw <= 0. then None
      else
        Some
          {
            link_ident = ident;
            head = Model.attr_string ic "head";
            tail = Model.attr_string ic "tail";
            bandwidth = bw;
            time_offset = toff;
            energy_per_byte = epb;
            energy_offset = eoff;
          })
    links

(** Sum of declared [static_power] over all hardware components: the
    paper's synthesized static power of the root (Sec. III-D). *)
let total_static_power (root : Model.element) =
  Model.hardware_fold
    (fun acc (e : Model.element) ->
      if Schema.is_hardware e.kind then
        match Model.attr_quantity e "static_power" with
        | Some q -> acc +. Xpdl_units.Units.value q
        | None -> acc
      else acc)
    0. root

let mean_memory_costs (root : Model.element) =
  let mems = Model.elements_of_kind Schema.Memory root in
  let es, ts =
    List.fold_left
      (fun (es, ts) m ->
        ( (match Model.attr_quantity m "energy_per_access" with
          | Some q -> Xpdl_units.Units.value q :: es
          | None -> es),
          match Model.attr_quantity m "latency" with
          | Some q -> Xpdl_units.Units.value q :: ts
          | None -> ts ))
      ([], []) mems
  in
  let mean default = function
    | [] -> default
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  (mean 5e-9 es, mean 60e-9 ts)

(** Build a simulated machine from a composed model.  [seed] fixes the
    measurement-noise stream; [noise_sigma] is the relative noise of the
    simulated power meter (2% by default, a realistic external-meter
    figure). *)
let create ?(seed = 42) ?(noise_sigma = 0.02) (model : Model.element) : t =
  let isas = (Power.of_element model).pm_isas in
  let truth =
    match isas with
    | isa :: _ -> Truth.of_isa ~noise_sigma isa
    | [] -> Truth.synthetic ~noise_sigma ()
  in
  (* register every ISA's concrete entries *)
  List.iter
    (fun isa ->
      let t2 = Truth.of_isa ~noise_sigma isa in
      Hashtbl.iter (Hashtbl.replace truth.Truth.base_energy) t2.Truth.base_energy;
      Hashtbl.iter (Hashtbl.replace truth.Truth.tables) t2.Truth.tables)
    isas;
  let mem_access_energy, mem_access_time = mean_memory_costs model in
  {
    model;
    cores = Array.of_list (collect_cores model);
    links = Array.of_list (collect_links model);
    truth;
    static_power = total_static_power model;
    mem_access_energy;
    mem_access_time;
    rng = Rng.create ~seed;
    faults = None;
  }

let core_count t = Array.length t.cores

(** {1 Fault injection} *)

let inject_faults t plan = t.faults <- Some plan
let clear_faults t = t.faults <- None
let faults t = t.faults

(* Pass a meter reading through the attached fault plan (identity when
   none).  After each intercepted read, honor a pending core-offline
   request — the plan decides when, the machine decides which core. *)
let meter t ~target v =
  match t.faults with
  | None -> v
  | Some plan ->
      let deliver () =
        match Faults.pending_offline plan with
        | Some pick when Array.length t.cores > 0 ->
            t.cores.(pick mod Array.length t.cores).core_offline <- true
        | _ -> ()
      in
      let v' =
        try Faults.observe plan ~target v
        with e ->
          deliver ();
          raise e
      in
      deliver ();
      v'

let find_core t ident =
  let n = Array.length t.cores in
  let rec scan i =
    if i >= n then None
    else if
      String.equal t.cores.(i).core_ident ident
      || Filename.basename t.cores.(i).core_ident = ident
    then Some t.cores.(i)
    else scan (i + 1)
  in
  scan 0

let find_link t ident =
  let n = Array.length t.links in
  let rec scan i =
    if i >= n then None
    else if String.equal t.links.(i).link_ident ident then Some t.links.(i)
    else scan (i + 1)
  in
  scan 0

(** Set the clock of every core whose path contains [within] (or all cores
    if [within] is [None]) — the effect of a DVFS power-state switch. *)
let set_frequency ?within t hz =
  Array.iter
    (fun c ->
      let applies =
        match within with
        | None -> true
        | Some sub ->
            let len = String.length sub in
            let cl = String.length c.core_ident in
            let rec contains i =
              i + len <= cl && (String.equal (String.sub c.core_ident i len) sub || contains (i + 1))
            in
            contains 0
      in
      if applies then c.hz <- hz)
    t.cores

(** {1 Workload execution} *)

(** A workload is a bag of instruction executions plus memory traffic. *)
type workload = {
  instructions : (string * int) list;  (** instruction name → count *)
  memory_accesses : int;  (** cache-missing accesses *)
  parallel_fraction : float;  (** Amdahl fraction that scales with cores *)
}

let workload ?(memory_accesses = 0) ?(parallel_fraction = 1.0) instructions =
  { instructions; memory_accesses; parallel_fraction }

(** Result of a run, as observed through the simulated power meter. *)
type measurement = {
  elapsed : float;  (** s, wall-clock of the run *)
  dynamic_energy : float;  (** J attributed to the computation *)
  total_energy : float;  (** J including the machine's static share *)
  average_power : float;  (** W over the run *)
}

(* True (noise-free) serial cost of a workload on [core]. *)
let true_serial_cost t (core : core) (w : workload) =
  let declared_latency name =
    let isas = (Power.of_element t.model).pm_isas in
    List.find_map
      (fun isa ->
        List.find_map
          (fun (i : Power.instruction) ->
            if String.equal i.in_name name then i.in_latency else None)
          isa.Power.isa_instructions)
      isas
  in
  let cycles, energy =
    List.fold_left
      (fun (cy, en) (name, count) ->
        let lat = Truth.latency_cycles ~declared:(declared_latency name) name in
        ( cy +. (float_of_int count *. float_of_int lat),
          en +. (float_of_int count *. Truth.energy t.truth ~name ~hz:core.hz) ))
      (0., 0.) w.instructions
  in
  let time = (cycles /. core.hz) +. (float_of_int w.memory_accesses *. t.mem_access_time) in
  let energy = energy +. (float_of_int w.memory_accesses *. t.mem_access_energy) in
  (time, energy)

(** Execute [w] on the core identified by [core] (default: first core).
    [cores_used] spreads the parallel fraction over that many identical
    cores (Amdahl).  The returned measurement includes seeded noise. *)
let run ?core ?(cores_used = 1) t (w : workload) : measurement =
  let c =
    match core with
    | Some ident -> (
        match find_core t ident with
        | Some c -> c
        | None -> Fmt.invalid_arg "Machine.run: no core %S" ident)
    | None ->
        if Array.length t.cores = 0 then invalid_arg "Machine.run: machine has no cores";
        t.cores.(0)
  in
  if c.core_offline then raise (Faults.Core_offline c.core_ident);
  let serial_time, energy = true_serial_cost t c w in
  let p = Float.max 1. (float_of_int cores_used) in
  let time =
    (serial_time *. (1. -. w.parallel_fraction)) +. (serial_time *. w.parallel_fraction /. p)
  in
  let noise = Rng.noise_factor t.rng ~sigma:t.truth.Truth.noise_sigma in
  let noise_e = Rng.noise_factor t.rng ~sigma:t.truth.Truth.noise_sigma in
  let elapsed = time *. noise in
  let dynamic_energy = meter t ~target:("run:" ^ c.core_ident) (energy *. noise_e) in
  let total_energy = dynamic_energy +. (t.static_power *. elapsed) in
  { elapsed; dynamic_energy; total_energy; average_power = total_energy /. Float.max 1e-12 elapsed }

(** Transfer [bytes] over link [link]: (time, energy), with noise. *)
let transfer t ~link ~bytes : float * float =
  match find_link t link with
  | None -> Fmt.invalid_arg "Machine.transfer: no link %S" link
  | Some l ->
      let time = l.time_offset +. (float_of_int bytes /. l.bandwidth) in
      let energy = l.energy_offset +. (float_of_int bytes *. l.energy_per_byte) in
      ( time *. Rng.noise_factor t.rng ~sigma:t.truth.Truth.noise_sigma,
        meter t
          ~target:("transfer:" ^ l.link_ident)
          (energy *. Rng.noise_factor t.rng ~sigma:t.truth.Truth.noise_sigma) )

(** Sample the external power meter while the machine idles for
    [duration] seconds: static power plus meter noise. *)
let sample_idle_power t ~duration:_ =
  meter t ~target:"idle" (t.static_power *. Rng.noise_factor t.rng ~sigma:t.truth.Truth.noise_sigma)
