(** Deterministic fault injection for the simulated machine.

    A {!plan} is a seeded schedule of meter misbehavior attachable to a
    {!Machine.t}: reads can hang (simulated timeout), return NaN, return
    wild outliers, repeat a stale ("stuck") value, fail transiently in a
    short burst and then recover, or a core can drop offline partway
    through a benchmark suite.  Every decision is drawn from the plan's
    own splitmix64 stream, so a failure schedule replays exactly from its
    seed — the property the resilient bootstrap's byte-for-byte
    reproducible health reports rely on. *)

(** One way a meter read can go wrong. *)
type kind =
  | Timeout  (** the read hangs; surfaces as {!Meter_timeout} *)
  | Nan_read  (** the meter returns NaN *)
  | Outlier  (** the value is off by a large multiplicative factor *)
  | Stuck  (** the meter repeats the last value it delivered *)
  | Transient  (** a short burst of NaN reads, then full recovery *)

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

(** Raised by a faulty machine when a meter read hangs past its
    (simulated) timeout.  Carries the read's target description. *)
exception Meter_timeout of string

(** Raised by a faulty machine when the addressed core has been taken
    offline by the plan.  Carries the core identifier. *)
exception Core_offline of string

(** One recorded fault, for post-mortem accounting. *)
type event = {
  ev_read : int;  (** 1-based meter-read ordinal the fault fired on *)
  ev_kind : kind;
  ev_target : string;  (** what was being measured *)
}

type plan

(** [create ~seed ()] builds a deterministic fault plan.

    [rate] is the per-read fault probability (default [0.], i.e. the
    plan only replays [script]); [kinds] restricts which faults can fire
    (default: all).  [script] forces the outcomes of the first reads —
    [Some k] injects exactly fault [k], [None] forces a clean read —
    which is how tests inject e.g. one surgical NaN.  [offline_after]
    takes a core offline once that many meter reads have completed; the
    affected core index is drawn from the seed. *)
val create :
  ?rate:float ->
  ?kinds:kind list ->
  ?script:kind option list ->
  ?offline_after:int ->
  seed:int ->
  unit ->
  plan

val seed : plan -> int

(** Meter reads the plan has intercepted so far. *)
val reads : plan -> int

(** Faults fired so far, oldest first. *)
val events : plan -> event list

(** [observe plan ~target v] passes one true meter value through the
    plan: returns it unchanged (clean read), a perturbed value, or
    raises {!Meter_timeout}.  This is the machine's hook; user code does
    not normally call it. *)
val observe : plan -> target:string -> float -> float

(** After a read, the index of a core the plan wants offline (fires at
    most once).  The machine maps it onto its core array. *)
val pending_offline : plan -> int option
