(** Physical quantities with units, as used in XPDL attributes.

    XPDL attaches a unit to every metric attribute in [metric_unit] form
    (e.g. [static_power="4" static_power_unit="W"]; the unit for [size]
    is the bare attribute [unit]).  This module parses those unit
    strings, normalizes values to SI base units, converts between units
    and checks dimensions in arithmetic.

    Base units per dimension: size → bytes; frequency → Hz; power → W;
    energy → J; time → s; bandwidth → bytes/s; voltage → V;
    temperature → K. *)

type dimension =
  | Size
  | Frequency
  | Power
  | Energy
  | Time
  | Bandwidth
  | Voltage
  | Temperature
  | Scalar  (** dimensionless *)

val dimension_name : dimension -> string

(** Dedicated dimension equality (an integer comparison; avoids
    polymorphic [=] on hot query paths). *)
val equal_dimension : dimension -> dimension -> bool

val pp_dimension : Format.formatter -> dimension -> unit

(** A quantity: a value normalized to the base unit of its dimension. *)
type t

exception Unit_error of string

(** [lookup_unit u] is the dimension and base-unit factor of spelling [u],
    if recognized. *)
val lookup_unit : string -> (dimension * float) option

val lookup_unit_exn : string -> dimension * float

(** [is_known_unit u] is true if [u] is a recognized unit spelling. *)
val is_known_unit : string -> bool

(** {1 Construction} *)

val make : float -> dimension -> t
val scalar : float -> t
val bytes : float -> t
val hertz : float -> t
val watts : float -> t
val joules : float -> t
val seconds : float -> t
val bytes_per_second : float -> t

(** [of_value v unit] interprets numeric [v] in unit [unit].
    Raises {!Unit_error} on an unknown unit. *)
val of_value : float -> string -> t

(** [of_string s unit] parses the numeric string [s] with unit [unit].
    Raises {!Unit_error} on a malformed number or unknown unit. *)
val of_string : string -> string -> t

val of_string_opt : string -> string -> t option

(** {1 Observation} *)

(** The value in the dimension's SI base unit. *)
val value : t -> float

val dim : t -> dimension

(** [to_unit t u] converts [t] to unit [u]; raises {!Unit_error} unless
    the dimensions agree. *)
val to_unit : t -> string -> float

(** {1 Arithmetic (dimension-checked; {!Unit_error} on mismatch)} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

(** Dimensionless ratio of two same-dimension quantities. *)
val ratio : t -> t -> float

val compare : t -> t -> int

(** Relative-tolerance equality ([eps] defaults to [1e-9]); quantities of
    different dimensions are never equal. *)
val equal : ?eps:float -> t -> t -> bool

(** energy = power × time *)
val energy_of_power_time : t -> t -> t

(** power = energy ÷ time *)
val power_of_energy_time : t -> t -> t

(** time = size ÷ bandwidth *)
val time_of_size_bandwidth : t -> t -> t

(** time = cycles ÷ frequency *)
val time_of_cycles_frequency : float -> t -> t

(** {1 Printing} *)

(** Human-friendly printer: picks the largest display unit in which the
    magnitude is at least 1. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
