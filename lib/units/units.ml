(** Physical quantities with units, as used in XPDL attributes.

    XPDL attaches a unit to every metric attribute in [metric_unit] form
    (e.g. [static_power="4" static_power_unit="W"]; the unit for [size] is
    the bare attribute [unit]).  This module parses those unit strings,
    normalizes values to SI base units, converts between units and checks
    dimensions in arithmetic.

    Base units per dimension: size → bytes; frequency → Hz; power → W;
    energy → J; time → s; bandwidth → bytes/s; voltage → V;
    temperature → K. *)

type dimension =
  | Size
  | Frequency
  | Power
  | Energy
  | Time
  | Bandwidth
  | Voltage
  | Temperature
  | Scalar  (** dimensionless *)

let dimension_name = function
  | Size -> "size"
  | Frequency -> "frequency"
  | Power -> "power"
  | Energy -> "energy"
  | Time -> "time"
  | Bandwidth -> "bandwidth"
  | Voltage -> "voltage"
  | Temperature -> "temperature"
  | Scalar -> "scalar"

(* Dedicated equality: dimensions are a closed enum of constant
   constructors, so this compiles to an integer comparison — no
   polymorphic structural compare on hot query paths. *)
let equal_dimension (a : dimension) (b : dimension) =
  match (a, b) with
  | Size, Size
  | Frequency, Frequency
  | Power, Power
  | Energy, Energy
  | Time, Time
  | Bandwidth, Bandwidth
  | Voltage, Voltage
  | Temperature, Temperature
  | Scalar, Scalar ->
      true
  | ( ( Size | Frequency | Power | Energy | Time | Bandwidth | Voltage | Temperature
      | Scalar ),
      _ ) ->
      false

let pp_dimension ppf d = Fmt.string ppf (dimension_name d)

(** A quantity: a value normalized to the base unit of its dimension. *)
type t = { value : float; dim : dimension }

exception Unit_error of string

let error fmt = Fmt.kstr (fun m -> raise (Unit_error m)) fmt

(* Table of recognized unit spellings: (spelling, dimension, factor to base).
   Size units follow IEC (KiB = 2^10) vs SI (kB = 10^3) conventions; the
   paper mixes "KB"/"kB" freely, which historically mean 1024 in datasheet
   context, so KB/kB are binary here (and kiB etc. obviously too), while
   MB/GB follow the same datasheet convention. *)
let table : (string * dimension * float) list =
  let kib = 1024. in
  let mib = kib *. 1024. in
  let gib = mib *. 1024. in
  let tib = gib *. 1024. in
  [
    (* sizes *)
    ("B", Size, 1.);
    ("byte", Size, 1.);
    ("bytes", Size, 1.);
    ("kB", Size, kib);
    ("KB", Size, kib);
    ("KiB", Size, kib);
    ("kiB", Size, kib);
    ("MB", Size, mib);
    ("MiB", Size, mib);
    ("GB", Size, gib);
    ("GiB", Size, gib);
    ("TB", Size, tib);
    ("TiB", Size, tib);
    (* frequency *)
    ("Hz", Frequency, 1.);
    ("kHz", Frequency, 1e3);
    ("KHz", Frequency, 1e3);
    ("MHz", Frequency, 1e6);
    ("GHz", Frequency, 1e9);
    (* power *)
    ("W", Power, 1.);
    ("mW", Power, 1e-3);
    ("uW", Power, 1e-6);
    ("kW", Power, 1e3);
    (* energy *)
    ("J", Energy, 1.);
    ("mJ", Energy, 1e-3);
    ("uJ", Energy, 1e-6);
    ("nJ", Energy, 1e-9);
    ("pJ", Energy, 1e-12);
    ("kJ", Energy, 1e3);
    ("Wh", Energy, 3600.);
    ("kWh", Energy, 3.6e6);
    (* time *)
    ("s", Time, 1.);
    ("sec", Time, 1.);
    ("ms", Time, 1e-3);
    ("us", Time, 1e-6);
    ("ns", Time, 1e-9);
    ("ps", Time, 1e-12);
    ("min", Time, 60.);
    ("h", Time, 3600.);
    (* bandwidth *)
    ("B/s", Bandwidth, 1.);
    ("kB/s", Bandwidth, kib);
    ("KB/s", Bandwidth, kib);
    ("KiB/s", Bandwidth, kib);
    ("MB/s", Bandwidth, mib);
    ("MiB/s", Bandwidth, mib);
    ("GB/s", Bandwidth, gib);
    ("GiB/s", Bandwidth, gib);
    ("TB/s", Bandwidth, tib);
    (* voltage *)
    ("V", Voltage, 1.);
    ("mV", Voltage, 1e-3);
    (* temperature *)
    ("K", Temperature, 1.);
    (* scalar *)
    ("", Scalar, 1.);
  ]

(** [lookup_unit u] is the dimension and base-unit factor of spelling [u]. *)
let lookup_unit u =
  let rec find = function
    | [] -> None
    | (spell, dim, f) :: rest -> if String.equal spell u then Some (dim, f) else find rest
  in
  find table

let lookup_unit_exn u =
  match lookup_unit u with
  | Some x -> x
  | None -> error "unknown unit %S" u

(** [is_known_unit u] is true if [u] is a recognized unit spelling. *)
let is_known_unit u = Option.is_some (lookup_unit u)

(** {1 Construction} *)

let make value dim = { value; dim }
let scalar v = { value = v; dim = Scalar }
let bytes v = { value = v; dim = Size }
let hertz v = { value = v; dim = Frequency }
let watts v = { value = v; dim = Power }
let joules v = { value = v; dim = Energy }
let seconds v = { value = v; dim = Time }
let bytes_per_second v = { value = v; dim = Bandwidth }

(** [of_value v unit] interprets numeric [v] in unit [unit]. *)
let of_value v u =
  let dim, f = lookup_unit_exn u in
  { value = v *. f; dim }

(** [of_string s unit] parses the numeric string [s] with unit [unit].
    Raises {!Unit_error} on a malformed number or unknown unit. *)
let of_string s u =
  match float_of_string_opt (String.trim s) with
  | Some v -> of_value v u
  | None -> error "malformed numeric value %S" s

let of_string_opt s u =
  match of_string s u with q -> Some q | exception Unit_error _ -> None

(** {1 Observation} *)

let value t = t.value
let dim t = t.dim

(** [to_unit t u] converts [t] to unit [u]; dimensions must agree. *)
let to_unit t u =
  let dim, f = lookup_unit_exn u in
  if dim <> t.dim then
    error "cannot express %s quantity in unit %S (%s)" (dimension_name t.dim) u
      (dimension_name dim);
  t.value /. f

(** {1 Arithmetic (dimension-checked)} *)

let require_same op a b =
  if a.dim <> b.dim then
    error "%s: dimension mismatch (%s vs %s)" op (dimension_name a.dim) (dimension_name b.dim)

let add a b =
  require_same "add" a b;
  { a with value = a.value +. b.value }

let sub a b =
  require_same "sub" a b;
  { a with value = a.value -. b.value }

let scale k t = { t with value = k *. t.value }

let neg t = { t with value = -.t.value }

(** Dimensionless ratio of two same-dimension quantities. *)
let ratio a b =
  require_same "ratio" a b;
  a.value /. b.value

let compare a b =
  require_same "compare" a b;
  Float.compare a.value b.value

let equal ?(eps = 1e-9) a b =
  a.dim = b.dim && Float.abs (a.value -. b.value) <= eps *. Float.max 1.0 (Float.abs a.value)

(* Structured products/quotients that arise in energy modeling. *)

(** energy = power × time *)
let energy_of_power_time p t =
  if p.dim <> Power || t.dim <> Time then error "energy_of_power_time: need power × time";
  { value = p.value *. t.value; dim = Energy }

(** power = energy ÷ time *)
let power_of_energy_time e t =
  if e.dim <> Energy || t.dim <> Time then error "power_of_energy_time: need energy ÷ time";
  { value = e.value /. t.value; dim = Power }

(** time = size ÷ bandwidth *)
let time_of_size_bandwidth s bw =
  if s.dim <> Size || bw.dim <> Bandwidth then error "time_of_size_bandwidth: need size ÷ bandwidth";
  { value = s.value /. bw.value; dim = Time }

(** time = cycles ÷ frequency *)
let time_of_cycles_frequency cycles f =
  if f.dim <> Frequency then error "time_of_cycles_frequency: need scalar ÷ frequency";
  { value = cycles /. f.value; dim = Time }

(** {1 Printing} *)

(* Preferred display units per dimension, largest first. *)
let display_units = function
  | Size -> [ ("TiB", 1024. ** 4.); ("GiB", 1024. ** 3.); ("MiB", 1024. ** 2.); ("KiB", 1024.); ("B", 1.) ]
  | Frequency -> [ ("GHz", 1e9); ("MHz", 1e6); ("kHz", 1e3); ("Hz", 1.) ]
  | Power -> [ ("kW", 1e3); ("W", 1.); ("mW", 1e-3); ("uW", 1e-6) ]
  | Energy -> [ ("kJ", 1e3); ("J", 1.); ("mJ", 1e-3); ("uJ", 1e-6); ("nJ", 1e-9); ("pJ", 1e-12) ]
  | Time -> [ ("s", 1.); ("ms", 1e-3); ("us", 1e-6); ("ns", 1e-9); ("ps", 1e-12) ]
  | Bandwidth -> [ ("GiB/s", 1024. ** 3.); ("MiB/s", 1024. ** 2.); ("KiB/s", 1024.); ("B/s", 1.) ]
  | Voltage -> [ ("V", 1.); ("mV", 1e-3) ]
  | Temperature -> [ ("K", 1.) ]
  | Scalar -> [ ("", 1.) ]

(** Human-friendly printer: picks the largest unit in which the magnitude
    is at least 1 (or the smallest available). *)
let pp ppf t =
  let abs = Float.abs t.value in
  let units = display_units t.dim in
  let rec choose = function
    | [] -> ("", 1.)
    | [ last ] -> last
    | (u, f) :: rest -> if abs >= f then (u, f) else choose rest
  in
  let u, f = choose units in
  if String.equal u "" then Fmt.pf ppf "%g" t.value
  else Fmt.pf ppf "%g %s" (t.value /. f) u

let to_string t = Fmt.str "%a" pp t
