(** Design-space exploration over parameterized platform templates
    (ROADMAP item 3; Klarhorst et al.'s DSE-for-many-core workload).

    A {e template} is an elaborated — but not yet instantiated — XPDL
    element whose [<param>] declarations carry [range] ladders: exactly
    the configurability machinery of Sec. III-B (core counts, DVFS
    frequencies, cache sizes, interconnect widths).  The engine
    enumerates the full cartesian grid over those axes, or draws a
    seeded splitmix64 sample of it, and pushes every configuration
    point through the existing instantiate → analysis → resilient
    bootstrap → energy-synthesis path on the simulated machine.  Each
    surviving point is priced by dispatching the paper's SpMV
    conditional-composition case study ({!Xpdl_compose.Spmv}) on the
    instantiated platform, yielding three objectives: total energy of
    the solve, wall-clock time, and the platform's synthesized static
    power.  The report carries the Pareto front over those objectives
    plus per-axis sensitivity summaries.

    Points whose [range]/[constraint] checks fail are {e pruned} with
    coded diagnostics (XPDL803 wrapping the XPDL21x cause) rather than
    aborting the sweep; points whose bootstrap degrades ride the PR 5
    quality ladder and keep their provenance in the per-point report
    (XPDL805).  Evaluation is embarrassingly parallel across
    configurations on OCaml 5 domains with a chunked shared queue;
    every point's result lands in a slot fixed by its grid index and
    all per-point randomness is derived from (sweep seed, grid index),
    so a parallel run is byte-identical to [jobs = 1]. *)

open Xpdl_core
module Rng = Xpdl_simhw.Rng
module Machine = Xpdl_simhw.Machine
module Faults = Xpdl_simhw.Faults
module Units = Xpdl_units.Units
module Analysis = Xpdl_toolchain.Analysis
module Query = Xpdl_query.Query
module Resilient = Xpdl_microbench.Resilient
module Store = Xpdl_store.Store
module Aggregate = Xpdl_energy.Aggregate
module Compose = Xpdl_compose.Compose
module Spmv = Xpdl_compose.Spmv

(* ------------------------------------------------------------------ *)
(* Axes and the configuration space *)

type axis = { ax_name : string; ax_values : float array }
(** One sweep dimension: a parameter name and its value ladder
    (SI-normalized floats, matching {!Instantiate.env} conventions). *)

let axis name values = { ax_name = name; ax_values = Array.of_list values }

(* Parse one ladder item; values may carry a :unit suffix (2:GHz) or be
   interpreted in [unit_spelling] when the axis declares one. *)
let parse_value ?unit_spelling s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | Some j -> (
      let num = String.sub s 0 j and u = String.sub s (j + 1) (String.length s - j - 1) in
      match Units.of_string_opt num u with Some q -> Some (Units.value q) | None -> None)
  | None -> (
      match unit_spelling with
      | Some u when Units.is_known_unit u -> (
          match Units.of_string_opt s u with Some q -> Some (Units.value q) | None -> None)
      | _ -> float_of_string_opt s)

(** Parse a CLI axis specification [name=v1,v2,...]; values accept
    [:unit] suffixes ([freq=1:GHz,2:GHz]). *)
let parse_axis_spec spec : (axis, Diagnostic.t) result =
  let malformed reason =
    Error (Diagnostic.error ~code:"XPDL802" "malformed --axis %S: %s" spec reason)
  in
  match String.index_opt spec '=' with
  | None -> malformed "expected name=v1,v2,..."
  | Some i -> (
      let name = String.trim (String.sub spec 0 i) in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      if String.equal name "" then malformed "empty axis name"
      else
        let items = String.split_on_char ',' rest in
        let values = List.filter_map parse_value items in
        match values with
        | [] -> malformed "empty or unparseable value list"
        | _ when List.length values <> List.length items ->
            malformed "unparseable value in list"
        | _ -> Ok (axis name values))

(** Derive axes from the template itself: every [<param>] whose [range]
    attribute lists at least two admissible values is a sweep axis, its
    ladder read in the param's declared unit — the language's own way of
    spelling a design space (Listing 9). *)
let axes_of_template (root : Model.element) : axis list =
  let acc = ref [] in
  let rec walk (e : Model.element) =
    (if e.Model.kind = Schema.Param then
       match (e.Model.name, Model.attr_string e "range") with
       | Some name, Some range_s ->
           let quantity_spelling =
             List.find_map
               (fun key ->
                 match Model.attr e key with
                 | Some (Model.Quantity (_, spelling)) -> Some spelling
                 | _ -> None)
               [ "value"; "size"; "frequency" ]
           in
           let unit_spelling =
             match Model.attr_string e "unit" with Some u -> Some u | None -> quantity_spelling
           in
           let values =
             String.split_on_char ',' range_s |> List.filter_map (parse_value ?unit_spelling)
           in
           if List.length values >= 2 && not (List.mem_assoc name !acc) then
             acc := (name, values) :: !acc
       | _ -> ());
    List.iter walk e.Model.children
  in
  walk root;
  List.rev_map (fun (n, vs) -> axis n vs) !acc

type space = { sp_axes : axis array; sp_total : int }

let space axes : (space, Diagnostic.t) result =
  match axes with
  | [] ->
      Error
        (Diagnostic.error ~code:"XPDL801"
           "template declares no sweep axes (no <param> with a multi-value range, no --axis)")
  | _ -> (
      match List.find_opt (fun ax -> Array.length ax.ax_values = 0) axes with
      | Some ax -> Error (Diagnostic.error ~code:"XPDL802" "axis %s has no values" ax.ax_name)
      | None ->
          let sp_axes = Array.of_list axes in
          let total = Array.fold_left (fun t ax -> t * Array.length ax.ax_values) 1 sp_axes in
          Ok { sp_axes; sp_total = total })

(** Decode a grid index into per-axis bindings: mixed radix, first axis
    slowest (row-major), so index order reads like nested loops. *)
let decode sp index : (string * float) list =
  let n = Array.length sp.sp_axes in
  let rec go i rem acc =
    if i < 0 then acc
    else
      let ax = sp.sp_axes.(i) in
      let k = Array.length ax.ax_values in
      go (i - 1) (rem / k) ((ax.ax_name, ax.ax_values.(rem mod k)) :: acc)
  in
  go (n - 1) index []

(* ------------------------------------------------------------------ *)
(* Sweep plan: exhaustive grid or a seeded distinct sample *)

type plan = Exhaustive | Sample of int

(* Selected grid indices, ascending.  Sampling draws distinct indices by
   rejection on a dedicated splitmix64 stream; a quota at or above the
   space size degrades to the full grid with an XPDL806 note. *)
let select_indices ~seed sp plan : int array * Diagnostic.t list =
  match plan with
  | Exhaustive -> (Array.init sp.sp_total (fun i -> i), [])
  | Sample n when n >= sp.sp_total ->
      ( Array.init sp.sp_total (fun i -> i),
        [
          Diagnostic.info ~code:"XPDL806"
            "sample quota %d covers the whole %d-point space; sweep made exhaustive" n
            sp.sp_total;
        ] )
  | Sample n ->
      let n = max 1 n in
      let rng = Rng.split (Rng.create ~seed) "dse-sample" in
      let seen = Hashtbl.create (2 * n) in
      while Hashtbl.length seen < n do
        let i = Rng.int rng sp.sp_total in
        if not (Hashtbl.mem seen i) then Hashtbl.add seen i ()
      done;
      let picked = Hashtbl.fold (fun i () acc -> i :: acc) seen [] in
      (Array.of_list (List.sort compare picked), [])

(* ------------------------------------------------------------------ *)
(* Per-point evaluation *)

type objectives = {
  o_energy : float;  (** J: total energy of the SpMV solve on this point *)
  o_time : float;  (** s: wall-clock of the solve *)
  o_static_power : float;  (** W: synthesized static power of the platform *)
}

type quality_summary = {
  q_measured : int;
  q_interpolated : int;
  q_inherited : int;
  q_unresolved : int;
}

let no_quality = { q_measured = 0; q_interpolated = 0; q_inherited = 0; q_unresolved = 0 }

let summarize_quality entries =
  List.fold_left
    (fun q (_, name) ->
      match name with
      | "measured" -> { q with q_measured = q.q_measured + 1 }
      | "interpolated" -> { q with q_interpolated = q.q_interpolated + 1 }
      | "inherited" -> { q with q_inherited = q.q_inherited + 1 }
      | _ -> { q with q_unresolved = q.q_unresolved + 1 })
    no_quality entries

type status =
  | Evaluated of objectives  (** the point survives into front computation *)
  | Pruned  (** range/constraint failure at this configuration (XPDL803) *)
  | Failed  (** evaluation error — no variant, exception, non-finite (XPDL804) *)

type point = {
  pt_index : int;  (** position in the full grid, row-major *)
  pt_bindings : (string * float) list;
  pt_status : status;
  pt_variant : string option;  (** SpMV variant the dispatcher chose *)
  pt_quality : quality_summary;  (** bootstrap degradation-ladder provenance *)
  pt_degraded : bool;
  pt_diags : Diagnostic.t list;
}

type workload = { wl_rows : int; wl_density : float; wl_iterations : int }

let default_workload = { wl_rows = 2048; wl_density = 0.02; wl_iterations = 4 }

type config = {
  jobs : int;  (** evaluation domains; 1 = sequential *)
  seed : int;  (** master seed: sampling stream + per-point machine seeds *)
  plan : plan;
  workload : workload;
  policy : Resilient.policy;  (** bootstrap resilience policy *)
  faults : (int * float) option;  (** (fault seed, rate) meter fault injection *)
}

let default_config =
  {
    jobs = 1;
    seed = 42;
    plan = Exhaustive;
    workload = default_workload;
    policy = { Resilient.default_policy with repetitions = 3 };
    faults = None;
  }

(* The machine seed of a point is a pure function of (sweep seed, grid
   index) — never of evaluation order — so any schedule of any number of
   domains reproduces the same measurements. *)
let point_seed ~seed index =
  let r = Rng.split (Rng.create ~seed) (Fmt.str "dse-point:%d" index) in
  Int64.to_int (Int64.logand (Rng.next_int64 r) 0x3FFFFFFFFFFFFFL)

let prune_codes = [ "XPDL210"; "XPDL211"; "XPDL212"; "XPDL213"; "XPDL215"; "XPDL216" ]

let finite o =
  Float.is_finite o.o_energy && Float.is_finite o.o_time && Float.is_finite o.o_static_power

(** Evaluate one grid point: bind the axis values as external
    configuration, instantiate, analyze, bootstrap resiliently, then
    price the SpMV component on the resulting simulated machine.  Never
    raises; failures become [Pruned]/[Failed] statuses with coded
    diagnostics. *)
let eval_point ~(template : Model.element) ~(cfg : config) ~index ~bindings : point =
  let base =
    {
      pt_index = index;
      pt_bindings = bindings;
      pt_status = Failed;
      pt_variant = None;
      pt_quality = no_quality;
      pt_degraded = false;
      pt_diags = [];
    }
  in
  let env = List.map (fun (n, v) -> (n, Xpdl_expr.Expr.Num v)) bindings in
  match Instantiate.run ~env template with
  | exception exn ->
      {
        base with
        pt_diags =
          [
            Diagnostic.warning ~code:"XPDL804" "point #%d: instantiation raised %s" index
              (Printexc.to_string exn);
          ];
      }
  | model, idiags -> (
      let fatal =
        List.filter
          (fun (d : Diagnostic.t) ->
            Diagnostic.is_error d && List.mem d.Diagnostic.code prune_codes)
          idiags
      in
      if fatal <> [] then
        {
          base with
          pt_status = Pruned;
          pt_diags =
            Diagnostic.info ~code:"XPDL803"
              "point #%d pruned: %d range/constraint failure(s) at this configuration" index
              (List.length fatal)
            :: idiags;
        }
      else
        let work () =
          let model, _links = Analysis.effective_bandwidths model in
          let mseed = point_seed ~seed:cfg.seed index in
          (* bootstrap on its own machine so fault plans and DVFS sweeps
             cannot leak into the pricing run below *)
          let boot_machine = Machine.create ~seed:mseed model in
          (match cfg.faults with
          | Some (fseed, rate) when rate > 0. ->
              Machine.inject_faults boot_machine
                (Faults.create ~seed:(fseed + index) ~rate ())
          | _ -> ());
          let store = Store.of_model model in
          let health = Resilient.run_store ~policy:cfg.policy ~machine:boot_machine store in
          let model = Store.model store in
          let quality = summarize_quality (Resilient.quality_entries model) in
          let degraded =
            quality.q_interpolated + quality.q_inherited + quality.q_unresolved > 0
            || health.Resilient.h_aborted
          in
          let machine = Machine.create ~seed:mseed model in
          let query = Query.of_model model in
          let ctx =
            Spmv.context ~iterations:cfg.workload.wl_iterations ~query ~machine
              ~rows:cfg.workload.wl_rows ~density:cfg.workload.wl_density ()
          in
          let variant, meas = Compose.dispatch Spmv.component ctx in
          let o =
            {
              o_energy = meas.Machine.total_energy;
              o_time = meas.Machine.elapsed;
              o_static_power = Aggregate.static_power model;
            }
          in
          let degraded_diag =
            if degraded then
              [
                Diagnostic.info ~code:"XPDL805"
                  "point #%d bootstrapped below full quality \
                   (measured %d, interpolated %d, inherited %d, unresolved %d)"
                  index quality.q_measured quality.q_interpolated quality.q_inherited
                  quality.q_unresolved;
              ]
            else []
          in
          if not (finite o) then
            {
              base with
              pt_quality = quality;
              pt_degraded = degraded;
              pt_diags =
                Diagnostic.warning ~code:"XPDL804"
                  "point #%d: non-finite objectives; point dropped" index
                :: idiags;
            }
          else
            {
              base with
              pt_status = Evaluated o;
              pt_variant = Some variant;
              pt_quality = quality;
              pt_degraded = degraded;
              pt_diags = degraded_diag @ idiags;
            }
        in
        match work () with
        | p -> p
        | exception exn ->
            {
              base with
              pt_diags =
                Diagnostic.warning ~code:"XPDL804" "point #%d: evaluation failed: %s; point dropped"
                  index (Printexc.to_string exn)
                :: idiags;
            })

(* ------------------------------------------------------------------ *)
(* Parallel evaluation: chunked queue over domains, slot-deterministic *)

(* Each worker claims a contiguous chunk of slots from a shared atomic
   cursor; results land in the slot owned by their grid index, so the
   merged array — and everything derived from it — is independent of
   scheduling.  No work stealing: chunks are small enough (≥ 8 per
   domain on average) that tail imbalance stays bounded. *)
let run_points ~jobs ~eval (indices : int array) : point array =
  let n = Array.length indices in
  let results = Array.make n None in
  let fill slot = results.(slot) <- Some (eval indices.(slot)) in
  if jobs <= 1 || n <= 1 then
    for slot = 0 to n - 1 do
      fill slot
    done
  else begin
    let jobs = min jobs n in
    let cursor = Atomic.make 0 in
    let chunk = max 1 (n / (jobs * 8)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else
          for slot = start to min (n - 1) (start + chunk - 1) do
            fill slot
          done
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map
    (function Some p -> p | None -> invalid_arg "Dse.run_points: unfilled slot")
    results

(* ------------------------------------------------------------------ *)
(* Pareto front over (energy, time, static power), all minimized *)

let dominates a b =
  a.o_energy <= b.o_energy && a.o_time <= b.o_time && a.o_static_power <= b.o_static_power
  && (a.o_energy < b.o_energy || a.o_time < b.o_time || a.o_static_power < b.o_static_power)

(* Sort lexicographically by objectives (index-tiebroken), then admit
   each point against the accepted front only: any dominator sorts
   weakly earlier, and by transitivity some non-dominated dominator is
   already in the front — so the scan is O(n·|front|), not the oracle's
   O(n²) all-pairs check (which the dse-pareto property holds it to). *)
let pareto_front (pts : (int * objectives) list) : int list =
  let sorted =
    List.stable_sort
      (fun (ia, a) (ib, b) ->
        match Float.compare a.o_energy b.o_energy with
        | 0 -> (
            match Float.compare a.o_time b.o_time with
            | 0 -> (
                match Float.compare a.o_static_power b.o_static_power with
                | 0 -> compare ia ib
                | c -> c)
            | c -> c)
        | c -> c)
      pts
  in
  let front =
    List.fold_left
      (fun front (i, o) ->
        if List.exists (fun (_, f) -> dominates f o) front then front else (i, o) :: front)
      [] sorted
  in
  List.sort compare (List.map fst front)

(* ------------------------------------------------------------------ *)
(* Sensitivity: per axis, the relative spread of per-value objective
   means — a cheap main-effect summary that also works on samples. *)

type sensitivity = { sx_axis : string; sx_energy : float; sx_time : float; sx_static : float }

let sensitivities (axes : axis list) (pts : point list) : sensitivity list =
  let evaluated =
    List.filter_map
      (fun p -> match p.pt_status with Evaluated o -> Some (p.pt_bindings, o) | _ -> None)
      pts
  in
  let spread proj =
    (* relative spread of per-axis-value means for one objective *)
    fun ax ->
     let groups =
       Array.map
         (fun v ->
           let hits =
             List.filter_map
               (fun (bindings, o) ->
                 match List.assoc_opt ax.ax_name bindings with
                 | Some bv when Float.equal bv v -> Some (proj o)
                 | _ -> None)
               evaluated
           in
           match hits with
           | [] -> None
           | _ ->
               Some (List.fold_left ( +. ) 0. hits /. float_of_int (List.length hits)))
         ax.ax_values
     in
     let means = Array.to_list groups |> List.filter_map Fun.id in
     match means with
     | [] | [ _ ] -> 0.
     | m :: _ ->
         let lo = List.fold_left Float.min m means
         and hi = List.fold_left Float.max m means in
         let scale = List.fold_left ( +. ) 0. means /. float_of_int (List.length means) in
         if Float.abs scale > 0. then (hi -. lo) /. Float.abs scale else 0.
  in
  List.map
    (fun ax ->
      {
        sx_axis = ax.ax_name;
        sx_energy = spread (fun o -> o.o_energy) ax;
        sx_time = spread (fun o -> o.o_time) ax;
        sx_static = spread (fun o -> o.o_static_power) ax;
      })
    axes

(* ------------------------------------------------------------------ *)
(* The sweep *)

type report = {
  rp_axes : axis list;
  rp_space : int;  (** full grid size *)
  rp_seed : int;
  rp_jobs : int;
  rp_points : point array;  (** selected points, ascending grid index *)
  rp_front : int list;  (** Pareto-optimal grid indices, ascending *)
  rp_sensitivity : sensitivity list;
  rp_evaluated : int;
  rp_pruned : int;
  rp_failed : int;
  rp_degraded : int;
  rp_diags : Diagnostic.t list;  (** sweep-level notes (XPDL806/807) *)
}

let point_of_index (r : report) index =
  let n = Array.length r.rp_points in
  let rec bs lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let p = r.rp_points.(mid) in
      if p.pt_index = index then Some p else if p.pt_index < index then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

(** Sweep [template] over [axes] (default: derived from the template's
    ranged params).  Errors only on an unusable sweep specification; a
    sweep whose every point fails still returns a report (empty front,
    XPDL807). *)
let run ?(config = default_config) ?axes (template : Model.element) :
    (report, Diagnostic.t) result =
  let axes = match axes with Some a -> a | None -> axes_of_template template in
  match space axes with
  | Error d -> Error d
  | Ok sp ->
      let indices, plan_diags = select_indices ~seed:config.seed sp config.plan in
      let eval index = eval_point ~template ~cfg:config ~index ~bindings:(decode sp index) in
      let points = run_points ~jobs:config.jobs ~eval indices in
      let evaluated =
        Array.to_list points
        |> List.filter_map (fun p ->
               match p.pt_status with Evaluated o -> Some (p.pt_index, o) | _ -> None)
      in
      let front = pareto_front evaluated in
      let count f = Array.fold_left (fun acc p -> if f p then acc + 1 else acc) 0 points in
      let diags =
        plan_diags
        @
        if front = [] then
          [
            Diagnostic.info ~code:"XPDL807"
              "front empty: every selected point was pruned or failed";
          ]
        else []
      in
      Ok
        {
          rp_axes = axes;
          rp_space = sp.sp_total;
          rp_seed = config.seed;
          rp_jobs = config.jobs;
          rp_points = points;
          rp_front = front;
          rp_sensitivity = sensitivities axes (Array.to_list points);
          rp_evaluated = List.length evaluated;
          rp_pruned = count (fun p -> p.pt_status = Pruned);
          rp_failed = count (fun p -> p.pt_status = Failed);
          rp_degraded = count (fun p -> p.pt_degraded);
          rp_diags = diags;
        }

(** Lint-style exit semantics for the CLI and CI gates: a sweep that
    produced no usable front (everything pruned/failed) is a failure. *)
let exit_code (r : report) = if r.rp_front = [] then 1 else 0

(* ------------------------------------------------------------------ *)
(* Reports: canonical JSON (deterministic float spellings, stable key
   order, no wall-clock fields) and a human-readable text view.  The
   parallel-determinism drill cmp-compares this JSON byte-for-byte;
   the CLI appends its own "timing" member, which consumers strip. *)

let jf v = if Float.is_finite v then Fmt.str "%.17g" v else Fmt.str "\"%h\"" v
let js s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let status_name = function Evaluated _ -> "ok" | Pruned -> "pruned" | Failed -> "failed"

let quality_to_json q =
  Fmt.str {|{"measured":%d,"interpolated":%d,"inherited":%d,"unresolved":%d}|} q.q_measured
    q.q_interpolated q.q_inherited q.q_unresolved

let point_to_json p =
  let bindings =
    String.concat ","
      (List.map (fun (n, v) -> Fmt.str "%s:%s" (js n) (jf v)) p.pt_bindings)
  in
  let objectives =
    match p.pt_status with
    | Evaluated o ->
        Fmt.str {|,"energy":%s,"time":%s,"static_power":%s|} (jf o.o_energy) (jf o.o_time)
          (jf o.o_static_power)
    | Pruned | Failed -> ""
  in
  let variant = match p.pt_variant with Some v -> Fmt.str {|,"variant":%s|} (js v) | None -> "" in
  Fmt.str
    {|{"index":%d,"bindings":{%s},"status":"%s"%s%s,"degraded":%b,"quality":%s,"diagnostics":[%s]}|}
    p.pt_index bindings (status_name p.pt_status) objectives variant p.pt_degraded
    (quality_to_json p.pt_quality)
    (String.concat "," (List.map Diagnostic.to_json p.pt_diags))

let report_to_json (r : report) =
  let axes =
    String.concat ","
      (List.map
         (fun ax ->
           Fmt.str {|{"name":%s,"values":[%s]}|} (js ax.ax_name)
             (String.concat "," (Array.to_list (Array.map jf ax.ax_values))))
         r.rp_axes)
  in
  let sens =
    String.concat ","
      (List.map
         (fun s ->
           Fmt.str {|{"axis":%s,"energy":%s,"time":%s,"static_power":%s}|} (js s.sx_axis)
             (jf s.sx_energy) (jf s.sx_time) (jf s.sx_static))
         r.rp_sensitivity)
  in
  Fmt.str
    {|{"axes":[%s],"space":%d,"seed":%d,"points":[%s],"front":[%s],"sensitivity":[%s],"evaluated":%d,"pruned":%d,"errors":%d,"degraded":%d,"diagnostics":[%s]}|}
    axes r.rp_space r.rp_seed
    (String.concat "," (Array.to_list (Array.map point_to_json r.rp_points)))
    (String.concat "," (List.map string_of_int r.rp_front))
    sens r.rp_evaluated r.rp_pruned r.rp_failed r.rp_degraded
    (String.concat "," (List.map Diagnostic.to_json r.rp_diags))

let pp_bindings ppf bindings =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " ") (fun ppf (n, v) -> Fmt.pf ppf "%s=%g" n v))
    bindings

let pp_report ppf (r : report) =
  Fmt.pf ppf "design space: %d points over %d axes (%s); %d selected@." r.rp_space
    (List.length r.rp_axes)
    (String.concat " x " (List.map (fun a -> a.ax_name) r.rp_axes))
    (Array.length r.rp_points);
  Fmt.pf ppf "evaluated %d, pruned %d, failed %d, degraded %d@." r.rp_evaluated r.rp_pruned
    r.rp_failed r.rp_degraded;
  Fmt.pf ppf "Pareto front (%d point%s):@." (List.length r.rp_front)
    (if List.length r.rp_front = 1 then "" else "s");
  List.iter
    (fun i ->
      match point_of_index r i with
      | Some ({ pt_status = Evaluated o; _ } as p) ->
          Fmt.pf ppf "  #%-4d %-9s E=%.4g J  T=%.4g s  P=%.4g W  [%a]%s@." i
            (Option.value ~default:"-" p.pt_variant)
            o.o_energy o.o_time o.o_static_power pp_bindings p.pt_bindings
            (if p.pt_degraded then "  (degraded)" else "")
      | _ -> ())
    r.rp_front;
  Fmt.pf ppf "sensitivity (relative spread of per-value means):@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-12s energy %.3f  time %.3f  static %.3f@." s.sx_axis s.sx_energy s.sx_time
        s.sx_static)
    r.rp_sensitivity;
  List.iter (fun d -> Fmt.pf ppf "%a@." Diagnostic.pp d) r.rp_diags
