(** The XPDL runtime query API (Sec. IV) — the OCaml twin of the
    generated C++ API, over the serialized runtime model.  Four function
    categories: initialization, model browsing, attribute getters, and
    model-analysis functions for derived attributes.  All operations are
    array/hash lookups; no XML is touched at run time (experiment E5).

    The IR's preorder layout makes subtree aggregations contiguous array
    scans; derived-attribute functions memoize per handle; path selectors
    are compiled once per handle and seed ["//tag"] steps from the kind
    index.

    Handles built with {!init}/{!of_ir}/{!of_model} wrap an immutable IR:
    their memos never need invalidation.  Handles built with {!of_store}
    track an incremental {!Xpdl_store.Store}: before every access the
    handle consumes the store's edit journal, patching attribute edits
    into the IR in place and evicting only the memo entries whose subtree
    spans cover an edited node — instead of being thrown away and rebuilt
    on every model change.

    Handles are safe to {e read} from several domains concurrently: the
    per-handle memo tables and journal synchronization are guarded by a
    mutex (probes and inserts serialize; the derived computations
    themselves run outside the lock over the immutable IR, so racing
    readers at worst compute a value twice and agree bit-for-bit).
    Edits to a tracked handle's store must still be ordered against
    readers of that same handle by the caller — the model-query server
    does this by keeping all head-handle traffic on one domain. *)

open Xpdl_core
module Ir = Xpdl_toolchain.Ir

type t

(** A handle into the runtime model tree. *)
type element = Ir.node

exception Query_error of string

(** {1 Initialization} *)

(** Load a runtime-model file written by the toolchain — the OCaml
    [int xpdl_init(char *filename)].  Raises {!Query_error}. *)
val init : string -> t

(** Wrap an in-memory runtime model. *)
val of_ir : ?source:string -> Ir.t -> t

(** Build directly from a composed model element (tools, tests). *)
val of_model : ?source:string -> Model.element -> t

(** Follow an incremental model store.  [drop] lists attribute names
    filtered out of the runtime view (cf.
    {!Xpdl_toolchain.Analysis.filter_attributes}); edits to dropped
    attributes are invisible to the handle.  The handle synchronizes
    lazily: attribute-only edit runs are replayed as in-place IR patches
    with span-targeted memo eviction; structural edits and journal
    compaction rebuild the IR.  Element handles obtained before an edit
    are snapshots — re-fetch them after editing. *)
val of_store : ?drop:string list -> ?source:string -> Xpdl_store.Store.t -> t

(** The handle's current runtime IR (synchronized first). *)
val runtime_ir : t -> Ir.t

val source : t -> string
val size : t -> int

(** {1 Model browsing} *)

(** Metadata kinds (power models, ISAs, suites, software) whose contents
    are not physical hardware. *)
val is_metadata_kind : Schema.kind -> bool

val root : t -> element
val parent : t -> element -> element option
val children : t -> element -> element list
val children_of_kind : t -> element -> Schema.kind -> element list

(** Find a model element anywhere by its identifier (name or id). *)
val find_by_id : t -> string -> element option

val find_by_id_exn : t -> string -> element

(** Find by scope path, e.g. ["liu_gpu_server/gpu1/SMs/SM0"] — one hash
    lookup in the IR's path index. *)
val find_by_path : t -> string -> element option

(** All elements of one kind, in document order. *)
val all_of_kind : t -> Schema.kind -> element list

(** Physical hardware elements of one kind (no power-domain selectors),
    optionally restricted to a subtree. *)
val hardware_of_kind : ?within:element -> t -> Schema.kind -> element list

(** All elements in the subtree rooted at [e] (including [e]). *)
val subtree : t -> element -> element list

val kind : element -> Schema.kind
val ident : element -> string option
val path : element -> string

(** The retained [type] reference ("is this device a Nvidia_K20c?"). *)
val type_of : element -> string option

(** {1 Attribute getters} *)

val get : element -> string -> Ir.value option
val get_string : element -> string -> string option
val get_int : element -> string -> int option
val get_float : element -> string -> float option
val get_bool : element -> string -> bool option

(** SI-normalized quantity; raises {!Query_error} on a dimension
    mismatch. *)
val get_quantity : element -> string -> dim:Xpdl_units.Units.dimension -> float option

(** True if the attribute survived as an unresolved ["?"]. *)
val is_unknown : element -> string -> bool

(** {1 Model analysis (derived attributes)} *)

val fold : t -> element -> ('a -> element -> 'a) -> 'a -> 'a

(** Depth-first fold over the {e physical hardware} of the subtree. *)
val hardware_fold : t -> element -> ('a -> element -> 'a) -> 'a -> 'a

val count : t -> within:element -> (element -> bool) -> int

(** Number of cores — the paper's canonical synthesized attribute. *)
val count_cores : ?within:element -> t -> int

(** Devices declaring a CUDA programming model. *)
val count_cuda_devices : ?within:element -> t -> int

(** Total static power (W) over hardware components (Sec. III-D). *)
val total_static_power : ?within:element -> t -> float

(** Total memory capacity (bytes). *)
val total_memory_bytes : ?within:element -> t -> float

val core_frequencies : ?within:element -> t -> float list
val min_frequency : ?within:element -> t -> float option
val max_frequency : ?within:element -> t -> float option

(** Installed software descriptors ([<installed>], [<hostOS>],
    [<programming_model>] under [<software>]). *)
val installed_software : t -> element list

(** Is a package installed?  Conditional composition's selectability
    constraints build on this (Sec. II). *)
val has_installed : t -> string -> bool

val installed_path : t -> string -> string option

(** Free-form [<property>] lookup by name (the PDL-style escape hatch). *)
val property : t -> string -> string option

(** Effective bandwidth (B/s) of an interconnect: the static analysis'
    annotation, falling back to the declared channel bandwidth. *)
val link_bandwidth : t -> string -> float option

val devices : t -> element list

(** Entries the resilient bootstrap could not measure directly: elements
    whose [quality] provenance attribute is not ["measured"], as
    [(scope path, quality)] pairs in document order. *)
val degraded_entries : t -> (string * string) list

(** Single-node or multi-node (the paper's top-level distinction). *)
val is_multi_node : t -> bool

(** {1 Path expressions}

    The {!Xpdl_xml.Path} selector language over the runtime model, e.g.
    [select q "//cache[@level=3]"].  [@id]/[@name] predicates match the
    identifier, [@type] the type reference; other attributes compare
    against their string rendering.

    {!select} compiles and caches the selector in the handle; a
    ["//tag"] first step seeds candidates from the IR's kind index
    instead of materializing every node.  For selectors built ahead of
    time use {!Xpdl_xml.Path.compile} with {!select_compiled}. *)

(** Compile a selector, caching it in the handle by source string. *)
val compile : t -> string -> Xpdl_xml.Path.compiled

(** Evaluate a pre-compiled selector over the runtime model. *)
val select_compiled : t -> Xpdl_xml.Path.compiled -> element list

val select : t -> string -> element list
val select_one : t -> string -> element option
