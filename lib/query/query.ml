(** The XPDL runtime query API (Sec. IV).

    This is the OCaml twin of the generated C++ API (see
    {!Xpdl_toolchain.Cpp_codegen}).  It provides the paper's four function
    categories over the serialized runtime model:

    {ol
    {- {b Initialization}: {!init} loads the runtime-model file written by
       the toolchain — the OCaml [int xpdl_init(char *filename)].}
    {- {b Model browsing}: {!children}, {!parent}, {!find_by_id},
       {!find_by_path}, {!all_of_kind} look up inner elements and return
       handles (or [None]) for navigating the model object tree.}
    {- {b Attribute getters}: typed lookups ({!get_string}, {!get_int},
       {!get_quantity}, ...) corresponding to the generated
       [m.get_<attr>()] functions.}
    {- {b Model analysis for derived attributes}: {!count_cores},
       {!count_cuda_devices}, {!total_static_power}, {!min_frequency},
       {!installed_software}, ... — the manually implemented aggregation
       functions the schema cannot generate.}}

    Handles are nodes of the flat {!Xpdl_toolchain.Ir} runtime structure,
    so every operation here is array/hash lookups — no XML in sight at
    run time, which is the point measured by experiment E5.  The IR's
    preorder layout makes every subtree aggregation a contiguous array
    scan, and because the IR is immutable, each handle carries a memo
    table: a derived attribute is computed at most once per subtree per
    handle (no invalidation is ever needed). *)

open Xpdl_core
module Ir = Xpdl_toolchain.Ir
module Analysis = Xpdl_toolchain.Analysis
module Path = Xpdl_xml.Path
module Store = Xpdl_store.Store

type element = Ir.node

(* Per-handle caches.  Keys are the [within] node's preorder index; the
   IR is immutable, so entries never need invalidation.  Compiled
   selectors are cached by source string. *)
type memo = {
  mc_selectors : (string, Path.compiled) Hashtbl.t;
  mc_selects : (string, Ir.node list) Hashtbl.t;
      (** selector source → result elements; evicted on any edit *)
  mc_count_cores : (int, int) Hashtbl.t;
  mc_cuda_devices : (int, int) Hashtbl.t;
  mc_static_power : (int, float) Hashtbl.t;
  mc_memory_bytes : (int, float) Hashtbl.t;
  mc_frequencies : (int, float list) Hashtbl.t;
  mutable mc_installed : element list option;
}

let fresh_memo () =
  {
    mc_selectors = Hashtbl.create 8;
    mc_selects = Hashtbl.create 8;
    mc_count_cores = Hashtbl.create 8;
    mc_cuda_devices = Hashtbl.create 8;
    mc_static_power = Hashtbl.create 8;
    mc_memory_bytes = Hashtbl.create 8;
    mc_frequencies = Hashtbl.create 8;
    mc_installed = None;
  }

(* Memo tables are shared by every domain holding the handle, and a bare
   [Hashtbl] is not safe under concurrent mutation.  Probes and inserts
   run under the handle's mutex; the compute itself runs outside it
   (computes re-enter the handle through [sync]), so two domains racing
   on a cold entry may both compute — they then agree bit-for-bit (the
   IR is immutable during reads) and the first insert wins. *)
let memoize lock tbl key compute =
  match Mutex.protect lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some v' -> v'
          | None ->
              Hashtbl.add tbl key v;
              v)

(* Where the handle's IR comes from.  [Fixed] handles wrap an immutable
   IR (a file, an in-memory build): their memos never need invalidation.
   [Tracked] handles follow an {!Xpdl_store.Store}: before every access
   the handle consumes the store's edit journal — attribute edits are
   patched into the IR in place ({!Ir.patch_attrs}) and evict only the
   memo entries whose subtree spans cover the patched node; structural
   edits (or a compacted journal) force a full rebuild.  This replaces
   the former throw-away-the-handle-on-reload discipline. *)
type origin =
  | Fixed
  | Tracked of { store : Store.t; drop : string list; mutable synced_rev : int }

(* [lock] serializes memo-table access and journal synchronization so
   several domains can read one handle concurrently (snapshot serving).
   Concurrent {e reads} are safe; an edit to a tracked handle's store
   must still be externally ordered against readers of that handle — the
   server does this by running all head-handle traffic on one domain. *)
type t = { mutable ir : Ir.t; source : string; memo : memo; origin : origin; lock : Mutex.t }

exception Query_error of string

let error fmt = Fmt.kstr (fun m -> raise (Query_error m)) fmt

let reset_derived_memo (m : memo) =
  Hashtbl.reset m.mc_selects;
  Hashtbl.reset m.mc_count_cores;
  Hashtbl.reset m.mc_cuda_devices;
  Hashtbl.reset m.mc_static_power;
  Hashtbl.reset m.mc_memory_bytes;
  Hashtbl.reset m.mc_frequencies;
  m.mc_installed <- None

(* Walk an index path down the IR's derived child spans; [None] if it
   dangles. *)
let index_of_path (ir : Ir.t) path =
  let rec go i = function
    | [] -> Some i
    | c :: rest -> ( match Ir.nth_child ir i c with Some j -> go j rest | None -> None)
  in
  go (Ir.root_index ir) path

(* Evict memo entries whose key node's preorder span covers node [j]:
   exactly the derived values an edit at [j] can change. *)
let prune_covering ir (tbl : (int, 'a) Hashtbl.t) j =
  let stale =
    Hashtbl.fold
      (fun i _ acc -> if i <= j && j < Ir.span_end_at ir i then i :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove tbl) stale

let invalidate_at t j =
  let m = t.memo in
  Hashtbl.reset m.mc_selects;
  prune_covering t.ir m.mc_count_cores j;
  prune_covering t.ir m.mc_cuda_devices j;
  prune_covering t.ir m.mc_static_power j;
  prune_covering t.ir m.mc_memory_bytes j;
  prune_covering t.ir m.mc_frequencies j;
  m.mc_installed <- None

let ir_of_store ~drop store =
  let m = Store.model store in
  Ir.of_model (if drop = [] then m else Analysis.filter_attributes ~drop m)

(* Bring a [Tracked] handle up to its store's revision.  Attribute-only
   edit runs are replayed as in-place patches (index paths recorded in
   the journal stay valid because the tree shape did not change); any
   structural edit, dangling path, or journal compaction falls back to a
   full IR rebuild with a fresh derived memo. *)
let sync t =
  match t.origin with
  | Fixed -> ()
  | Tracked tr ->
      Mutex.protect t.lock @@ fun () ->
      let rev = Store.revision tr.store in
      if rev <> tr.synced_rev then begin
        let rebuild () =
          t.ir <- ir_of_store ~drop:tr.drop tr.store;
          reset_derived_memo t.memo
        in
        let apply (ed : Store.edit) =
          match ed.Store.e_kind with
          | Store.Structure -> raise_notrace Exit
          | Store.Attr key ->
              if not (List.mem key tr.drop) then (
                match
                  (index_of_path t.ir ed.Store.e_path, Store.element_at tr.store ed.Store.e_path)
                with
                | Some i, Some e ->
                    let attrs =
                      if tr.drop = [] then e.Model.attrs
                      else List.filter (fun (k, _) -> not (List.mem k tr.drop)) e.Model.attrs
                    in
                    Ir.patch_attrs t.ir i attrs;
                    invalidate_at t i
                | _ -> raise_notrace Exit)
        in
        (match Store.edits_since tr.store tr.synced_rev with
        | Some edits -> ( try List.iter apply edits with Exit -> rebuild ())
        | None -> rebuild ());
        tr.synced_rev <- rev
      end

(* Hot attribute keys, interned once at startup. *)
let k_static_power = Ir.intern "static_power"
let k_size = Ir.intern "size"
let k_frequency = Ir.intern "frequency"

(** {1 Initialization} *)

(** Load a runtime-model file produced by the XPDL processing tool. *)
let init path : t =
  match Ir.of_file path with
  | ir -> { ir; source = path; memo = fresh_memo (); origin = Fixed; lock = Mutex.create () }
  | exception Ir.Corrupt d ->
      error "cannot load runtime model %s: [%s] %s" path d.Diagnostic.code d.Diagnostic.message
  | exception Sys_error msg -> error "cannot load runtime model: %s" msg

(** Wrap an in-memory runtime model (composition-time introspection). *)
let of_ir ?(source = "<memory>") ir =
  { ir; source; memo = fresh_memo (); origin = Fixed; lock = Mutex.create () }

(** Build directly from a composed model element (tests, tools). *)
let of_model ?(source = "<model>") m =
  { ir = Ir.of_model m; source; memo = fresh_memo (); origin = Fixed; lock = Mutex.create () }

(** Follow an incremental model store: the handle lazily consumes the
    store's edit journal instead of being thrown away on every change. *)
let of_store ?(drop = []) ?source store =
  let source =
    match source with Some s -> s | None -> Fmt.str "<store@%d>" (Store.revision store)
  in
  {
    ir = ir_of_store ~drop store;
    source;
    memo = fresh_memo ();
    origin = Tracked { store; drop; synced_rev = Store.revision store };
    lock = Mutex.create ();
  }

let runtime_ir t =
  sync t;
  t.ir

let source t = t.source

let size t =
  sync t;
  Ir.size t.ir

(** {1 Model browsing} *)

(* Power models, ISAs, microbenchmark suites and software subtrees are
   metadata: the selector elements inside them (e.g. <core/> in a
   power_domain) must not be counted as physical hardware. *)
let is_metadata_kind = function
  | Schema.Power_model | Schema.Power_domains | Schema.Power_domain
  | Schema.Power_state_machine | Schema.Instructions | Schema.Microbenchmarks
  | Schema.Software | Schema.Properties | Schema.Constraints ->
      true
  | _ -> false

let root t : element =
  sync t;
  Ir.root t.ir

let parent t (e : element) =
  sync t;
  Ir.parent t.ir e

let children t (e : element) =
  sync t;
  Ir.children t.ir e

let children_of_kind t (e : element) kind =
  List.filter (fun (c : element) -> Schema.equal_kind c.Ir.n_kind kind) (children t e)

(** Find a model element anywhere by its identifier (name or id). *)
let find_by_id t ident : element option =
  sync t;
  Ir.find_by_ident t.ir ident

let find_by_id_exn t ident =
  match find_by_id t ident with
  | Some e -> e
  | None -> error "no element %S in model %s" ident t.source

(** Find by scope path, e.g. ["liu_gpu_server/gpu1/SM0"] — one hash
    lookup in the IR's path index (previously an O(n) scan). *)
let find_by_path t path : element option =
  sync t;
  Ir.find_by_path t.ir path

(** All elements of one kind, in document order. *)
let all_of_kind t kind : element list =
  sync t;
  Ir.all_of_kind t.ir kind

(** Depth-first fold over the {e physical hardware} of the subtree,
    skipping power-model/software metadata.  The preorder layout turns
    this into a linear scan of the subtree's slice in which a metadata
    node skips its whole span in O(1). *)
let hardware_fold t (e : element) f acc =
  sync t;
  let ir = t.ir in
  let stop = e.Ir.n_subtree_end in
  let rec go i acc =
    if i >= stop then acc
    else
      let n = Ir.node ir i in
      if is_metadata_kind n.Ir.n_kind then go n.Ir.n_subtree_end acc
      else go (i + 1) (f acc n)
  in
  go e.Ir.n_index acc

(** Physical hardware elements of one kind: excludes power-domain member
    selectors and other metadata subtrees. *)
let hardware_of_kind ?within t kind : element list =
  let within = match within with Some e -> e | None -> Ir.root t.ir in
  List.rev
    (hardware_fold t within
       (fun acc (n : element) ->
         if Schema.equal_kind n.Ir.n_kind kind then n :: acc else acc)
       [])

(** All elements in the subtree rooted at [e] (including [e]). *)
let subtree t (e : element) : element list =
  sync t;
  List.rev (Ir.fold_subtree t.ir (fun acc n -> n :: acc) [] e)

let kind (e : element) = e.Ir.n_kind
let ident (e : element) = e.Ir.n_ident
let path (e : element) = e.Ir.n_path

(** The retained [type] reference ("is this device a Nvidia_K20c?"). *)
let type_of (e : element) = e.Ir.n_type

(** {1 Attribute getters} *)

let get (e : element) key = Ir.attr e key

let get_string (e : element) key =
  match Ir.attr e key with
  | Some (Ir.VStr s) -> Some s
  | Some (Ir.VInt i) -> Some (string_of_int i)
  | Some (Ir.VFloat f) -> Some (Fmt.str "%g" f)
  | Some (Ir.VBool b) -> Some (string_of_bool b)
  | Some (Ir.VQty (v, _)) -> Some (Fmt.str "%g" v)
  | Some Ir.VUnknown | None -> None

let get_int (e : element) key =
  match Ir.attr e key with
  | Some (Ir.VInt i) -> Some i
  | Some (Ir.VFloat f) -> Some (int_of_float f)
  | Some (Ir.VStr s) -> int_of_string_opt s
  | _ -> None

let get_float (e : element) key =
  match Ir.attr e key with
  | Some (Ir.VFloat f) -> Some f
  | Some (Ir.VInt i) -> Some (float_of_int i)
  | Some (Ir.VQty (v, _)) -> Some v
  | Some (Ir.VStr s) -> float_of_string_opt s
  | _ -> None

let get_bool (e : element) key =
  match Ir.attr e key with
  | Some (Ir.VBool b) -> Some b
  | Some (Ir.VStr s) -> bool_of_string_opt s
  | _ -> None

(** SI-normalized quantity with dimension check. *)
let get_quantity (e : element) key ~dim =
  match Ir.attr e key with
  | Some (Ir.VQty (v, d)) when Xpdl_units.Units.equal_dimension d dim -> Some v
  | Some (Ir.VQty (_, d)) ->
      error "attribute %s has dimension %s, expected %s" key
        (Xpdl_units.Units.dimension_name d)
        (Xpdl_units.Units.dimension_name dim)
  | _ -> None

(** True if the attribute survived as an unresolved ["?"]. *)
let is_unknown (e : element) key =
  match Ir.attr e key with Some Ir.VUnknown -> true | _ -> false

(** {1 Model analysis functions (derived attributes)}

    Each function memoizes its result per subtree in the handle's memo
    table: repeated calls (optimization loops sitting on top of the
    model, E5/E6) cost one hash probe after the first. *)

let fold t (e : element) f acc =
  sync t;
  Ir.fold_subtree t.ir f acc e

let count t ~within p =
  hardware_fold t within (fun acc n -> if p n then acc + 1 else acc) 0

let resolve_within ?within t =
  sync t;
  match within with Some e -> e | None -> Ir.root t.ir

(** Number of cores in the subtree — the paper's canonical example of a
    synthesized attribute. *)
let count_cores ?within t =
  let within = resolve_within ?within t in
  memoize t.lock t.memo.mc_count_cores within.Ir.n_index (fun () ->
      count t ~within (fun n -> Schema.equal_kind n.Ir.n_kind Schema.Core))

(** Devices supporting the CUDA programming model in the subtree. *)
let count_cuda_devices ?within t =
  let within = resolve_within ?within t in
  memoize t.lock t.memo.mc_cuda_devices within.Ir.n_index (fun () ->
      count t ~within (fun n ->
          Schema.equal_kind n.Ir.n_kind Schema.Device
          && List.exists
               (fun (c : element) ->
                 Schema.equal_kind c.Ir.n_kind Schema.Programming_model
                 && (match c.Ir.n_type with
                    | Some ty ->
                        String.length ty >= 4
                        && String.lowercase_ascii (String.sub ty 0 4) = "cuda"
                    | None -> false))
               (children t n)))

(** Total static power (W) over hardware components of the subtree —
    the bottom-up aggregation of Sec. III-D. *)
let total_static_power ?within t =
  let within = resolve_within ?within t in
  memoize t.lock t.memo.mc_static_power within.Ir.n_index (fun () ->
      hardware_fold t within
        (fun acc n ->
          if Schema.is_hardware n.Ir.n_kind then
            match Ir.attr_by_key n k_static_power with
            | Some (Ir.VQty (v, _)) -> acc +. v
            | _ -> acc
          else acc)
        0.)

(** Total memory capacity (bytes) of the subtree's memory modules. *)
let total_memory_bytes ?within t =
  let within = resolve_within ?within t in
  memoize t.lock t.memo.mc_memory_bytes within.Ir.n_index (fun () ->
      hardware_fold t within
        (fun acc n ->
          if Schema.equal_kind n.Ir.n_kind Schema.Memory then
            match Ir.attr_by_key n k_size with Some (Ir.VQty (v, _)) -> acc +. v | _ -> acc
          else acc)
        0.)

let core_frequencies ?within t =
  let within = resolve_within ?within t in
  memoize t.lock t.memo.mc_frequencies within.Ir.n_index (fun () ->
      List.rev
        (hardware_fold t within
           (fun acc n ->
             if Schema.equal_kind n.Ir.n_kind Schema.Core then
               match Ir.attr_by_key n k_frequency with
               | Some (Ir.VQty (v, _)) -> v :: acc
               | _ -> acc
             else acc)
           []))

(** Minimum / maximum core clock (Hz) in the subtree. *)
let min_frequency ?within t =
  match core_frequencies ?within t with
  | [] -> None
  | l -> Some (List.fold_left Float.min Float.infinity l)

let max_frequency ?within t =
  match core_frequencies ?within t with
  | [] -> None
  | l -> Some (List.fold_left Float.max 0. l)

(** Installed software descriptors of the model ([<installed>], [<hostOS>],
    [<programming_model>] under [<software>]). *)
let installed_software t : element list =
  sync t;
  match Mutex.protect t.lock (fun () -> t.memo.mc_installed) with
  | Some l -> l
  | None ->
      let l =
        List.concat_map
          (fun sw ->
            List.filter
              (fun (c : element) ->
                match c.Ir.n_kind with
                | Schema.Installed | Schema.Host_os | Schema.Programming_model -> true
                | _ -> false)
              (children t sw))
          (all_of_kind t Schema.Software)
      in
      Mutex.protect t.lock (fun () ->
          match t.memo.mc_installed with
          | Some l -> l
          | None ->
              t.memo.mc_installed <- Some l;
              l)

(** Is a software package installed?  Matches the [type] reference or the
    resolved name, e.g. [has_installed q "CUDA_6.0"].  Conditional
    composition's selectability constraints are built on this (Sec. II). *)
let has_installed t package =
  List.exists
    (fun (e : element) ->
      (match e.Ir.n_type with Some ty -> String.equal ty package | None -> false)
      || match e.Ir.n_ident with Some i -> String.equal i package | None -> false)
    (installed_software t)

(** Installation path of a package, if modeled. *)
let installed_path t package =
  List.find_map
    (fun (e : element) ->
      let matches =
        (match e.Ir.n_type with Some ty -> String.equal ty package | None -> false)
        || match e.Ir.n_ident with Some i -> String.equal i package | None -> false
      in
      if matches then get_string e "path" else None)
    (installed_software t)

(** Free-form [<property>] lookup by name (the PDL-style escape hatch). *)
let property t name =
  List.find_map
    (fun (props : element) ->
      List.find_map
        (fun (p : element) ->
          match p.Ir.n_ident with
          | Some n when String.equal n name -> (
              match get_string p "value" with Some v -> Some v | None -> get_string p "command")
          | _ -> None)
        (children t props))
    (all_of_kind t Schema.Properties)

(** Effective bandwidth (B/s) of an interconnect, as computed by the
    static analysis; falls back to the declared channel bandwidth. *)
let link_bandwidth t link_ident =
  Option.bind (find_by_id t link_ident) (fun e ->
      match Ir.attr e "effective_bandwidth" with
      | Some (Ir.VQty (v, _)) -> Some v
      | _ ->
          List.find_map
            (fun (c : element) ->
              match Ir.attr c "max_bandwidth" with
              | Some (Ir.VQty (v, _)) -> Some v
              | _ -> None)
            (children_of_kind t e Schema.Channel))

(** Devices of the model (accelerators), with their type references. *)
let devices t = all_of_kind t Schema.Device

(** Model entries the resilient bootstrap could not measure directly:
    every element carrying a [quality] provenance attribute other than
    ["measured"], as [(scope path, quality)] pairs in document order.
    An optimization layer can treat these as lower-confidence inputs or
    trigger a re-measurement. *)
let degraded_entries t : (string * string) list =
  sync t;
  List.rev
    (fold t (root t)
       (fun acc (n : element) ->
         match get_string n "quality" with
         | Some q when not (String.equal q "measured") -> (n.Ir.n_path, q) :: acc
         | _ -> acc)
       [])

(** Single-node or multi-node? (the paper's top-level distinction).
    Decided on the kind index's list structure — no node lists are
    materialized and no [List.length] over all matches. *)
let is_multi_node t =
  sync t;
  Ir.indexes_of_kind t.ir Schema.Cluster <> []
  || (match Ir.indexes_of_kind t.ir Schema.Node with _ :: _ :: _ -> true | _ -> false)

(** {1 Path expressions}

    The {!Xpdl_xml.Path} selector language evaluated over the runtime
    model, e.g. [select q "//cache[@level=3]"] or
    [select q "system/device/group"].  Attribute predicates compare
    against the attribute's string rendering.

    Selectors are compiled once per handle ({!Path.compile}, cached by
    source string); a ["//tag"] first step seeds its candidates from the
    IR's kind index instead of materializing every node.

    Evaluation runs over arena node {e ids} — kind/ident/type/attr
    column reads, no node records — and materializes the matches only at
    the very end.  The final element list is memoized per selector
    source in the handle ([mc_selects], evicted on any edit), so a
    repeated [select] is one hash probe. *)

let id_get_string ir i key =
  match Ir.attr_at ir i key with
  | Some (Ir.VStr s) -> Some s
  | Some (Ir.VInt n) -> Some (string_of_int n)
  | Some (Ir.VFloat f) -> Some (Fmt.str "%g" f)
  | Some (Ir.VBool b) -> Some (string_of_bool b)
  | Some (Ir.VQty (v, _)) -> Some (Fmt.str "%g" v)
  | Some Ir.VUnknown | None -> None

let id_matches_step ir (st : Path.step) i =
  let tag_ok =
    String.equal st.Path.step_tag "*"
    || String.equal st.Path.step_tag (Schema.tag_of_kind (Ir.kind_at ir i))
  in
  tag_ok
  && List.for_all
       (fun (p : Path.pred) ->
         match p with
         | Path.Position _ -> true
         | Path.Attr_present name ->
             (name = "id" && Ir.ident_at ir i <> None)
             || (name = "type" && Ir.type_at ir i <> None)
             || Ir.attr_at ir i name <> None
         | Path.Attr_equals (name, v) -> (
             match name with
             | "id" | "name" -> Ir.ident_at ir i = Some v
             | "type" -> Ir.type_at ir i = Some v
             | _ -> id_get_string ir i name = Some v))
       st.Path.preds

let apply_position (st : Path.step) candidates =
  List.fold_left
    (fun cs p ->
      match p with
      | Path.Position n -> (
          match List.nth_opt cs (n - 1) with Some c -> [ c ] | None -> [])
      | _ -> cs)
    candidates st.Path.preds

(* The id-level evaluator: candidates are arena node ids throughout. *)
let select_ids t (c : Path.compiled) : int list =
  let ir = t.ir in
  let sel = c.Path.c_sel in
  let initial =
    if sel.Path.descend then
      match c.Path.c_seed_tag with
      | Some tag -> Ir.indexes_of_tag ir tag  (* kind-index seed, document order *)
      | None -> List.init (Ir.size ir) Fun.id
    else [ Ir.root_index ir ]
  in
  let rec walk steps candidates =
    match steps with
    | [] -> []
    | st :: rest ->
        let matched = apply_position st (List.filter (id_matches_step ir st) candidates) in
        if rest = [] then matched else walk rest (List.concat_map (Ir.children_ids ir) matched)
  in
  walk sel.Path.steps initial

(** Evaluate a compiled selector over the runtime model. *)
let select_compiled t (c : Path.compiled) : element list =
  sync t;
  memoize t.lock t.memo.mc_selects c.Path.c_source (fun () ->
      List.map (Ir.node t.ir) (select_ids t c))

let compile t path : Path.compiled =
  memoize t.lock t.memo.mc_selectors path (fun () -> Path.compile path)

(** Evaluate a path selector over the runtime model (compiled and cached
    per handle). *)
let select t path : element list = select_compiled t (compile t path)

let select_one t path = match select t path with [] -> None | e :: _ -> Some e
