(** Write-ahead journal and atomic checkpoints (see the interface). *)

open Xpdl_core
module Units = Xpdl_units.Units
module Expr = Xpdl_expr.Expr

type fsync_policy = Always | Interval of float | Never

let pp_policy ppf = function
  | Always -> Fmt.string ppf "always"
  | Interval s -> Fmt.pf ppf "interval:%g" s
  | Never -> Fmt.string ppf "never"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 0.05)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some v when v >= 0. -> Ok (Interval v)
      | _ -> Error (Fmt.str "invalid fsync interval in %S" s))
  | _ -> Error (Fmt.str "unknown fsync policy %S (expected always, interval[:S] or never)" s)

type op =
  | Set_attr of Model.index_path * string * Model.attr_value
  | Remove_attr of Model.index_path * string
  | Replace_subtree of Model.index_path * Model.element
  | Insert_child of Model.index_path * int * Model.element
  | Remove_child of Model.index_path * int

let pp_path ppf p = Fmt.pf ppf "[%a]" Fmt.(list ~sep:sp int) p

let pp_op ppf = function
  | Set_attr (p, k, v) -> Fmt.pf ppf "set %a %s=%a" pp_path p k Model.pp_attr_value v
  | Remove_attr (p, k) -> Fmt.pf ppf "unset %a %s" pp_path p k
  | Replace_subtree (p, e) -> Fmt.pf ppf "replace %a <%d nodes>" pp_path p (Model.size e)
  | Insert_child (p, at, e) -> Fmt.pf ppf "insert %a @%d <%d nodes>" pp_path p at (Model.size e)
  | Remove_child (p, at) -> Fmt.pf ppf "remove %a @%d" pp_path p at

(* ------------------------------------------------------------------ *)
(* checksum — the 63-bit FNV-1a of the v2 codec and .xpdlidx *)

let fnv_prime = 0x100000001b3

let checksum_sub (s : string) pos len =
  let h = ref 0x2545F4914F6CDD1D in
  let n8 = len / 8 * 8 in
  let i = ref 0 in
  while !i < n8 do
    (* fold bits 62-63 back into the low bits before masking to the
       63-bit int range — otherwise the top two bits of every aligned
       word would be invisible to the checksum (a single-bit flip
       there, e.g. a float sign, would slip through replay) *)
    let c64 = String.get_int64_le s (pos + !i) in
    let c = Int64.to_int (Int64.logxor c64 (Int64.shift_right_logical c64 62)) land max_int in
    h := (!h lxor c) * fnv_prime land max_int;
    i := !i + 8
  done;
  for o = pos + n8 to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s o)) * fnv_prime land max_int
  done;
  !h

let checksum s = checksum_sub s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* little-endian writer / reader *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun m -> raise (Corrupt m)) fmt

type reader = { s : string; mutable pos : int }

let r_need r n = if r.pos + n > String.length r.s then corrupt "truncated (need %d bytes)" n

let r_u8 r =
  r_need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  r_need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  r_need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  r_need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_done r = if r.pos <> String.length r.s then corrupt "%d trailing bytes" (String.length r.s - r.pos)

(* ------------------------------------------------------------------ *)
(* interner (first-appearance order, as in Ir.encode / Repo_index) *)

type interner = { tbl : (string, int) Hashtbl.t; mutable rev : string list; mutable cnt : int }

let interner () = { tbl = Hashtbl.create 64; rev = []; cnt = 0 }

let intern it s =
  match Hashtbl.find_opt it.tbl s with
  | Some i -> i
  | None ->
      let i = it.cnt in
      Hashtbl.add it.tbl s i;
      it.rev <- s :: it.rev;
      it.cnt <- i + 1;
      i

(* ------------------------------------------------------------------ *)
(* deterministic model codec *)

let dim_code : Units.dimension -> int = function
  | Units.Size -> 0
  | Frequency -> 1
  | Power -> 2
  | Energy -> 3
  | Time -> 4
  | Bandwidth -> 5
  | Voltage -> 6
  | Temperature -> 7
  | Scalar -> 8

let dim_of_code = function
  | 0 -> Units.Size
  | 1 -> Frequency
  | 2 -> Power
  | 3 -> Energy
  | 4 -> Time
  | 5 -> Bandwidth
  | 6 -> Voltage
  | 7 -> Temperature
  | 8 -> Scalar
  | c -> corrupt "unknown dimension code %d" c

let w_attr_value it b = function
  | Model.Str s ->
      w_u8 b 0;
      w_u32 b (intern it s)
  | Model.Int v ->
      w_u8 b 1;
      w_i64 b v
  | Model.Float v ->
      w_u8 b 2;
      w_f64 b v
  | Model.Bool v ->
      w_u8 b 3;
      w_u8 b (if v then 1 else 0)
  | Model.Quantity (q, spelling) ->
      w_u8 b 4;
      w_f64 b (Units.value q);
      w_u8 b (dim_code (Units.dim q));
      w_u32 b (intern it spelling)
  | Model.Expr (_, src) ->
      (* the AST is the deterministic parse of its stored source text *)
      w_u8 b 5;
      w_u32 b (intern it src)
  | Model.Unknown -> w_u8 b 6

let w_opt_str it b = function
  | None -> w_u8 b 0
  | Some s ->
      w_u8 b 1;
      w_u32 b (intern it s)

let rec w_element it b (e : Model.element) =
  w_u32 b (intern it (Schema.tag_of_kind e.Model.kind));
  w_opt_str it b e.Model.name;
  w_opt_str it b e.Model.id;
  w_opt_str it b e.Model.type_ref;
  w_u32 b (List.length e.Model.extends);
  List.iter (fun s -> w_u32 b (intern it s)) e.Model.extends;
  w_u32 b (List.length e.Model.attrs);
  List.iter
    (fun (k, v) ->
      w_u32 b (intern it k);
      w_attr_value it b v)
    e.Model.attrs;
  w_u32 b (intern it e.Model.pos.Xpdl_xml.Dom.file);
  w_u32 b e.Model.pos.Xpdl_xml.Dom.line;
  w_u32 b e.Model.pos.Xpdl_xml.Dom.column;
  w_u32 b (List.length e.Model.children);
  List.iter (w_element it b) e.Model.children

(* blob := u32 nstrings | (u32 len, bytes)* | element-body.  The string
   table is written after the body is encoded (it is discovered during
   encoding), so the body goes to a side buffer first. *)
let encode_model (m : Model.element) : string =
  let it = interner () in
  let body = Buffer.create 4096 in
  w_element it body m;
  let b = Buffer.create (Buffer.length body + 1024) in
  w_u32 b it.cnt;
  List.iter
    (fun s ->
      w_u32 b (String.length s);
      Buffer.add_string b s)
    (List.rev it.rev);
  Buffer.add_buffer b body;
  Buffer.contents b

let r_strtab r =
  let n = r_u32 r in
  if n > 16_777_216 then corrupt "string table count %d implausible" n;
  Array.init n (fun _ ->
      let len = r_u32 r in
      r_need r len;
      let s = String.sub r.s r.pos len in
      r.pos <- r.pos + len;
      s)

let r_str tab r =
  let i = r_u32 r in
  if i >= Array.length tab then corrupt "string id %d out of range" i;
  tab.(i)

let r_opt_str tab r = match r_u8 r with 0 -> None | _ -> Some (r_str tab r)

let r_attr_value tab r =
  match r_u8 r with
  | 0 -> Model.Str (r_str tab r)
  | 1 -> Model.Int (r_i64 r)
  | 2 -> Model.Float (r_f64 r)
  | 3 -> Model.Bool (r_u8 r <> 0)
  | 4 ->
      let v = r_f64 r in
      let dim = dim_of_code (r_u8 r) in
      let spelling = r_str tab r in
      Model.Quantity (Units.make v dim, spelling)
  | 5 -> (
      let src = r_str tab r in
      match Expr.parse src with
      | ast -> Model.Expr (ast, src)
      | exception Expr.Error m -> corrupt "expression %S does not re-parse: %s" src m)
  | 6 -> Model.Unknown
  | t -> corrupt "unknown attr value tag %d" t

let rec r_element tab r : Model.element =
  let kind = Schema.kind_of_tag (r_str tab r) in
  let name = r_opt_str tab r in
  let id = r_opt_str tab r in
  let type_ref = r_opt_str tab r in
  let n_ext = r_u32 r in
  if n_ext > 4096 then corrupt "extends count %d implausible" n_ext;
  let extends = List.init n_ext (fun _ -> r_str tab r) in
  let n_attrs = r_u32 r in
  if n_attrs > 1_048_576 then corrupt "attr count %d implausible" n_attrs;
  let attrs =
    List.init n_attrs (fun _ ->
        let k = r_str tab r in
        (k, r_attr_value tab r))
  in
  let file = r_str tab r in
  let line = r_u32 r in
  let column = r_u32 r in
  let n_children = r_u32 r in
  if n_children > 16_777_216 then corrupt "child count %d implausible" n_children;
  let children = List.init n_children (fun _ -> r_element tab r) in
  {
    Model.kind;
    name;
    id;
    type_ref;
    extends;
    attrs;
    children;
    pos = { Xpdl_xml.Dom.file; line; column };
  }

let decode_model_reader r =
  let tab = r_strtab r in
  r_element tab r

let decode_model s : (Model.element, Diagnostic.t) result =
  match
    let r = { s; pos = 0 } in
    let m = decode_model_reader r in
    r_done r;
    m
  with
  | m -> Ok m
  | exception Corrupt msg ->
      Error (Diagnostic.error ~code:"XPDL900" "model image corrupt: %s" msg)

let model_fingerprint m = checksum (encode_model m)

(* ------------------------------------------------------------------ *)
(* op codec *)

let w_ipath b p =
  w_u32 b (List.length p);
  List.iter (fun i -> w_u32 b i) p

let r_ipath r =
  let n = r_u32 r in
  if n > 65_536 then corrupt "index path depth %d implausible" n;
  List.init n (fun _ -> r_u32 r)

let w_plain_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let r_plain_str r =
  let n = r_u32 r in
  r_need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let w_embedded_model b m = w_plain_str b (encode_model m)

let r_embedded_model r =
  let blob = r_plain_str r in
  let er = { s = blob; pos = 0 } in
  let m = decode_model_reader er in
  r_done er;
  m

(* record payload := i64 rev | u8 opcode | body.  Attribute values in a
   Set_attr body reuse the model codec's value encoding with a tiny
   local string table (intern discipline, one table per record). *)
let encode_record ~rev op =
  let b = Buffer.create 64 in
  w_i64 b rev;
  (match op with
  | Set_attr (p, k, v) ->
      w_u8 b 1;
      w_ipath b p;
      w_plain_str b k;
      let it = interner () in
      let vb = Buffer.create 32 in
      w_attr_value it vb v;
      w_u32 b it.cnt;
      List.iter (fun s -> w_plain_str b s) (List.rev it.rev);
      Buffer.add_buffer b vb
  | Remove_attr (p, k) ->
      w_u8 b 2;
      w_ipath b p;
      w_plain_str b k
  | Replace_subtree (p, m) ->
      w_u8 b 3;
      w_ipath b p;
      w_embedded_model b m
  | Insert_child (p, at, m) ->
      w_u8 b 4;
      w_ipath b p;
      w_u32 b at;
      w_embedded_model b m
  | Remove_child (p, at) ->
      w_u8 b 5;
      w_ipath b p;
      w_u32 b at);
  Buffer.contents b

let decode_record payload : int * op =
  let r = { s = payload; pos = 0 } in
  let rev = r_i64 r in
  let op =
    match r_u8 r with
    | 1 ->
        let p = r_ipath r in
        let k = r_plain_str r in
        let n = r_u32 r in
        if n > 65_536 then corrupt "record string table count %d implausible" n;
        let tab = Array.init n (fun _ -> r_plain_str r) in
        Set_attr (p, k, r_attr_value tab r)
    | 2 ->
        let p = r_ipath r in
        Remove_attr (p, r_plain_str r)
    | 3 ->
        let p = r_ipath r in
        Replace_subtree (p, r_embedded_model r)
    | 4 ->
        let p = r_ipath r in
        let at = r_u32 r in
        Insert_child (p, at, r_embedded_model r)
    | 5 ->
        let p = r_ipath r in
        Remove_child (p, r_u32 r)
    | c -> corrupt "unknown wal opcode %d" c
  in
  r_done r;
  (rev, op)

(* ------------------------------------------------------------------ *)
(* file layout *)

let checkpoint_magic = "XPDLWCK1"
let log_magic = "XPDLWAL1"
let max_record = 64 * 1024 * 1024

let checkpoint_path dir = Filename.concat dir "checkpoint.xck"
let log_path dir = Filename.concat dir "wal.log"

let err_io code fmt = Fmt.kstr (fun m -> Error (Diagnostic.error ~code "%s" m)) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* tmp + write + fsync + rename + best-effort directory fsync: the
   rename is only durable once the directory entry itself is synced, and
   the data must hit the disk before the rename publishes it. *)
let atomic_write ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  (try
     let n = String.length data in
     let off = ref 0 in
     while !off < n do
       off := !off + Unix.write_substring fd data !off (n - !off)
     done;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  (* directory fsync is best-effort: not every filesystem lets you open
     a directory for reading, and the rename is already atomic *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY; O_CLOEXEC ] 0 with
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* checkpoints *)

(* checkpoint := magic (8) | i64 rev | u32 payload len | u64 checksum |
   payload (an [encode_model] blob) *)
let write_checkpoint ~dir ~rev m =
  match
    let payload = encode_model m in
    let b = Buffer.create (String.length payload + 32) in
    Buffer.add_string b checkpoint_magic;
    w_i64 b rev;
    w_u32 b (String.length payload);
    w_i64 b (checksum payload);
    Buffer.add_string b payload;
    atomic_write ~path:(checkpoint_path dir) (Buffer.contents b)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, p) ->
      err_io "XPDL902" "cannot write checkpoint in %s: %s (%s)" dir (Unix.error_message e) p
  | exception Sys_error m -> err_io "XPDL902" "cannot write checkpoint in %s: %s" dir m

let load_checkpoint ~dir =
  let path = checkpoint_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let s = read_file path in
      let r = { s; pos = 0 } in
      r_need r 8;
      if String.sub s 0 8 <> checkpoint_magic then corrupt "bad checkpoint magic";
      r.pos <- 8;
      let rev = r_i64 r in
      let len = r_u32 r in
      let ck = r_i64 r in
      r_need r len;
      if checksum_sub s r.pos len <> ck then corrupt "checkpoint checksum mismatch";
      let payload = String.sub s r.pos len in
      r.pos <- r.pos + len;
      r_done r;
      let er = { s = payload; pos = 0 } in
      let m = decode_model_reader er in
      r_done er;
      (rev, m)
    with
    | (rev, m) -> Ok (Some (rev, m))
    | exception Corrupt msg ->
        Error (Diagnostic.error ~code:"XPDL900" "checkpoint %s corrupt: %s" path msg)
    | exception Sys_error m -> err_io "XPDL900" "cannot read checkpoint %s: %s" path m

(* ------------------------------------------------------------------ *)
(* journal replay *)

(* record frame := u32 payload len | u64 payload checksum | payload *)
let replay ~dir =
  let path = log_path dir in
  if not (Sys.file_exists path) then Ok ([], [], 0)
  else
    match read_file path with
    | exception Sys_error m -> err_io "XPDL902" "cannot read journal %s: %s" path m
    | s ->
        let total = String.length s in
        let torn at fmt =
          Fmt.kstr
            (fun m ->
              [
                Diagnostic.warning ~code:"XPDL901"
                  "journal %s: tail truncated at byte %d of %d: %s" path at total m;
              ])
            fmt
        in
        if total < 8 || String.sub s 0 8 <> log_magic then
          if total = 0 then Ok ([], [], 0)
          else err_io "XPDL900" "journal %s has a bad magic number" path
        else begin
          let pos = ref 8 in
          let records = ref [] in
          let diags = ref [] in
          let stop = ref false in
          while (not !stop) && !pos < total do
            let at = !pos in
            if total - at < 12 then begin
              diags := torn at "partial record header (%d bytes)" (total - at);
              stop := true
            end
            else begin
              let len = Int32.to_int (String.get_int32_le s at) land 0xFFFFFFFF in
              let ck = Int64.to_int (String.get_int64_le s (at + 4)) in
              if len > max_record then begin
                diags := torn at "implausible record length %d" len;
                stop := true
              end
              else if total - at - 12 < len then begin
                diags := torn at "record body cut short (%d of %d bytes)" (total - at - 12) len;
                stop := true
              end
              else if checksum_sub s (at + 12) len <> ck then begin
                diags := torn at "record checksum mismatch";
                stop := true
              end
              else
                match decode_record (String.sub s (at + 12) len) with
                | rec_ ->
                    records := rec_ :: !records;
                    pos := at + 12 + len
                | exception Corrupt msg ->
                    diags := torn at "undecodable record: %s" msg;
                    stop := true
            end
          done;
          Ok (List.rev !records, !diags, !pos)
        end

(* ------------------------------------------------------------------ *)
(* appending *)

type t = {
  fd : Unix.file_descr;
  policy : fsync_policy;
  mutable last_sync : float;
  mutable dirty : bool;  (** bytes written since the last fsync *)
  mutable appended : int;
}

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let open_log ~dir ~policy ?truncate_at () =
  match
    let path = log_path dir in
    let fresh = not (Sys.file_exists path) in
    let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_CLOEXEC ] 0o644 in
    (match truncate_at with
    | Some at when not fresh -> Unix.ftruncate fd at
    | _ -> ());
    let size = (Unix.fstat fd).Unix.st_size in
    if size < 8 then begin
      Unix.ftruncate fd 0;
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      write_all fd log_magic;
      Unix.fsync fd
    end
    else ignore (Unix.lseek fd 0 Unix.SEEK_END);
    { fd; policy; last_sync = Unix.gettimeofday (); dirty = false; appended = 0 }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, p) ->
      err_io "XPDL902" "cannot open journal in %s: %s (%s)" dir (Unix.error_message e) p

let sync t =
  if t.dirty then begin
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.dirty <- false;
    t.last_sync <- Unix.gettimeofday ()
  end

let append t ~rev op =
  match
    let payload = encode_record ~rev op in
    let b = Buffer.create (String.length payload + 12) in
    w_u32 b (String.length payload);
    w_i64 b (checksum payload);
    Buffer.add_string b payload;
    write_all t.fd (Buffer.contents b);
    t.dirty <- true;
    t.appended <- t.appended + 1;
    match t.policy with
    | Always -> sync t
    | Never -> ()
    | Interval s -> if Unix.gettimeofday () -. t.last_sync >= s then sync t
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, p) ->
      err_io "XPDL902" "journal append failed: %s (%s)" (Unix.error_message e) p

let reset t =
  match
    Unix.ftruncate t.fd 0;
    ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
    write_all t.fd log_magic;
    Unix.fsync t.fd;
    t.dirty <- false;
    t.last_sync <- Unix.gettimeofday ()
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, p) ->
      err_io "XPDL902" "journal reset failed: %s (%s)" (Unix.error_message e) p

let appended t = t.appended

let close t =
  sync t;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
