(** The incremental, revision-tracked model store.

    The paper's hierarchical energy model is an attribute grammar
    (Sec. III-D) over an edit-heavy model: deployment-time
    microbenchmarking resolves ["?"] placeholders one by one,
    composition splices submodels, and adaptive optimization re-queries
    derived attributes as the platform state changes.  A {!t} wraps a
    {!Xpdl_core.Model.element} behind a versioned handle with
    subtree-granular dirty tracking: derived computations register as
    memoized per-node rules, and an edit invalidates caches only along
    the spine from the edited node to the root, so a single-leaf update
    re-derives in O(depth · fan-out) instead of O(model).

    Edits are journaled with monotonically increasing revisions;
    downstream consumers (the runtime-model IR, the query API's memos)
    catch up from the journal and fall back to a full rebuild only when
    the journal has been compacted past their revision. *)

open Xpdl_core

type t

(** Monotonic edit counter; 0 for a freshly wrapped model. *)
type revision = int

(** Positional node address; see {!Xpdl_core.Model.index_path}. *)
type index_path = Model.index_path

(** Raised on invalid edits; the diagnostic carries an [XPDL4xx] code. *)
exception Store_error of Diagnostic.t

(** {1 Construction and access} *)

(** Wrap a model.  [journal_capacity] is this store's journal retention
    floor (default {!journal_capacity}); small capacities are useful to
    exercise compaction in tests. *)
val of_model : ?journal_capacity:int -> Model.element -> t

(** The current model tree (an immutable snapshot: edits never mutate a
    returned tree). *)
val model : t -> Model.element

val revision : t -> revision
val size : t -> int

(** {1 Addressing} *)

(** The element at an index path, if in range. *)
val element_at : t -> index_path -> Model.element option

(** Resolve a scope path (["liu_gpu_server/gpu1/SM0"]) to the first
    matching node in document order. *)
val resolve : t -> string -> index_path option

(** Index paths of all nodes satisfying the predicate (document order). *)
val find_paths : t -> (Model.element -> bool) -> index_path list

(** {1 Edits}

    Each successful edit bumps the revision and appends to the journal.
    Attribute edits are the cheap class (consumers can patch in place);
    structural edits change the tree shape. *)

val set_attr : t -> index_path -> string -> Model.attr_value -> unit

(** Elaborate a raw string through {!Xpdl_core.Elaborate.attr_delta} and
    set it; returns the elaboration diagnostics.  Raises {!Store_error}
    ([XPDL403]) if the value elaborates with errors. *)
val set_attr_raw :
  t -> index_path -> ?unit_spelling:string -> string -> string -> Diagnostic.t list

val remove_attr : t -> index_path -> string -> unit

(** Replace the whole subtree at the path (the path may be [[]]). *)
val replace_subtree : t -> index_path -> Model.element -> unit

(** Insert a child under the addressed node at position [at] (default:
    append). *)
val insert_child : t -> index_path -> ?at:int -> Model.element -> unit

(** Remove the [at]-th child of the addressed node, returning it. *)
val remove_child : t -> index_path -> int -> Model.element

(** {1 Edit journal} *)

type edit_kind =
  | Attr of string  (** attribute edit; the payload is the attribute name *)
  | Structure  (** subtree replaced / child inserted or removed *)

type edit = { e_rev : revision; e_path : index_path; e_kind : edit_kind }

(** Journal entries with revisions strictly greater than [r], oldest
    first; [None] if the journal has been compacted past [r] (the
    consumer must rebuild from {!model}). *)
val edits_since : t -> revision -> edit list option

(** Default journal retention floor: at least this many of the most
    recent edits are always replayable (compaction is amortized, so up
    to twice as many may be retained at any moment), and edits newer
    than the oldest {e pinned} revision are always retained regardless
    of capacity. *)
val journal_capacity : int

(** Journal entries currently retained. *)
val journal_length : t -> int

(** {1 Revision pinning (MVCC)}

    A pinned revision is a retention floor: as long as revision [r] is
    pinned, {!edits_since}[ t r] stays replayable ([Some]) no matter how
    many edits the writer journals — compaction never reaches past the
    oldest pin.  Readers pin, capture an immutable snapshot
    ({!model} never mutates returned trees), and later either catch up
    from the journal or {!unpin} to release the floor.  The journal
    grows unboundedly while a lagging pin is held; reclamation happens
    at the first compaction after the pin is dropped. *)

(** Pin the current revision (reentrant: pin counts nest) and return it. *)
val pin : t -> revision

(** Release one pin on [r].  Raises {!Store_error} ([XPDL404]) if [r]
    is not pinned. *)
val unpin : t -> revision -> unit

(** Currently pinned revisions, ascending, without duplicates. *)
val pinned_revisions : t -> revision list

(** {1 Durability: write-ahead journal and crash recovery}

    A durable store owns a {!Wal} directory: every accepted edit is
    appended to [wal.log] (fsync'd per the policy) {e after} it is
    applied and journaled in memory, and every [checkpoint_every] edits
    the whole model image is rolled into an atomic checkpoint and the
    journal restarted.  The checkpoint revision acts as an extra
    in-memory journal retention floor (like a pin), so consumers that
    resynchronize after a recovery can catch up without a full rebuild.

    A WAL I/O failure raises {!Store_error} ([XPDL902]) out of the edit
    call: the edit is applied in memory but must not be acknowledged as
    durable. *)

(** Open (or create) a durable store on [dir].  If a checkpoint exists
    it wins over [init]; the journal tail is then replayed record by
    record — a torn or corrupt tail is cut at the first bad length or
    checksum with a coded [XPDL901] warning, never a crash.  The
    recovered head is bit-identical to the pre-crash head built from
    the same acknowledged edits (fuzz-checked by [store-durable]).
    Recovery finishes by rolling a fresh checkpoint and restarting the
    journal, so the directory converges to its clean state.

    [read_only] inspects without touching the directory: no checkpoint
    rewrite, no journal truncation, no attached WAL (the returned store
    is not durable) — the offline [xpdltool walcheck] path.

    The returned diagnostics are non-fatal findings ([XPDL901] torn
    tail, [XPDL903] replay summary, [XPDL904] fresh directory). *)
val recover :
  ?journal_capacity:int ->
  ?policy:Wal.fsync_policy ->
  ?checkpoint_every:int ->
  ?read_only:bool ->
  dir:string ->
  Model.element ->
  (t * Diagnostic.t list, Diagnostic.t) result

(** True when a WAL is attached (edits are journaled to disk). *)
val durable : t -> bool

(** Revision covered by the last on-disk checkpoint, when durable. *)
val checkpoint_rev : t -> revision option

(** Records appended to the WAL since it was opened (telemetry). *)
val wal_appended : t -> int

(** Force buffered WAL records to disk regardless of the fsync policy. *)
val sync_wal : t -> unit

(** Sync and close the WAL; the store stays usable but non-durable. *)
val close_wal : t -> unit

(** {1 Incremental derived attributes}

    A {!derived} is a registered {!Xpdl_energy.Aggregate.rule}: its
    per-subtree values are cached at every node and recomputed only
    where an edit invalidated the spine.  Values are bit-identical to a
    from-scratch {!Xpdl_energy.Aggregate.synthesize} of the same rule
    (same traversal, same combination order). *)

type 'a derived

(** Register a rule under a fresh cache slot.  Registration is global
    (a [derived] works on every store); typically done once at module
    init. *)
val derive : name:string -> 'a Xpdl_energy.Aggregate.rule -> 'a derived

val derived_name : 'a derived -> string

(** The derived value of the whole model. *)
val get : t -> 'a derived -> 'a

(** The derived value of the subtree at the path.  Raises {!Store_error}
    ([XPDL401]) on a dangling path. *)
val get_at : t -> 'a derived -> index_path -> 'a

(** {2 Prefab derived attributes} (the rules of
    {!Xpdl_energy.Aggregate}) *)

val static_power : t -> float
val core_count : t -> int
val memory_bytes : t -> float

(** Subtree variants. *)
val static_power_at : t -> index_path -> float

val core_count_at : t -> index_path -> int

(** {1 Introspection} *)

(** Number of nodes currently holding at least one cached derived value
    (cache-effectiveness metric for tests and benchmarks). *)
val cached_nodes : t -> int

val pp : Format.formatter -> t -> unit
