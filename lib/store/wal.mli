(** Write-ahead journal and atomic checkpoints for the model store.

    A durable store directory holds two files:

    {ul
    {- [checkpoint.xck] — an atomic snapshot: magic, the checkpointed
       revision, and a deterministic intern-coded image of the whole
       {!Xpdl_core.Model.element} tree, protected by a 63-bit FNV-1a
       checksum (the same checksum/intern discipline as the v2 runtime
       codec and the [.xpdlidx] repository sidecar).  Written via
       tmp + fsync + rename, so a crash leaves either the old or the
       new checkpoint, never a torn one.}
    {- [wal.log] — the write-ahead journal: one self-delimiting record
       per accepted edit after the checkpoint, each framed as
       [u32 length | u64 checksum | payload] so a torn tail (partial
       write at crash) is detected by length or checksum and truncated,
       never trusted.}}

    Recovery is checkpoint + tail replay: {!load_checkpoint}, then
    {!replay} applies every intact record in order and stops (with a
    coded [XPDL901] diagnostic) at the first torn, corrupt or
    out-of-sequence record.  Recovered bytes are bit-identical to the
    pre-crash head — the float payloads travel as IEEE bit patterns and
    the model codec is deterministic, which the [store-durable] fuzz
    property checks against an uncrashed oracle.

    Fsync policy decides when appended records are forced to disk:
    [Always] (fsync on every append — an acknowledged edit can never be
    lost), [Interval s] (fsync at most every [s] seconds — bounded loss
    window, near-in-memory latency), [Never] (leave it to the OS). *)

open Xpdl_core

type fsync_policy = Always | Interval of float | Never

val pp_policy : Format.formatter -> fsync_policy -> unit

(** Parse ["always"], ["never"], ["interval"] or ["interval:S"]. *)
val policy_of_string : string -> (fsync_policy, string) result

(** One journaled edit, post-elaboration: replay never re-runs
    elaboration, it re-applies the exact store delta. *)
type op =
  | Set_attr of Model.index_path * string * Model.attr_value
  | Remove_attr of Model.index_path * string
  | Replace_subtree of Model.index_path * Model.element
  | Insert_child of Model.index_path * int * Model.element
  | Remove_child of Model.index_path * int

val pp_op : Format.formatter -> op -> unit

(** {1 Deterministic model codec}

    A standalone intern-coded image of a model tree: string table in
    first-appearance order, then the element structure referencing it.
    Encoding the same tree always yields the same bytes, so byte
    equality of two encodings is semantic equality strong enough for
    bit-identical recovery checks. *)

val encode_model : Model.element -> string

val decode_model : string -> (Model.element, Diagnostic.t) result

(** 63-bit FNV-1a fingerprint of {!encode_model} (printable with
    ["%016x"]); equal fingerprints on recovered vs. oracle heads is the
    drill's bit-identity probe. *)
val model_fingerprint : Model.element -> int

(** {1 Checkpoints} *)

val checkpoint_path : string -> string
val log_path : string -> string

(** Atomically replace the checkpoint: write to a tmp file, fsync it,
    rename over [checkpoint.xck], then best-effort fsync the directory.
    [Error] carries [XPDL902]. *)
val write_checkpoint : dir:string -> rev:int -> Model.element -> (unit, Diagnostic.t) result

(** [Ok None] when no checkpoint exists; [Error] ([XPDL900]) when one
    exists but is truncated, checksum-corrupt or undecodable. *)
val load_checkpoint : dir:string -> ((int * Model.element) option, Diagnostic.t) result

(** {1 Journal replay} *)

(** Read every intact record of [wal.log], oldest first, each as
    [(revision, op)].  The returned diagnostics are non-fatal findings:
    [XPDL901] when a torn or corrupt tail was cut (with the byte offset
    of the cut), nothing on a clean read.  [clean_prefix] is the byte
    length of the intact prefix — truncating the file there removes the
    torn tail.  A missing journal file replays as zero records. *)
val replay :
  dir:string -> ((int * op) list * Diagnostic.t list * int, Diagnostic.t) result

(** {1 Appending} *)

type t

(** Open (or create) [wal.log] for appending and truncate it to
    [truncate_at] bytes first when given (cutting a torn tail found by
    {!replay}).  [Error] carries [XPDL902]. *)
val open_log : dir:string -> policy:fsync_policy -> ?truncate_at:int -> unit -> (t, Diagnostic.t) result

(** Append one record and fsync it according to the policy.  Raises
    [Unix.Unix_error] only through {!Diagnostic} — failures surface as
    [Error] ([XPDL902]). *)
val append : t -> rev:int -> op -> (unit, Diagnostic.t) result

(** Force buffered records to disk regardless of policy. *)
val sync : t -> unit

(** Restart the journal empty (after a successful checkpoint made every
    record obsolete). *)
val reset : t -> (unit, Diagnostic.t) result

(** Records appended through this handle (telemetry). *)
val appended : t -> int

val close : t -> unit
