(** The incremental, revision-tracked model store (see the interface).

    Two trees live side by side: the immutable {!Xpdl_core.Model}
    snapshot, and a mutable cache tree of the same shape whose nodes
    hold memoized per-subtree values of registered
    {!Xpdl_energy.Aggregate} rules.  An edit rebuilds the model spine
    from the root to the edited node (sharing everything off the spine)
    and clears the cache memo on exactly that spine: the next
    re-derivation recomputes the spine nodes from their children's
    cached values and leaves the rest of the tree untouched.

    Derived values are bit-identical to a from-scratch
    {!Xpdl_energy.Aggregate.synthesize}: the evaluator runs the same
    rule over the same traversal in the same combination order, it
    merely reads children from the cache when their subtrees are
    clean. *)

open Xpdl_core
module Aggregate = Xpdl_energy.Aggregate

type revision = int
type index_path = Model.index_path

exception Store_error of Diagnostic.t

let err code fmt = Fmt.kstr (fun m -> raise (Store_error (Diagnostic.error ~code "%s" m))) fmt

(* A universal value for the per-node memo table: each registered rule
   gets an injection/projection pair over a private exception
   constructor, so memos of differently typed rules share one list. *)
module Univ : sig
  type t

  val embed : unit -> ('a -> t) * (t -> 'a option)
end = struct
  type t = exn

  let embed (type a) () =
    let module M = struct
      exception E of a
    end in
    ((fun x -> M.E x), function M.E x -> Some x | _ -> None)
end

type 'a derived = {
  d_id : int;
  d_name : string;
  d_rule : 'a Aggregate.rule;
  d_inj : 'a -> Univ.t;
  d_prj : Univ.t -> 'a option;
}

let next_derived_id = ref 0

let derive ~name rule =
  let inj, prj = Univ.embed () in
  incr next_derived_id;
  { d_id = !next_derived_id; d_name = name; d_rule = rule; d_inj = inj; d_prj = prj }

let derived_name d = d.d_name

(* The cache tree: same shape as the model.  [memo] associates derived
   ids with that rule's synthesized value for this subtree; cleared on
   the spine of every edit. *)
type cache = { mutable memo : (int * Univ.t) list; mutable kids : cache array }

let rec cache_of (e : Model.element) : cache =
  { memo = []; kids = Array.of_list (List.map cache_of e.Model.children) }

type edit_kind = Attr of string | Structure
type edit = { e_rev : revision; e_path : index_path; e_kind : edit_kind }

let journal_capacity = 4096

(* The durability attachment: an open write-ahead journal plus the
   checkpoint cadence.  [checkpoint_rev] is the revision covered by the
   last on-disk checkpoint — recovery replays only journal records newer
   than it, and in-memory journal compaction treats it as a retention
   floor exactly like a pin. *)
type durability = {
  wal : Wal.t;
  dir : string;
  checkpoint_every : int;
  mutable checkpoint_rev : revision;
  mutable since_checkpoint : int;
}

type t = {
  mutable root : Model.element;
  mutable rev : revision;
  mutable cache : cache;
  mutable journal : edit list;  (** newest first; holds revisions (rev - journal_len, rev] *)
  mutable journal_len : int;
  capacity : int;  (** journal retention floor for unpinned consumers *)
  mutable compact_at : int;  (** journal length at which to next attempt compaction *)
  pins : (revision, int) Hashtbl.t;  (** pinned revision -> pin count *)
  mutable dur : durability option;
}

let of_model ?(journal_capacity = journal_capacity) m =
  if journal_capacity < 1 then invalid_arg "Store.of_model: journal_capacity < 1";
  {
    root = m;
    rev = 0;
    cache = cache_of m;
    journal = [];
    journal_len = 0;
    capacity = journal_capacity;
    compact_at = 2 * journal_capacity;
    pins = Hashtbl.create 7;
    dur = None;
  }

let model t = t.root
let revision t = t.rev
let size t = Model.size t.root

(** {1 Addressing} *)

let element_at t path = Model.at_index_path t.root path

let element_at_exn t path =
  match element_at t path with
  | Some e -> e
  | None ->
      err "XPDL401" "index path [%s] does not address a model element"
        (String.concat " " (List.map string_of_int path))

(* Scope paths use the same prefix convention as the runtime model's
   path index: unnamed nodes inherit their parent's prefix; the first
   match in document order wins. *)
let resolve t scope_path =
  let exception Found of index_path in
  let rec go rev_path prefix (e : Model.element) =
    let here =
      match Model.identifier e with
      | Some i -> if prefix = "" then i else prefix ^ "/" ^ i
      | None -> prefix
    in
    if String.equal here scope_path then raise (Found (List.rev rev_path));
    List.iteri (fun i c -> go (i :: rev_path) here c) e.Model.children
  in
  try
    go [] "" t.root;
    None
  with Found p -> Some p

let find_paths t p =
  List.rev
    (Model.fold_index_paths
       (fun acc path e -> if p e then path :: acc else acc)
       [] t.root)

(** {1 Edits} *)

(* Clear the memo on the spine root→...→node addressed by [path]; the
   caches below the edited node stay valid for attribute edits and are
   rebuilt for structural ones (by the caller). *)
let invalidate_spine t path =
  let rec go (c : cache) = function
    | [] -> c.memo <- []
    | i :: rest ->
        c.memo <- [];
        if i >= 0 && i < Array.length c.kids then go c.kids.(i) rest
  in
  go t.cache path

let cache_at t path =
  let rec go (c : cache) = function
    | [] -> c
    | i :: rest -> go c.kids.(i) rest
  in
  go t.cache path

(* The oldest revision any consumer may still need replayed: pinned
   readers (MVCC snapshots, lagging subscribers) hold a floor below
   which compaction must not reach. *)
let min_pinned t = Hashtbl.fold (fun r _ acc -> min r acc) t.pins t.rev

(* The checkpoint is a retention floor like a pin: edits newer than the
   last durable checkpoint stay replayable in memory, so consumers that
   resynchronize after a crash recovery can catch up from the
   checkpoint revision without a full rebuild. *)
let checkpoint_floor_of t =
  match t.dur with Some d -> d.checkpoint_rev | None -> t.rev

let record t path kind =
  t.rev <- t.rev + 1;
  t.journal <- { e_rev = t.rev; e_path = path; e_kind = kind } :: t.journal;
  t.journal_len <- t.journal_len + 1;
  (* Amortized O(1) compaction: let the list grow to twice the retention
     floor, then drop everything older than both the capacity window and
     the oldest pinned revision in one pass.  While a pin holds the
     floor down, [compact_at] backs off by a full capacity so a pinned
     flood still costs O(1) list cells per edit on average instead of an
     O(length) re-scan each time. *)
  if t.journal_len >= t.compact_at then begin
    let floor = min (t.rev - t.capacity) (min (min_pinned t) (checkpoint_floor_of t)) in
    if floor > t.rev - t.journal_len then begin
      t.journal <- List.filter (fun e -> e.e_rev > floor) t.journal;
      t.journal_len <- t.rev - floor
    end;
    t.compact_at <- max (2 * t.capacity) (t.journal_len + t.capacity)
  end

(* Journal the accepted edit to the write-ahead log (when attached) and
   roll a checkpoint at the configured cadence.  A WAL I/O failure is a
   durability violation and surfaces as a raised [Store_error]: the edit
   is applied in memory but the caller must not acknowledge it. *)
let wal_append t op =
  match t.dur with
  | None -> ()
  | Some d -> (
      (match Wal.append d.wal ~rev:t.rev op with
      | Ok () -> ()
      | Error diag -> raise (Store_error diag));
      d.since_checkpoint <- d.since_checkpoint + 1;
      if d.since_checkpoint >= d.checkpoint_every then
        match Wal.write_checkpoint ~dir:d.dir ~rev:t.rev t.root with
        | Error diag -> raise (Store_error diag)
        | Ok () -> (
            match Wal.reset d.wal with
            | Error diag -> raise (Store_error diag)
            | Ok () ->
                d.checkpoint_rev <- t.rev;
                d.since_checkpoint <- 0))

let update_model t path f =
  match Model.update_at t.root path f with
  | m -> t.root <- m
  | exception Invalid_argument _ ->
      err "XPDL401" "index path [%s] does not address a model element"
        (String.concat " " (List.map string_of_int path))

let set_attr t path key value =
  update_model t path (fun e -> Model.set_attr e key value);
  invalidate_spine t path;
  record t path (Attr key);
  wal_append t (Wal.Set_attr (path, key, value))

let set_attr_raw t path ?unit_spelling key raw =
  let e = element_at_exn t path in
  let value, diags = Elaborate.attr_delta ~kind:e.Model.kind ?unit_spelling ~name:key raw in
  if not (Diagnostic.all_ok diags) then
    raise
      (Store_error
         (Diagnostic.error ~code:"XPDL403" "edit %s=%S cannot be elaborated: %a" key raw
            Diagnostic.pp_list (Diagnostic.errors diags)));
  set_attr t path key value;
  diags

let remove_attr t path key =
  update_model t path (fun e -> Model.remove_attr e key);
  invalidate_spine t path;
  record t path (Attr key);
  wal_append t (Wal.Remove_attr (path, key))

let replace_subtree t path replacement =
  update_model t path (fun _ -> replacement);
  invalidate_spine t path;
  (* the subtree under the edit is new: rebuild its cache skeleton *)
  let c = cache_at t path in
  c.kids <- Array.of_list (List.map cache_of replacement.Model.children);
  record t path Structure;
  wal_append t (Wal.Replace_subtree (path, replacement))

let insert_child t path ?at child =
  let parent = element_at_exn t path in
  let n = List.length parent.Model.children in
  let at = match at with Some i -> i | None -> n in
  if at < 0 || at > n then err "XPDL402" "insert position %d out of range (0..%d)" at n;
  update_model t path (fun e ->
      let before = List.filteri (fun i _ -> i < at) e.Model.children in
      let after = List.filteri (fun i _ -> i >= at) e.Model.children in
      { e with Model.children = before @ (child :: after) });
  invalidate_spine t path;
  let c = cache_at t path in
  let kids = Array.to_list c.kids in
  let before = List.filteri (fun i _ -> i < at) kids in
  let after = List.filteri (fun i _ -> i >= at) kids in
  c.kids <- Array.of_list (before @ (cache_of child :: after));
  record t path Structure;
  wal_append t (Wal.Insert_child (path, at, child))

let remove_child t path at =
  let parent = element_at_exn t path in
  let n = List.length parent.Model.children in
  if at < 0 || at >= n then err "XPDL402" "child index %d out of range (0..%d)" at (n - 1);
  let removed = List.nth parent.Model.children at in
  update_model t path (fun e ->
      { e with Model.children = List.filteri (fun i _ -> i <> at) e.Model.children });
  invalidate_spine t path;
  let c = cache_at t path in
  c.kids <- Array.of_list (List.filteri (fun i _ -> i <> at) (Array.to_list c.kids));
  record t path Structure;
  wal_append t (Wal.Remove_child (path, at));
  removed

(** {1 Edit journal} *)

let edits_since t r =
  if r >= t.rev then Some []
  else if r < t.rev - t.journal_len then None
  else
    Some (List.rev (List.filter (fun e -> e.e_rev > r) t.journal))

let journal_length t = t.journal_len

(** {1 Revision pinning (MVCC)} *)

let pin t =
  let r = t.rev in
  Hashtbl.replace t.pins r (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins r));
  r

let unpin t r =
  match Hashtbl.find_opt t.pins r with
  | None -> err "XPDL404" "unpin of revision %d, which is not pinned" r
  | Some 1 -> Hashtbl.remove t.pins r
  | Some n -> Hashtbl.replace t.pins r (n - 1)

let pinned_revisions t =
  List.sort_uniq compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.pins [])

(** {1 Durability: write-ahead journal and crash recovery} *)

let apply_op t (op : Wal.op) =
  match op with
  | Wal.Set_attr (p, k, v) -> set_attr t p k v
  | Wal.Remove_attr (p, k) -> remove_attr t p k
  | Wal.Replace_subtree (p, m) -> replace_subtree t p m
  | Wal.Insert_child (p, at, m) -> insert_child t p ~at m
  | Wal.Remove_child (p, at) -> ignore (remove_child t p at)

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Diagnostic.error ~code:"XPDL902" "cannot create wal directory %s: %s" dir
           (Unix.error_message e))

(* Replay the journal tail onto the base model.  Records are applied
   strictly in revision sequence; anything out of sequence (a gap left
   by an interrupted rotation, an op the recovered tree rejects) stops
   the replay with a coded warning — recovery never crashes and never
   applies a record it cannot trust. *)
let replay_records t records =
  let diags = ref [] in
  let warn fmt =
    Fmt.kstr (fun m -> diags := Diagnostic.warning ~code:"XPDL901" "%s" m :: !diags) fmt
  in
  let applied = ref 0 in
  (try
     List.iter
       (fun (rev, op) ->
         if rev <= t.rev then () (* obsolete: already covered by the checkpoint *)
         else if rev <> t.rev + 1 then begin
           warn "journal replay stopped: record revision %d does not follow head %d" rev t.rev;
           raise Exit
         end
         else begin
           apply_op t op;
           incr applied
         end)
       records
   with
  | Exit -> ()
  | Store_error d ->
      warn "journal replay stopped: record rejected by the store: [%s] %s" d.Diagnostic.code
        d.Diagnostic.message);
  (!applied, List.rev !diags)

let recover ?journal_capacity ?(policy = Wal.Interval 0.05) ?(checkpoint_every = 1024)
    ?(read_only = false) ~dir init =
  if checkpoint_every < 1 then invalid_arg "Store.recover: checkpoint_every < 1";
  let ( let* ) = Result.bind in
  let* () = if read_only then Ok () else ensure_dir dir in
  let* base = Wal.load_checkpoint ~dir in
  let fresh_diags, base_rev, base_model =
    match base with
    | Some (rev, m) -> ([], rev, m)
    | None ->
        ( [ Diagnostic.info ~code:"XPDL904" "no checkpoint in %s: starting fresh" dir ],
          0,
          init )
  in
  let* records, tail_diags, _clean_prefix = Wal.replay ~dir in
  let t = of_model ?journal_capacity base_model in
  t.rev <- base_rev;
  let applied, replay_diags = replay_records t records in
  let replay_info =
    if applied > 0 then
      [
        Diagnostic.info ~code:"XPDL903" "recovered %s: replayed %d journal records onto revision %d"
          dir applied base_rev;
      ]
    else []
  in
  let diags = fresh_diags @ tail_diags @ replay_diags @ replay_info in
  if read_only then Ok (t, diags)
  else
    (* Roll the recovered head into a fresh checkpoint and restart the
       journal empty: recovery converges the directory to its canonical
       clean state (torn tails cut, gaps forgotten), so a second crash
       right after recovery replays from here. *)
    let* () = Wal.write_checkpoint ~dir ~rev:t.rev t.root in
    let* wal = Wal.open_log ~dir ~policy () in
    let* () = Wal.reset wal in
    t.dur <- Some { wal; dir; checkpoint_every; checkpoint_rev = t.rev; since_checkpoint = 0 };
    Ok (t, diags)

let durable t = t.dur <> None
let checkpoint_rev t = Option.map (fun d -> d.checkpoint_rev) t.dur
let wal_appended t = match t.dur with Some d -> Wal.appended d.wal | None -> 0
let sync_wal t = match t.dur with Some d -> Wal.sync d.wal | None -> ()

let close_wal t =
  match t.dur with
  | None -> ()
  | Some d ->
      Wal.close d.wal;
      t.dur <- None

(** {1 Incremental derived attributes} *)

(* The incremental attribute-grammar evaluator: identical traversal and
   combination order to [Aggregate.synthesize], except that a node whose
   memo holds the rule's entry returns it without descending. *)
let rec eval d (e : Model.element) (c : cache) =
  match List.assq_opt d.d_id c.memo with
  | Some packed -> (
      match d.d_prj packed with Some v -> v | None -> assert false)
  | None ->
      let kids = c.kids in
      let _, rev_children =
        List.fold_left
          (fun (i, acc) (child : Model.element) ->
            if Model.is_metadata_subtree child.Model.kind then (i + 1, acc)
            else (i + 1, eval d child kids.(i) :: acc))
          (0, []) e.Model.children
      in
      let v = d.d_rule.Aggregate.combine (d.d_rule.Aggregate.own e) (List.rev rev_children) in
      c.memo <- (d.d_id, d.d_inj v) :: c.memo;
      v

let get t d = eval d t.root t.cache
let get_at t d path = eval d (element_at_exn t path) (cache_at t path)

let d_static_power = derive ~name:"static_power" Aggregate.static_power_rule
let d_core_count = derive ~name:"core_count" Aggregate.core_count_rule
let d_memory_bytes = derive ~name:"memory_bytes" Aggregate.memory_bytes_rule
let static_power t = get t d_static_power
let core_count t = get t d_core_count
let memory_bytes t = get t d_memory_bytes
let static_power_at t path = get_at t d_static_power path
let core_count_at t path = get_at t d_core_count path

(** {1 Introspection} *)

let cached_nodes t =
  let rec go acc (c : cache) =
    Array.fold_left go (if c.memo = [] then acc else acc + 1) c.kids
  in
  go 0 t.cache

let pp ppf t =
  Fmt.pf ppf "store: %d elements, revision %d, %d cached nodes, %d journaled edits, %d pins"
    (size t) t.rev (cached_nodes t) t.journal_len
    (Hashtbl.fold (fun _ n acc -> acc + n) t.pins 0)
