(** Expression language for XPDL constraints and derived-attribute rules.

    The paper uses expressions in two places: [<constraint expr="L1size +
    shmsize == shmtotalsize" />] inside meta-models (Listing 8), and the
    attribute-grammar style rules that synthesize attributes bottom-up over
    the model tree (Sec. III-D).  This module provides the shared syntax:

    {v
      e ::= number | string | ident | '(' e ')'
          | '-' e | '!' e
          | e ('*'|'/'|'%') e
          | e ('+'|'-') e
          | e ('=='|'!='|'<'|'<='|'>'|'>=') e
          | e '&&' e | e '||' e
          | ident '(' e (',' e)* ')'          function call
      ident ::= [A-Za-z_][A-Za-z0-9_.]*        dots allow path-like names
    v}

    Evaluation is over an environment mapping identifiers to {!value}s plus
    a table of named functions (used by the energy library for [sum],
    [count], [min], [max] over model subtrees). *)

type value = Num of float | Bool of bool | Str of string

let pp_value ppf = function
  | Num f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s

let value_equal a b =
  match (a, b) with
  | Num x, Num y -> Float.equal x y || Float.abs (x -. y) < 1e-12
  | Bool x, Bool y -> Bool.equal x y
  | Str x, Str y -> String.equal x y
  | (Num _ | Bool _ | Str _), _ -> false

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type t =
  | Number of float
  | String of string
  | Ident of string
  | Unary of unop * t
  | Binary of binop * t * t
  | Call of string * t list

exception Error of string

(** Raised when evaluation cannot produce a meaningful finite result:
    a zero or NaN divisor/modulus, or a NaN comparison operand.  NaN
    comparisons silently yield [false] and x/0 has no finite value, so
    constraints would otherwise "pass" or "fail" arbitrarily; callers
    (constraint checking) turn this into XPDL215 and prune. *)
exception Non_finite of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

let fail_non_finite fmt = Fmt.kstr (fun m -> raise (Non_finite m)) fmt

(** {1 Lexer} *)

type token =
  | TNum of float
  | TStr of string
  | TId of string
  | TOp of string
  | TLparen
  | TRparen
  | TComma
  | TEof

let tokenize s =
  let len = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '.' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < len do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < len && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
                         || ((s.[!i] = '+' || s.[!i] = '-') && !i > start
                             && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do incr i done;
      let lit = String.sub s start (!i - start) in
      match float_of_string_opt lit with
      | Some f -> toks := TNum f :: !toks
      | None -> fail "malformed number %S" lit
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < len && is_id_char s.[!i] do incr i done;
      toks := TId (String.sub s start (!i - start)) :: !toks
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr i;
      let start = !i in
      while !i < len && s.[!i] <> quote do incr i done;
      if !i >= len then fail "unterminated string literal";
      toks := TStr (String.sub s start (!i - start)) :: !toks;
      incr i
    end
    else if c = '(' then (toks := TLparen :: !toks; incr i)
    else if c = ')' then (toks := TRparen :: !toks; incr i)
    else if c = ',' then (toks := TComma :: !toks; incr i)
    else begin
      let two = if !i + 1 < len then String.sub s !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
          toks := TOp two :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '=' ->
              toks := TOp (String.make 1 c) :: !toks;
              incr i
          | _ -> fail "unexpected character %C in expression %S" c s)
    end
  done;
  List.rev (TEof :: !toks)

(** {1 Pratt parser} *)

let binop_of_string = function
  | "+" -> Add | "-" -> Sub | "*" -> Mul | "/" -> Div | "%" -> Mod
  | "==" | "=" -> Eq | "!=" -> Neq
  | "<" -> Lt | "<=" -> Le | ">" -> Gt | ">=" -> Ge
  | "&&" -> And | "||" -> Or
  | op -> fail "unknown operator %S" op

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

type parser_state = { mutable toks : token list }

let peek ps = match ps.toks with [] -> TEof | t :: _ -> t
let advance ps = match ps.toks with [] -> () | _ :: rest -> ps.toks <- rest

let rec parse_primary ps =
  match peek ps with
  | TNum f ->
      advance ps;
      Number f
  | TStr s ->
      advance ps;
      String s
  | TId name -> (
      advance ps;
      match peek ps with
      | TLparen ->
          advance ps;
          let args = parse_args ps in
          Call (name, args)
      | _ -> Ident name)
  | TLparen ->
      advance ps;
      let e = parse_expr ps 0 in
      (match peek ps with
      | TRparen -> advance ps
      | _ -> fail "expected ')'");
      e
  | TOp "-" ->
      advance ps;
      Unary (Neg, parse_primary ps)
  | TOp "!" ->
      advance ps;
      Unary (Not, parse_primary ps)
  | TOp op -> fail "unexpected operator %S" op
  | TRparen -> fail "unexpected ')'"
  | TComma -> fail "unexpected ','"
  | TEof -> fail "unexpected end of expression"

and parse_args ps =
  match peek ps with
  | TRparen ->
      advance ps;
      []
  | _ ->
      let rec loop acc =
        let e = parse_expr ps 0 in
        match peek ps with
        | TComma ->
            advance ps;
            loop (e :: acc)
        | TRparen ->
            advance ps;
            List.rev (e :: acc)
        | _ -> fail "expected ',' or ')' in argument list"
      in
      loop []

and parse_expr ps min_prec =
  let lhs = parse_primary ps in
  let rec loop lhs =
    match peek ps with
    | TOp op_s ->
        let op = binop_of_string op_s in
        let prec = precedence op in
        if prec < min_prec then lhs
        else begin
          advance ps;
          let rhs = parse_expr ps (prec + 1) in
          loop (Binary (op, lhs, rhs))
        end
    | _ -> lhs
  in
  loop lhs

(** Parse an expression string.  Raises {!Error} on malformed input. *)
let parse s =
  let ps = { toks = tokenize s } in
  let e = parse_expr ps 0 in
  match peek ps with
  | TEof -> e
  | _ -> fail "trailing tokens in expression %S" s

let parse_opt s = match parse s with e -> Some e | exception Error _ -> None

(** {1 Evaluation} *)

(** Variable environment: identifier → value. *)
type env = {
  lookup : string -> value option;
  call : string -> value list -> value option;
      (** named functions; return [None] for unknown names *)
}

let empty_env = { lookup = (fun _ -> None); call = (fun _ _ -> None) }

(** Environment from an association list, no functions. *)
let env_of_list l =
  { empty_env with lookup = (fun name -> List.assoc_opt name l) }

let num = function
  | Num f -> f
  | Bool _ -> fail "expected a number, got a boolean"
  | Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "expected a number, got string %S" s)

let boolean = function
  | Bool b -> b
  | Num f -> f <> 0.
  | Str _ -> fail "expected a boolean, got a string"

let rec eval env e =
  match e with
  | Number f -> Num f
  | String s -> Str s
  | Ident name -> (
      match env.lookup name with
      | Some v -> v
      | None -> (
          (* permit bare true/false *)
          match name with
          | "true" -> Bool true
          | "false" -> Bool false
          | _ -> fail "unbound identifier %S" name))
  | Unary (Neg, e1) -> Num (-.num (eval env e1))
  | Unary (Not, e1) -> Bool (not (boolean (eval env e1)))
  | Binary (op, l, r) -> eval_binary env op l r
  | Call (name, args) -> (
      let vals = List.map (eval env) args in
      match env.call name vals with
      | Some v -> v
      | None -> eval_builtin name vals)

and eval_binary env op l r =
  match op with
  | And -> Bool (boolean (eval env l) && boolean (eval env r))
  | Or -> Bool (boolean (eval env l) || boolean (eval env r))
  | Add -> Num (num (eval env l) +. num (eval env r))
  | Sub -> Num (num (eval env l) -. num (eval env r))
  | Mul -> Num (num (eval env l) *. num (eval env r))
  | Div ->
      let d = num (eval env r) in
      if d = 0. then fail_non_finite "division by zero"
      else if Float.is_nan d then fail_non_finite "division by NaN"
      else Num (num (eval env l) /. d)
  | Mod ->
      let d = num (eval env r) in
      if d = 0. then fail_non_finite "modulo by zero"
      else if Float.is_nan d then fail_non_finite "modulo by NaN"
      else Num (Float.rem (num (eval env l)) d)
  | Eq -> Bool (value_equal (eval env l) (eval env r))
  | Neq -> Bool (not (value_equal (eval env l) (eval env r)))
  | Lt | Le | Gt | Ge ->
      let a = num (eval env l) and b = num (eval env r) in
      if Float.is_nan a || Float.is_nan b then
        fail_non_finite "comparison with a NaN operand (result would be arbitrary)";
      Bool
        (match op with
        | Lt -> a < b
        | Le -> a <= b
        | Gt -> a > b
        | Ge -> a >= b
        | _ -> assert false)

and eval_builtin name vals =
  let nums () = List.map num vals in
  match (name, vals) with
  | "min", _ :: _ -> Num (List.fold_left Float.min Float.infinity (nums ()))
  | "max", _ :: _ -> Num (List.fold_left Float.max Float.neg_infinity (nums ()))
  | "sum", _ -> Num (List.fold_left ( +. ) 0. (nums ()))
  | "abs", [ v ] -> Num (Float.abs (num v))
  | "floor", [ v ] -> Num (Float.round (Float.of_int (int_of_float (num v))))
  | "ceil", [ v ] -> Num (Float.of_int (int_of_float (Float.ceil (num v))))
  | "sqrt", [ v ] -> Num (Float.sqrt (num v))
  | "log2", [ v ] -> Num (Float.log (num v) /. Float.log 2.)
  | "pow", [ a; b ] -> Num (Float.pow (num a) (num b))
  | "if", [ c; t; e ] -> if boolean c then t else e
  | _ -> fail "unknown function %S/%d" name (List.length vals)

(** Evaluate to a boolean; the usual entry point for constraints. *)
let eval_bool env e = boolean (eval env e)

(** Evaluate to a number. *)
let eval_num env e = num (eval env e)

(** Free identifiers of an expression (without duplicates, in first-use
    order); used to check that all constraint parameters are bound. *)
let free_idents e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Number _ | String _ -> ()
    | Ident name ->
        if (not (Hashtbl.mem seen name)) && name <> "true" && name <> "false" then begin
          Hashtbl.add seen name ();
          acc := name :: !acc
        end
    | Unary (_, e1) -> go e1
    | Binary (_, l, r) ->
        go l;
        go r
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !acc

(** {1 Printing} *)

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let rec pp ppf = function
  | Number f -> Fmt.pf ppf "%g" f
  | String s -> Fmt.pf ppf "%S" s
  | Ident s -> Fmt.string ppf s
  | Unary (Neg, e) -> Fmt.pf ppf "-(%a)" pp e
  | Unary (Not, e) -> Fmt.pf ppf "!(%a)" pp e
  | Binary (op, l, r) -> Fmt.pf ppf "(%a %s %a)" pp l (string_of_binop op) pp r
  | Call (name, args) -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:comma pp) args

let to_string e = Fmt.str "%a" pp e
