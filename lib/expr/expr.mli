(** Expression language for XPDL constraints and derived-attribute rules.

    Used by [<constraint expr="L1size + shmsize == shmtotalsize"/>]
    (Listing 8) and by the attribute-grammar rules of Sec. III-D.  Plain
    arithmetic/boolean expressions over identifiers (dots allowed, so
    path-like names work), with a small builtin function library and
    caller-supplied named functions. *)

type value = Num of float | Bool of bool | Str of string

val pp_value : Format.formatter -> value -> unit
val value_equal : value -> value -> bool

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type t =
  | Number of float
  | String of string
  | Ident of string
  | Unary of unop * t
  | Binary of binop * t * t
  | Call of string * t list

(** Raised on parse or evaluation failures, with a printable message. *)
exception Error of string

(** Raised when evaluation cannot produce a meaningful finite result
    (zero or NaN divisor/modulus, NaN comparison operand); distinct from
    {!Error} so constraint checking can report it as a definite coded
    error (XPDL215) instead of "not checkable". *)
exception Non_finite of string

(** Parse an expression string.  Raises {!Error} on malformed input. *)
val parse : string -> t

val parse_opt : string -> t option

(** Variable environment: identifier → value, plus named functions
    (return [None] for unknown names to fall back to the builtins:
    [min], [max], [sum], [abs], [floor], [ceil], [sqrt], [log2], [pow],
    [if]). *)
type env = {
  lookup : string -> value option;
  call : string -> value list -> value option;
}

val empty_env : env

(** Environment from an association list, no functions. *)
val env_of_list : (string * value) list -> env

(** Evaluate; raises {!Error} on unbound identifiers, type mismatches,
    or unknown functions, and {!Non_finite} on zero or NaN divisors and
    NaN comparison operands.  The bare identifiers [true] and [false]
    evaluate to booleans when unbound. *)
val eval : env -> t -> value

(** Evaluate to a boolean; the usual entry point for constraints. *)
val eval_bool : env -> t -> bool

(** Evaluate to a number. *)
val eval_num : env -> t -> float

(** Free identifiers (without duplicates, first-use order, [true]/[false]
    excluded); used to check that all constraint parameters are bound. *)
val free_idents : t -> string list

val string_of_binop : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
