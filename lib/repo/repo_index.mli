(** Persistent repository index: the [.xpdlidx] sidecar written next to
    a repository root.

    The index caches the result of one full scan of the root — which
    files exist, which descriptors they declare (name/id, kind, source
    position, byte span), what diagnostics the scan produced, and a
    (mtime, size) fingerprint per file — so that a later
    {!Xpdl_repo.Repo.open_root} can reconstruct the repository's name
    table and diagnostic stream without parsing anything, and re-scan
    only the files whose fingerprint no longer matches.

    The codec follows the runtime-model arena conventions
    (lib/toolchain/ir.ml): magic + version header, interned string table
    in first-appearance order, 63-bit FNV payload checksum, and a single
    deterministic writer — saving the same index twice yields identical
    bytes.  A corrupt or truncated index never crashes the loader: it
    decodes to a coded [XPDL311] diagnostic and the caller falls back to
    a full scan. *)

open Xpdl_core

(** One diagnostic recorded at scan time.  [dg_file] is empty when the
    position refers to the owning file itself (the common case), so the
    index stays valid when the root is reached through a different path
    spelling. *)
type diag = {
  dg_severity : Diagnostic.severity;
  dg_code : string;
  dg_file : string;  (** [""] = the owning file record's path *)
  dg_line : int;
  dg_col : int;
  dg_msg : string;
}

(** One descriptor declared by a file. *)
type desc = {
  d_ident : string option;  (** [None]: replayed as XPDL301 *)
  d_kind : string;  (** schema tag, e.g. ["cpu"] *)
  d_line : int;
  d_col : int;  (** source position within the file *)
  d_span_off : int;
  d_span_len : int;  (** byte span of the descriptor in the file *)
  d_diags : diag list;  (** elaboration diagnostics, in emission order *)
}

(** One scanned file, fingerprinted by (mtime, size). *)
type file_record = {
  fr_path : string;  (** relative to the indexed root, ['/']-separated *)
  fr_mtime : float;
  fr_size : int;
  fr_quarantined : bool;  (** no tree could be recovered *)
  fr_parse_diags : diag list;  (** parse-recovery diagnostics *)
  fr_descs : desc list;  (** document order *)
}

type t = { files : file_record array }  (** scan order *)

(** Basename of the sidecar file: [".xpdlidx"]. *)
val sidecar : string

(** Sidecar path for a root directory. *)
val path_for_root : string -> string

val encode : t -> string

(** Decode an index image; [Error] carries an [XPDL311] diagnostic
    (bad magic, version, truncation, checksum mismatch — never an
    exception). *)
val decode : string -> (t, Diagnostic.t) result

(** Round a float to the diag/file-record wire representation, so
    fingerprints compare equal after a save/load cycle. *)
val fingerprint_matches : file_record -> mtime:float -> size:int -> bool

(** Write the index next to [root]; [Error] carries an [XPDL313]
    diagnostic.  Saving is atomic and durable: the temp file is
    fsynced before the rename publishes it (plus a best-effort
    directory fsync), so a reader never sees a half-written sidecar
    and a crash right after the rename cannot surface a live index
    whose bytes never reached the disk. *)
val save : root:string -> t -> (unit, Diagnostic.t) result

(** Read the index of [root]: [Ok None] when no sidecar exists,
    [Error] ([XPDL311]) when it exists but cannot be decoded. *)
val load : root:string -> (t option, Diagnostic.t) result

(** Diagnostic ↔ index-record conversion. [to_diag ~file] substitutes
    [file] for the empty [dg_file] marker. *)
val diag_of : owner:string -> Diagnostic.t -> diag

val to_diag : owner:string -> diag -> Diagnostic.t
