(* Persistent repository index codec (.xpdlidx sidecars).

   Layout of a version-1 image, all integers little-endian:

     0   magic "XPDLIX"
     6   u64 format version = 1
     14  u64 x 6: file count, descriptor count, diagnostic count,
                  string count, string blob length, total length
     62  u64 payload checksum (63-bit FNV-1a over everything after the
         header, same fold as the runtime-model arena)
     70  string table  (nstr+1) x u32 offsets, then blob
         file records  nf x (path u32, mtime f64-bits, size u64,
                             flags u8, ndescs u32, ndiags u32)
         desc records  nd x (ident i32, kind u32, line u32, col u32,
                             span_off u32, span_len u32, ndiags u32)
         diag records  ng x (severity u8, code u32, file u32,
                             line u32, col u32, msg u32)

   Descriptor and diagnostic records are stored flat, in owner order:
   a file's parse diagnostics first, then its descriptors, each followed
   (in the diag stream) by its elaboration diagnostics.  The per-owner
   counts reconstruct the grouping.  Strings are interned in
   first-appearance order, so the writer is deterministic: encoding the
   same index twice yields identical bytes (the double-save CI drill
   relies on this). *)

open Xpdl_core

type diag = {
  dg_severity : Diagnostic.severity;
  dg_code : string;
  dg_file : string;
  dg_line : int;
  dg_col : int;
  dg_msg : string;
}

type desc = {
  d_ident : string option;
  d_kind : string;
  d_line : int;
  d_col : int;
  d_span_off : int;
  d_span_len : int;
  d_diags : diag list;
}

type file_record = {
  fr_path : string;
  fr_mtime : float;
  fr_size : int;
  fr_quarantined : bool;
  fr_parse_diags : diag list;
  fr_descs : desc list;
}

type t = { files : file_record array }

let sidecar = ".xpdlidx"
let path_for_root root = Filename.concat root sidecar

let magic = "XPDLIX"
let format_version = 1

(* magic (6) + version (8) + 6 length fields (48) + checksum (8) *)
let header_size = 70
let checksum_off = 62

(* The same 63-bit FNV-1a variant as the runtime-model arena: eight
   bytes at a time, top bit masked so it round-trips a u64 slot. *)
let fnv_prime = 0x100000001b3

let checksum_sub (s : string) pos len =
  let h = ref 0x2545F4914F6CDD1D in
  let words = len / 8 in
  for w = 0 to words - 1 do
    let c = Int64.to_int (String.get_int64_le s (pos + (8 * w))) in
    h := (!h lxor c) * fnv_prime land max_int
  done;
  for o = pos + (8 * words) to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s o)) * fnv_prime land max_int
  done;
  !h

(* --- severity codes --- *)

let sev_code = function Diagnostic.Error -> 0 | Diagnostic.Warning -> 1 | Diagnostic.Info -> 2
let sev_of_code = function 0 -> Some Diagnostic.Error | 1 -> Some Diagnostic.Warning
  | 2 -> Some Diagnostic.Info | _ -> None

(* --- diagnostic conversion --- *)

let diag_of ~owner (d : Diagnostic.t) : diag =
  {
    dg_severity = d.Diagnostic.severity;
    dg_code = d.Diagnostic.code;
    dg_file =
      (if String.equal d.Diagnostic.pos.Xpdl_xml.Dom.file owner then ""
       else d.Diagnostic.pos.Xpdl_xml.Dom.file);
    dg_line = d.Diagnostic.pos.Xpdl_xml.Dom.line;
    dg_col = d.Diagnostic.pos.Xpdl_xml.Dom.column;
    dg_msg = d.Diagnostic.message;
  }

let to_diag ~owner (g : diag) : Diagnostic.t =
  {
    Diagnostic.severity = g.dg_severity;
    code = g.dg_code;
    pos =
      {
        Xpdl_xml.Dom.file = (if String.equal g.dg_file "" then owner else g.dg_file);
        line = g.dg_line;
        column = g.dg_col;
      };
    message = g.dg_msg;
  }

(* --- interner (first-appearance order, as in Ir.encode) --- *)

type interner = {
  it_tbl : (string, int) Hashtbl.t;
  mutable it_rev : string list;
  mutable it_cnt : int;
  mutable it_blob : int;
}

let interner () = { it_tbl = Hashtbl.create 256; it_rev = []; it_cnt = 0; it_blob = 0 }

let intern_in it s =
  match Hashtbl.find_opt it.it_tbl s with
  | Some i -> i
  | None ->
      let i = it.it_cnt in
      Hashtbl.add it.it_tbl s i;
      it.it_rev <- s :: it.it_rev;
      it.it_cnt <- i + 1;
      it.it_blob <- it.it_blob + String.length s;
      i

let w32 b o v = Bytes.set_int32_le b o (Int32.of_int v)
let w64 b o v = Bytes.set_int64_le b o (Int64.of_int v)

let file_rec_size = 4 + 8 + 8 + 1 + 4 + 4
let desc_rec_size = 4 + 4 + 4 + 4 + 4 + 4 + 4
let diag_rec_size = 1 + 4 + 4 + 4 + 4 + 4

(* mtimes cross the wire as f64 bits, so fingerprint comparison after a
   round trip is exact *)
let fingerprint_matches fr ~mtime ~size = Float.equal fr.fr_mtime mtime && fr.fr_size = size

let encode (t : t) : string =
  let strs = interner () in
  let nf = Array.length t.files in
  let nd = ref 0 and ng = ref 0 in
  (* intern in record order for determinism *)
  let intern_diag g =
    ignore (intern_in strs g.dg_code);
    ignore (intern_in strs g.dg_file);
    ignore (intern_in strs g.dg_msg);
    incr ng
  in
  Array.iter
    (fun fr ->
      ignore (intern_in strs fr.fr_path);
      List.iter intern_diag fr.fr_parse_diags;
      List.iter
        (fun d ->
          ignore (intern_in strs (Option.value ~default:"" d.d_ident));
          ignore (intern_in strs d.d_kind);
          incr nd;
          List.iter intern_diag d.d_diags)
        fr.fr_descs)
    t.files;
  let nd = !nd and ng = !ng in
  let nstr = strs.it_cnt in
  let o_str_off = header_size in
  let o_str_blob = o_str_off + (4 * (nstr + 1)) in
  let o_files = o_str_blob + strs.it_blob in
  let o_descs = o_files + (file_rec_size * nf) in
  let o_diags = o_descs + (desc_rec_size * nd) in
  let total = o_diags + (diag_rec_size * ng) in
  let b = Bytes.create total in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  w64 b 6 format_version;
  w64 b 14 nf;
  w64 b 22 nd;
  w64 b 30 ng;
  w64 b 38 nstr;
  w64 b 46 strs.it_blob;
  w64 b 54 total;
  w64 b checksum_off 0;
  (* string table *)
  let items = Array.of_list (List.rev strs.it_rev) in
  let off = ref 0 in
  Array.iteri
    (fun i s ->
      w32 b (o_str_off + (4 * i)) !off;
      Bytes.blit_string s 0 b (o_str_blob + !off) (String.length s);
      off := !off + String.length s)
    items;
  w32 b (o_str_off + (4 * Array.length items)) !off;
  let sid s = match Hashtbl.find_opt strs.it_tbl s with Some i -> i | None -> assert false in
  (* records *)
  let di = ref 0 and gi = ref 0 in
  let put_diag g =
    let o = o_diags + (diag_rec_size * !gi) in
    incr gi;
    Bytes.set_uint8 b o (sev_code g.dg_severity);
    w32 b (o + 1) (sid g.dg_code);
    w32 b (o + 5) (sid g.dg_file);
    w32 b (o + 9) g.dg_line;
    w32 b (o + 13) g.dg_col;
    w32 b (o + 17) (sid g.dg_msg)
  in
  Array.iteri
    (fun i fr ->
      let o = o_files + (file_rec_size * i) in
      w32 b o (sid fr.fr_path);
      Bytes.set_int64_le b (o + 4) (Int64.bits_of_float fr.fr_mtime);
      w64 b (o + 12) fr.fr_size;
      Bytes.set_uint8 b (o + 20) (if fr.fr_quarantined then 1 else 0);
      w32 b (o + 21) (List.length fr.fr_descs);
      w32 b (o + 25) (List.length fr.fr_parse_diags);
      List.iter put_diag fr.fr_parse_diags;
      List.iter
        (fun d ->
          let o = o_descs + (desc_rec_size * !di) in
          incr di;
          w32 b o (match d.d_ident with None -> -1 | Some s -> sid s);
          w32 b (o + 4) (sid d.d_kind);
          w32 b (o + 8) d.d_line;
          w32 b (o + 12) d.d_col;
          w32 b (o + 16) d.d_span_off;
          w32 b (o + 20) d.d_span_len;
          w32 b (o + 24) (List.length d.d_diags);
          List.iter put_diag d.d_diags)
        fr.fr_descs)
    t.files;
  let s = Bytes.unsafe_to_string b in
  let ck = checksum_sub s header_size (total - header_size) in
  w64 b checksum_off ck;
  Bytes.unsafe_to_string b

(* --- decoder: every malformation becomes an XPDL311 result --- *)

exception Bad of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt

let u8 s o = Char.code (String.unsafe_get s o)
let i32 s o = Int32.to_int (String.get_int32_le s o)
let u32 s o = i32 s o land 0xFFFFFFFF

let decode (s : string) : (t, Diagnostic.t) result =
  try
    let len = String.length s in
    if len < header_size then bad "truncated header (%d bytes)" len;
    if not (String.equal (String.sub s 0 6) magic) then bad "bad magic";
    let ver = Int64.to_int (String.get_int64_le s 6) in
    if ver <> format_version then bad "unsupported index version %d" ver;
    let nf = Int64.to_int (String.get_int64_le s 14) in
    let nd = Int64.to_int (String.get_int64_le s 22) in
    let ng = Int64.to_int (String.get_int64_le s 30) in
    let nstr = Int64.to_int (String.get_int64_le s 38) in
    let blob = Int64.to_int (String.get_int64_le s 46) in
    let total = Int64.to_int (String.get_int64_le s 54) in
    if total <> len then bad "length mismatch (header %d, actual %d)" total len;
    if nf < 0 || nd < 0 || ng < 0 || nstr < 0 || blob < 0 then bad "negative count";
    let o_str_off = header_size in
    let o_str_blob = o_str_off + (4 * (nstr + 1)) in
    let o_files = o_str_blob + blob in
    let o_descs = o_files + (file_rec_size * nf) in
    let o_diags = o_descs + (desc_rec_size * nd) in
    let o_total = o_diags + (diag_rec_size * ng) in
    if o_total <> len then bad "section arithmetic does not cover the image";
    let stored = Int64.to_int (String.get_int64_le s checksum_off) land max_int in
    let b = Bytes.of_string s in
    w64 b checksum_off 0;
    let actual =
      checksum_sub (Bytes.unsafe_to_string b) header_size (len - header_size)
    in
    if stored <> actual then bad "checksum mismatch";
    let str i =
      if i < 0 || i >= nstr then bad "string id %d out of range" i;
      let a = u32 s (o_str_off + (4 * i)) and z = u32 s (o_str_off + (4 * (i + 1))) in
      if a > z || z > blob then bad "string offsets corrupt";
      String.sub s (o_str_blob + a) (z - a)
    in
    let gi = ref 0 in
    let read_diag () =
      if !gi >= ng then bad "diagnostic records exhausted";
      let o = o_diags + (diag_rec_size * !gi) in
      incr gi;
      let sev =
        match sev_of_code (u8 s o) with Some v -> v | None -> bad "bad severity code"
      in
      {
        dg_severity = sev;
        dg_code = str (i32 s (o + 1));
        dg_file = str (i32 s (o + 5));
        dg_line = u32 s (o + 9);
        dg_col = u32 s (o + 13);
        dg_msg = str (i32 s (o + 17));
      }
    in
    let di = ref 0 in
    let read_desc () =
      if !di >= nd then bad "descriptor records exhausted";
      let o = o_descs + (desc_rec_size * !di) in
      incr di;
      let ident = match i32 s o with -1 -> None | i -> Some (str i) in
      let kind = str (i32 s (o + 4)) in
      let line = u32 s (o + 8) and col = u32 s (o + 12) in
      let span_off = u32 s (o + 16) and span_len = u32 s (o + 20) in
      let n_diags = u32 s (o + 24) in
      let diags = List.init n_diags (fun _ -> read_diag ()) in
      { d_ident = ident; d_kind = kind; d_line = line; d_col = col; d_span_off = span_off;
        d_span_len = span_len; d_diags = diags }
    in
    let files =
      Array.init nf (fun i ->
          let o = o_files + (file_rec_size * i) in
          let path = str (i32 s o) in
          let mtime = Int64.float_of_bits (String.get_int64_le s (o + 4)) in
          let size = Int64.to_int (String.get_int64_le s (o + 12)) in
          let flags = u8 s (o + 20) in
          let n_descs = u32 s (o + 21) and n_diags = u32 s (o + 25) in
          let parse_diags = List.init n_diags (fun _ -> read_diag ()) in
          let descs = List.init n_descs (fun _ -> read_desc ()) in
          {
            fr_path = path;
            fr_mtime = mtime;
            fr_size = size;
            fr_quarantined = flags land 1 = 1;
            fr_parse_diags = parse_diags;
            fr_descs = descs;
          })
    in
    if !di <> nd then bad "unconsumed descriptor records";
    if !gi <> ng then bad "unconsumed diagnostic records";
    Ok { files }
  with
  | Bad m -> Error (Diagnostic.warning ~code:"XPDL311" "repository index corrupt: %s" m)
  | Invalid_argument _ ->
      Error (Diagnostic.warning ~code:"XPDL311" "repository index corrupt: truncated record")

let save ~root (t : t) : (unit, Diagnostic.t) result =
  let path = path_for_root root in
  let tmp = path ^ ".tmp" in
  match
    (* write + fsync the temp file before the rename publishes it: a
       crash between rename and writeback must not leave a live index
       whose bytes never reached the disk.  The directory fsync is
       best-effort, like the WAL checkpoint writer. *)
    let data = encode t in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
    (try
       let n = String.length data in
       let off = ref 0 in
       while !off < n do
         off := !off + Unix.write_substring fd data !off (n - !off)
       done;
       Unix.fsync fd;
       Unix.close fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Unix.rename tmp path;
    (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY; O_CLOEXEC ] 0 with
    | dfd ->
        (try Unix.fsync dfd with Unix.Unix_error _ -> ());
        (try Unix.close dfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ())
  with
  | () -> Ok ()
  | exception Sys_error m ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Diagnostic.warning ~code:"XPDL313" "cannot write repository index %s: %s" path m)
  | exception Unix.Unix_error (err, _, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error
        (Diagnostic.warning ~code:"XPDL313" "cannot write repository index %s: %s" path
           (Unix.error_message err))

let load ~root : (t option, Diagnostic.t) result =
  let path = path_for_root root in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> ( match decode s with Ok t -> Ok (Some t) | Error d -> Error d)
    | exception Sys_error m ->
        Error (Diagnostic.warning ~code:"XPDL311" "cannot read repository index %s: %s" path m)
    | exception End_of_file ->
        Error (Diagnostic.warning ~code:"XPDL311" "repository index %s truncated while reading" path)
