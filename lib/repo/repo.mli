(** The distributed XPDL model repository (Sec. III): [.xpdl] descriptor
    files indexed by unique [name]/[id] over a model search path, with
    [xpdl://authority/name] hyperlinks resolving against registered
    (locally mirrored) authorities, and recursive composition of concrete
    systems. *)

open Xpdl_core

type entry = {
  ent_ident : string;
  ent_element : Model.element;
  ent_file : string;  (** source descriptor file, or ["<memory>"] *)
}

type t

val create : unit -> t

(** Parse problems, duplicate identifiers, unknown authorities, ...
    accumulated while loading. *)
val diagnostics : t -> Diagnostic.t list

(** Files quarantined at {!add_root}/{!add_file} time: unreadable, or so
    malformed that even the recovering parser produced no tree.  Loading
    continued without them; [xpdltool validate-all] surfaces the list. *)
val quarantined_files : t -> string list

(** Number of indexed descriptors. *)
val size : t -> int

(** All indexed identifiers, sorted. *)
val identifiers : t -> string list

val find : t -> string -> Model.element option
val find_entry : t -> string -> entry option

(** Register one elaborated element under its identifier; a descriptor
    without [name]/[id] is diagnosed and skipped; redefinition from a
    different file warns (the later definition wins). *)
val add_element : t -> ?file:string -> Model.element -> unit

(** Parse and index a descriptor string (a single model, or several
    under an [<xpdl>]/[<repository>] wrapper). *)
val add_string : t -> ?file:string -> string -> unit

val add_file : t -> string -> unit

(** Add a repository root (an element of the model search path); every
    [.xpdl]/[.xml] file beneath it is parsed and indexed immediately. *)
val add_root : t -> string -> unit

(** Register a remote authority: [xpdl://authority/name] hyperlinks will
    resolve against descriptors indexed from [root] (the authority's
    local mirror). *)
val add_remote : t -> authority:string -> root:string -> unit

(** The name-resolution function handed to {!Xpdl_core.Inheritance};
    resolves hyperlinks first, then plain identifiers. *)
val lookup : t -> Inheritance.lookup

type composed = {
  model : Model.element;  (** fully resolved and expanded instance tree *)
  comp_diags : Diagnostic.t list;
  descriptors_used : string list;  (** identifiers of referenced descriptors *)
}

(** The identifiers transitively referenced from a model (informational;
    composition resolves independently). *)
val transitive_references : t -> Model.element -> string list

(** Compose: resolve every referenced descriptor, flatten inheritance,
    instantiate (bind params — [config] provides deployment overrides —
    expand groups, check constraints) and validate. *)
val compose : ?config:Instantiate.env -> t -> Model.element -> composed

(** Compose the concrete model registered under the given identifier. *)
val compose_by_name :
  ?config:Instantiate.env -> t -> string -> (composed, string) result

(** Total parsed size of the repository in model elements. *)
val total_elements : t -> int

(** Locate the bundled [models/] directory from the working directory
    (honors [XPDL_MODELS], probes parents). *)
val locate_models : unit -> string option

(** Repository pre-loaded with the bundled models; fails if they cannot
    be found. *)
val load_bundled : unit -> t
