(** The distributed XPDL model repository (Sec. III): [.xpdl] descriptor
    files indexed by unique [name]/[id] over a model search path, with
    [xpdl://authority/name] hyperlinks resolving against registered
    (locally mirrored) authorities, and recursive composition of concrete
    systems. *)

open Xpdl_core

type entry = {
  ent_ident : string;
  ent_element : Model.element;
  ent_file : string;  (** source descriptor file, or ["<memory>"] *)
}

type t

(** [cache_capacity] bounds the LRU of lazily materialized descriptors
    (default 8192); eagerly added descriptors are never evicted. *)
val create : ?cache_capacity:int -> unit -> t

(** Parse problems, duplicate identifiers, unknown authorities, ...
    accumulated while loading. *)
val diagnostics : t -> Diagnostic.t list

(** Files quarantined at {!add_root}/{!add_file} time: unreadable, or so
    malformed that even the recovering parser produced no tree.  Loading
    continued without them; [xpdltool validate-all] surfaces the list. *)
val quarantined_files : t -> string list

(** Number of indexed descriptors. *)
val size : t -> int

(** All indexed identifiers, sorted. *)
val identifiers : t -> string list

val find : t -> string -> Model.element option
val find_entry : t -> string -> entry option

(** Register one elaborated element under its identifier; a descriptor
    without [name]/[id] is diagnosed and skipped; redefinition from a
    different file warns (the later definition wins). *)
val add_element : t -> ?file:string -> Model.element -> unit

(** Parse and index a descriptor string (a single model, or several
    under an [<xpdl>]/[<repository>] wrapper). *)
val add_string : t -> ?file:string -> string -> unit

val add_file : t -> string -> unit

(** Add a repository root (an element of the model search path); every
    [.xpdl]/[.xml] file beneath it is parsed and indexed immediately.
    This is the eager reference path; {!open_root} is the indexed,
    lazy-loading equivalent. *)
val add_root : t -> string -> unit

(** Open a repository root through its persistent [.xpdlidx] sidecar
    (see {!Repo_index} and docs/REPOSITORY.md): names, kinds and
    load-time diagnostics are reconstructed without parsing; only new or
    fingerprint-stale files are re-scanned, and the sidecar is refreshed
    best-effort.  Descriptors materialize lazily on first {!find}.  A
    missing or corrupt sidecar (coded XPDL311) degrades to a full scan
    that writes a fresh one.  Behaviorally identical to {!add_root} up
    to XPDL31x informational diagnostics. *)
val open_root : t -> string -> unit

(** Register a remote authority: [xpdl://authority/name] hyperlinks will
    resolve against descriptors indexed from [root] (the authority's
    local mirror). *)
val add_remote : t -> authority:string -> root:string -> unit

(** The name-resolution function handed to {!Xpdl_core.Inheritance};
    resolves hyperlinks first, then plain identifiers. *)
val lookup : t -> Inheritance.lookup

type composed = {
  model : Model.element;  (** fully resolved and expanded instance tree *)
  comp_diags : Diagnostic.t list;
  descriptors_used : string list;  (** identifiers of referenced descriptors *)
}

(** The identifiers transitively referenced from a model (informational;
    composition resolves independently). *)
val transitive_references : t -> Model.element -> string list

(** Compose: resolve every referenced descriptor, flatten inheritance,
    instantiate (bind params — [config] provides deployment overrides —
    expand groups, check constraints) and validate. *)
val compose : ?config:Instantiate.env -> t -> Model.element -> composed

(** Compose the concrete model registered under the given identifier. *)
val compose_by_name :
  ?config:Instantiate.env -> t -> string -> (composed, string) result

(** Validation outcome for one indexed descriptor: systems are composed
    (inheritance + instantiation + validation), other kinds validated
    standalone; [va_errors] keeps only error-severity diagnostics. *)
type validation = {
  va_ident : string;
  va_kind : string;  (** schema tag, e.g. ["cpu"] *)
  va_errors : Diagnostic.t list;
}

(** Validate every indexed descriptor, sharded over [jobs] OCaml domains
    (default 1) with a chunked atomic cursor.  Pending descriptors are
    materialized with one parse per file into a private snapshot — the
    repository's LRU cache is left untouched, so a warm working set
    survives a validate-all sweep.  The result list is sorted by
    identifier and deterministic: [~jobs:n] returns exactly what
    [~jobs:1] returns, for any [n]. *)
val validate_all : ?jobs:int -> t -> validation list

(** Counters for the lazy-loading machinery (see docs/REPOSITORY.md):
    slot population by state, files parsed/reused-from-index, descriptors
    materialized on demand, LRU evictions. *)
type stats = {
  descriptors : int;  (** indexed identifiers *)
  loaded : int;  (** eager entries (never evicted) *)
  cached : int;  (** lazily materialized, in the LRU *)
  pending : int;  (** known from the index, not yet parsed *)
  parsed_files : int;  (** files parsed + elaborated so far *)
  reused_files : int;  (** files accepted from the index by fingerprint *)
  materialized : int;  (** descriptors elaborated on demand *)
  evictions : int;  (** cache evictions back to pending *)
}

val stats : t -> stats

(** Total parsed size of the repository in model elements; forces
    materialization of every pending entry. *)
val total_elements : t -> int

(** Locate the bundled [models/] directory from the working directory
    (honors [XPDL_MODELS], probes parents). *)
val locate_models : unit -> string option

(** Repository pre-loaded with the bundled models; fails if they cannot
    be found. *)
val load_bundled : unit -> t
