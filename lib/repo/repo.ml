(** The distributed XPDL model repository (Sec. III).

    XPDL descriptors are ".xpdl" files — machine-readable data sheets —
    placed in a model repository.  Models are retrieved by unique [name]
    (meta-models) or [id] (concrete models) via a model search path; the
    paper envisions descriptors "even provided for download e.g. at
    hardware manufacturer web sites".  This module implements:

    - multiple repository roots (the search path), scanned recursively for
      [.xpdl] descriptor files;
    - hyperlink resolution: [xpdl://authority/name] references map to
      registered roots, giving the distributed-library semantics without
      network access (see DESIGN.md substitutions);
    - an in-memory index name/id → descriptor, with duplicate detection;
    - recursive composition: resolving every meta-model reference
      reachable from a concrete model ({!compose}), the first stage of
      the toolchain pipeline (Sec. IV). *)

open Xpdl_core

type entry = {
  ent_ident : string;
  ent_element : Model.element;
  ent_file : string;  (** source descriptor file, or ["<memory>"] *)
}

type t = {
  mutable entries : (string, entry) Hashtbl.t;
  mutable remotes : (string * string) list;  (** authority → local root *)
  mutable diags : Diagnostic.t list;
  mutable quarantined : string list;  (** files that yielded no usable tree *)
}

let create () = { entries = Hashtbl.create 64; remotes = []; diags = []; quarantined = [] }

let diagnostics t = List.rev t.diags

let add_diag t d = t.diags <- d :: t.diags

(** Files that failed to contribute any descriptor at [add_root] time —
    unreadable, or so malformed that even the recovering parser got no
    tree out of them.  Indexing continued without them. *)
let quarantined_files t = List.rev t.quarantined

let quarantine t file = if not (List.mem file t.quarantined) then t.quarantined <- file :: t.quarantined

(** Number of indexed descriptors. *)
let size t = Hashtbl.length t.entries

(** All indexed identifiers, sorted. *)
let identifiers t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort String.compare

let find t ident = Option.map (fun e -> e.ent_element) (Hashtbl.find_opt t.entries ident)

let find_entry t ident = Hashtbl.find_opt t.entries ident

(** Register one elaborated element under its identifier. *)
let add_element t ?(file = "<memory>") (e : Model.element) =
  match Model.identifier e with
  | None ->
      add_diag t
        (Diagnostic.error ~code:"XPDL301" ~pos:e.pos
           "descriptor in %s has neither name nor id; not indexed" file)
  | Some ident ->
      (match Hashtbl.find_opt t.entries ident with
      | Some prev when prev.ent_file <> file ->
          add_diag t
            (Diagnostic.warning ~code:"XPDL302" ~pos:e.pos
               "identifier %S in %s shadows definition from %s" ident file prev.ent_file)
      | _ -> ());
      Hashtbl.replace t.entries ident { ent_ident = ident; ent_element = e; ent_file = file }

(* A descriptor file holds one model, or several under a <xpdl>/<repository>
   wrapper element. *)
let add_xml t ~file (x : Xpdl_xml.Dom.element) =
  let elaborate_and_add node =
    let e, diags = Elaborate.of_xml node in
    List.iter (add_diag t) diags;
    add_element t ~file e
  in
  match x.Xpdl_xml.Dom.tag with
  | "xpdl" | "repository" ->
      List.iter elaborate_and_add (Xpdl_xml.Dom.child_elements x)
  | _ -> elaborate_and_add x

(* Recovering parse front end shared by string and file indexing: every
   syntax error becomes a coded diagnostic, and whatever tree could be
   reconstructed is still indexed best-effort, so one malformed descriptor
   neither hides its other errors nor aborts a batch. *)
let add_recovered t ~file (root, errs) =
  List.iter (fun e -> add_diag t (Diagnostic.of_parse_error e)) errs;
  match root with
  | Some x -> add_xml t ~file x
  | None -> if file <> "<memory>" then quarantine t file

(** Parse and index a single descriptor string (used by tests and by the
    microbenchmark bootstrap to register generated descriptors). *)
let add_string t ?(file = "<memory>") s =
  add_recovered t ~file (Xpdl_xml.Parse.string_recover ~file ~lenient:true s)

let add_file t path =
  match Xpdl_xml.Parse.file_recover ~lenient:true path with
  | Ok parsed -> add_recovered t ~file:path parsed
  | Error msg ->
      quarantine t path;
      add_diag t (Diagnostic.error ~code:"XPDL303" "cannot load %s: %s" path msg)

let rec scan_dir t dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then scan_dir t path
          else if Filename.check_suffix name ".xpdl" || Filename.check_suffix name ".xml" then
            add_file t path)
        entries
  | exception Sys_error msg ->
      add_diag t (Diagnostic.error ~code:"XPDL304" "cannot scan %s: %s" dir msg)

(** Add a repository root (an element of the model search path); every
    [.xpdl] file beneath it is parsed and indexed immediately. *)
let add_root t dir = scan_dir t dir

(** Register a remote authority: hyperlinks [xpdl://authority/name] will
    resolve against descriptors indexed from [root].  In this offline
    reproduction the authority's content must already be local; the point
    is to preserve reference syntax and resolution semantics. *)
let add_remote t ~authority ~root =
  t.remotes <- (authority, root) :: t.remotes;
  scan_dir t root

(* "xpdl://authority/name" → name (content is pre-indexed from the
   authority's registered root). *)
let resolve_hyperlink t ref_string =
  let prefix = "xpdl://" in
  let plen = String.length prefix in
  if String.length ref_string > plen && String.equal (String.sub ref_string 0 plen) prefix then begin
    let rest = String.sub ref_string plen (String.length ref_string - plen) in
    match String.index_opt rest '/' with
    | Some i ->
        let authority = String.sub rest 0 i in
        let name = String.sub rest (i + 1) (String.length rest - i - 1) in
        if List.mem_assoc authority t.remotes then Some name
        else begin
          add_diag t
            (Diagnostic.error ~code:"XPDL305" "unknown repository authority %S in %S" authority
               ref_string);
          None
        end
    | None -> None
  end
  else None

(** The name-resolution function handed to {!Xpdl_core.Inheritance}. *)
let lookup t : Inheritance.lookup =
 fun ident ->
  match resolve_hyperlink t ident with
  | Some name -> find t name
  | None -> find t ident

(** {1 Composition}

    [compose t root] is the toolchain's front half: starting from a
    concrete model, recursively resolve every referenced descriptor
    ([type]/[extends] hyperlinks), flatten inheritance, then instantiate
    (bind params, expand groups, check constraints).  [config] provides
    deployment-time parameter overrides. *)

type composed = {
  model : Model.element;  (** fully resolved and expanded instance tree *)
  comp_diags : Diagnostic.t list;
  descriptors_used : string list;  (** identifiers of all referenced descriptors *)
}

let transitive_references t (root : Model.element) =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (e : Model.element) =
    List.iter
      (fun name ->
        let resolved = match resolve_hyperlink t name with Some n -> n | None -> name in
        if not (Hashtbl.mem visited resolved) then begin
          Hashtbl.add visited resolved ();
          match find t resolved with
          | Some def ->
              order := resolved :: !order;
              visit def
          | None -> ()
        end)
      (Model.referenced_types e)
  in
  visit root;
  List.rev !order

let compose ?(config = []) t (root : Model.element) : composed =
  let used = transitive_references t root in
  let resolved, res_diags = Inheritance.resolve_lenient (lookup t) root in
  let expanded, inst_diags = Instantiate.run ~env:config resolved in
  let val_diags = Validate.run ~lookup:(lookup t) expanded in
  { model = expanded; comp_diags = res_diags @ inst_diags @ val_diags; descriptors_used = used }

(** Compose the concrete model registered under [ident]. *)
let compose_by_name ?config t ident =
  match find t ident with
  | None -> Error (Fmt.str "no descriptor named %S in repository" ident)
  | Some root -> Ok (compose ?config t root)

(** Total parsed size of the repository in model elements, a proxy for
    the specification-bytes comparisons of experiment E9. *)
let total_elements t =
  Hashtbl.fold (fun _ e acc -> acc + Model.size e.ent_element) t.entries 0

(** Locate the bundled model repository from wherever the process runs:
    honors [XPDL_MODELS], then probes [models], [../models], [../../models]
    relative to the working directory.  Tests, examples and benches share
    this so they work both from the workspace root and from dune's
    sandboxed test directories. *)
let locate_models () =
  let candidates =
    (match Sys.getenv_opt "XPDL_MODELS" with Some p -> [ p ] | None -> [])
    @ [ "models"; "../models"; "../../models"; "../../../models" ]
  in
  List.find_opt (fun d -> Sys.file_exists d && Sys.is_directory d) candidates

(** Create a repository pre-loaded with the bundled models; fails if they
    cannot be found. *)
let load_bundled () =
  match locate_models () with
  | None -> failwith "cannot locate the bundled models/ directory (set XPDL_MODELS)"
  | Some dir ->
      let t = create () in
      add_root t dir;
      t
