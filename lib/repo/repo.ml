(** The distributed XPDL model repository (Sec. III).

    XPDL descriptors are ".xpdl" files — machine-readable data sheets —
    placed in a model repository.  Models are retrieved by unique [name]
    (meta-models) or [id] (concrete models) via a model search path; the
    paper envisions descriptors "even provided for download e.g. at
    hardware manufacturer web sites".  This module implements:

    - multiple repository roots (the search path), scanned recursively for
      [.xpdl] descriptor files;
    - a persistent per-root index ([.xpdlidx] sidecar, {!Repo_index}) so
      that {!open_root} reconstructs the name table and diagnostic stream
      without parsing anything, re-scanning only files whose
      (mtime, size) fingerprint changed;
    - lazy descriptor loading: an indexed entry is parsed and elaborated
      on first {!find}, kept in a bounded LRU cache, and transparently
      re-materialized after eviction — so cross-model [extends]/[type]
      resolution loads only the transitive closure instead of the world;
    - hyperlink resolution: [xpdl://authority/name] references map to
      registered roots, giving the distributed-library semantics without
      network access (see DESIGN.md substitutions);
    - an in-memory index name/id → descriptor, with duplicate detection;
    - recursive composition: resolving every meta-model reference
      reachable from a concrete model ({!compose}), the first stage of
      the toolchain pipeline (Sec. IV);
    - a parallel {!validate_all} sharded over OCaml 5 domains with
      deterministic, schedule-independent results.

    Thread-safety: one mutex guards all mutable state; descriptor files
    are parsed outside the lock so concurrent domains materialize
    different files in parallel.  See docs/REPOSITORY.md. *)

open Xpdl_core

type entry = {
  ent_ident : string;
  ent_element : Model.element;
  ent_file : string;  (** source descriptor file, or ["<memory>"] *)
}

(* Where an un-materialized descriptor lives: enough to re-parse its file
   and pick the right descriptor out of it.  The ordinal (position among
   the file's descriptor nodes) is the identity used when re-binding
   parsed elements to slots, so a file whose content changed since
   indexing can never silently satisfy a lookup with the wrong model. *)
type source = {
  src_file : string;
  src_ordinal : int;  (* index among the file's descriptor nodes *)
  src_kind : Schema.kind;
  src_span : int * int;  (* (offset, length) byte span, informational *)
}

type slot =
  | Loaded of entry  (* eagerly indexed via add_element/add_root: never evicted *)
  | Cached of entry * source  (* materialized on demand: evictable *)
  | On_disk of source  (* known from the index: parse on first touch *)

let slot_file = function Loaded e | Cached (e, _) -> e.ent_file | On_disk s -> s.src_file
let slot_kind = function
  | Loaded e | Cached (e, _) -> e.ent_element.Model.kind
  | On_disk s -> s.src_kind

(* Doubly-linked LRU over cached identifiers; O(1) touch/evict. *)
module Lru = struct
  type node = { n_ident : string; mutable prev : node option; mutable next : node option }

  type t = {
    nodes : (string, node) Hashtbl.t;
    mutable head : node option;  (* most recently used *)
    mutable tail : node option;  (* least recently used *)
  }

  let create () = { nodes = Hashtbl.create 64; head = None; tail = None }
  let length t = Hashtbl.length t.nodes

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    n.prev <- None;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let touch t ident =
    match Hashtbl.find_opt t.nodes ident with
    | Some n ->
        unlink t n;
        push_front t n
    | None ->
        let n = { n_ident = ident; prev = None; next = None } in
        Hashtbl.add t.nodes ident n;
        push_front t n

  let remove t ident =
    match Hashtbl.find_opt t.nodes ident with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.nodes ident
    | None -> ()

  let pop_lru t =
    match t.tail with
    | None -> None
    | Some n ->
        unlink t n;
        Hashtbl.remove t.nodes n.n_ident;
        Some n.n_ident
end

type counters = {
  mutable c_parsed_files : int;
  mutable c_reused_files : int;
  mutable c_materialized : int;
  mutable c_evictions : int;
}

type stats = {
  descriptors : int;
  loaded : int;
  cached : int;
  pending : int;
  parsed_files : int;
  reused_files : int;
  materialized : int;
  evictions : int;
}

type t = {
  entries : (string, slot) Hashtbl.t;
  mutable remotes : (string * string) list;  (** authority → local root *)
  mutable diags : Diagnostic.t list;
  quarantine_set : (string, unit) Hashtbl.t;
  mutable quarantine_rev : string list;  (** reverse insertion order *)
  missing_refs : (string, unit) Hashtbl.t;  (** XPDL305 already emitted *)
  lock : Mutex.t;
  cache_capacity : int;
  lru : Lru.t;
  c : counters;
}

let default_cache_capacity = 8192

let create ?(cache_capacity = default_cache_capacity) () =
  {
    entries = Hashtbl.create 64;
    remotes = [];
    diags = [];
    quarantine_set = Hashtbl.create 16;
    quarantine_rev = [];
    missing_refs = Hashtbl.create 16;
    lock = Mutex.create ();
    cache_capacity = max 0 cache_capacity;
    lru = Lru.create ();
    c = { c_parsed_files = 0; c_reused_files = 0; c_materialized = 0; c_evictions = 0 };
  }

(* Single non-recursive lock: public entry points lock once, internal
   [_u] helpers assume the lock is held and never re-lock. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_diag_u t d = t.diags <- d :: t.diags
let diagnostics t = locked t (fun () -> List.rev t.diags)

(* Hashtbl membership (not List.mem) so quarantining is O(1) even with
   thousands of corrupt files, while reporting keeps insertion order. *)
let quarantine_u t file =
  if not (Hashtbl.mem t.quarantine_set file) then begin
    Hashtbl.add t.quarantine_set file ();
    t.quarantine_rev <- file :: t.quarantine_rev
  end

(** Files that failed to contribute any descriptor at load time —
    unreadable, or so malformed that even the recovering parser got no
    tree out of them.  Indexing continued without them. *)
let quarantined_files t = locked t (fun () -> List.rev t.quarantine_rev)

(** Number of indexed descriptors (materialized or not). *)
let size t = locked t (fun () -> Hashtbl.length t.entries)

(** All indexed identifiers, sorted. *)
let identifiers t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [])
  |> List.sort String.compare

let stats t =
  locked t (fun () ->
      let loaded = ref 0 and cached = ref 0 and pending = ref 0 in
      Hashtbl.iter
        (fun _ -> function
          | Loaded _ -> incr loaded
          | Cached _ -> incr cached
          | On_disk _ -> incr pending)
        t.entries;
      {
        descriptors = Hashtbl.length t.entries;
        loaded = !loaded;
        cached = !cached;
        pending = !pending;
        parsed_files = t.c.c_parsed_files;
        reused_files = t.c.c_reused_files;
        materialized = t.c.c_materialized;
        evictions = t.c.c_evictions;
      })

(* ------------------------------------------------------------------ *)
(* Lazy materialization                                               *)

(* A descriptor file holds one model, or several under a <xpdl>/<repository>
   wrapper element. *)
let descriptor_nodes (x : Xpdl_xml.Dom.element) =
  match x.Xpdl_xml.Dom.tag with
  | "xpdl" | "repository" -> Xpdl_xml.Dom.child_elements x
  | _ -> [ x ]

(* Evict least-recently-used cached entries down to capacity; evicted
   slots fall back to On_disk and re-materialize on next touch. *)
let rec enforce_capacity_u t =
  if Lru.length t.lru > t.cache_capacity then (
    (match Lru.pop_lru t.lru with
    | None -> ()
    | Some ident -> (
        match Hashtbl.find_opt t.entries ident with
        | Some (Cached (_, src)) ->
            Hashtbl.replace t.entries ident (On_disk src);
            t.c.c_evictions <- t.c.c_evictions + 1
        | _ -> ()));
    enforce_capacity_u t)

let install_cached_u t ident entry src =
  Hashtbl.replace t.entries ident (Cached (entry, src));
  Lru.touch t.lru ident;
  enforce_capacity_u t

(* Parse + elaborate every descriptor of a file.  Diagnostics are
   dropped: they were already replayed from the index at open_root time,
   and materialization must not duplicate them.  Runs OUTSIDE the lock
   so concurrent domains parse different files in parallel. *)
let parse_descriptors file =
  match Xpdl_xml.Parse.file_recover ~lenient:true file with
  | Error _ | Ok (None, _) -> []
  | Ok (Some x, _) ->
      List.mapi (fun i node -> (i, fst (Elaborate.of_xml node))) (descriptor_nodes x)

(* Bind freshly parsed descriptors to their On_disk slots (file and
   ordinal must both match — a shadowed or moved descriptor stays cold).
   Returns the entry for [want] if this parse produced it. *)
let install_parsed_u t ~file ~want parsed =
  t.c.c_parsed_files <- t.c.c_parsed_files + 1;
  let found = ref None in
  List.iter
    (fun (ordinal, e) ->
      match Model.identifier e with
      | None -> ()
      | Some ident -> (
          match Hashtbl.find_opt t.entries ident with
          | Some (On_disk src)
            when String.equal src.src_file file && src.src_ordinal = ordinal ->
              let entry = { ent_ident = ident; ent_element = e; ent_file = file } in
              t.c.c_materialized <- t.c.c_materialized + 1;
              install_cached_u t ident entry src;
              if String.equal ident want then found := Some entry
          | Some (Cached (entry, src))
            when String.equal ident want
                 && String.equal src.src_file file
                 && src.src_ordinal = ordinal ->
              (* another domain materialized it while we were parsing *)
              Lru.touch t.lru ident;
              found := Some entry
          | _ -> ()))
    parsed;
  !found

let probe_u t ident =
  match Hashtbl.find_opt t.entries ident with
  | None -> `Miss
  | Some (Loaded e) -> `Hit e
  | Some (Cached (e, _)) ->
      Lru.touch t.lru ident;
      `Hit e
  | Some (On_disk src) -> `Materialize src

let find_entry t ident =
  match locked t (fun () -> probe_u t ident) with
  | `Hit e -> Some e
  | `Miss -> None
  | `Materialize src -> (
      let parsed = parse_descriptors src.src_file in
      locked t (fun () ->
          match install_parsed_u t ~file:src.src_file ~want:ident parsed with
          | Some e -> Some e
          | None -> (
              match probe_u t ident with
              | `Hit e -> Some e
              | `Miss -> None
              | `Materialize _ ->
                  (* the file changed on disk after indexing and no longer
                     declares this identifier at that position *)
                  add_diag_u t
                    (Diagnostic.warning ~code:"XPDL314"
                       "indexed descriptor %S no longer present in %s" ident src.src_file);
                  Hashtbl.remove t.entries ident;
                  Lru.remove t.lru ident;
                  None)))

let find t ident = Option.map (fun e -> e.ent_element) (find_entry t ident)

(* ------------------------------------------------------------------ *)
(* Eager indexing: behavior identical to the historical add_root path  *)

let add_element_u t ~file (e : Model.element) =
  match Model.identifier e with
  | None ->
      add_diag_u t
        (Diagnostic.error ~code:"XPDL301" ~pos:e.pos
           "descriptor in %s has neither name nor id; not indexed" file)
  | Some ident ->
      (match Hashtbl.find_opt t.entries ident with
      | Some prev when slot_file prev <> file ->
          add_diag_u t
            (Diagnostic.warning ~code:"XPDL302" ~pos:e.pos
               "identifier %S in %s shadows definition from %s" ident file (slot_file prev))
      | _ -> ());
      Lru.remove t.lru ident;
      Hashtbl.replace t.entries ident
        (Loaded { ent_ident = ident; ent_element = e; ent_file = file })

(** Register one elaborated element under its identifier. *)
let add_element t ?(file = "<memory>") e = locked t (fun () -> add_element_u t ~file e)

let add_xml_u t ~file (x : Xpdl_xml.Dom.element) =
  List.iter
    (fun node ->
      let e, diags = Elaborate.of_xml node in
      List.iter (add_diag_u t) diags;
      add_element_u t ~file e)
    (descriptor_nodes x)

(* Recovering parse front end shared by string and file indexing: every
   syntax error becomes a coded diagnostic, and whatever tree could be
   reconstructed is still indexed best-effort, so one malformed descriptor
   neither hides its other errors nor aborts a batch. *)
let add_recovered_u t ~file (root, errs) =
  List.iter (fun e -> add_diag_u t (Diagnostic.of_parse_error e)) errs;
  match root with
  | Some x -> add_xml_u t ~file x
  | None -> if file <> "<memory>" then quarantine_u t file

(** Parse and index a single descriptor string (used by tests and by the
    microbenchmark bootstrap to register generated descriptors). *)
let add_string t ?(file = "<memory>") s =
  locked t (fun () ->
      add_recovered_u t ~file (Xpdl_xml.Parse.string_recover ~file ~lenient:true s))

let add_file_u t path =
  t.c.c_parsed_files <- t.c.c_parsed_files + 1;
  match Xpdl_xml.Parse.file_recover ~lenient:true path with
  | Ok parsed -> add_recovered_u t ~file:path parsed
  | Error msg ->
      quarantine_u t path;
      add_diag_u t (Diagnostic.error ~code:"XPDL303" "cannot load %s: %s" path msg)

let add_file t path = locked t (fun () -> add_file_u t path)

let descriptor_file name =
  Filename.check_suffix name ".xpdl" || Filename.check_suffix name ".xml"

let rec scan_dir_u t dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then scan_dir_u t path
          else if descriptor_file name then add_file_u t path)
        entries
  | exception Sys_error msg ->
      add_diag_u t (Diagnostic.error ~code:"XPDL304" "cannot scan %s: %s" dir msg)

(** Add a repository root (an element of the model search path); every
    [.xpdl] file beneath it is parsed and indexed immediately.  This is
    the eager reference path; {!open_root} is the indexed equivalent. *)
let add_root t dir = locked t (fun () -> scan_dir_u t dir)

(** Register a remote authority: hyperlinks [xpdl://authority/name] will
    resolve against descriptors indexed from [root].  In this offline
    reproduction the authority's content must already be local; the point
    is to preserve reference syntax and resolution semantics. *)
let add_remote t ~authority ~root =
  locked t (fun () ->
      t.remotes <- (authority, root) :: t.remotes;
      scan_dir_u t root)

(* "xpdl://authority/name" → name (content is pre-indexed from the
   authority's registered root).  An unknown authority is diagnosed once
   per reference string, not once per lookup: a composition touching a
   dangling reference thousands of times must not flood the diagnostic
   stream (nor consume a caller's error cap) with duplicates. *)
let resolve_hyperlink t ref_string =
  let prefix = "xpdl://" in
  let plen = String.length prefix in
  if String.length ref_string > plen && String.equal (String.sub ref_string 0 plen) prefix
  then begin
    let rest = String.sub ref_string plen (String.length ref_string - plen) in
    match String.index_opt rest '/' with
    | Some i ->
        let authority = String.sub rest 0 i in
        let name = String.sub rest (i + 1) (String.length rest - i - 1) in
        locked t (fun () ->
            if List.mem_assoc authority t.remotes then Some name
            else begin
              if not (Hashtbl.mem t.missing_refs ref_string) then begin
                Hashtbl.add t.missing_refs ref_string ();
                add_diag_u t
                  (Diagnostic.error ~code:"XPDL305" "unknown repository authority %S in %S"
                     authority ref_string)
              end;
              None
            end)
    | None -> None
  end
  else None

(** The name-resolution function handed to {!Xpdl_core.Inheritance}. *)
let lookup t : Inheritance.lookup =
 fun ident ->
  match resolve_hyperlink t ident with
  | Some name -> find t name
  | None -> find t ident

(* ------------------------------------------------------------------ *)
(* Indexed open: sidecar load, incremental revalidation, diag replay   *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Byte offset of the start of each line, for descriptor span records. *)
let line_starts content =
  let acc = ref [ 0 ] in
  String.iteri (fun i c -> if Char.equal c '\n' then acc := (i + 1) :: !acc) content;
  Array.of_list (List.rev !acc)

let offset_of_pos starts content (pos : Xpdl_xml.Dom.position) =
  if pos.line < 1 || pos.line > Array.length starts then 0
  else min (String.length content) (starts.(pos.line - 1) + max 0 (pos.column - 1))

(* Full scan of one file: fingerprint, parse, elaborate; returns the
   index record plus the elaborated elements (by ordinal) so a cold open
   can install them directly without a second parse. *)
let scan_file_u t ~root ~rel ?st () : Repo_index.file_record * (int * Model.element) list =
  let full = Filename.concat root rel in
  t.c.c_parsed_files <- t.c.c_parsed_files + 1;
  let fr_mtime, fr_size =
    match match st with Some st -> st | None -> Unix.stat full with
    | st -> (st.Unix.st_mtime, st.Unix.st_size)
    | exception _ -> (0., -1)  (* unstattable: always stale *)
  in
  let quarantined ~parse_diags =
    ( {
        Repo_index.fr_path = rel;
        fr_mtime;
        fr_size;
        fr_quarantined = true;
        fr_parse_diags = parse_diags;
        fr_descs = [];
      },
      [] )
  in
  match read_file full with
  | exception Sys_error msg ->
      let d = Diagnostic.error ~code:"XPDL303" "cannot load %s: %s" full msg in
      quarantined ~parse_diags:[ Repo_index.diag_of ~owner:full d ]
  | content -> (
      let root_elt, errs = Xpdl_xml.Parse.string_recover ~file:full ~lenient:true content in
      let parse_diags =
        List.map (fun e -> Repo_index.diag_of ~owner:full (Diagnostic.of_parse_error e)) errs
      in
      match root_elt with
      | None -> quarantined ~parse_diags
      | Some x ->
          let nodes = descriptor_nodes x in
          let starts = line_starts content in
          let offsets =
            List.map (fun (n : Xpdl_xml.Dom.element) -> offset_of_pos starts content n.pos) nodes
          in
          (* each span runs to the start of the next descriptor node *)
          let ends =
            match offsets with
            | [] -> []
            | _ :: rest -> rest @ [ String.length content ]
          in
          let descs, elems =
            List.map2
              (fun (node : Xpdl_xml.Dom.element) (off, stop) ->
                let e, ediags = Elaborate.of_xml node in
                let d =
                  {
                    Repo_index.d_ident = Model.identifier e;
                    d_kind = Schema.tag_of_kind e.Model.kind;
                    d_line = e.Model.pos.line;
                    d_col = e.Model.pos.column;
                    d_span_off = off;
                    d_span_len = max 0 (stop - off);
                    d_diags = List.map (Repo_index.diag_of ~owner:full) ediags;
                  }
                in
                (d, e))
              nodes
              (List.combine offsets ends)
            |> List.split
          in
          ( {
              Repo_index.fr_path = rel;
              fr_mtime;
              fr_size;
              fr_quarantined = false;
              fr_parse_diags = parse_diags;
              fr_descs = descs;
            },
            List.mapi (fun i e -> (i, e)) elems ))

(* Replay one file record into the repository, in exactly the order the
   eager path would have produced: parse diagnostics, then per
   descriptor its elaboration diagnostics and the XPDL301/302 indexing
   outcome (recomputed against the LIVE entries table, so shadowing
   across roots and sessions matches eager Hashtbl.replace semantics).
   [fresh] carries elaborated elements when the file was just scanned;
   otherwise slots are installed cold (On_disk). *)
let replay_file_u t ~root (fr : Repo_index.file_record) fresh =
  let file = Filename.concat root fr.Repo_index.fr_path in
  List.iter (fun dg -> add_diag_u t (Repo_index.to_diag ~owner:file dg)) fr.fr_parse_diags;
  if fr.fr_quarantined then quarantine_u t file;
  List.iteri
    (fun ordinal (d : Repo_index.desc) ->
      List.iter (fun dg -> add_diag_u t (Repo_index.to_diag ~owner:file dg)) d.d_diags;
      let pos = { Xpdl_xml.Dom.file; line = d.d_line; column = d.d_col } in
      match d.d_ident with
      | None ->
          add_diag_u t
            (Diagnostic.error ~code:"XPDL301" ~pos
               "descriptor in %s has neither name nor id; not indexed" file)
      | Some ident ->
          (match Hashtbl.find_opt t.entries ident with
          | Some prev when slot_file prev <> file ->
              add_diag_u t
                (Diagnostic.warning ~code:"XPDL302" ~pos
                   "identifier %S in %s shadows definition from %s" ident file (slot_file prev))
          | _ -> ());
          let src =
            {
              src_file = file;
              src_ordinal = ordinal;
              src_kind = Schema.kind_of_tag d.d_kind;
              src_span = (d.d_span_off, d.d_span_len);
            }
          in
          Lru.remove t.lru ident;
          (match List.assoc_opt ordinal fresh with
          | Some e ->
              install_cached_u t ident { ent_ident = ident; ent_element = e; ent_file = file } src
          | None -> Hashtbl.replace t.entries ident (On_disk src)))
    fr.fr_descs

(* Recursive walk mirroring scan_dir's order (per-directory sort, inline
   recursion), collecting root-relative descriptor paths.  One stat per
   entry does double duty as directory test and staleness fingerprint —
   on a warm open the walk IS the dominant cost, so syscalls matter. *)
let rec walk_u t ~root rel acc =
  let dir = if rel = "" then root else Filename.concat root rel in
  match Sys.readdir dir with
  | names ->
      Array.sort String.compare names;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          let rpath = if rel = "" then name else Filename.concat rel name in
          match Unix.stat path with
          | st when st.Unix.st_kind = Unix.S_DIR -> walk_u t ~root rpath acc
          | st -> if descriptor_file name then (rpath, st) :: acc else acc
          | exception _ -> acc)
        acc names
  | exception Sys_error msg ->
      add_diag_u t (Diagnostic.error ~code:"XPDL304" "cannot scan %s: %s" dir msg);
      acc

let open_root_u t dir =
  let prior = Hashtbl.create 64 in
  let had_index =
    match Repo_index.load ~root:dir with
    | Ok None -> false
    | Ok (Some idx) ->
        Array.iter (fun fr -> Hashtbl.replace prior fr.Repo_index.fr_path fr) idx.files;
        true
    | Error d ->
        (* corrupt sidecar: coded diagnostic, then a full rebuild *)
        add_diag_u t d;
        false
  in
  let rels = List.rev (walk_u t ~root:dir "" []) in
  let stale = ref 0 and fresh_files = ref 0 in
  let records =
    List.map
      (fun (rel, st) ->
        let reusable =
          match Hashtbl.find_opt prior rel with
          | None -> None
          | Some fr ->
              if Repo_index.fingerprint_matches fr ~mtime:st.Unix.st_mtime ~size:st.Unix.st_size
              then Some fr
              else None
        in
        match reusable with
        | Some fr ->
            t.c.c_reused_files <- t.c.c_reused_files + 1;
            Hashtbl.remove prior rel;
            (fr, [])
        | None ->
            if Hashtbl.mem prior rel then begin
              incr stale;
              Hashtbl.remove prior rel
            end
            else incr fresh_files;
            scan_file_u t ~root:dir ~rel ~st ())
      rels
  in
  let deleted = Hashtbl.length prior in
  List.iter (fun (fr, fresh) -> replay_file_u t ~root:dir fr fresh) records;
  let changed = !stale + !fresh_files + deleted in
  if had_index && changed > 0 then
    add_diag_u t
      (Diagnostic.info ~code:"XPDL312"
         "repository index for %s refreshed: %d stale, %d new, %d deleted file(s)" dir !stale
         !fresh_files deleted);
  if (not had_index) || changed > 0 then begin
    let idx = { Repo_index.files = Array.of_list (List.map fst records) } in
    match Repo_index.save ~root:dir idx with
    | Ok () -> ()
    | Error d -> add_diag_u t d  (* XPDL313: read-only root — index is best-effort *)
  end

(** Open a repository root through its persistent [.xpdlidx] index:
    descriptor names, kinds and load-time diagnostics are reconstructed
    from the sidecar without parsing; only files whose fingerprint
    changed (or that are new) are re-scanned, and the sidecar is
    refreshed.  Entries materialize lazily on first {!find}.  With no
    usable sidecar this degrades to a full scan that also writes one.
    Behaviorally identical to {!add_root} except for XPDL31x
    informational diagnostics. *)
let open_root t dir = locked t (fun () -> open_root_u t dir)

(** {1 Composition}

    [compose t root] is the toolchain's front half: starting from a
    concrete model, recursively resolve every referenced descriptor
    ([type]/[extends] hyperlinks), flatten inheritance, then instantiate
    (bind params, expand groups, check constraints).  [config] provides
    deployment-time parameter overrides. *)

type composed = {
  model : Model.element;  (** fully resolved and expanded instance tree *)
  comp_diags : Diagnostic.t list;
  descriptors_used : string list;  (** identifiers of all referenced descriptors *)
}

let transitive_references t (root : Model.element) =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (e : Model.element) =
    List.iter
      (fun name ->
        let resolved = match resolve_hyperlink t name with Some n -> n | None -> name in
        if not (Hashtbl.mem visited resolved) then begin
          Hashtbl.add visited resolved ();
          match find t resolved with
          | Some def ->
              order := resolved :: !order;
              visit def
          | None -> ()
        end)
      (Model.referenced_types e)
  in
  visit root;
  List.rev !order

let compose ?(config = []) t (root : Model.element) : composed =
  let used = transitive_references t root in
  let resolved, res_diags = Inheritance.resolve_lenient (lookup t) root in
  let expanded, inst_diags = Instantiate.run ~env:config resolved in
  let val_diags = Validate.run ~lookup:(lookup t) expanded in
  { model = expanded; comp_diags = res_diags @ inst_diags @ val_diags; descriptors_used = used }

(** Compose the concrete model registered under [ident]. *)
let compose_by_name ?config t ident =
  match find t ident with
  | None -> Error (Fmt.str "no descriptor named %S in repository" ident)
  | Some root -> Ok (compose ?config t root)

(* ------------------------------------------------------------------ *)
(* Parallel validation                                                 *)

type validation = {
  va_ident : string;
  va_kind : string;  (** schema tag *)
  va_errors : Diagnostic.t list;
}

(* Validate every descriptor, sharded over [jobs] domains with a chunked
   atomic cursor (as in Dse.run_points).  Two phases, both sharded:

   Phase A materializes every pending descriptor with exactly one parse
   per file.  Workers claim contiguous runs of pending slots grouped by
   file and write elaborated elements into distinct array slots, so no
   lock is held while parsing and no two domains duplicate a parse.
   Results go into a side table rather than the repository's LRU cache:
   validate-all must not evict a caller's warm working set, and its
   snapshot must be complete even when [cache_capacity] is smaller than
   the repository.

   Phase B validates against that immutable snapshot.  Lookups are
   lock-free (the snapshot table is never mutated after phase A), so
   domains only contend on the repository mutex for the rare
   [xpdl://] hyperlink dedup path.

   Results land in slots indexed by sorted-identifier position, so the
   output is deterministic and independent of scheduling: [~jobs:4]
   equals [~jobs:1] exactly.  Per-descriptor outcomes depend only on
   repository content — the XPDL305 dedup table affects only the
   repository's own diagnostic stream, never a validation result. *)
let validate_all ?(jobs = 1) t =
  let jobs = max 1 jobs in
  let run_sharded n work =
    let workers = max 1 (min jobs n) in
    if workers = 1 then
      for i = 0 to n - 1 do
        work i
      done
    else begin
      let cursor = Atomic.make 0 in
      let chunk = max 1 (n / (workers * 8)) in
      let worker () =
        let rec loop () =
          let start = Atomic.fetch_and_add cursor chunk in
          if start < n then begin
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do
              work i
            done;
            loop ()
          end
        in
        loop ()
      in
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end
  in
  let targets, pend, warm =
    locked t (fun () ->
        Hashtbl.fold
          (fun ident slot (ts, p, w) ->
            let ts = (ident, slot_kind slot) :: ts in
            match slot with
            | On_disk src -> (ts, (ident, src) :: p, w)
            | Loaded e | Cached (e, _) -> (ts, p, (ident, e.ent_element) :: w))
          t.entries ([], [], []))
  in
  (* phase A: one parse per file, results into distinct slots *)
  let pend =
    List.sort
      (fun (_, a) (_, b) ->
        match String.compare a.src_file b.src_file with
        | 0 -> compare a.src_ordinal b.src_ordinal
        | c -> c)
      pend
    |> Array.of_list
  in
  let np = Array.length pend in
  let groups =
    (* contiguous runs of [pend] sharing a file: (file, lo, hi) *)
    let acc = ref [] and i = ref 0 in
    while !i < np do
      let file = (snd pend.(!i)).src_file in
      let j = ref !i in
      while !j < np && String.equal (snd pend.(!j)).src_file file do
        incr j
      done;
      acc := (file, !i, !j - 1) :: !acc;
      i := !j
    done;
    Array.of_list (List.rev !acc)
  in
  let fetched = Array.make np None in
  run_sharded (Array.length groups) (fun gi ->
      let file, lo, hi = groups.(gi) in
      let parsed = parse_descriptors file in
      for k = lo to hi do
        let ident, src = pend.(k) in
        match List.assoc_opt src.src_ordinal parsed with
        | Some e when (match Model.identifier e with Some id -> String.equal id ident | None -> false)
          ->
            fetched.(k) <- Some e
        | _ -> ()
      done);
  locked t (fun () -> t.c.c_parsed_files <- t.c.c_parsed_files + Array.length groups);
  (* immutable snapshot: safe for concurrent lock-free reads in phase B *)
  let snap = Hashtbl.create (max 16 (np + List.length warm)) in
  List.iter (fun (ident, e) -> Hashtbl.replace snap ident e) warm;
  Array.iteri
    (fun k (ident, _) ->
      match fetched.(k) with Some e -> Hashtbl.replace snap ident e | None -> ())
    pend;
  let snap_find ident = Hashtbl.find_opt snap ident in
  let snap_lookup ident =
    match resolve_hyperlink t ident with
    | Some name -> snap_find name
    | None -> snap_find ident
  in
  (* phase B: validate every descriptor against the snapshot *)
  let targets =
    List.sort (fun (a, _) (b, _) -> String.compare a b) targets |> Array.of_list
  in
  let n = Array.length targets in
  let results = Array.make n None in
  run_sharded n (fun i ->
      let ident, kind = targets.(i) in
      let errors =
        match snap_find ident with
        | None ->
            (* the file changed on disk after indexing and no longer
               declares this identifier at that position *)
            [
              Diagnostic.error ~code:"XPDL314"
                "indexed descriptor %S no longer present in the repository" ident;
            ]
        | Some e ->
            if Schema.equal_kind kind Schema.System then begin
              let resolved, res_diags = Inheritance.resolve_lenient snap_lookup e in
              let expanded, inst_diags = Instantiate.run ~env:[] resolved in
              let val_diags = Validate.run ~lookup:snap_lookup expanded in
              Diagnostic.errors (res_diags @ inst_diags @ val_diags)
            end
            else Diagnostic.errors (Validate.run ~lookup:snap_lookup e)
      in
      results.(i) <- Some { va_ident = ident; va_kind = Schema.tag_of_kind kind; va_errors = errors });
  Array.to_list results |> List.filter_map Fun.id

(** Total parsed size of the repository in model elements, a proxy for
    the specification-bytes comparisons of experiment E9.  Forces
    materialization of every pending entry. *)
let total_elements t =
  List.fold_left
    (fun acc ident -> match find t ident with Some e -> acc + Model.size e | None -> acc)
    0 (identifiers t)

(** Locate the bundled model repository from wherever the process runs:
    honors [XPDL_MODELS], then probes [models], [../models], [../../models]
    relative to the working directory.  Tests, examples and benches share
    this so they work both from the workspace root and from dune's
    sandboxed test directories. *)
let locate_models () =
  let candidates =
    (match Sys.getenv_opt "XPDL_MODELS" with Some p -> [ p ] | None -> [])
    @ [ "models"; "../models"; "../../models"; "../../../models" ]
  in
  List.find_opt (fun d -> Sys.file_exists d && Sys.is_directory d) candidates

(** Create a repository pre-loaded with the bundled models; fails if they
    cannot be found. *)
let load_bundled () =
  match locate_models () with
  | None -> failwith "cannot locate the bundled models/ directory (set XPDL_MODELS)"
  | Some dir ->
      let t = create () in
      add_root t dir;
      t
