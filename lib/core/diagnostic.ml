(** Diagnostics produced across the toolchain: parse, elaborate, validate,
    instantiate and compose stages.

    Every message carries the source position of the offending XML node so
    tools can report [file:line:col]-style errors over [.xpdl] files, and a
    stable [XPDLnnn] code giving it a machine-readable identity:

    - [XPDL0xx] — parse (syntax) errors, produced by {!Xpdl_xml.Parse};
    - [XPDL1xx] — elaboration (typing/schema) diagnostics;
    - [XPDL2xx] — validation and constraint diagnostics;
    - [XPDL3xx] — composition/repository diagnostics;
    - [XPDL4xx] — incremental model-store diagnostics;
    - [XPDL5xx] — deployment-bootstrap robustness diagnostics (fault
      injection, retry/quarantine, graceful degradation);
    - [XPDL6xx] — runtime-model codec diagnostics (corrupt or truncated
      [.xrt] arena files);
    - [XPDL7xx] — model-query server protocol diagnostics;
    - [XPDL8xx] — design-space exploration sweep diagnostics;
    - [XPDL9xx] — durability diagnostics (write-ahead journal,
      checkpointing, crash recovery, idempotent replay).

    [XPDL000] is the uncategorized default for legacy call sites. *)

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type t = {
  severity : severity;
  code : string;  (** stable [XPDLnnn] identity, ["XPDL000"] if uncategorized *)
  pos : Xpdl_xml.Dom.position;
  message : string;
}

let uncategorized = "XPDL000"

(* The code registry: every code emitted anywhere in the toolchain, its
   default severity, and a one-line meaning.  docs/DIAGNOSTICS.md mirrors
   this table; the test suite checks the two stay in sync. *)
let registry : (string * severity * string) list =
  [
    (uncategorized, Error, "uncategorized diagnostic (legacy call sites)");
    (* XPDL0xx — parse *)
    ("XPDL001", Error, "syntax error (unexpected character or token)");
    ("XPDL002", Error, "unterminated construct (element, comment, CDATA, PI, DOCTYPE, value)");
    ("XPDL003", Error, "mismatched closing tag");
    ("XPDL004", Error, "invalid entity or character reference");
    ("XPDL005", Error, "duplicate attribute");
    ("XPDL006", Error, "malformed document structure (no root, multiple roots, stray text)");
    ("XPDL007", Error, "invalid attribute value syntax");
    ("XPDL008", Error, "cannot read input file");
    ("XPDL009", Error, "too many parse errors, recovery abandoned");
    (* XPDL1xx — elaborate *)
    ("XPDL101", Error, "attribute value has the wrong type (int/float/bool expected)");
    ("XPDL102", Error, "attribute value not in the allowed enumeration");
    ("XPDL103", Error, "malformed expression attribute");
    ("XPDL104", Error, "unit error on metric attribute (unknown unit or wrong dimension)");
    ("XPDL105", Warning, "metric attribute lacks its unit companion");
    ("XPDL110", Warning, "unknown attribute (kept as extension)");
    ("XPDL111", Warning, "unknown element (kept as extension)");
    ("XPDL112", Error, "element not allowed inside this parent");
    (* XPDL2xx — validate / constraints *)
    ("XPDL201", Error, "ill-formed identifier");
    ("XPDL202", Error, "missing required attribute");
    ("XPDL203", Error, "duplicate id within a scope");
    ("XPDL204", Error, "interconnect endpoint does not name a component");
    ("XPDL205", Error, "malformed power state machine");
    ("XPDL206", Warning, "unreachable power state");
    ("XPDL207", Warning, "unknown microbenchmark reference");
    ("XPDL208", Error, "unresolved meta-model reference");
    ("XPDL210", Error, "parameter value outside its declared range");
    ("XPDL211", Error, "attribute expression cannot be evaluated");
    ("XPDL212", Error, "bad group quantity");
    ("XPDL213", Error, "constraint violated");
    ("XPDL214", Warning, "constraint not checkable (unbound parameters)");
    ("XPDL215", Error, "constraint evaluates to a non-finite (NaN) value");
    ("XPDL216", Error, "const/param declaration requires a name");
    (* XPDL3xx — compose / repository *)
    ("XPDL301", Error, "descriptor has neither name nor id; not indexed");
    ("XPDL302", Warning, "identifier shadows a definition from another file");
    ("XPDL303", Error, "cannot load descriptor file");
    ("XPDL304", Error, "cannot scan repository directory");
    ("XPDL305", Error, "unknown repository authority in hyperlink");
    ("XPDL306", Error, "unresolved inheritance reference");
    ("XPDL307", Error, "cyclic inheritance");
    ("XPDL310", Warning, "microbenchmark bootstrap left unresolved energy entries");
    (* XPDL311-314 — persistent repository index (.xpdlidx sidecars) *)
    ("XPDL311", Warning, "repository index corrupt or unreadable; rebuilt from a full scan");
    ("XPDL312", Info, "repository index refreshed (stale, new or deleted files re-scanned)");
    ("XPDL313", Warning, "cannot write repository index");
    ("XPDL314", Warning, "indexed descriptor no longer present in its file");
    (* XPDL4xx — incremental model store *)
    ("XPDL401", Error, "store edit path does not address a model element");
    ("XPDL402", Error, "store structural edit is invalid (bad child index)");
    ("XPDL403", Error, "store edit value cannot be elaborated");
    ("XPDL404", Error, "store unpin of a revision that is not pinned");
    ("XPDL410", Info, "store edit journal compacted; incremental view rebuilt from scratch");
    (* XPDL5xx — deployment-bootstrap robustness *)
    ("XPDL500", Error, "microbenchmark harness internal error (uncaught simulator exception)");
    ("XPDL501", Warning, "meter read timed out");
    ("XPDL502", Warning, "meter returned non-finite samples; benchmark resampled");
    ("XPDL503", Warning, "benchmark quarantined after persistent failures");
    ("XPDL504", Info, "energy interpolated from a partial frequency sweep");
    ("XPDL505", Info, "energy inherited from the meta-model/default value");
    ("XPDL506", Warning, "placeholder unresolved after the degradation ladder");
    ("XPDL507", Warning, "core went offline during the benchmark suite");
    ("XPDL508", Warning, "suite time budget exhausted; remaining benchmarks quarantined");
    (* XPDL6xx — runtime-model codec *)
    ("XPDL601", Error, "runtime model file has a bad magic number");
    ("XPDL602", Error, "unsupported runtime model format version");
    ("XPDL603", Error, "runtime model file truncated or length mismatch");
    ("XPDL604", Error, "runtime model payload checksum mismatch");
    ("XPDL605", Error, "runtime model structure corrupt (spans, parents, offsets)");
    ("XPDL606", Error, "runtime model value encoding corrupt (bad tag, key or string id)");
    ("XPDL607", Error, "runtime model header length overflow or section bounds mismatch");
    (* XPDL7xx — model-query server protocol *)
    ("XPDL700", Error, "serve frame truncated: connection closed mid-frame");
    ("XPDL701", Error, "serve frame exceeds the maximum frame size");
    ("XPDL702", Error, "serve request has an unknown opcode");
    ("XPDL703", Error, "serve request payload is malformed");
    ("XPDL704", Error, "serve query is unknown or unanswerable on this model");
    ("XPDL705", Error, "serve edit rejected by the model store");
    ("XPDL706", Error, "serve revision is not a pinned snapshot of this session");
    ("XPDL707", Info, "serve journal compacted past the requested revision; full resync needed");
    ("XPDL708", Error, "serve connection reset by peer during a frame write");
    (* XPDL8xx — design-space exploration sweeps *)
    ("XPDL801", Error, "dse template declares no sweep axes");
    ("XPDL802", Error, "dse axis specification is malformed");
    ("XPDL803", Info, "dse point pruned: range/constraint failure at this configuration");
    ("XPDL804", Warning, "dse point evaluation failed; point dropped from the front");
    ("XPDL805", Info, "dse point bootstrapped below full quality (degradation ladder)");
    ("XPDL806", Info, "dse sample quota covers the whole space; sweep made exhaustive");
    ("XPDL807", Info, "dse front empty: every selected point was pruned or failed");
    (* XPDL9xx — durability: write-ahead journal and crash recovery *)
    ("XPDL900", Error, "wal checkpoint unreadable or corrupt");
    ("XPDL901", Warning, "wal tail truncated at a torn or corrupt record");
    ("XPDL902", Error, "wal directory or journal file cannot be opened or written");
    ("XPDL903", Info, "wal recovery replayed the journal tail onto the checkpoint");
    ("XPDL904", Info, "wal directory initialized with a fresh checkpoint");
    ("XPDL905", Error, "serve edit request id replayed with a different payload");
    ("XPDL906", Error, "client request deadline exceeded or retry budget exhausted");
  ]

let describe code =
  List.find_map (fun (c, _, d) -> if String.equal c code then Some d else None) registry

let default_severity code =
  List.find_map (fun (c, s, _) -> if String.equal c code then Some s else None) registry

let error ?(code = uncategorized) ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Error; code; pos; message }) fmt

let warning ?(code = uncategorized) ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Warning; code; pos; message }) fmt

let info ?(code = uncategorized) ?(pos = Xpdl_xml.Dom.no_position) fmt =
  Fmt.kstr (fun message -> { severity = Info; code; pos; message }) fmt

(** Convert a positioned parse error from the XML layer, preserving its
    [XPDL0xx] code. *)
let of_parse_error (e : Xpdl_xml.Parse.error) =
  error ~code:e.Xpdl_xml.Parse.err_code ~pos:e.Xpdl_xml.Parse.err_pos "%s"
    e.Xpdl_xml.Parse.err_msg

let is_error d = d.severity = Error

let pp ppf d =
  if String.equal d.code uncategorized then
    Fmt.pf ppf "%a: %a: %s" Xpdl_xml.Dom.pp_position d.pos pp_severity d.severity d.message
  else
    Fmt.pf ppf "%a: %a[%s]: %s" Xpdl_xml.Dom.pp_position d.pos pp_severity d.severity d.code
      d.message

let pp_list ppf ds = Fmt.(list ~sep:cut pp) ppf ds

(** True if no diagnostic in the list is an error. *)
let all_ok ds = not (List.exists is_error ds)

let errors ds = List.filter is_error ds

(** [cap ~max_errors ds] truncates the list after the [max_errors]-th
    error (keeping interleaved warnings up to that point) and appends an
    [Info] summary counting the suppressed errors.  A cap below 1 is
    clamped to 1 so a failing run always shows at least one error. *)
let cap ~max_errors ds =
  let max_errors = max 1 max_errors in
  let total_errors = List.length (errors ds) in
  if total_errors <= max_errors then ds
  else begin
    let seen = ref 0 in
    let kept =
      List.filter
        (fun d ->
          if !seen >= max_errors then false
          else begin
            if is_error d then incr seen;
            true
          end)
        ds
    in
    kept
    @ [
        info "too many errors; %d further error%s suppressed (raise --max-errors to see them)"
          (total_errors - max_errors)
          (if total_errors - max_errors = 1 then "" else "s");
      ]
  end

(* Minimal JSON string escaping (control chars, quote, backslash). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One diagnostic as a JSON object (see docs/DIAGNOSTICS.md for the
    schema). *)
let to_json d =
  Fmt.str {|{"code":"%s","severity":"%s","file":"%s","line":%d,"column":%d,"message":"%s"}|}
    (json_escape d.code) (severity_name d.severity)
    (json_escape d.pos.Xpdl_xml.Dom.file)
    d.pos.Xpdl_xml.Dom.line d.pos.Xpdl_xml.Dom.column (json_escape d.message)

(** A diagnostic list as the machine-readable report object
    [{"diagnostics": [...], "errors": n, "warnings": n}]. *)
let list_to_json ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Fmt.str {|{"diagnostics":[%s],"errors":%d,"warnings":%d}|}
    (String.concat "," (List.map to_json ds))
    (count Error) (count Warning)

(** Raise [Failure] with a rendered message list if any error is present. *)
let check_exn ds =
  if not (all_ok ds) then failwith (Fmt.str "@[<v>%a@]" pp_list (errors ds))
