(** Typed in-memory representation of XPDL models and meta-models.

    An XPDL descriptor elaborates from XML into a tree of {!element}s.
    The structural attributes that drive reuse — [name] (meta-model id),
    [id] (concrete id), [type] (meta-model reference), [extends]
    (supertypes), [prefix]/[quantity] on groups — are parsed into fields;
    all other attributes become typed {!attr_value}s validated against
    {!Schema}.  [?] placeholders (energy values to be filled in by
    microbenchmarking, Listing 14) are preserved as {!attr_value.Unknown}
    so the toolchain can find and resolve them at deployment time. *)

open Xpdl_units

type attr_value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Quantity of Units.t * string
      (** normalized quantity plus the unit spelling from the source, kept
          for faithful re-printing *)
  | Expr of Xpdl_expr.Expr.t * string  (** parsed expression and its source text *)
  | Unknown  (** the ["?"] placeholder: derive by microbenchmarking *)

let pp_attr_value ppf = function
  | Str s -> Fmt.pf ppf "%S" s
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Quantity (q, _) -> Units.pp ppf q
  | Expr (_, src) -> Fmt.pf ppf "expr(%s)" src
  | Unknown -> Fmt.string ppf "?"

let equal_attr_value a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Quantity (x, _), Quantity (y, _) -> Units.equal x y
  | Expr (_, x), Expr (_, y) -> String.equal x y
  | Unknown, Unknown -> true
  | (Str _ | Int _ | Float _ | Bool _ | Quantity _ | Expr _ | Unknown), _ -> false

type element = {
  kind : Schema.kind;
  name : string option;  (** meta-model identifier ([name] attribute) *)
  id : string option;  (** concrete instance identifier ([id] attribute) *)
  type_ref : string option;  (** [type] reference to a meta-model *)
  extends : string list;  (** supertype names, left-to-right priority *)
  attrs : (string * attr_value) list;  (** non-structural attributes, in order *)
  children : element list;
  pos : Xpdl_xml.Dom.position;
}

(** {1 Construction} *)

let make ?(pos = Xpdl_xml.Dom.no_position) ?name ?id ?type_ref ?(extends = []) ?(attrs = [])
    ?(children = []) kind =
  { kind; name; id; type_ref; extends; attrs; children; pos }

(** {1 Accessors} *)

(** The identifier under which this element can be referenced: [name] for
    meta-models, [id] for concrete models (Sec. III-A). *)
let identifier e =
  match e.name with Some n -> Some n | None -> e.id

(** True if the element declares a meta-model (has a [name]). *)
let is_meta e = Option.is_some e.name

let attr e key = List.assoc_opt key e.attrs

let attr_string e key =
  match attr e key with
  | Some (Str s) -> Some s
  | Some (Int i) -> Some (string_of_int i)
  | Some (Float f) -> Some (Fmt.str "%g" f)
  | Some (Bool b) -> Some (string_of_bool b)
  | Some (Expr (_, src)) -> Some src
  | Some (Quantity (q, _)) -> Some (Units.to_string q)
  | Some Unknown | None -> None

let attr_int e key =
  match attr e key with
  | Some (Int i) -> Some i
  | Some (Float f) -> Some (int_of_float f)
  | Some (Str s) -> int_of_string_opt s
  | Some (Expr (Xpdl_expr.Expr.Number f, _)) -> Some (int_of_float f)
  | _ -> None

let attr_float e key =
  match attr e key with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some (Str s) -> float_of_string_opt s
  | _ -> None

let attr_bool e key =
  match attr e key with
  | Some (Bool b) -> Some b
  | Some (Str s) -> bool_of_string_opt s
  | _ -> None

let attr_quantity e key =
  match attr e key with Some (Quantity (q, _)) -> Some q | _ -> None

(** True if the attribute is present but marked ["?"] (to be derived). *)
let attr_is_unknown e key =
  match attr e key with Some Unknown -> true | _ -> false

let set_attr e key v =
  let found = ref false in
  let attrs =
    List.map
      (fun (k, old) ->
        if String.equal k key then begin
          found := true;
          (k, v)
        end
        else (k, old))
      e.attrs
  in
  if !found then { e with attrs } else { e with attrs = e.attrs @ [ (key, v) ] }

let remove_attr e key = { e with attrs = List.filter (fun (k, _) -> not (String.equal k key)) e.attrs }

(** {1 Tree traversal} *)

let rec fold f acc e = List.fold_left (fold f) (f acc e) e.children

let iter f e = fold (fun () x -> f x) () e

let size e = fold (fun n _ -> n + 1) 0 e

(** All elements of a given kind in the subtree (document order). *)
let elements_of_kind kind e =
  List.rev (fold (fun acc x -> if Schema.equal_kind x.kind kind then x :: acc else acc) [] e)

(* Subtrees that describe hardware *metadata* rather than hardware:
   power models contain member *selectors* (e.g. [<core/>] inside a
   power_domain, Listing 12) that must not be confused with the physical
   components they select. *)
let is_metadata_subtree = function
  | Schema.Power_model | Schema.Power_domains | Schema.Power_domain
  | Schema.Power_state_machine | Schema.Instructions | Schema.Microbenchmarks
  | Schema.Software | Schema.Properties | Schema.Constraints ->
      true
  | _ -> false

(** Like {!fold} but skipping metadata subtrees (power models, ISAs,
    microbenchmarks, software) — the walk over {e physical} hardware. *)
let rec hardware_fold f acc e =
  if is_metadata_subtree e.kind then acc
  else List.fold_left (hardware_fold f) (f acc e) e.children

(** Physical hardware elements of one kind: like {!elements_of_kind} but
    excluding power-domain member selectors and other metadata. *)
let hardware_elements_of_kind kind e =
  List.rev
    (hardware_fold (fun acc x -> if Schema.equal_kind x.kind kind then x :: acc else acc) [] e)

(** {1 Index-path edits}

    Child-index paths address nodes positionally ([[]] = root), so every
    node is addressable — unnamed elements and group-expanded duplicates
    included.  [update_at] rebuilds only the spine from the root to the
    edited node; everything off the spine is shared, which is what makes
    the incremental store's single-edit cost O(depth · fan-out) instead
    of O(model). *)

type index_path = int list

let rec at_index_path e = function
  | [] -> Some e
  | i :: rest -> (
      match List.nth_opt e.children i with
      | Some c -> at_index_path c rest
      | None -> None)

let rec update_at e path f =
  match path with
  | [] -> f e
  | i :: rest ->
      if i < 0 || i >= List.length e.children then
        invalid_arg "Model.update_at: index path out of range";
      { e with children = List.mapi (fun j c -> if j = i then update_at c rest f else c) e.children }

let fold_index_paths f acc e =
  (* paths are built root-first by carrying the reversed prefix *)
  let rec go acc rev_path e =
    let acc = f acc (List.rev rev_path) e in
    List.fold_left
      (fun (acc, i) c -> (go acc (i :: rev_path) c, i + 1))
      (acc, 0) e.children
    |> fst
  in
  go acc [] e

let index_path_where p e =
  let exception Found of index_path in
  try
    fold_index_paths (fun () path x -> if p x then raise (Found path)) () e;
    None
  with Found path -> Some path

(** First element satisfying [p] in the subtree, depth-first. *)
let find p e =
  let exception Found of element in
  try
    iter (fun x -> if p x then raise (Found x)) e;
    None
  with Found x -> Some x

(** Find by concrete instance id. *)
let find_by_id ident e = find (fun x -> match x.id with Some i -> String.equal i ident | None -> false) e

(** Find by meta-model name. *)
let find_by_name ident e =
  find (fun x -> match x.name with Some n -> String.equal n ident | None -> false) e

let children_of_kind e kind = List.filter (fun c -> Schema.equal_kind c.kind kind) e.children

(** Direct children of a group-transparent view: children of [e] where any
    [group] child is replaced by its own (transparent) children,
    recursively.  Hierarchical scoping in XPDL treats groups as scopes but
    not as hardware (Listing 1: L2 is "in the same scope as" the cores'
    group). *)
let rec transparent_children e =
  List.concat_map
    (fun c ->
      if Schema.equal_kind c.kind Schema.Group then transparent_children c else [ c ])
    e.children

(** {1 Reference collection} *)

(** All meta-model names referenced from the subtree via [type] or
    [extends] — the hyperlinks the repository must resolve (Sec. III).

    Two uses of [type] are deliberately excluded because the paper uses
    them as labels rather than references: [type] on [memory] elements
    denotes a memory technology ([type="DDR3"], [type="global"],
    Listings 2 and 8), and [type] on elements inside a [power_domain]
    selects member hardware instances of the enclosing model rather than
    a repository descriptor ([<core type="Leon"/>], Listing 12). *)
let referenced_types e =
  let add acc n = if List.mem n acc then acc else n :: acc in
  let is_label (x : element) =
    Schema.equal_kind x.kind Schema.Memory
    || Schema.equal_kind x.kind Schema.Property
    || Schema.equal_kind x.kind Schema.Programming_model
    || Schema.equal_kind x.kind Schema.Microbenchmark
  in
  let rec go acc (x : element) =
    if Schema.equal_kind x.kind Schema.Power_domain then acc
    else
      let acc =
        match x.type_ref with
        | Some t when (not (Schema.is_param_type t)) && not (is_label x) -> add acc t
        | Some _ | None -> acc
      in
      let acc = List.fold_left add acc x.extends in
      List.fold_left go acc x.children
  in
  List.rev (go [] e)

(** {1 Printing} *)

let rec pp ppf e =
  let pp_field name ppf = function
    | None -> ()
    | Some v -> Fmt.pf ppf " %s=%s" name v
  in
  Fmt.pf ppf "@[<v 2><%s%a%a%a%a%a>%a@]" (Schema.tag_of_kind e.kind) (pp_field "name") e.name
    (pp_field "id") e.id (pp_field "type") e.type_ref
    (fun ppf -> function
      | [] -> ()
      | supers -> Fmt.pf ppf " extends=%a" Fmt.(list ~sep:comma string) supers)
    e.extends
    Fmt.(list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%a" k pp_attr_value v))
    e.attrs
    Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@,%a" pp c))
    e.children

let to_string e = Fmt.str "%a" pp e

(** Convert back to a {!Xpdl_xml.Dom} tree (inverse of elaboration up to
    attribute normalization); used to serialize composed models. *)
let rec to_xml e =
  let string_of_value = function
    | Str s -> s
    | Int i -> string_of_int i
    | Float f -> Fmt.str "%g" f
    | Bool b -> string_of_bool b
    | Quantity (q, unit_spelling) -> Fmt.str "%g" (Units.to_unit q unit_spelling)
    | Expr (_, src) -> src
    | Unknown -> "?"
  in
  let structural =
    List.filter_map
      (fun (k, v) -> Option.map (fun s -> Xpdl_xml.Dom.attr k s) v)
      [
        ("name", e.name);
        ("id", e.id);
        ("type", e.type_ref);
        ("extends", (match e.extends with [] -> None | l -> Some (String.concat " " l)));
      ]
  in
  let unit_attrs (k, v) =
    (* re-emit metric_unit companions for quantities *)
    match v with
    | Quantity (q, unit_spelling) ->
        let unit_attr_name = if String.equal k "size" then "unit" else k ^ "_unit" in
        [
          Xpdl_xml.Dom.attr k (Fmt.str "%g" (Units.to_unit q unit_spelling));
          Xpdl_xml.Dom.attr unit_attr_name unit_spelling;
        ]
    | _ -> [ Xpdl_xml.Dom.attr k (string_of_value v) ]
  in
  (* Inheritance can leave both an explicit [unit] string (from a param
     declaration) and a quantity whose companion re-emits [unit]; keep the
     first spelling of each attribute name. *)
  let dedupe attrs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (a : Xpdl_xml.Dom.attribute) ->
        if Hashtbl.mem seen a.attr_name then false
        else begin
          Hashtbl.add seen a.attr_name ();
          true
        end)
      attrs
  in
  let attrs = dedupe (structural @ List.concat_map unit_attrs e.attrs) in
  {
    Xpdl_xml.Dom.tag = Schema.tag_of_kind e.kind;
    attrs;
    children = List.map (fun c -> Xpdl_xml.Dom.Element (to_xml c)) e.children;
    pos = e.pos;
  }
