(** Instantiation: parameter binding, group expansion, constraint checking.

    After inheritance is flattened ({!Inheritance}), a model may still
    contain the configurability machinery of Sec. III-B:

    - [<const>] definitions ([shmtotalsize] in Listing 8);
    - [<param>] declarations, possibly [configurable], possibly with a
      [range] of admissible values, given concrete values by subtypes
      (Listing 9) or instances (Listing 10);
    - attribute values that are expressions over those names
      ([size="L1size"], [quantity="num_SM"]);
    - [<constraint expr="..."/>] elements that must hold for the chosen
      configuration ([L1size + shmsize == shmtotalsize]).

    Instantiation walks the tree top-down with a scoped environment,
    substitutes parameter values into attribute expressions, verifies
    ranges and constraints, and expands [group] elements: a group with
    [quantity=n] becomes [n] sibling scope copies; with a [prefix], the
    copies are identified [prefix0 .. prefix(n-1)] (Listing 1: [core0 ..
    core3]).  Expanded groups remain in the tree as scope nodes because
    hierarchical scoping defines cache sharing (L2 shared by the two cores
    of its group). *)

open Xpdl_units

type env = (string * Xpdl_expr.Expr.value) list

let quantity_value (q : Units.t) = Xpdl_expr.Expr.Num (Units.value q)

(* The value a <param>/<const> contributes to the environment: its [value]
   expression, or its metric attribute (size/frequency), normalized SI. *)
let binding_value env (e : Model.element) : Xpdl_expr.Expr.value option =
  let eval_expr ex =
    match Xpdl_expr.Expr.eval (Xpdl_expr.Expr.env_of_list env) ex with
    | v -> Some v
    | exception (Xpdl_expr.Expr.Error _ | Xpdl_expr.Expr.Non_finite _) -> None
  in
  match Model.attr e "value" with
  | Some (Model.Expr (ex, _)) -> eval_expr ex
  | Some (Model.Int i) -> Some (Xpdl_expr.Expr.Num (float_of_int i))
  | Some (Model.Float f) -> Some (Xpdl_expr.Expr.Num f)
  | Some (Model.Str s) -> Some (Xpdl_expr.Expr.Str s)
  | Some (Model.Quantity (q, _)) -> Some (quantity_value q)
  | Some (Model.Bool b) -> Some (Xpdl_expr.Expr.Bool b)
  | Some Model.Unknown | None -> (
      match (Model.attr_quantity e "size", Model.attr_quantity e "frequency") with
      | Some q, _ | None, Some q -> Some (quantity_value q)
      | None, None -> None)

(* Check a param's bound value against its declared range (a
   comma-separated list interpreted in the param's [unit]). *)
let check_range diags env (p : Model.element) =
  match (Model.attr_string p "range", List.assoc_opt (Option.value ~default:"" p.name) env) with
  | Some range_s, Some (Xpdl_expr.Expr.Num v) -> (
      (* the unit spelling: an explicit [unit] attribute, or the spelling
         the param's metric value was written in (elaboration consumes the
         companion [unit] into the quantity) *)
      let quantity_spelling =
        List.find_map
          (fun key ->
            match Model.attr p key with
            | Some (Model.Quantity (_, spelling)) -> Some spelling
            | _ -> None)
          [ "value"; "size"; "frequency" ]
      in
      let unit_spelling =
        match Model.attr_string p "unit" with Some u -> Some u | None -> quantity_spelling
      in
      let parse_item s =
        let s = String.trim s in
        match unit_spelling with
        | Some u when Units.is_known_unit u -> (
            match Units.of_string_opt s u with Some q -> Some (Units.value q) | None -> None)
        | Some _ | None -> float_of_string_opt s
      in
      let items = String.split_on_char ',' range_s |> List.filter_map parse_item in
      match items with
      | [] -> ()
      | _ ->
          if not (List.exists (fun x -> Float.abs (x -. v) <= 1e-9 *. Float.max 1. (Float.abs x)) items)
          then
            diags :=
              Diagnostic.error ~code:"XPDL210" ~pos:p.pos "param %s: value %g outside declared range {%s}"
                (Option.value ~default:"?" p.name)
                v range_s
              :: !diags)
  | _ -> ()

let canonical_unit = function
  | Units.Size -> "B"
  | Units.Frequency -> "Hz"
  | Units.Power -> "W"
  | Units.Energy -> "J"
  | Units.Time -> "s"
  | Units.Bandwidth -> "B/s"
  | Units.Voltage -> "V"
  | Units.Temperature -> "K"
  | Units.Scalar -> ""

(* Substitute expression-valued attributes using [env]; the schema's
   declared dimension rewraps plain numbers into quantities. *)
let substitute_attrs diags env (e : Model.element) : Model.element =
  let subst (key, v) =
    match v with
    (* a <constraint expr="..."> is a predicate, owned (and diagnosed)
       by check_constraints — substituting it here would double-report
       every failing evaluation *)
    | Model.Expr _ when e.Model.kind = Schema.Constraint && String.equal key "expr" -> (key, v)
    | Model.Expr (ex, src) -> (
        let ids = Xpdl_expr.Expr.free_idents ex in
        let all_bound = List.for_all (fun i -> List.mem_assoc i env) ids in
        if not all_bound then (key, v)
        else
          match Xpdl_expr.Expr.eval (Xpdl_expr.Expr.env_of_list env) ex with
          | Xpdl_expr.Expr.Num f -> (
              match Schema.attr_spec e.kind key with
              | Some { a_type = Schema.A_quantity dim; _ } ->
                  (* env values are SI-normalized *)
                  (key, Model.Quantity (Units.make f dim, canonical_unit dim))
              | Some { a_type = Schema.A_int; _ } -> (key, Model.Int (int_of_float f))
              | _ ->
                  if Float.is_integer f && List.length ids > 0 then (key, Model.Float f)
                  else if ids = [] then (key, Model.Expr (ex, src)) (* pure literal: keep *)
                  else (key, Model.Float f))
          | Xpdl_expr.Expr.Bool b -> (key, Model.Bool b)
          | Xpdl_expr.Expr.Str s -> (key, Model.Str s)
          | exception (Xpdl_expr.Expr.Error msg | Xpdl_expr.Expr.Non_finite msg) ->
              diags :=
                Diagnostic.error ~code:"XPDL211" ~pos:e.pos "attribute %s: cannot evaluate %S: %s" key src msg
                :: !diags;
              (key, v))
    | _ -> (key, v)
  in
  { e with attrs = List.map subst e.attrs }

let eval_quantity diags env (g : Model.element) : int option =
  match Model.attr g "quantity" with
  | None -> None
  | Some (Model.Int i) -> Some i
  | Some (Model.Float f) -> Some (int_of_float f)
  | Some (Model.Expr (ex, src)) -> (
      match Xpdl_expr.Expr.eval_num (Xpdl_expr.Expr.env_of_list env) ex with
      | f ->
          if f < 0. then begin
            diags :=
              Diagnostic.error ~code:"XPDL212" ~pos:g.pos "group quantity %S evaluates to negative %g" src f
              :: !diags;
            None
          end
          else Some (int_of_float f)
      | exception (Xpdl_expr.Expr.Error msg | Xpdl_expr.Expr.Non_finite msg) ->
          diags :=
            Diagnostic.error ~code:"XPDL212" ~pos:g.pos "group quantity %S: %s (unbound parameter?)" src msg
            :: !diags;
          None)
  | Some v ->
      diags :=
        Diagnostic.error ~code:"XPDL212" ~pos:g.pos "group quantity has non-numeric value %a" Model.pp_attr_value
          v
        :: !diags;
      None

(* Does this subtree still contain an unexpanded quantity group? *)
let check_constraints diags env (e : Model.element) =
  List.iter
    (fun (cs : Model.element) ->
      List.iter
        (fun (c : Model.element) ->
          match Model.attr c "expr" with
          | Some (Model.Expr (ex, src)) -> (
              match Xpdl_expr.Expr.eval (Xpdl_expr.Expr.env_of_list env) ex with
              | Xpdl_expr.Expr.Num f when not (Float.is_finite f) ->
                  (* a NaN/inf "result" would compare arbitrarily; that is
                     a model bug, not an unsatisfied constraint *)
                  diags :=
                    Diagnostic.error ~code:"XPDL215" ~pos:c.pos
                      "constraint %S evaluates to non-finite %g" src f
                    :: !diags
              | Xpdl_expr.Expr.Str _ ->
                  diags :=
                    Diagnostic.warning ~code:"XPDL214" ~pos:c.pos
                      "constraint %S not checkable: evaluates to a string" src
                    :: !diags
              | (Xpdl_expr.Expr.Bool _ | Xpdl_expr.Expr.Num _) as v ->
                  let holds =
                    match v with
                    | Xpdl_expr.Expr.Bool b -> b
                    | Xpdl_expr.Expr.Num f -> f <> 0.
                    | Xpdl_expr.Expr.Str _ -> assert false
                  in
                  if not holds then
                    diags :=
                      Diagnostic.error ~code:"XPDL213" ~pos:c.pos "constraint violated: %s" src
                      :: !diags
              | exception Xpdl_expr.Expr.Non_finite msg ->
                  diags :=
                    Diagnostic.error ~code:"XPDL215" ~pos:c.pos
                      "constraint %S not meaningful: %s" src msg
                    :: !diags
              | exception Xpdl_expr.Expr.Error msg ->
                  diags :=
                    Diagnostic.warning ~code:"XPDL214" ~pos:c.pos
                      "constraint %S not checkable: %s" src msg
                    :: !diags)
          | _ -> ())
        (Model.children_of_kind cs Schema.Constraint))
    (Model.children_of_kind e Schema.Constraints)

(** [run ?env root] instantiates [root]: binds consts/params scope-wise,
    substitutes expressions, checks ranges and constraints, and expands
    groups.  [env] provides external configuration overrides (name →
    value, SI-normalized), e.g. choosing [L1size] at deployment time.
    Returns the expanded tree and diagnostics; the tree is usable even
    with diagnostics present (erroneous parts are left unexpanded). *)
let run ?(env : env = []) (root : Model.element) : Model.element * Diagnostic.t list =
  let diags = ref [] in
  (* names fixed by external deployment configuration: these override any
     declaration in the tree; everything else follows lexical scoping
     (an inner <param> shadows an enclosing scope's) *)
  let external_names = List.map fst env in
  let rec walk env (e : Model.element) : Model.element =
    (* 1. gather const/param bindings declared directly under [e] *)
    let env =
      List.fold_left
        (fun env (c : Model.element) ->
          match c.kind with
          | Schema.Const | Schema.Param -> (
              match c.name with
              | Some n -> (
                  if List.mem n external_names && c.kind = Schema.Param then env
                  else
                    match binding_value env c with
                    | Some v -> (n, v) :: env
                    | None -> env)
              | None ->
                  diags :=
                    Diagnostic.error ~code:"XPDL216" ~pos:c.pos "<%s> requires a name"
                      (Schema.tag_of_kind c.kind)
                    :: !diags;
                  env)
          | _ -> env)
        env e.children
    in
    (* 2. range checks for params in scope *)
    List.iter
      (fun (c : Model.element) ->
        if c.kind = Schema.Param then check_range diags env c)
      e.children;
    (* 3. substitute this element's expression attributes *)
    let e = substitute_attrs diags env e in
    (* 4. constraints attached here *)
    check_constraints diags env e;
    (* 5. recurse into children, expanding groups *)
    let children = List.concat_map (expand env) e.children in
    { e with children }
  and expand env (c : Model.element) : Model.element list =
    match c.kind with
    | Schema.Group -> (
        let c = substitute_attrs diags env c in
        match eval_quantity diags env c with
        | None ->
            (* plain grouping scope, no replication *)
            [ walk env { c with attrs = List.remove_assoc "quantity" c.attrs } ]
        | Some n ->
            let prefix = Model.attr_string c "prefix" in
            let base_attrs =
              List.filter
                (fun (k, _) -> not (List.mem k [ "quantity"; "prefix" ]))
                c.attrs
            in
            let copies =
              List.init n (fun i ->
                  let member_ident =
                    match prefix with
                    | Some p -> Some (p ^ string_of_int i)
                    | None -> None
                  in
                  let rename_children (children : Model.element list) =
                    (* Assign the member identifier to the single
                       unidentified principal child, if any; suffix names
                       of named children when replicating without prefix
                       so definitions stay unique (Shave_pd0..7). *)
                    let unidentified =
                      List.filter (fun (ch : Model.element) -> Model.identifier ch = None) children
                    in
                    List.map
                      (fun (ch : Model.element) ->
                        match (member_ident, Model.identifier ch) with
                        | Some ident, None when List.length unidentified = 1 ->
                            { ch with id = Some ident }
                        | None, Some _ when n > 1 && ch.name <> None ->
                            { ch with name = Option.map (fun s -> s ^ string_of_int i) ch.name }
                        | _ -> ch)
                      children
                  in
                  let scope =
                    {
                      c with
                      kind = Schema.Group;
                      id = member_ident;
                      name = (if n > 1 then None else c.name);
                      attrs = base_attrs;
                      children = rename_children c.children;
                    }
                  in
                  walk env scope)
            in
            if n > 1 && c.name <> None then
              (* keep a named wrapper so the group itself stays
                 addressable (switchoffCondition "Shave_pds off") *)
              [ { c with attrs = base_attrs; children = copies; id = None } ]
            else copies)
    | _ -> [ walk env c ]
  in
  let result = walk env root in
  (result, List.rev !diags)

(** All parameter names still unbound (declared without value and not
    substituted) in the subtree; useful to report required configuration. *)
let unbound_params (root : Model.element) : string list =
  List.rev
    (Model.fold
       (fun acc (e : Model.element) ->
         if e.kind = Schema.Param && Model.attr e "value" = None
            && Model.attr_quantity e "size" = None
            && Model.attr_quantity e "frequency" = None
         then match e.name with Some n when not (List.mem n acc) -> n :: acc | _ -> acc
         else acc)
       [] root)
