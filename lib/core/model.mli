(** Typed in-memory representation of XPDL models and meta-models.

    Structural attributes ([name], [id], [type], [extends],
    group [prefix]/[quantity]) are parsed into fields; all other
    attributes become typed {!attr_value}s validated against {!Schema}.
    ["?"] placeholders are preserved as {!attr_value.Unknown} so the
    toolchain can resolve them at deployment time. *)

type attr_value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Quantity of Xpdl_units.Units.t * string
      (** normalized quantity plus the unit spelling from the source *)
  | Expr of Xpdl_expr.Expr.t * string  (** parsed expression and its source text *)
  | Unknown  (** the ["?"] placeholder: derive by microbenchmarking *)

val pp_attr_value : Format.formatter -> attr_value -> unit
val equal_attr_value : attr_value -> attr_value -> bool

type element = {
  kind : Schema.kind;
  name : string option;  (** meta-model identifier ([name] attribute) *)
  id : string option;  (** concrete instance identifier ([id] attribute) *)
  type_ref : string option;  (** [type] reference to a meta-model *)
  extends : string list;  (** supertype names, left-to-right priority *)
  attrs : (string * attr_value) list;  (** non-structural attributes, in order *)
  children : element list;
  pos : Xpdl_xml.Dom.position;
}

val make :
  ?pos:Xpdl_xml.Dom.position ->
  ?name:string ->
  ?id:string ->
  ?type_ref:string ->
  ?extends:string list ->
  ?attrs:(string * attr_value) list ->
  ?children:element list ->
  Schema.kind ->
  element

(** The identifier under which this element can be referenced: [name]
    for meta-models, [id] for concrete models (Sec. III-A). *)
val identifier : element -> string option

(** True if the element declares a meta-model (has a [name]). *)
val is_meta : element -> bool

val attr : element -> string -> attr_value option
val attr_string : element -> string -> string option
val attr_int : element -> string -> int option
val attr_float : element -> string -> float option
val attr_bool : element -> string -> bool option
val attr_quantity : element -> string -> Xpdl_units.Units.t option

(** True if the attribute is present but marked ["?"]. *)
val attr_is_unknown : element -> string -> bool

val set_attr : element -> string -> attr_value -> element
val remove_attr : element -> string -> element

(** {1 Tree traversal} *)

val fold : ('a -> element -> 'a) -> 'a -> element -> 'a
val iter : (element -> unit) -> element -> unit
val size : element -> int

(** All elements of a given kind in the subtree (document order). *)
val elements_of_kind : Schema.kind -> element -> element list

(** Subtrees describing hardware {e metadata} (power models, ISAs,
    microbenchmark suites, software) rather than hardware — their member
    selectors must not be confused with physical components. *)
val is_metadata_subtree : Schema.kind -> bool

(** Like {!fold} but skipping metadata subtrees: the walk over
    {e physical} hardware. *)
val hardware_fold : ('a -> element -> 'a) -> 'a -> element -> 'a

(** Physical hardware elements of one kind (no power-domain selectors). *)
val hardware_elements_of_kind : Schema.kind -> element -> element list

(** {1 Index-path edits}

    A child-index path addresses one node of the tree positionally:
    [[]] is the root, [[i]] the root's [i]-th child, and so on.  Unlike
    scope paths, index paths address {e every} node — including unnamed
    elements and group-expanded duplicates — which is what the
    incremental store's edit API needs. *)

type index_path = int list

(** The element at an index path, if the path is in range. *)
val at_index_path : element -> index_path -> element option

(** Rebuild the spine from the root to the addressed node, applying [f]
    there; every node off the spine is shared with the input tree.
    Raises [Invalid_argument] if the path is out of range. *)
val update_at : element -> index_path -> (element -> element) -> element

(** Fold over all nodes with their index paths (document order). *)
val fold_index_paths : ('a -> index_path -> element -> 'a) -> 'a -> element -> 'a

(** Index path of the first node satisfying the predicate. *)
val index_path_where : (element -> bool) -> element -> index_path option

val find : (element -> bool) -> element -> element option
val find_by_id : string -> element -> element option
val find_by_name : string -> element -> element option
val children_of_kind : element -> Schema.kind -> element list

(** Children with [group] scopes flattened away (hierarchical scoping
    treats groups as scopes, not hardware). *)
val transparent_children : element -> element list

(** All meta-model names referenced from the subtree via [type] or
    [extends] — the hyperlinks the repository must resolve.  Excludes
    label-like uses of [type] (memory technologies, programming models,
    microbenchmark instruction names, power-domain member selectors). *)
val referenced_types : element -> string list

val pp : Format.formatter -> element -> unit
val to_string : element -> string

(** Convert back to XML (inverse of elaboration up to attribute
    normalization); used to serialize composed models. *)
val to_xml : element -> Xpdl_xml.Dom.element
