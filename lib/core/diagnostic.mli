(** Diagnostics produced across the toolchain, each carrying the source
    position of the offending XML node and a stable [XPDLnnn] code:
    [XPDL0xx] parse, [XPDL1xx] elaborate, [XPDL2xx] validate/constraint,
    [XPDL3xx] compose/repository, [XPDL4xx] incremental model store,
    [XPDL5xx] deployment-bootstrap robustness, [XPDL6xx] runtime-model
    codec ([XPDL000] = uncategorized). *)

type severity = Error | Warning | Info

val pp_severity : Format.formatter -> severity -> unit
val severity_name : severity -> string

type t = {
  severity : severity;
  code : string;  (** stable [XPDLnnn] identity, ["XPDL000"] if uncategorized *)
  pos : Xpdl_xml.Dom.position;
  message : string;
}

(** The default code assigned when a constructor is called without one. *)
val uncategorized : string

(** Every known code with its default severity and one-line meaning;
    mirrored by docs/DIAGNOSTICS.md. *)
val registry : (string * severity * string) list

(** One-line meaning of a code, if registered. *)
val describe : string -> string option

(** Default severity of a code, if registered. *)
val default_severity : string -> severity option

val error :
  ?code:string -> ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?code:string -> ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a

val info :
  ?code:string -> ?pos:Xpdl_xml.Dom.position -> ('a, Format.formatter, unit, t) format4 -> 'a

(** Convert a positioned parse error from the XML layer, preserving its
    [XPDL0xx] code. *)
val of_parse_error : Xpdl_xml.Parse.error -> t

val is_error : t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** True if no diagnostic in the list is an error (warnings allowed). *)
val all_ok : t list -> bool

val errors : t list -> t list

(** Truncate after the [max_errors]-th error (clamped to at least 1),
    appending an [Info] summary of how many errors were suppressed. *)
val cap : max_errors:int -> t list -> t list

(** One diagnostic as a JSON object; see docs/DIAGNOSTICS.md. *)
val to_json : t -> string

(** A diagnostic list as [{"diagnostics": [...], "errors": n,
    "warnings": n}]. *)
val list_to_json : t list -> string

(** Raise [Failure] with a rendered message list if any error is present. *)
val check_exn : t list -> unit
