(** Elaboration: XML {!Xpdl_xml.Dom} trees → typed {!Model} elements.

    Maps tags to {!Schema.kind}s, extracts the structural attributes,
    pairs metric attributes with their [metric_unit] companions and
    normalizes them through {!Xpdl_units.Units}, types the remaining
    attributes against the schema (turning ["?"] into {!Model.Unknown}),
    and checks structural containment.  Unknown tags and attributes are
    preserved with a warning — extensibility is a design goal of the
    language (Sec. III). *)

(** Elaborate an XML tree; never fails — erroneous attributes degrade to
    strings with an [Error] diagnostic recorded (source order). *)
val of_xml : Xpdl_xml.Dom.element -> Model.element * Diagnostic.t list

(** Elaborate a single raw attribute value for an element of [kind],
    exactly as {!of_xml} would (schema typing, unit normalization
    against [unit_spelling], ["?"] → {!Model.Unknown}).  The delta entry
    point used by the incremental store's raw-string edits. *)
val attr_delta :
  kind:Schema.kind ->
  ?unit_spelling:string ->
  name:string ->
  string ->
  Model.attr_value * Diagnostic.t list

(** Parse and elaborate an XPDL string ([lenient] defaults to [true]:
    the paper's listings use unquoted attribute values). *)
val of_string :
  ?file:string -> ?lenient:bool -> string -> (Model.element * Diagnostic.t list, string) result

(** Parse and elaborate an [.xpdl] file. *)
val of_file :
  ?lenient:bool -> string -> (Model.element * Diagnostic.t list, string) result

(** Like {!of_string} but raising [Failure] on parse errors or
    error-level diagnostics. *)
val of_string_exn : ?file:string -> ?lenient:bool -> string -> Model.element
