(** Typed views of XPDL power models (Sec. III-C).

    A power model consists of power domains, their power state machines,
    instruction energy tables, and microbenchmark suites with deployment
    information.  This module extracts those structures from generic
    {!Model} elements into records the energy library ({!Xpdl_energy}),
    microbenchmark harness ({!Xpdl_microbench}) and simulator
    ({!Xpdl_simhw}) consume.  All values are SI-normalized (Hz, W, J, s). *)

open Xpdl_units

(** One power state of a power state machine: an abstract DVFS/shutdown
    level (P/C state, Listing 13). *)
type power_state = {
  ps_name : string;
  ps_frequency : float;  (** Hz; 0 for pure sleep states *)
  ps_power : float;  (** W, static power at this state *)
}

(** A legal transition between power states with its switching costs. *)
type transition = {
  tr_from : string;  (** [head] *)
  tr_to : string;  (** [tail] *)
  tr_time : float;  (** s *)
  tr_energy : float;  (** J *)
}

(** A power state machine attached to a power domain. *)
type state_machine = {
  sm_name : string;
  sm_domain : string option;  (** [power_domain] it governs *)
  sm_states : power_state list;
  sm_transitions : transition list;
}

(** The [switchoffCondition="<group> off"] of Listing 12. *)
type switchoff_condition = { requires_group : string; required_state : [ `Off | `On ] }

(** A power domain/island: components switched together (Sec. III-C). *)
type domain = {
  pd_name : string;
  pd_switchable : bool;  (** [enableSwitchOff]; the main domain is [false] *)
  pd_condition : switchoff_condition option;
  pd_idle_power : float option;  (** W while the island is powered but idle *)
  pd_members : Model.element list;  (** hardware components in the island *)
}

(** Dynamic energy specification of one instruction (Listing 14). *)
type instruction_energy =
  | Fixed of float  (** J per instruction, given in-line *)
  | By_frequency of (float * float) list
      (** (frequency Hz, energy J) table, e.g. the [divsd] rows *)
  | To_benchmark  (** ["?"]: derive by microbenchmarking at deployment *)

type instruction = {
  in_name : string;
  in_energy : instruction_energy;
  in_mb : string option;  (** microbenchmark id that measures it *)
  in_latency : int option;  (** cycles *)
  in_throughput : float option;  (** instructions/cycle *)
}

(** An instruction set with energy metadata ([<instructions>]). *)
type isa = {
  isa_name : string;
  isa_default_mb : string option;  (** suite-level [mb] reference *)
  isa_instructions : instruction list;
}

(** One microbenchmark of a suite (Listing 15). *)
type microbenchmark = {
  mb_id : string;
  mb_instruction : string;  (** the [type] attribute: instruction measured *)
  mb_file : string option;
  mb_cflags : string option;
  mb_lflags : string option;
  mb_iterations : int;  (** default iteration count for the driver *)
}

(** A microbenchmark suite with its deployment script info. *)
type suite = {
  su_id : string;
  su_instruction_set : string option;
  su_path : string option;
  su_command : string option;
  su_benches : microbenchmark list;
}

(** A complete power model. *)
type t = {
  pm_name : string option;
  pm_domains : domain list;
  pm_machines : state_machine list;
  pm_isas : isa list;
  pm_suites : suite list;
}

(** {1 Extraction from model elements} *)

let quantity_or e key default =
  match Model.attr_quantity e key with Some q -> Units.value q | None -> default

let extract_state (e : Model.element) : power_state =
  {
    ps_name = Option.value ~default:"?" (Model.identifier e);
    ps_frequency = quantity_or e "frequency" 0.;
    ps_power = quantity_or e "power" 0.;
  }

let extract_transition (e : Model.element) : transition option =
  match (Model.attr_string e "head", Model.attr_string e "tail") with
  | Some h, Some t ->
      Some
        { tr_from = h; tr_to = t; tr_time = quantity_or e "time" 0.; tr_energy = quantity_or e "energy" 0. }
  | _ -> None

let extract_state_machine (e : Model.element) : state_machine =
  let states =
    List.concat_map
      (fun (c : Model.element) -> Model.elements_of_kind Schema.Power_state c)
      (Model.children_of_kind e Schema.Power_states)
  in
  let transitions =
    List.concat_map
      (fun (c : Model.element) -> Model.elements_of_kind Schema.Transition c)
      (Model.children_of_kind e Schema.Transitions)
  in
  {
    sm_name = Option.value ~default:"?" (Model.identifier e);
    sm_domain = Model.attr_string e "power_domain";
    sm_states = List.map extract_state states;
    sm_transitions = List.filter_map extract_transition transitions;
  }

let parse_switchoff_condition s =
  (* "Shave_pds off" — group name followed by required state *)
  match String.split_on_char ' ' (String.trim s) |> List.filter (fun x -> x <> "") with
  | [ g; "off" ] -> Some { requires_group = g; required_state = `Off }
  | [ g; "on" ] -> Some { requires_group = g; required_state = `On }
  | _ -> None

let extract_domain (e : Model.element) : domain =
  {
    pd_name = Option.value ~default:"?" (Model.identifier e);
    pd_switchable = Option.value ~default:true (Model.attr_bool e "enableSwitchOff");
    pd_condition =
      Option.bind (Model.attr_string e "switchoffCondition") parse_switchoff_condition;
    pd_idle_power = Option.map Units.value (Model.attr_quantity e "idle_power");
    pd_members = List.filter (fun (c : Model.element) -> Schema.is_hardware c.kind) e.children;
  }

let extract_domains (e : Model.element) : domain list =
  (* domains may be grouped (Listing 12 wraps the 8 Shave domains) *)
  let rec collect (x : Model.element) =
    match x.kind with
    | Schema.Power_domain -> [ extract_domain x ]
    | Schema.Group | Schema.Power_domains -> List.concat_map collect x.children
    | _ -> []
  in
  collect e

let extract_instruction (e : Model.element) : instruction =
  let data_rows =
    List.filter_map
      (fun (d : Model.element) ->
        match (Model.attr_quantity d "frequency", Model.attr_quantity d "energy") with
        | Some f, Some en -> Some (Units.value f, Units.value en)
        | _ -> None)
      (Model.children_of_kind e Schema.Data)
  in
  let energy =
    if data_rows <> [] then By_frequency (List.sort compare data_rows)
    else
      match Model.attr e "energy" with
      | Some (Model.Quantity (q, _)) -> Fixed (Units.value q)
      | Some Model.Unknown | None -> To_benchmark
      | Some _ -> To_benchmark
  in
  {
    in_name = Option.value ~default:"?" (Model.identifier e);
    in_energy = energy;
    in_mb = Model.attr_string e "mb";
    in_latency = Model.attr_int e "latency";
    in_throughput = Model.attr_float e "throughput";
  }

let extract_isa (e : Model.element) : isa =
  {
    isa_name = Option.value ~default:"?" (Model.identifier e);
    isa_default_mb = Model.attr_string e "mb";
    isa_instructions =
      List.map extract_instruction (Model.children_of_kind e Schema.Instruction);
  }

let extract_microbenchmark (e : Model.element) : microbenchmark =
  {
    mb_id = Option.value ~default:"?" (Model.identifier e);
    mb_instruction =
      Option.value ~default:"?"
        (match e.Model.type_ref with Some t -> Some t | None -> Model.attr_string e "type");
    mb_file = Model.attr_string e "file";
    mb_cflags = Model.attr_string e "cflags";
    mb_lflags = Model.attr_string e "lflags";
    mb_iterations = Option.value ~default:1000 (Model.attr_int e "iterations");
  }

let extract_suite (e : Model.element) : suite =
  {
    su_id = Option.value ~default:"?" (Model.identifier e);
    su_instruction_set = Model.attr_string e "instruction_set";
    su_path = Model.attr_string e "path";
    su_command = Model.attr_string e "command";
    su_benches = List.map extract_microbenchmark (Model.children_of_kind e Schema.Microbenchmark);
  }

(** Extract every power-modeling structure present in the subtree of [e]
    (power models may be referenced from CPUs or stand alone). *)
let of_element (e : Model.element) : t =
  let domains =
    List.concat_map extract_domains (Model.elements_of_kind Schema.Power_domains e)
  in
  let machines =
    List.map extract_state_machine (Model.elements_of_kind Schema.Power_state_machine e)
  in
  let isas = List.map extract_isa (Model.elements_of_kind Schema.Instructions e) in
  let suites = List.map extract_suite (Model.elements_of_kind Schema.Microbenchmarks e) in
  { pm_name = Model.identifier e; pm_domains = domains; pm_machines = machines; pm_isas = isas;
    pm_suites = suites }

(** {1 Well-formedness of state machines}

    The paper requires that a power state machine "must model all possible
    transitions (switchings) between states that the programmer can
    initiate"; we check the machine is internally consistent. *)

let validate_state_machine (sm : state_machine) : Diagnostic.t list =
  let diags = ref [] in
  let state_names = List.map (fun s -> s.ps_name) sm.sm_states in
  let dup =
    List.filter
      (fun n -> List.length (List.filter (String.equal n) state_names) > 1)
      state_names
  in
  (match dup with
  | [] -> ()
  | n :: _ ->
      diags := Diagnostic.error ~code:"XPDL205" "power state machine %s: duplicate state %S" sm.sm_name n :: !diags);
  List.iter
    (fun tr ->
      List.iter
        (fun endpoint ->
          if not (List.mem endpoint state_names) then
            diags :=
              Diagnostic.error ~code:"XPDL205" "power state machine %s: transition references unknown state %S"
                sm.sm_name endpoint
              :: !diags)
        [ tr.tr_from; tr.tr_to ];
      if tr.tr_time < 0. || tr.tr_energy < 0. then
        diags :=
          Diagnostic.error ~code:"XPDL205" "power state machine %s: negative transition cost %s->%s" sm.sm_name
            tr.tr_from tr.tr_to
          :: !diags)
    sm.sm_transitions;
  (* reachability from the first (initial) state *)
  (match sm.sm_states with
  | [] -> diags := Diagnostic.error ~code:"XPDL205" "power state machine %s has no states" sm.sm_name :: !diags
  | init :: _ ->
      let reachable = Hashtbl.create 8 in
      let rec dfs n =
        if not (Hashtbl.mem reachable n) then begin
          Hashtbl.add reachable n ();
          List.iter (fun tr -> if String.equal tr.tr_from n then dfs tr.tr_to) sm.sm_transitions
        end
      in
      dfs init.ps_name;
      List.iter
        (fun s ->
          if not (Hashtbl.mem reachable s.ps_name) then
            diags :=
              Diagnostic.warning ~code:"XPDL206" "power state machine %s: state %S unreachable from %S" sm.sm_name
                s.ps_name init.ps_name
              :: !diags)
        sm.sm_states);
  List.rev !diags

(** Find a state by name. *)
let find_state sm name = List.find_opt (fun s -> String.equal s.ps_name name) sm.sm_states

(** Direct transition between two states, if modeled. *)
let find_transition sm ~from_state ~to_state =
  List.find_opt
    (fun tr -> String.equal tr.tr_from from_state && String.equal tr.tr_to to_state)
    sm.sm_transitions

(** Instructions whose energy must be derived by microbenchmarking. *)
let unresolved_instructions (isa : isa) =
  List.filter (fun i -> match i.in_energy with To_benchmark -> true | _ -> false)
    isa.isa_instructions

(** Energy of [i] at clock frequency [hz], interpolating frequency tables
    linearly and clamping outside the table range. *)
let instruction_energy_at (i : instruction) ~(hz : float) : float option =
  match i.in_energy with
  | Fixed e -> Some e
  | To_benchmark -> None
  | By_frequency [] -> None
  | By_frequency ((f0, e0) :: _ as rows) ->
      if hz <= f0 then Some e0
      else
        let rec interp = function
          | [ (_, e) ] -> e
          | (f1, e1) :: ((f2, e2) :: _ as rest) ->
              if hz <= f2 then e1 +. ((e2 -. e1) *. (hz -. f1) /. (f2 -. f1)) else interp rest
          | [] -> assert false
        in
        Some (interp rows)
