(** Static validation of XPDL models against the {!Schema}.

    PDL models everything beyond its fixed blocks as free-form string
    properties, which "can lead to inconsistencies and confusion" (Sec.
    II-C); XPDL's answer is predefined tags and attributes that permit
    static checking.  This module implements those checks on elaborated
    models:

    - required attributes present, identifiers well-formed;
    - interconnect [head]/[tail] endpoints resolve to component ids within
      the enclosing system (Listing 4);
    - instance trees have unique ids per scope;
    - power state machines well-formed ({!Power.validate_state_machine});
    - microbenchmark references ([mb]) resolve to a benchmark or suite;
    - meta-models referenced by [type]/[extends] exist when a lookup is
      supplied. *)

let is_valid_identifier s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true | _ -> false)
       s

let check_identifiers (root : Model.element) =
  let diags = ref [] in
  Model.iter
    (fun (e : Model.element) ->
      List.iter
        (fun ident ->
          if not (is_valid_identifier ident) then
            diags :=
              Diagnostic.error ~code:"XPDL201" ~pos:e.pos "ill-formed identifier %S on <%s>" ident
                (Schema.tag_of_kind e.kind)
              :: !diags)
        (Option.to_list e.name @ Option.to_list e.id))
    root;
  List.rev !diags

let check_required_attrs (root : Model.element) =
  let diags = ref [] in
  Model.iter
    (fun (e : Model.element) ->
      List.iter
        (fun (spec : Schema.attr_spec) ->
          if spec.a_required && Model.attr e spec.a_name = None then
            diags :=
              Diagnostic.error ~code:"XPDL202" ~pos:e.pos "<%s> is missing required attribute %S"
                (Schema.tag_of_kind e.kind) spec.a_name
              :: !diags)
        (Schema.specific_attrs e.kind))
    root;
  List.rev !diags

(* Ids must be unique among siblings of the same scope (global uniqueness
   is a repository concern; within an instance tree, expanded groups make
   path-scoped uniqueness the right notion). *)
let check_unique_ids (root : Model.element) =
  let diags = ref [] in
  let check_scope (e : Model.element) =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (c : Model.element) ->
        match c.id with
        | Some ident ->
            if Hashtbl.mem seen ident then
              diags :=
                Diagnostic.error ~code:"XPDL203" ~pos:c.pos "duplicate id %S within <%s>" ident
                  (Schema.tag_of_kind e.kind)
                :: !diags
            else Hashtbl.add seen ident ()
        | None -> ())
      e.children
  in
  Model.iter check_scope root;
  List.rev !diags

(* head/tail of interconnect instances must name components reachable in
   the same system/node scope. *)
let check_interconnect_endpoints (root : Model.element) =
  let diags = ref [] in
  let ids_in scope =
    Model.fold
      (fun acc (e : Model.element) ->
        match (e.id, e.name) with
        | Some i, _ -> i :: acc
        | None, Some n -> n :: acc
        | None, None -> acc)
      [] scope
  in
  let check_in_scope (scope : Model.element) =
    let known = ids_in scope in
    Model.iter
      (fun (e : Model.element) ->
        if e.kind = Schema.Interconnect then
          List.iter
            (fun key ->
              match Model.attr_string e key with
              | Some endpoint when not (List.mem endpoint known) ->
                  diags :=
                    Diagnostic.error ~code:"XPDL204" ~pos:e.pos
                      "interconnect %s: %s endpoint %S does not name a component in this system"
                      (Option.value ~default:"?" (Model.identifier e))
                      key endpoint
                    :: !diags
              | _ -> ())
            [ "head"; "tail" ])
      scope
  in
  (* endpoints are resolved within the closest enclosing system; for
     stand-alone fragments, within the root *)
  let systems = Model.elements_of_kind Schema.System root in
  (match systems with [] -> check_in_scope root | _ -> List.iter check_in_scope systems);
  List.rev !diags

let check_power_models (root : Model.element) =
  let pm = Power.of_element root in
  List.concat_map Power.validate_state_machine pm.pm_machines

let check_microbenchmark_refs (root : Model.element) =
  let diags = ref [] in
  let pm = Power.of_element root in
  let suite_ids = List.map (fun s -> s.Power.su_id) pm.pm_suites in
  let bench_ids = List.concat_map (fun s -> List.map (fun b -> b.Power.mb_id) s.Power.su_benches) pm.pm_suites in
  List.iter
    (fun isa ->
      (match isa.Power.isa_default_mb with
      | Some mb when (not (List.mem mb suite_ids)) && not (List.mem mb bench_ids) ->
          diags :=
            Diagnostic.warning ~code:"XPDL207" "instruction set %s references unknown microbenchmark suite %S"
              isa.Power.isa_name mb
            :: !diags
      | _ -> ());
      List.iter
        (fun i ->
          match i.Power.in_mb with
          | Some mb when (not (List.mem mb bench_ids)) && not (List.mem mb suite_ids) ->
              diags :=
                Diagnostic.warning ~code:"XPDL207" "instruction %s references unknown microbenchmark %S"
                  i.Power.in_name mb
                :: !diags
          | _ -> ())
        isa.Power.isa_instructions)
    pm.pm_isas;
  List.rev !diags

(* When a lookup into the repository is available, referenced meta-models
   must exist. *)
let check_references ?(lookup : Inheritance.lookup option) (root : Model.element) =
  match lookup with
  | None -> []
  | Some lookup ->
      let defined_here name = Model.find_by_name name root <> None in
      List.filter_map
        (fun name ->
          if defined_here name || lookup name <> None then None
          else Some (Diagnostic.error ~code:"XPDL208" ~pos:root.pos "unresolved meta-model reference %S" name))
        (Model.referenced_types root)

(** Run every check.  [lookup] enables cross-descriptor reference checks. *)
let run ?lookup (root : Model.element) : Diagnostic.t list =
  check_identifiers root
  @ check_required_attrs root
  @ check_unique_ids root
  @ check_interconnect_endpoints root
  @ check_power_models root
  @ check_microbenchmark_refs root
  @ check_references ?lookup root

(** True if [run] yields no errors (warnings allowed). *)
let is_valid ?lookup root = Diagnostic.all_ok (run ?lookup root)
