(** Elaboration: XML {!Xpdl_xml.Dom} trees → typed {!Model} elements.

    Elaboration performs the syntax-directed part of XPDL processing:

    - maps tags to {!Schema.kind}s;
    - extracts the structural attributes ([name], [id], [type], [extends]);
    - pairs each metric attribute with its [metric_unit] companion
      ([static_power] + [static_power_unit]; bare [unit] for [size] and
      for [param]/[const] metrics, Sec. III-A) and normalizes the value
      through {!Xpdl_units.Units};
    - types remaining attributes against the {!Schema} table, turning
      ["?"] into {!Model.Unknown} placeholders;
    - checks structural containment ([Schema.child_allowed]).

    Unknown tags and attributes elaborate to [Other]/[Str] with a warning:
    extensibility is a design goal of the language (Sec. III), so they are
    preserved rather than rejected. *)

open Xpdl_units

let companion_unit_attr ~kind ~metric =
  match kind with
  | Schema.Param | Schema.Const -> "unit"
  | _ -> if String.equal metric "size" then "unit" else metric ^ "_unit"

(* Attribute names that are structural and handled separately. *)
let structural = [ "name"; "id"; "type"; "extends" ]

let split_ws s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

type ctx = { mutable diags : Diagnostic.t list }

let diag ctx d = ctx.diags <- d :: ctx.diags

(* Parse one non-structural attribute according to its schema spec. *)
let typed_value ctx ~kind ~pos ~unit_of name raw =
  if String.equal (String.trim raw) "?" then Model.Unknown
  else
    match Schema.attr_spec kind name with
    | None ->
        (* Extensibility: unknown attribute names are retained as strings,
           except on Properties/Property/Other where they are expected. *)
        (match kind with
        | Schema.Property | Schema.Properties | Schema.Other _ -> ()
        | _ ->
            diag ctx
              (Diagnostic.warning ~code:"XPDL110" ~pos "unknown attribute %S on <%s>" name
                 (Schema.tag_of_kind kind)));
        Model.Str raw
    | Some spec -> (
        match spec.a_type with
        | Schema.A_string | Schema.A_ident -> Model.Str raw
        | Schema.A_int -> (
            match int_of_string_opt (String.trim raw) with
            | Some i -> Model.Int i
            | None ->
                diag ctx (Diagnostic.error ~code:"XPDL101" ~pos "attribute %s: expected an integer, got %S" name raw);
                Model.Str raw)
        | Schema.A_float -> (
            match float_of_string_opt (String.trim raw) with
            | Some f -> Model.Float f
            | None ->
                diag ctx (Diagnostic.error ~code:"XPDL101" ~pos "attribute %s: expected a number, got %S" name raw);
                Model.Str raw)
        | Schema.A_bool -> (
            match String.lowercase_ascii (String.trim raw) with
            | "true" | "1" | "yes" -> Model.Bool true
            | "false" | "0" | "no" -> Model.Bool false
            | _ ->
                diag ctx (Diagnostic.error ~code:"XPDL101" ~pos "attribute %s: expected a boolean, got %S" name raw);
                Model.Str raw)
        | Schema.A_enum allowed ->
            if not (List.mem raw allowed) then
              diag ctx
                (Diagnostic.error ~code:"XPDL102" ~pos "attribute %s: %S is not one of {%s}" name raw
                   (String.concat ", " allowed));
            Model.Str raw
        | Schema.A_expr -> (
            match Xpdl_expr.Expr.parse raw with
            | e -> Model.Expr (e, raw)
            | exception Xpdl_expr.Expr.Error msg ->
                diag ctx (Diagnostic.error ~code:"XPDL103" ~pos "attribute %s: bad expression %S: %s" name raw msg);
                Model.Str raw)
        | Schema.A_quantity expected_dim -> (
            match unit_of name with
            | Some unit_spelling -> (
                match Units.of_string raw unit_spelling with
                | q ->
                    if Units.dim q <> expected_dim then begin
                      diag ctx
                        (Diagnostic.error ~code:"XPDL104" ~pos
                           "attribute %s: unit %S has dimension %s, expected %s" name
                           unit_spelling
                           (Units.dimension_name (Units.dim q))
                           (Units.dimension_name expected_dim));
                      Model.Str raw
                    end
                    else Model.Quantity (q, unit_spelling)
                | exception Units.Unit_error msg ->
                    diag ctx (Diagnostic.error ~code:"XPDL104" ~pos "attribute %s: %s" name msg);
                    Model.Str raw)
            | None -> (
                match float_of_string_opt (String.trim raw) with
                | Some f ->
                    diag ctx
                      (Diagnostic.warning ~code:"XPDL105" ~pos
                         "attribute %s: metric has no %s attribute; keeping the raw number" name
                         (companion_unit_attr ~kind ~metric:name));
                    Model.Float f
                | None ->
                    (* e.g. frequency="cfrq" in Listing 8: a parameter
                       reference standing in for the value. *)
                    Model.Expr (Xpdl_expr.Expr.Ident (String.trim raw), raw))))

let rec element ctx (x : Xpdl_xml.Dom.element) : Model.element =
  let kind = Schema.kind_of_tag x.tag in
  let get name = Xpdl_xml.Dom.attribute x name in
  let name = get "name" and id = get "id" and type_ref = get "type" in
  let extends = match get "extends" with Some s -> split_ws s | None -> [] in
  (* Collect the set of attribute names consumed as unit companions. *)
  let attr_names = List.map (fun a -> a.Xpdl_xml.Dom.attr_name) x.attrs in
  let is_unit_companion n =
    (* "foo_unit" is a companion iff "foo" is also present;
       bare "unit" is a companion iff a sized metric is present. *)
    if String.equal n "unit" then
      List.exists
        (fun m ->
          (not (String.equal m "unit"))
          && String.equal (companion_unit_attr ~kind ~metric:m) "unit"
          && (match Schema.attr_spec kind m with
             | Some { a_type = Schema.A_quantity _; _ } -> true
             | _ -> false))
        attr_names
    else
      match String.length n >= 5 && String.equal (String.sub n (String.length n - 5) 5) "_unit" with
      | true -> List.mem (String.sub n 0 (String.length n - 5)) attr_names
      | false -> false
  in
  let unit_of metric =
    let companion = companion_unit_attr ~kind ~metric in
    match get companion with
    | Some u -> Some u
    | None ->
        (* A bare "unit" attribute also serves metrics whose systematic
           companion would be metric_unit but the author wrote unit (the
           paper is liberal here, cf. Listing 2 memory size). *)
        if String.equal companion "unit" then None else None
  in
  let attrs =
    List.filter_map
      (fun (a : Xpdl_xml.Dom.attribute) ->
        let n = a.attr_name in
        if List.mem n structural || is_unit_companion n then None
        else
          Some (n, typed_value ctx ~kind ~pos:a.attr_pos ~unit_of n a.attr_value))
      x.attrs
  in
  let children =
    List.filter_map
      (function
        | Xpdl_xml.Dom.Element c ->
            let child = element ctx c in
            if not (Schema.child_allowed ~parent:kind ~child:child.kind) then
              diag ctx
                (Diagnostic.error ~code:"XPDL112" ~pos:c.pos "<%s> may not appear inside <%s>"
                   (Schema.tag_of_kind child.kind) (Schema.tag_of_kind kind));
            Some child
        | Xpdl_xml.Dom.Text _ | Xpdl_xml.Dom.Cdata _ | Xpdl_xml.Dom.Comment _ -> None)
      x.children
  in
  (match kind with
  | Schema.Other tag ->
      diag ctx (Diagnostic.warning ~code:"XPDL111" ~pos:x.pos "unknown element <%s> (kept as extension)" tag)
  | _ -> ());
  { Model.kind; name; id; type_ref; extends; attrs; children; pos = x.pos }

(** Elaborate an XML tree into a typed model element plus diagnostics (in
    source order).  Elaboration never fails: erroneous attributes degrade
    to strings with an [Error] diagnostic recorded. *)
let of_xml x =
  let ctx = { diags = [] } in
  let e = element ctx x in
  (e, List.rev ctx.diags)

(** Elaborate one raw attribute value exactly as whole-tree elaboration
    would — the delta entry point for incremental edits: resolving a
    ["?"] placeholder or rewriting a single attribute must not force a
    re-elaboration of the tree. *)
let attr_delta ~kind ?unit_spelling ~name raw =
  let ctx = { diags = [] } in
  let v =
    typed_value ctx ~kind ~pos:Xpdl_xml.Dom.no_position ~unit_of:(fun _ -> unit_spelling) name
      raw
  in
  (v, List.rev ctx.diags)

(** Parse and elaborate an XPDL string. *)
let of_string ?file ?(lenient = true) s =
  match Xpdl_xml.Parse.string ?file ~lenient s with
  | Error msg -> Error msg
  | Ok x -> Ok (of_xml x)

(** Parse and elaborate an [.xpdl] file. *)
let of_file ?(lenient = true) path =
  match Xpdl_xml.Parse.file ~lenient path with
  | Error msg -> Error msg
  | Ok x -> Ok (of_xml x)

let of_string_exn ?file ?lenient s =
  match of_string ?file ?lenient s with
  | Ok (e, diags) ->
      Diagnostic.check_exn diags;
      e
  | Error msg -> failwith msg
