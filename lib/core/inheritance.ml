(** Resolution of [extends] inheritance and [type] meta-model references.

    XPDL supports multiple inheritance between meta-models ([extends], Sec.
    III-A): a subtype inherits the supertype's attributes and subcomponents
    and may override ("overscribe") attribute values — Listing 9 overrides
    [compute_capability] and sets the [num_SM]/[coresperSM] parameters that
    Listing 8 declares.  Instantiation by [type] reference (Listing 10,
    [<device id="gpu1" type="Nvidia_K20c">]) uses the same merge: the
    referenced meta-model's content is inherited and the instance's own
    settings override.

    Merge rules, in priority order (highest wins):
    - the element's own attributes and children;
    - supertypes left to right (leftmost strongest), each itself resolved.

    Children merge by key: a child with the same kind and the same
    identifier ([name] or [id]) replaces the inherited one after being
    merged attribute-wise into it (so [<param name="num_SM" value="13"/>]
    refines the inherited declaration rather than duplicating it).
    Children without identifiers accumulate in order: inherited first.

    Resolution is bottom-up: an element's own children are resolved before
    its supertypes are merged in, and supertypes are resolved when looked
    up, so merged content is never re-resolved (which would duplicate
    unkeyed children). *)

exception Unresolved of { referer : Model.element; missing : string }
exception Cycle of string list

(** Source of meta-model definitions by name; returns [None] if unknown.
    The repository ({!Xpdl_repo}) provides this. *)
type lookup = string -> Model.element option

let child_key (c : Model.element) =
  match Model.identifier c with
  | Some ident -> Some (Schema.tag_of_kind c.kind, ident)
  | None -> None

(* Merge [sub] over [super]: sub's fields win. *)
let rec merge ~(super : Model.element) ~(sub : Model.element) : Model.element =
  let attrs =
    (* super attrs not overridden, in super order, then sub's extras *)
    let overridden = List.map fst sub.attrs in
    List.filter (fun (k, _) -> not (List.mem k overridden)) super.attrs @ sub.attrs
  in
  let keyed_sub =
    List.filter_map (fun c -> Option.map (fun k -> (k, c)) (child_key c)) sub.children
  in
  let merged_inherited =
    List.map
      (fun (c : Model.element) ->
        match child_key c with
        | Some key -> (
            match List.assoc_opt key keyed_sub with
            | Some override -> merge ~super:c ~sub:override
            | None -> c)
        | None -> c)
      super.children
  in
  let inherited_keys = List.filter_map child_key super.children in
  let new_children =
    List.filter
      (fun (c : Model.element) ->
        match child_key c with
        | Some key -> not (List.mem key inherited_keys)
        | None -> true)
      sub.children
  in
  (* A pure metadata reference ([<instructions type="x86_base_isa"/>])
     adopts the referenced meta-model's name so it stays addressable.
     Hardware instances do NOT adopt it: an anonymous [<core
     type="Myriad1_Shave"/>] inside a group must stay anonymous so that
     group expansion can assign its member id (shave0..7, Listing 6). *)
  let name =
    match (sub.name, sub.id) with
    | None, None when not (Schema.is_hardware sub.kind) -> super.name
    | _ -> sub.name
  in
  (* the declared type survives refinement: K20c's <param name="num_SM"
     value="13"/> keeps the inherited type="integer" *)
  let type_ref = match sub.type_ref with Some _ -> sub.type_ref | None -> super.type_ref in
  { sub with name; type_ref; attrs; children = merged_inherited @ new_children; extends = [] }

(* Is [type] on this element a repository reference (as opposed to a
   technology label or a power-domain member selector)? *)
let type_is_reference ~in_domain (e : Model.element) =
  (not in_domain)
  && (match e.type_ref with
     | Some t -> not (Schema.is_param_type t)
     | None -> false)
  && not
       (Schema.equal_kind e.kind Schema.Programming_model
       || Schema.equal_kind e.kind Schema.Property
       || Schema.equal_kind e.kind Schema.Microbenchmark)
  (* memory [type] is attempted as a reference; an unresolvable one is a
     technology label ("DDR3"), handled at lookup time *)

(* Selectors live inside <power_domain>; the <power_domains> element
   itself may still be a type reference (power_model_Myriad1 includes
   Listing 12 by reference). *)
let enter_domain in_domain (e : Model.element) =
  in_domain || Schema.equal_kind e.kind Schema.Power_domain

(* Shared resolution skeleton; [on_missing]/[on_cycle] decide whether to
   raise (strict) or record a diagnostic and skip (lenient). *)
let resolve_generic ~keep_type_ref ~on_missing ~on_cycle (lookup : lookup) root =
  let rec resolve_element ~in_domain ~visiting (e : Model.element) : Model.element =
    let in_domain = enter_domain in_domain e in
    let resolve_ref name =
      if List.mem name visiting then begin
        on_cycle e (List.rev (name :: visiting));
        None
      end
      else
        match lookup name with
        | Some def -> Some (resolve_element ~in_domain:false ~visiting:(name :: visiting) def)
        | None ->
            on_missing e name;
            None
    in
    let supers =
      e.extends
      @
      if type_is_reference ~in_domain e then
        match e.type_ref with
        | Some t -> (
            (* memory [type] doubles as a label when unresolvable; other
               kinds report the miss *)
            match lookup t with
            | Some _ -> [ t ]
            | None ->
                if not (Schema.equal_kind e.kind Schema.Memory) then on_missing e t;
                [])
        | None -> []
      else []
    in
    let resolved_supers = List.filter_map resolve_ref supers in
    (* Resolve own children first, so the final merge output needs no
       further resolution. *)
    let e = { e with children = List.map (resolve_element ~in_domain ~visiting) e.children } in
    let flattened =
      match resolved_supers with
      | [] -> { e with extends = [] }
      | first :: rest ->
          (* rightmost = weakest: fold so that leftmost super overrides *)
          let super_merged = List.fold_left (fun acc s -> merge ~super:s ~sub:acc) first rest in
          let m = merge ~super:super_merged ~sub:{ e with extends = [] } in
          { m with id = e.id }
    in
    if keep_type_ref then flattened else { flattened with type_ref = None }
  in
  resolve_element ~in_domain:false ~visiting:[] root

(** [resolve lookup e] resolves all [extends] and [type] references in the
    subtree of [e], fully flattening inheritance.  Raises {!Unresolved} if
    a referenced name cannot be found and {!Cycle} on cyclic inheritance.

    [keep_type_ref] (default true) retains the [type] attribute on
    instances after expansion, so queries can still ask "is this a
    Nvidia_K20c"; the inherited content is merged in regardless. *)
let resolve ?(keep_type_ref = true) (lookup : lookup) (root : Model.element) : Model.element =
  resolve_generic ~keep_type_ref
    ~on_missing:(fun e name -> raise (Unresolved { referer = e; missing = name }))
    ~on_cycle:(fun _ trail -> raise (Cycle trail))
    lookup root

(** Like {!resolve} but collecting failures as diagnostics instead of
    raising; unresolved references are left in place. *)
let resolve_lenient lookup root =
  let diags = ref [] in
  let r =
    resolve_generic ~keep_type_ref:true
      ~on_missing:(fun (e : Model.element) name ->
        diags :=
          Diagnostic.error ~code:"XPDL306" ~pos:e.pos "unresolved reference to meta-model %S" name :: !diags)
      ~on_cycle:(fun (e : Model.element) trail ->
        diags :=
          Diagnostic.error ~code:"XPDL307" ~pos:e.pos "cyclic inheritance through %s"
            (String.concat " -> " trail)
          :: !diags)
      lookup root
  in
  (r, List.rev !diags)
