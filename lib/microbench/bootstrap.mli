(** Deployment-time bootstrap of the energy model (Sec. III-C, IV): run
    the microbenchmark for every ["?"] energy entry on the target
    platform, reduce repeated meter readings with {!Stats}, and write the
    derived values back into the model (optionally as per-frequency
    [<data>] tables like Listing 14's [divsd]).  Channel offsets declared
    ["?"] (Listing 3) are calibrated with 1-byte transfers. *)

open Xpdl_core

type options = {
  repetitions : int;  (** meter readings per benchmark *)
  frequencies : float list;  (** Hz sweep; [] = current frequency only *)
  force : bool;  (** re-measure even specified energies ("on request") *)
}

(** 9 repetitions, no sweep, no force. *)
val default_options : options

(** One derived energy entry. *)
type result = {
  instruction : string;
  benchmark : string;  (** microbenchmark id used *)
  energy : Stats.summary;  (** J per instruction at the current frequency *)
  per_frequency : (float * float) list;  (** (Hz, J) when a sweep ran *)
  runs : int;
}

(** Measure J/instruction on the machine at its current clocks. *)
val measure :
  Xpdl_simhw.Machine.t -> opts:options -> name:string -> iterations:int -> Stats.summary

(** Adaptive measurement: sample until the 95% CI half-width is within
    [target_rci] of the mean (default 1%) or [max_samples] meter reads
    (default 200) have been drawn; at least 3 samples are taken.
    Non-finite (NaN/inf) readings are rejected and resampled instead of
    poisoning the running statistics; raises [Invalid_argument] if no
    read in the whole budget was finite. *)
val measure_adaptive :
  ?target_rci:float ->
  ?max_samples:int ->
  Xpdl_simhw.Machine.t ->
  name:string ->
  iterations:int ->
  Stats.summary

(** The microbenchmark id measuring an instruction: its own [mb]
    reference, else a suite benchmark matching the instruction, else a
    synthesized [auto_] id. *)
val benchmark_for : Power.suite list -> Power.instruction -> string

(** Declared iteration count of a microbenchmark (default 100_000). *)
val iterations_for : Power.suite list -> string -> int

(** Bootstrap one ISA. *)
val run_isa :
  ?opts:options ->
  Xpdl_simhw.Machine.t ->
  Power.isa ->
  Power.suite list ->
  result list

(** Write derived entries back into the model tree, replacing the ["?"]
    placeholders. *)
val apply_results : result list -> Model.element -> Model.element

(** Calibrate interconnect-channel ["?"] offsets on the machine. *)
val resolve_link_offsets :
  ?opts:options -> Xpdl_simhw.Machine.t -> Model.element -> Model.element

(** Full bootstrap of a composed model: instruction energies and link
    offsets.  [machine] defaults to a machine built from the model. *)
val run :
  ?opts:options ->
  ?machine:Xpdl_simhw.Machine.t ->
  Model.element ->
  Model.element * result list

(** {1 Store-backed bootstrap}

    The same derivations as edits against an incremental
    {!Xpdl_store.Store}: each written value journals an edit and
    invalidates the store's derived caches along its spine.  On the same
    machine the final model is identical to the batch {!run}. *)

(** Write derived instruction energies (and per-frequency [<data>] rows)
    through the store's edit API. *)
val apply_results_store : result list -> Xpdl_store.Store.t -> unit

(** Calibrate ["?"] channel offsets, writing through the store. *)
val resolve_link_offsets_store :
  ?opts:options -> Xpdl_simhw.Machine.t -> Xpdl_store.Store.t -> unit

(** Full bootstrap through a store (instruction energies + link offsets);
    returns the per-instruction results. *)
val run_store :
  ?opts:options -> ?machine:Xpdl_simhw.Machine.t -> Xpdl_store.Store.t -> result list

(** Instructions still unresolved (empty after a successful bootstrap). *)
val remaining_placeholders : Model.element -> string list
