(** Fault-tolerant deployment bootstrap.

    The plain {!Bootstrap} assumes every meter read succeeds; one hung or
    garbage measurement aborts the whole composition.  This harness wraps
    the same measurements in a retry/timeout/quarantine discipline and a
    graceful-degradation ladder, so a machine with an attached
    {!Xpdl_simhw.Faults} plan (or a genuinely misbehaving meter) still
    yields a complete, well-labeled model:

    - every benchmark gets a per-benchmark {e deadline} and the suite a
      global {e budget}, both in {e simulated} seconds (summed measurement
      time plus charged timeouts and backoff waits — never wall clock, so
      reports are byte-for-byte reproducible from the seeds);
    - failed attempts retry with exponential backoff and deterministic
      jitter drawn from the policy seed;
    - non-finite samples are rejected and resampled, wild outliers are
      handled by {!Stats}' MAD rejection;
    - a benchmark that keeps failing is {e quarantined} and its ["?"]
      entry falls down the degradation ladder: interpolation from the
      measured frequency sweep, then the inherited meta-model/default
      value, then it stays unresolved;
    - every outcome writes a [quality] provenance attribute
      (["measured"], ["interpolated"], ["inherited"], ["unresolved"])
      through the {!Xpdl_store.Store} edit API and emits coded XPDL5xx
      diagnostics. *)

open Xpdl_core

type policy = {
  read_timeout : float;  (** simulated s charged for a hung meter read *)
  deadline : float;  (** per-benchmark simulated-time deadline *)
  budget : float;  (** suite-level simulated-time budget *)
  retries : int;  (** extra attempts after the first failure *)
  backoff_base : float;  (** first backoff delay, simulated s *)
  backoff_factor : float;  (** exponential growth per retry *)
  backoff_jitter : float;  (** relative jitter amplitude, deterministic *)
  backoff_seed : int;  (** seeds the jitter stream *)
  repetitions : int;  (** finite samples wanted per attempt *)
  frequencies : float list;  (** Hz sweep for interpolation fallback *)
  fail_fast : bool;  (** stop the suite at the first quarantine *)
}

val default_policy : policy

(** The deterministic backoff delays after attempts 1..[attempts] for one
    benchmark: [base·factor^i], jittered from [backoff_seed] and the
    benchmark name.  Same policy and name ⇒ same schedule. *)
val backoff_schedule : policy -> name:string -> attempts:int -> float list

(** Provenance of a resolved (or abandoned) ["?"] entry. *)
type quality = Measured | Interpolated | Inherited | Unresolved

val quality_name : quality -> string

(** Why an attempt (or a whole benchmark) failed. *)
type failure =
  | Timed_out  (** meter read hung past [read_timeout] *)
  | Non_finite  (** too many NaN/inf readings to fill an attempt *)
  | Offline of string  (** the core executing the benchmark went offline *)
  | Budget_exhausted  (** suite budget ran out before this benchmark *)
  | Skipped  (** suite aborted earlier ([fail_fast]) *)
  | Errored of string  (** uncaught simulator error, routed to XPDL500 *)

val failure_name : failure -> string

type attempt = {
  at_n : int;  (** 1-based attempt number *)
  at_failure : failure option;  (** [None] = success *)
  at_samples : int;  (** finite samples kept *)
  at_rejected : int;  (** non-finite readings discarded *)
  at_elapsed : float;  (** simulated s of measurement (incl. timeouts) *)
  at_backoff : float;  (** simulated s waited after this attempt *)
}

(** Per-benchmark health: what was tried, what was written. *)
type bench = {
  b_instruction : string;
  b_benchmark : string;  (** microbenchmark id, or ["transfer"] for links *)
  b_attempts : attempt list;
  b_quality : quality;
  b_energy : float option;  (** J/instruction (or J/message) written back *)
  b_stats : Stats.summary option;  (** statistics of the successful attempt *)
  b_sweep : (float * float) list;  (** successfully measured (Hz, J) points *)
  b_quarantined : bool;  (** no successful measurement at current clocks *)
}

type health = {
  h_benches : bench list;  (** instruction benchmarks, document order *)
  h_links : bench list;  (** link-offset calibrations *)
  h_elapsed : float;  (** total simulated seconds consumed *)
  h_budget : float;  (** the policy budget, for the report *)
  h_budget_exhausted : bool;
  h_aborted : bool;  (** [fail_fast] tripped *)
  h_fault_reads : int;  (** meter reads seen by an attached fault plan *)
  h_fault_events : int;  (** faults the plan actually fired *)
  h_diags : Diagnostic.t list;  (** XPDL5xx account of every fallback *)
}

(** Resilient bootstrap through a store: measure every instruction whose
    [energy] is ["?"] (and every ["?"] link offset), writing results,
    [<data>] sweep rows and [quality] provenance through the store's
    edit API.  Always terminates within the policy budget (plus at most
    one benchmark deadline) and never raises on meter faults. *)
val run_store :
  ?policy:policy -> ?machine:Xpdl_simhw.Machine.t -> Xpdl_store.Store.t -> health

(** Batch convenience wrapper: returns the degraded-but-labeled model. *)
val run :
  ?policy:policy -> ?machine:Xpdl_simhw.Machine.t -> Model.element -> Model.element * health

(** [quality] provenance attributes present in a model, as
    [(scope path, quality)] pairs in document order. *)
val quality_entries : Model.element -> (string * string) list

(** The health report as one stable-layout JSON object (identical runs
    render byte-identical reports). *)
val health_to_json : health -> string

val pp_health : Format.formatter -> health -> unit
