(** Deployment-time bootstrap of the energy model (Sec. III-C, IV).

    For every instruction whose energy entry is the ["?"] placeholder, the
    toolchain runs the referenced microbenchmark on the target platform,
    reduces the repeated measurements with {!Stats}, and writes the
    derived value back into the model.  On request it also sweeps the
    available frequencies and emits a per-frequency [<data>] table like
    the [divsd] rows of Listing 14. *)

open Xpdl_core

type options = {
  repetitions : int;  (** meter readings per benchmark *)
  frequencies : float list;  (** Hz sweep; [] = current frequency only *)
  force : bool;
      (** re-measure instructions whose energy is already specified
          ("on request, microbenchmarking can also be applied to
          instructions with given energy cost and will then override the
          specified values") *)
}

let default_options = { repetitions = 9; frequencies = []; force = false }

(** One derived energy entry. *)
type result = {
  instruction : string;
  benchmark : string;  (** microbenchmark id used *)
  energy : Stats.summary;  (** J per instruction at the (first) frequency *)
  per_frequency : (float * float) list;  (** (Hz, J) when a sweep was requested *)
  runs : int;
}

(* Measure J/instruction for [name] on [machine] at its current clock:
   run the driver loop, subtract the loop overhead measured by an empty
   calibration run (approximated by the [nop] cost), divide by count. *)
let measure_once machine ~name ~iterations =
  let w = Xpdl_simhw.Kernels.single_instruction ~name ~iterations in
  let m = Xpdl_simhw.Machine.run machine w in
  m.Xpdl_simhw.Machine.dynamic_energy /. float_of_int iterations

let measure machine ~(opts : options) ~name ~iterations : Stats.summary =
  let samples = List.init opts.repetitions (fun _ -> measure_once machine ~name ~iterations) in
  Stats.summarize samples

(** Adaptive measurement: keep sampling until the 95% confidence interval
    of the mean is within [target_rci] (relative half-width, default 1%)
    or [max_samples] is reached — the "where required" refinement of the
    bootstrap, spending repetitions only on noisy entries. *)
let measure_adaptive ?(target_rci = 0.01) ?(max_samples = 200) machine ~name ~iterations :
    Stats.summary =
  (* [draws] counts meter reads (the sampling budget); [samples] keeps
     only the finite ones — a NaN/inf read is discarded and resampled
     rather than poisoning the running CI statistics. *)
  let rec loop samples kept draws =
    if draws >= max_samples then
      if kept = 0 then
        Fmt.invalid_arg "Bootstrap.measure_adaptive: no finite sample for %s in %d reads" name
          max_samples
      else Stats.summarize samples
    else
      let x = measure_once machine ~name ~iterations in
      if not (Float.is_finite x) then loop samples kept (draws + 1)
      else
        let samples = x :: samples in
        let kept = kept + 1 in
        if kept < 3 then loop samples kept (draws + 1)
        else
          let s = Stats.summarize samples in
          if s.Stats.ci95_half_width <= target_rci *. Float.abs s.Stats.mean then s
          else loop samples kept (draws + 1)
  in
  loop [] 0 0

(* Which microbenchmark measures [i]?  Its own [mb], else one in the suite
   whose [type] matches, else a synthesized id. *)
let benchmark_for (suites : Power.suite list) (i : Power.instruction) =
  match i.Power.in_mb with
  | Some mb -> mb
  | None -> (
      let by_type =
        List.find_map
          (fun s ->
            List.find_map
              (fun (b : Power.microbenchmark) ->
                if String.equal b.mb_instruction i.Power.in_name then Some b.mb_id else None)
              s.Power.su_benches)
          suites
      in
      match by_type with Some mb -> mb | None -> "auto_" ^ i.Power.in_name)

let iterations_for (suites : Power.suite list) mb_id =
  List.find_map
    (fun s ->
      List.find_map
        (fun (b : Power.microbenchmark) ->
          if String.equal b.mb_id mb_id then Some b.mb_iterations else None)
        s.Power.su_benches)
    suites
  |> Option.value ~default:100_000

(** Run the bootstrap for one ISA on [machine]: measures every
    [To_benchmark] instruction (all of them when [opts.force]). *)
let run_isa ?(opts = default_options) machine (isa : Power.isa) (suites : Power.suite list) :
    result list =
  let needs_measuring (i : Power.instruction) =
    opts.force || match i.Power.in_energy with Power.To_benchmark -> true | _ -> false
  in
  List.filter_map
    (fun (i : Power.instruction) ->
      if not (needs_measuring i) then None
      else begin
        let mb = benchmark_for suites i in
        let iterations = iterations_for suites mb in
        let sweep_freqs =
          match opts.frequencies with
          | [] -> []
          | fs -> fs
        in
        let current = measure machine ~opts ~name:i.Power.in_name ~iterations in
        let per_frequency =
          List.map
            (fun hz ->
              Xpdl_simhw.Machine.set_frequency machine hz;
              let s = measure machine ~opts ~name:i.Power.in_name ~iterations in
              (hz, s.Stats.mean))
            sweep_freqs
        in
        (* restore nominal clocks after a sweep *)
        if sweep_freqs <> [] then
          Array.iter
            (fun c -> c.Xpdl_simhw.Machine.hz <- c.Xpdl_simhw.Machine.nominal_hz)
            machine.Xpdl_simhw.Machine.cores;
        Some
          {
            instruction = i.Power.in_name;
            benchmark = mb;
            energy = current;
            per_frequency;
            runs = opts.repetitions * (1 + List.length sweep_freqs);
          }
      end)
    isa.Power.isa_instructions

(** {1 Writing results back into the model}

    The derived entries replace the ["?"] placeholders in the model tree,
    producing the bootstrapped model the runtime-model generator
    serializes. *)

let joules_attr j = Model.Quantity (Xpdl_units.Units.joules j, "pJ")

let apply_results (results : result list) (root : Model.element) : Model.element =
  let find_result name =
    List.find_opt (fun r -> String.equal r.instruction name) results
  in
  let rec rewrite (e : Model.element) : Model.element =
    let e = { e with children = List.map rewrite e.children } in
    if Schema.equal_kind e.kind Schema.Instruction then
      match Option.bind (Model.identifier e) find_result with
      | Some r ->
          let e = Model.set_attr e "energy" (joules_attr r.energy.Stats.mean) in
          if r.per_frequency = [] then e
          else
            let data_rows =
              List.map
                (fun (hz, j) ->
                  Model.make Schema.Data
                    ~attrs:
                      [
                        ("frequency", Model.Quantity (Xpdl_units.Units.hertz hz, "GHz"));
                        ("energy", joules_attr j);
                      ])
                r.per_frequency
            in
            { e with children = e.children @ data_rows }
      | None -> e
    else e
  in
  rewrite root

(** {1 Link-offset calibration}

    Interconnect channels may declare their per-message time/energy
    offsets as ["?"] (Listing 3).  These are derived like instruction
    energies: repeated 1-byte transfers isolate the offsets (the
    bandwidth term is negligible at that size), and the means replace the
    placeholders on every channel of the link. *)

let resolve_link_offsets ?(opts = default_options) machine (root : Model.element) :
    Model.element =
  let measure_offsets link =
    let samples =
      List.init opts.repetitions (fun _ ->
          Xpdl_simhw.Machine.transfer machine ~link ~bytes:1)
    in
    ( Stats.mean (List.map fst samples), Stats.mean (List.map snd samples) )
  in
  let rec rewrite (e : Model.element) : Model.element =
    let e = { e with children = List.map rewrite e.children } in
    if not (Schema.equal_kind e.kind Schema.Interconnect) then e
    else
      match Model.identifier e with
      | Some link when Xpdl_simhw.Machine.find_link machine link <> None ->
          let needs_fix =
            List.exists
              (fun (ch : Model.element) ->
                Model.attr_is_unknown ch "time_offset_per_message"
                || Model.attr_is_unknown ch "energy_offset_per_message")
              (Model.children_of_kind e Schema.Channel)
          in
          if not needs_fix then e
          else begin
            let toff, eoff = measure_offsets link in
            let fix_channel (ch : Model.element) =
              if not (Schema.equal_kind ch.kind Schema.Channel) then ch
              else
                let ch =
                  if Model.attr_is_unknown ch "time_offset_per_message" then
                    Model.set_attr ch "time_offset_per_message"
                      (Model.Quantity (Xpdl_units.Units.seconds toff, "ns"))
                  else ch
                in
                if Model.attr_is_unknown ch "energy_offset_per_message" then
                  Model.set_attr ch "energy_offset_per_message"
                    (Model.Quantity (Xpdl_units.Units.joules eoff, "pJ"))
                else ch
            in
            { e with children = List.map fix_channel e.children }
          end
      | _ -> e
  in
  rewrite root

(** Full bootstrap of a composed model: build the machine, find its ISAs
    and suites, measure what is unspecified (instruction energies and
    link offsets), and return the model with every derived entry filled
    in, plus the per-instruction results. *)
let run ?(opts = default_options) ?machine (root : Model.element) :
    Model.element * result list =
  let machine =
    match machine with Some m -> m | None -> Xpdl_simhw.Machine.create root
  in
  let pm = Power.of_element root in
  let results =
    List.concat_map (fun isa -> run_isa ~opts machine isa pm.Power.pm_suites) pm.Power.pm_isas
  in
  let root = resolve_link_offsets ~opts machine root in
  (apply_results results root, results)

(** {1 Store-backed bootstrap}

    The same derivations expressed as edits against an incremental
    {!Xpdl_store.Store}: every written value journals an edit and
    invalidates the store's derived caches along its spine, so a session
    holding the store re-derives only what the bootstrap touched.  On
    the same machine the resulting model is identical to the batch
    {!run} — the measurement order is preserved, and writes land on the
    same elements in the same order. *)

module Store = Xpdl_store.Store

let apply_results_store (results : result list) (store : Store.t) : unit =
  let find_result name = List.find_opt (fun r -> String.equal r.instruction name) results in
  let paths =
    Store.find_paths store (fun e ->
        Schema.equal_kind e.Model.kind Schema.Instruction
        && Option.bind (Model.identifier e) find_result <> None)
  in
  List.iter
    (fun path ->
      let e = Option.get (Store.element_at store path) in
      match Option.bind (Model.identifier e) find_result with
      | None -> ()
      | Some r ->
          Store.set_attr store path "energy" (joules_attr r.energy.Stats.mean);
          (* appended in sweep order: same layout as the batch rewrite *)
          List.iter
            (fun (hz, j) ->
              Store.insert_child store path
                (Model.make Schema.Data
                   ~attrs:
                     [
                       ("frequency", Model.Quantity (Xpdl_units.Units.hertz hz, "GHz"));
                       ("energy", joules_attr j);
                     ]))
            r.per_frequency)
    paths

let resolve_link_offsets_store ?(opts = default_options) machine (store : Store.t) : unit =
  let measure_offsets link =
    let samples =
      List.init opts.repetitions (fun _ ->
          Xpdl_simhw.Machine.transfer machine ~link ~bytes:1)
    in
    (Stats.mean (List.map fst samples), Stats.mean (List.map snd samples))
  in
  let paths =
    Store.find_paths store (fun e ->
        Schema.equal_kind e.Model.kind Schema.Interconnect
        && (match Model.identifier e with
           | Some link -> Xpdl_simhw.Machine.find_link machine link <> None
           | None -> false)
        && List.exists
             (fun (ch : Model.element) ->
               Model.attr_is_unknown ch "time_offset_per_message"
               || Model.attr_is_unknown ch "energy_offset_per_message")
             (Model.children_of_kind e Schema.Channel))
  in
  List.iter
    (fun path ->
      let e = Option.get (Store.element_at store path) in
      let link = Option.get (Model.identifier e) in
      let toff, eoff = measure_offsets link in
      List.iteri
        (fun i (ch : Model.element) ->
          if Schema.equal_kind ch.Model.kind Schema.Channel then begin
            let chpath = path @ [ i ] in
            if Model.attr_is_unknown ch "time_offset_per_message" then
              Store.set_attr store chpath "time_offset_per_message"
                (Model.Quantity (Xpdl_units.Units.seconds toff, "ns"));
            if Model.attr_is_unknown ch "energy_offset_per_message" then
              Store.set_attr store chpath "energy_offset_per_message"
                (Model.Quantity (Xpdl_units.Units.joules eoff, "pJ"))
          end)
        e.Model.children)
    paths

(** Full bootstrap through a store: measurements run in the batch
    {!run}'s order, results are written as store edits. *)
let run_store ?(opts = default_options) ?machine (store : Store.t) : result list =
  let machine =
    match machine with Some m -> m | None -> Xpdl_simhw.Machine.create (Store.model store)
  in
  let pm = Power.of_element (Store.model store) in
  let results =
    List.concat_map (fun isa -> run_isa ~opts machine isa pm.Power.pm_suites) pm.Power.pm_isas
  in
  resolve_link_offsets_store ~opts machine store;
  apply_results_store results store;
  results

(** Instructions still unresolved after a bootstrap (should be empty). *)
let remaining_placeholders (root : Model.element) : string list =
  Model.fold
    (fun acc (e : Model.element) ->
      if Schema.equal_kind e.kind Schema.Instruction && Model.attr_is_unknown e "energy" then
        match Model.identifier e with Some n -> n :: acc | None -> acc
      else acc)
    [] root
  |> List.rev
