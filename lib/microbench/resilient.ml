(** Fault-tolerant deployment bootstrap (see the interface).

    All time in this module is {e simulated}: attempts are charged the
    measurements' own [elapsed] readings, hung reads are charged the
    policy's [read_timeout], and backoff waits are charged as-is.  No
    wall clock is ever consulted, which is what makes a health report a
    pure function of (model, machine seed, fault seed, policy) — the
    byte-for-byte reproducibility the acceptance tests pin down. *)

open Xpdl_core
module Machine = Xpdl_simhw.Machine
module Faults = Xpdl_simhw.Faults
module Rng = Xpdl_simhw.Rng
module Store = Xpdl_store.Store

type policy = {
  read_timeout : float;
  deadline : float;
  budget : float;
  retries : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_jitter : float;
  backoff_seed : int;
  repetitions : int;
  frequencies : float list;
  fail_fast : bool;
}

let default_policy =
  {
    read_timeout = 1.0;
    deadline = 10.0;
    budget = 300.0;
    retries = 3;
    backoff_base = 0.05;
    backoff_factor = 2.0;
    backoff_jitter = 0.25;
    backoff_seed = 42;
    repetitions = 7;
    frequencies = [];
    fail_fast = false;
  }

(* The backoff stream is derived from (policy seed, benchmark name), so
   schedules are independent per benchmark yet fully replayable. *)
let backoff_schedule policy ~name ~attempts =
  let rng = Rng.split (Rng.create ~seed:policy.backoff_seed) ("backoff:" ^ name) in
  List.init attempts (fun i ->
      policy.backoff_base
      *. (policy.backoff_factor ** float_of_int i)
      *. (1. +. (policy.backoff_jitter *. Rng.float rng)))

type quality = Measured | Interpolated | Inherited | Unresolved

let quality_name = function
  | Measured -> "measured"
  | Interpolated -> "interpolated"
  | Inherited -> "inherited"
  | Unresolved -> "unresolved"

type failure =
  | Timed_out
  | Non_finite
  | Offline of string
  | Budget_exhausted
  | Skipped
  | Errored of string

let failure_name = function
  | Timed_out -> "timeout"
  | Non_finite -> "non-finite"
  | Offline c -> "offline:" ^ c
  | Budget_exhausted -> "budget-exhausted"
  | Skipped -> "skipped"
  | Errored m -> "error:" ^ m

type attempt = {
  at_n : int;
  at_failure : failure option;
  at_samples : int;
  at_rejected : int;
  at_elapsed : float;
  at_backoff : float;
}

type bench = {
  b_instruction : string;
  b_benchmark : string;
  b_attempts : attempt list;
  b_quality : quality;
  b_energy : float option;
  b_stats : Stats.summary option;
  b_sweep : (float * float) list;
  b_quarantined : bool;
}

type health = {
  h_benches : bench list;
  h_links : bench list;
  h_elapsed : float;
  h_budget : float;
  h_budget_exhausted : bool;
  h_aborted : bool;
  h_fault_reads : int;
  h_fault_events : int;
  h_diags : Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Simulated clock *)

type clock = { mutable now : float }

let charge clock dt = if Float.is_finite dt && dt > 0. then clock.now <- clock.now +. dt

(* ------------------------------------------------------------------ *)
(* One measurement attempt

   [read ()] performs one meter reading and returns (value, elapsed).
   The attempt draws readings until [repetitions] finite values are
   kept or the drawing budget (3x) is spent; every reading's elapsed
   time is charged to the suite clock.  Simulator exceptions — hung
   meters, offline cores, and the audited escapees of the satellite task
   ([Invalid_argument], [Not_found], [Division_by_zero]) — are caught
   here and turned into typed failures, never propagated. *)

type attempt_result = {
  ar_failure : failure option;
  ar_samples : float list;
  ar_rejected : int;
  ar_elapsed : float;
}

let run_attempt policy clock read : attempt_result =
  let samples = ref [] and kept = ref 0 and rejected = ref 0 and elapsed = ref 0. in
  let failure =
    try
      let draws = ref 0 in
      while !kept < policy.repetitions && !draws < 3 * policy.repetitions do
        incr draws;
        let v, dt = read () in
        elapsed := !elapsed +. (if Float.is_finite dt && dt > 0. then dt else 0.);
        if Float.is_finite v then begin
          samples := v :: !samples;
          incr kept
        end
        else incr rejected
      done;
      if !kept >= policy.repetitions then None else Some Non_finite
    with
    | Faults.Meter_timeout _ ->
        elapsed := !elapsed +. policy.read_timeout;
        Some Timed_out
    | Faults.Core_offline c -> Some (Offline c)
    | Invalid_argument m | Failure m -> Some (Errored m)
    | Not_found -> Some (Errored "Not_found")
    | Division_by_zero -> Some (Errored "Division_by_zero")
  in
  charge clock !elapsed;
  {
    ar_failure = failure;
    ar_samples = List.rev !samples;
    ar_rejected = !rejected;
    ar_elapsed = !elapsed;
  }

(* Retry [read] with backoff until success or the policy gives up.
   Returns the attempt log and the successful sample list, if any.  An
   [Offline] failure aborts immediately — the core will not come back. *)
let with_retries policy clock ~name read : attempt list * float list option =
  let schedule = Array.of_list (backoff_schedule policy ~name ~attempts:(policy.retries + 1)) in
  let rec go n bench_elapsed acc =
    if clock.now >= policy.budget then
      ( List.rev
          ({
             at_n = n;
             at_failure = Some Budget_exhausted;
             at_samples = 0;
             at_rejected = 0;
             at_elapsed = 0.;
             at_backoff = 0.;
           }
          :: acc),
        None )
    else
      let r = run_attempt policy clock read in
      let give_up =
        match r.ar_failure with
        | None -> true
        | Some (Offline _) -> true
        | Some _ ->
            n > policy.retries
            || bench_elapsed +. r.ar_elapsed >= policy.deadline
            || clock.now >= policy.budget
      in
      let backoff =
        if give_up then 0.
        else
          let b = schedule.(min (n - 1) (Array.length schedule - 1)) in
          charge clock b;
          b
      in
      let at =
        {
          at_n = n;
          at_failure = r.ar_failure;
          at_samples = List.length r.ar_samples;
          at_rejected = r.ar_rejected;
          at_elapsed = r.ar_elapsed;
          at_backoff = backoff;
        }
      in
      let acc = at :: acc in
      match r.ar_failure with
      | None -> (List.rev acc, Some r.ar_samples)
      | Some _ when give_up -> (List.rev acc, None)
      | Some _ -> go (n + 1) (bench_elapsed +. r.ar_elapsed +. backoff) acc
  in
  go 1 0. []

(* ------------------------------------------------------------------ *)
(* Degradation ladder helpers *)

(* Piecewise-linear interpolation over measured (Hz, J) sweep points,
   clamped at the ends; needs at least two points. *)
let interpolate_sweep sweep ~hz =
  match List.sort (fun (a, _) (b, _) -> Float.compare a b) sweep with
  | [] | [ _ ] -> None
  | (f0, e0) :: _ as sorted ->
      let rec interp = function
        | [] -> None
        | [ (_, e) ] -> Some e
        | (f1, e1) :: ((f2, e2) :: _ as rest) ->
            if hz <= f1 then Some e1
            else if hz <= f2 then Some (e1 +. ((e2 -. e1) *. (hz -. f1) /. (f2 -. f1)))
            else interp rest
      in
      if hz <= f0 then Some e0 else interp sorted

(* The inherited fallback: the meta-model's own per-frequency table
   (data rows merged in by composition), else a declared
   [default_energy] on the instruction or its <instructions> parent. *)
let inherited_energy ~instr ~(element : Model.element) ~(parent : Model.element option) ~hz =
  let of_attr (e : Model.element) =
    match Model.attr_quantity e "default_energy" with
    | Some q -> Some (Xpdl_units.Units.value q)
    | None -> Model.attr_float e "default_energy"
  in
  match Option.bind instr (fun i -> Power.instruction_energy_at i ~hz) with
  | Some e -> Some e
  | None -> (
      match of_attr element with
      | Some e -> Some e
      | None -> Option.bind parent of_attr)

let joules_attr j = Model.Quantity (Xpdl_units.Units.joules j, "pJ")
let quality_attr q = Model.Str (quality_name q)

let data_row (hz, j) =
  Model.make Schema.Data
    ~attrs:
      [
        ("frequency", Model.Quantity (Xpdl_units.Units.hertz hz, "GHz")); ("energy", joules_attr j);
      ]

(* ------------------------------------------------------------------ *)
(* The suite *)

let current_hz machine =
  if Array.length machine.Machine.cores = 0 then 1.0e9 else machine.Machine.cores.(0).Machine.hz

let restore_clocks machine =
  Array.iter (fun c -> c.Machine.hz <- c.Machine.nominal_hz) machine.Machine.cores

let run_store ?(policy = default_policy) ?machine (store : Store.t) : health =
  let model = Store.model store in
  let machine = match machine with Some m -> m | None -> Machine.create model in
  let pm = Power.of_element model in
  let instr_info name =
    List.find_map
      (fun (isa : Power.isa) ->
        List.find_map
          (fun (i : Power.instruction) ->
            if String.equal i.Power.in_name name then Some i else None)
          isa.Power.isa_instructions)
      pm.Power.pm_isas
  in
  let clock = { now = 0. } in
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  let offline_reported = ref [] in
  let budget_exhausted = ref false in
  let aborted = ref false in
  let note_stop attempts =
    (* classify why a benchmark was not (fully) measured *)
    List.iter
      (fun at ->
        match at.at_failure with
        | Some (Offline c) when not (List.mem c !offline_reported) ->
            offline_reported := c :: !offline_reported;
            diag
              (Diagnostic.warning ~code:"XPDL507" "core %s went offline during the benchmark suite"
                 c)
        | _ -> ())
      attempts
  in
  let skip_reason () =
    if !budget_exhausted then Some Budget_exhausted else if !aborted then Some Skipped else None
  in
  let check_budget () =
    if (not !budget_exhausted) && clock.now >= policy.budget then begin
      budget_exhausted := true;
      diag
        (Diagnostic.warning ~code:"XPDL508"
           "suite time budget (%g s simulated) exhausted; remaining benchmarks quarantined"
           policy.budget)
    end
  in
  let bench_diags (b : bench) =
    if List.exists (fun a -> a.at_failure = Some Timed_out) b.b_attempts then
      diag
        (Diagnostic.warning ~code:"XPDL501" "meter read timed out while benchmarking %s"
           b.b_instruction);
    if List.exists (fun a -> a.at_rejected > 0 || a.at_failure = Some Non_finite) b.b_attempts
    then
      diag
        (Diagnostic.warning ~code:"XPDL502"
           "meter returned non-finite samples while benchmarking %s; resampled" b.b_instruction);
    List.iter
      (fun a ->
        match a.at_failure with
        | Some (Errored m) ->
            diag
              (Diagnostic.error ~code:"XPDL500"
                 "microbenchmark harness caught a simulator error while benchmarking %s: %s"
                 b.b_instruction m)
        | _ -> ())
      b.b_attempts;
    if b.b_quarantined then
      diag
        (Diagnostic.warning ~code:"XPDL503"
           "benchmark %s for %s quarantined after %d attempt%s; degraded to %s" b.b_benchmark
           b.b_instruction
           (List.length b.b_attempts)
           (if List.length b.b_attempts = 1 then "" else "s")
           (quality_name b.b_quality));
    match b.b_quality with
    | Measured -> ()
    | Interpolated ->
        diag
          (Diagnostic.info ~code:"XPDL504"
             "energy of %s interpolated from a partial frequency sweep (%d points)" b.b_instruction
             (List.length b.b_sweep))
    | Inherited ->
        diag
          (Diagnostic.info ~code:"XPDL505" "energy of %s inherited from the meta-model/default value"
             b.b_instruction)
    | Unresolved ->
        diag
          (Diagnostic.warning ~code:"XPDL506"
             "placeholder %s unresolved after the degradation ladder" b.b_instruction)
  in

  (* --- instruction benchmarks, in document order ------------------- *)
  let instr_paths =
    Store.find_paths store (fun e ->
        Schema.equal_kind e.Model.kind Schema.Instruction && Model.attr_is_unknown e "energy")
  in
  let benches =
    List.map
      (fun path ->
        let e = Option.get (Store.element_at store path) in
        let name = Option.value ~default:"?" (Model.identifier e) in
        let instr = instr_info name in
        let mb =
          match instr with
          | Some i -> Bootstrap.benchmark_for pm.Power.pm_suites i
          | None -> "auto_" ^ name
        in
        let iterations = Bootstrap.iterations_for pm.Power.pm_suites mb in
        let read () =
          let w = Xpdl_simhw.Kernels.single_instruction ~name ~iterations in
          let m = Machine.run machine w in
          (m.Machine.dynamic_energy /. float_of_int iterations, m.Machine.elapsed)
        in
        check_budget ();
        let attempts, success =
          match skip_reason () with
          | Some why ->
              ( [
                  {
                    at_n = 1;
                    at_failure = Some why;
                    at_samples = 0;
                    at_rejected = 0;
                    at_elapsed = 0.;
                    at_backoff = 0.;
                  };
                ],
                None )
          | None -> with_retries policy clock ~name:mb read
        in
        note_stop attempts;
        let went_offline =
          List.exists
            (fun a -> match a.at_failure with Some (Offline _) -> true | _ -> false)
            attempts
        in
        (* frequency sweep: one un-retried attempt per point.  Runs even
           when the current-frequency measurement failed — the sweep is
           what the interpolation fallback feeds on — but not for an
           offline core or an exhausted budget. *)
        let sweep =
          if policy.frequencies = [] || went_offline || skip_reason () <> None then []
          else begin
            let pts =
              List.filter_map
                (fun hz ->
                  check_budget ();
                  if !budget_exhausted then None
                  else begin
                    Machine.set_frequency machine hz;
                    let r = run_attempt policy clock read in
                    match r.ar_failure with
                    | None -> Some (hz, (Stats.summarize r.ar_samples).Stats.mean)
                    | Some _ -> None
                  end)
                policy.frequencies
            in
            restore_clocks machine;
            pts
          end
        in
        let stats = Option.map Stats.summarize success in
        let quality, energy =
          match stats with
          | Some s -> (Measured, Some s.Stats.mean)
          | None -> (
              match interpolate_sweep sweep ~hz:(current_hz machine) with
              | Some j -> (Interpolated, Some j)
              | None -> (
                  let parent =
                    match List.rev path with
                    | [] -> None
                    | _ :: rp -> Store.element_at store (List.rev rp)
                  in
                  match
                    inherited_energy ~instr ~element:e ~parent ~hz:(current_hz machine)
                  with
                  | Some j -> (Inherited, Some j)
                  | None -> (Unresolved, None)))
        in
        (* write back through the store's edit API *)
        (match energy with
        | Some j -> Store.set_attr store path "energy" (joules_attr j)
        | None -> ());
        List.iter (fun pt -> Store.insert_child store path (data_row pt)) sweep;
        Store.set_attr store path "quality" (quality_attr quality);
        let b =
          {
            b_instruction = name;
            b_benchmark = mb;
            b_attempts = attempts;
            b_quality = quality;
            b_energy = energy;
            b_stats = stats;
            b_sweep = sweep;
            b_quarantined = success = None;
          }
        in
        bench_diags b;
        check_budget ();
        if policy.fail_fast && b.b_quarantined then aborted := true;
        b)
      instr_paths
  in

  (* --- link-offset calibration ------------------------------------ *)
  let link_paths =
    Store.find_paths store (fun e ->
        Schema.equal_kind e.Model.kind Schema.Interconnect
        && (match Model.identifier e with
           | Some link -> Machine.find_link machine link <> None
           | None -> false)
        && List.exists
             (fun (ch : Model.element) ->
               Model.attr_is_unknown ch "time_offset_per_message"
               || Model.attr_is_unknown ch "energy_offset_per_message")
             (Model.children_of_kind e Schema.Channel))
  in
  let links =
    List.map
      (fun path ->
        let e = Option.get (Store.element_at store path) in
        let link = Option.get (Model.identifier e) in
        (* readings are (energy, elapsed); times are recollected from a
           parallel list so both offsets come from the same transfers *)
        let times = ref [] in
        let read () =
          let t, en = Machine.transfer machine ~link ~bytes:1 in
          if Float.is_finite en then times := t :: !times;
          (en, t)
        in
        check_budget ();
        let attempts, success =
          match skip_reason () with
          | Some why ->
              ( [
                  {
                    at_n = 1;
                    at_failure = Some why;
                    at_samples = 0;
                    at_rejected = 0;
                    at_elapsed = 0.;
                    at_backoff = 0.;
                  };
                ],
                None )
          | None ->
              times := [];
              with_retries policy clock ~name:("link:" ^ link) read
        in
        note_stop attempts;
        let stats = Option.map Stats.summarize success in
        let quality, eoff =
          match stats with Some s -> (Measured, Some s.Stats.mean) | None -> (Unresolved, None)
        in
        let toff =
          match success with
          | None -> None
          | Some samples ->
              (* the last [repetitions] finite transfers of the winning attempt *)
              let n = List.length samples in
              let ts = List.filteri (fun i _ -> i < n) !times in
              Some (Stats.mean ts)
        in
        List.iteri
          (fun i (ch : Model.element) ->
            if Schema.equal_kind ch.Model.kind Schema.Channel then begin
              let chpath = path @ [ i ] in
              (match toff with
              | Some t when Model.attr_is_unknown ch "time_offset_per_message" ->
                  Store.set_attr store chpath "time_offset_per_message"
                    (Model.Quantity (Xpdl_units.Units.seconds t, "ns"))
              | _ -> ());
              (match eoff with
              | Some j when Model.attr_is_unknown ch "energy_offset_per_message" ->
                  Store.set_attr store chpath "energy_offset_per_message" (joules_attr j)
              | _ -> ());
              if
                Model.attr_is_unknown ch "time_offset_per_message"
                || Model.attr_is_unknown ch "energy_offset_per_message"
                || toff <> None || eoff <> None
              then Store.set_attr store chpath "quality" (quality_attr quality)
            end)
          e.Model.children;
        let b =
          {
            b_instruction = link;
            b_benchmark = "transfer";
            b_attempts = attempts;
            b_quality = quality;
            b_energy = eoff;
            b_stats = stats;
            b_sweep = [];
            b_quarantined = success = None;
          }
        in
        bench_diags b;
        check_budget ();
        if policy.fail_fast && b.b_quarantined then aborted := true;
        b)
      link_paths
  in
  let fault_reads, fault_events =
    match Machine.faults machine with
    | None -> (0, 0)
    | Some plan -> (Faults.reads plan, List.length (Faults.events plan))
  in
  {
    h_benches = benches;
    h_links = links;
    h_elapsed = clock.now;
    h_budget = policy.budget;
    h_budget_exhausted = !budget_exhausted;
    h_aborted = !aborted;
    h_fault_reads = fault_reads;
    h_fault_events = fault_events;
    h_diags = List.rev !diags;
  }

let run ?policy ?machine (root : Model.element) : Model.element * health =
  let store = Store.of_model root in
  let machine = match machine with Some m -> m | None -> Machine.create root in
  let health = run_store ?policy ~machine store in
  (Store.model store, health)

(* Scope paths follow the same prefix convention as the runtime model's
   path index: unnamed nodes inherit their parent's prefix. *)
let quality_entries (root : Model.element) : (string * string) list =
  let acc = ref [] in
  let rec walk prefix (e : Model.element) =
    let here =
      match Model.identifier e with
      | Some i -> if prefix = "" then i else prefix ^ "/" ^ i
      | None -> prefix
    in
    (match Model.attr_string e "quality" with
    | Some q -> acc := (here, q) :: !acc
    | None -> ());
    List.iter (walk here) e.Model.children
  in
  walk "" root;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Reports *)

let js s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""
let jf v = if Float.is_finite v then Fmt.str "%.17g" v else js (Fmt.str "%h" v)

let attempt_to_json a =
  Fmt.str {|{"n":%d,"outcome":%s,"samples":%d,"rejected":%d,"elapsed":%s,"backoff":%s}|} a.at_n
    (js (match a.at_failure with None -> "ok" | Some f -> failure_name f))
    a.at_samples a.at_rejected (jf a.at_elapsed) (jf a.at_backoff)

let bench_to_json b =
  Fmt.str
    {|{"instruction":%s,"benchmark":%s,"quality":%s,"quarantined":%b,"energy":%s,"attempts":[%s],"sweep":[%s]}|}
    (js b.b_instruction) (js b.b_benchmark)
    (js (quality_name b.b_quality))
    b.b_quarantined
    (match b.b_energy with Some j -> jf j | None -> "null")
    (String.concat "," (List.map attempt_to_json b.b_attempts))
    (String.concat "," (List.map (fun (hz, j) -> Fmt.str "[%s,%s]" (jf hz) (jf j)) b.b_sweep))

let health_to_json h =
  Fmt.str
    {|{"elapsed":%s,"budget":%s,"budget_exhausted":%b,"aborted":%b,"fault_reads":%d,"fault_events":%d,"benches":[%s],"links":[%s],"diagnostics":[%s]}|}
    (jf h.h_elapsed) (jf h.h_budget) h.h_budget_exhausted h.h_aborted h.h_fault_reads
    h.h_fault_events
    (String.concat "," (List.map bench_to_json h.h_benches))
    (String.concat "," (List.map bench_to_json h.h_links))
    (String.concat "," (List.map Diagnostic.to_json h.h_diags))

let pp_attempt ppf a =
  Fmt.pf ppf "attempt %d: %s (%d samples, %d rejected, %.4g s%s)" a.at_n
    (match a.at_failure with None -> "ok" | Some f -> failure_name f)
    a.at_samples a.at_rejected a.at_elapsed
    (if a.at_backoff > 0. then Fmt.str ", backoff %.3g s" a.at_backoff else "")

let pp_bench ppf b =
  Fmt.pf ppf "@[<v2>%s (%s): %s%s%s@,%a@]" b.b_instruction b.b_benchmark
    (quality_name b.b_quality)
    (match b.b_energy with Some j -> Fmt.str " %.4g J" j | None -> "")
    (if b.b_quarantined then " [quarantined]" else "")
    (Fmt.list ~sep:Fmt.cut pp_attempt) b.b_attempts

let pp_health ppf h =
  Fmt.pf ppf "@[<v>%a@,%a@,%.4g simulated s of %g budget%s%s; %d fault reads, %d faults fired@]"
    (Fmt.list ~sep:Fmt.cut pp_bench) (h.h_benches @ h.h_links) Diagnostic.pp_list h.h_diags
    h.h_elapsed h.h_budget
    (if h.h_budget_exhausted then " (exhausted)" else "")
    (if h.h_aborted then " (aborted: fail-fast)" else "")
    h.h_fault_reads h.h_fault_events
