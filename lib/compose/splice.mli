(** Submodel splicing over the incremental store.

    XPDL platform models are "composed from partial descriptions"
    (Sec. II): a concrete system pulls in device, memory and software
    submodels by reference.  This module expresses the corresponding
    {e runtime} reconfigurations — attaching a device submodel, detaching
    it, or grafting it under another component — as single structural
    edits on an {!Xpdl_store.Store}, so the store re-derives its cached
    attributes only along the spines involved instead of recomposing the
    whole platform model. *)

open Xpdl_core

type path = Xpdl_store.Store.index_path

(** Attach [submodel] as the last child of the element at [at]; returns
    the new subtree's index path.  Raises {!Xpdl_store.Store.Store_error}
    (XPDL401) if [at] dangles. *)
val attach : Xpdl_store.Store.t -> at:path -> Model.element -> path

(** {!attach} addressed by scope path (e.g. ["liu_gpu_server/gpu1"]).
    Raises XPDL401 if the scope path does not resolve. *)
val attach_at_scope : Xpdl_store.Store.t -> scope:string -> Model.element -> path

(** Detach and return the subtree at [path].  Raises XPDL401/XPDL402 on
    a dangling path and [Invalid_argument] on the root (the store always
    holds a tree). *)
val detach : Xpdl_store.Store.t -> path -> Model.element

(** {!detach} addressed by scope path. *)
val detach_scope : Xpdl_store.Store.t -> string -> Model.element

(** Adjust a path expressed against the pre-removal tree to the tree
    after the subtree at [removed] is detached: later siblings of the
    removal point shift down by one; [None] for the removed subtree
    itself. *)
val rebase : removed:path -> path -> path option

(** Detach the subtree at [from_] and attach it under [to_] ([to_] in
    pre-detach coordinates); returns the subtree's new path.  Raises
    [Invalid_argument] if [to_] lies inside the grafted subtree. *)
val graft : Xpdl_store.Store.t -> from_:path -> to_:path -> path

(** Replace the subtree at the path (delegates to the store). *)
val replace : Xpdl_store.Store.t -> path -> Model.element -> unit
