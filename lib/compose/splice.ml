(** Submodel splicing over the incremental store (see the interface). *)

open Xpdl_core
module Store = Xpdl_store.Store

type path = Store.index_path

let no_scope scope =
  raise
    (Store.Store_error
       (Diagnostic.error ~code:"XPDL401" "scope path %S does not address a model element"
          scope))

let attach store ~at submodel =
  let n =
    match Store.element_at store at with
    | Some e -> List.length e.Model.children
    | None -> 0 (* insert_child raises the proper XPDL401 below *)
  in
  Store.insert_child store at submodel;
  at @ [ n ]

let attach_at_scope store ~scope submodel =
  match Store.resolve store scope with
  | Some at -> attach store ~at submodel
  | None -> no_scope scope

let detach store path =
  match List.rev path with
  | [] -> invalid_arg "Splice.detach: cannot detach the model root"
  | i :: rev_parent -> Store.remove_child store (List.rev rev_parent) i

let detach_scope store scope =
  match Store.resolve store scope with
  | Some p -> detach store p
  | None -> no_scope scope

(* Removing [parent @ [i]] renumbers [i]'s later siblings and orphans
   every path into the removed subtree; all other paths are untouched. *)
let rebase ~removed path =
  match List.rev removed with
  | [] -> invalid_arg "Splice.rebase: empty removal path"
  | i :: rev_parent ->
      let parent = List.rev rev_parent in
      let rec go p q =
        match (p, q) with
        | _, [] -> Some path (* an ancestor of the removal point *)
        | [], j :: rest ->
            if j = i then None
            else if j > i then Some (parent @ ((j - 1) :: rest))
            else Some path
        | a :: p', b :: q' -> if a = b then go p' q' else Some path
      in
      go parent path

let graft store ~from_ ~to_ =
  match rebase ~removed:from_ to_ with
  | None -> invalid_arg "Splice.graft: destination lies inside the grafted subtree"
  | Some to_ ->
      let sub = detach store from_ in
      attach store ~at:to_ sub

let replace store path submodel = Store.replace_subtree store path submodel
