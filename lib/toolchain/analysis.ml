(** Static model analysis (Sec. IV).

    The XPDL processing tool "performs static analysis of the model (for
    instance, downgrading bandwidth of interconnections where applicable
    as the effective bandwidth should be determined by the slowest
    hardware components involved in a communication link)".  This module
    implements:

    - {!effective_bandwidths}: per-interconnect effective bandwidth =
      min of its channels' bandwidths and of the memory bandwidths of the
      endpoint components, annotated back onto the model as an
      [effective_bandwidth] attribute;
    - {!path_bandwidth}: min-bandwidth along a multi-hop communication
      path in the interconnect graph (BFS over head/tail edges);
    - {!filter_attributes}: the configurable "filter out uninteresting
      values" stage;
    - {!connectivity}: reachability report over the interconnect graph
      (isolated components are suspicious in a platform model). *)

open Xpdl_core
open Xpdl_units

let quantity_value e key = Option.map Units.value (Model.attr_quantity e key)

(* The memory bandwidth available at an endpoint component: the max of
   bandwidths of memories inside it (a link cannot stream faster than the
   fastest memory on that side can source/sink, and the fastest is the
   natural staging target). *)
let endpoint_bandwidth (root : Model.element) ident =
  match Model.find_by_id ident root with
  | None -> None
  | Some e ->
      let bws =
        List.filter_map (fun m -> quantity_value m "bandwidth")
          (Model.elements_of_kind Schema.Memory e)
      in
      (match bws with [] -> None | l -> Some (List.fold_left Float.max 0. l))

let channel_bandwidths (ic : Model.element) =
  List.filter_map (fun ch -> quantity_value ch "max_bandwidth")
    (Model.elements_of_kind Schema.Channel ic)

(** One analyzed link. *)
type link_report = {
  lr_ident : string;
  lr_head : string option;
  lr_tail : string option;
  lr_declared : float option;  (** B/s: min over channel max_bandwidths *)
  lr_effective : float option;  (** B/s after endpoint downgrade *)
  lr_downgraded : bool;
}

(** Compute effective bandwidths for every interconnect instance in the
    composed model and annotate the model. *)
let effective_bandwidths (root : Model.element) : Model.element * link_report list =
  let reports = ref [] in
  let rec rewrite (e : Model.element) : Model.element =
    let e = { e with children = List.map rewrite e.children } in
    if (not (Schema.equal_kind e.kind Schema.Interconnect)) || Model.identifier e = None then e
    else begin
      (* idempotence: a prior run's annotation must neither feed into
         this recomputation nor survive it when no effective bandwidth
         can be derived any more (e.g. after an edit removed the
         endpoints' memories) — strip it first *)
      let e = Model.remove_attr e "effective_bandwidth" in
      let ident = Option.get (Model.identifier e) in
      let head = Model.attr_string e "head" and tail = Model.attr_string e "tail" in
      let declared =
        match channel_bandwidths e @ Option.to_list (quantity_value e "max_bandwidth") with
        | [] -> None
        | l -> Some (List.fold_left Float.min Float.infinity l)
      in
      let endpoint_bws =
        List.filter_map (fun ep -> Option.bind ep (endpoint_bandwidth root)) [ head; tail ]
      in
      let effective =
        match (declared, endpoint_bws) with
        | None, [] -> None
        | None, l -> Some (List.fold_left Float.min Float.infinity l)
        | Some d, l -> Some (List.fold_left Float.min d l)
      in
      let downgraded =
        match (declared, effective) with
        | Some d, Some eff -> eff < d -. 1e-9
        | _ -> false
      in
      reports :=
        { lr_ident = ident; lr_head = head; lr_tail = tail; lr_declared = declared;
          lr_effective = effective; lr_downgraded = downgraded }
        :: !reports;
      match effective with
      | None -> e
      | Some eff ->
          Model.set_attr e "effective_bandwidth"
            (Model.Quantity (Units.bytes_per_second eff, "B/s"))
    end
  in
  let rewritten = rewrite root in
  (rewritten, List.rev !reports)

(** {1 The interconnect graph} *)

type graph = {
  g_nodes : string list;  (** component identifiers *)
  g_edges : (string * string * float) list;  (** head, tail, bandwidth B/s; bidirectional *)
}

let build_graph (root : Model.element) : graph =
  let _, reports = effective_bandwidths root in
  let edges =
    List.filter_map
      (fun r ->
        match (r.lr_head, r.lr_tail, r.lr_effective) with
        | Some h, Some t, Some bw -> Some (h, t, bw)
        | Some h, Some t, None -> Some (h, t, Float.infinity)
        | _ -> None)
      reports
  in
  let nodes =
    List.sort_uniq String.compare (List.concat_map (fun (h, t, _) -> [ h; t ]) edges)
  in
  { g_nodes = nodes; g_edges = edges }

(** Maximum-bottleneck bandwidth between two components: the best path's
    minimum edge bandwidth (widest-path, via iterated relaxation — graphs
    here are tiny). *)
let path_bandwidth (g : graph) ~src ~dst : float option =
  if String.equal src dst then Some Float.infinity
  else begin
    let best = Hashtbl.create 16 in
    Hashtbl.replace best src Float.infinity;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (h, t, bw) ->
          let relax a b =
            match Hashtbl.find_opt best a with
            | None -> ()
            | Some wa ->
                let w = Float.min wa bw in
                let current = Option.value ~default:0. (Hashtbl.find_opt best b) in
                if w > current then begin
                  Hashtbl.replace best b w;
                  changed := true
                end
          in
          relax h t;
          relax t h)
        g.g_edges
    done;
    Hashtbl.find_opt best dst
  end

(** Connected components of the interconnect graph (sorted member lists);
    more than one component in a single-system model usually indicates a
    modeling mistake. *)
let connected_components (g : graph) : string list list =
  let adj = Hashtbl.create 16 in
  let add a b =
    Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))
  in
  List.iter
    (fun (h, t, _) ->
      add h t;
      add t h)
    g.g_edges;
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then None
      else begin
        let comp = ref [] in
        let rec dfs x =
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            comp := x :: !comp;
            List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt adj x))
          end
        in
        dfs n;
        Some (List.sort String.compare !comp)
      end)
    g.g_nodes

(** {1 Attribute filtering}

    "filters out uninteresting values ... the filtering rules ... can be
    tailored": drop the listed attribute names everywhere (e.g. build
    flags irrelevant at runtime) to shrink the runtime model. *)

(* [path] stays: installed-software paths are runtime-relevant (the
   conditional-composition constraints read them). *)
let default_filtered = [ "cflags"; "lflags"; "file" ]

let filter_attributes ?(drop = default_filtered) (root : Model.element) : Model.element =
  let rec rewrite (e : Model.element) =
    {
      e with
      attrs = List.filter (fun (k, _) -> not (List.mem k drop)) e.attrs;
      children = List.map rewrite e.children;
    }
  in
  rewrite root
