(** The XPDL processing tool: the end-to-end static pipeline of Sec. IV.

    "It browses the XPDL model repository for all required XPDL files
    recursively referenced in a concrete model tree, parses them,
    generates an intermediate representation of the composed model,
    generates microbenchmarking driver code, invokes runs of
    microbenchmarks where required to derive attributes with unspecified
    values, filters out uninteresting values, performs static analysis of
    the model, and builds a light-weight run-time data structure that is
    finally written into a file."

    Each stage is timed; the report drives experiments E1–E5. *)

open Xpdl_core

type config = {
  search_path : string list;  (** repository roots *)
  parameter_config : Instantiate.env;  (** deployment-time param choices *)
  run_bootstrap : bool;  (** microbenchmark the ["?"] entries *)
  bootstrap_opts : Xpdl_microbench.Bootstrap.options;
  resilient_bootstrap : bool;  (** use the fault-tolerant harness *)
  bootstrap_policy : Xpdl_microbench.Resilient.policy;  (** retry/deadline policy *)
  bootstrap_faults : (int * float) option;
      (** attach a [Faults] plan (seed, per-read rate) to the bootstrap
          machine — forces the resilient harness *)
  filter_drop : string list;  (** attributes filtered from the runtime model *)
  emit_drivers_to : string option;  (** directory for generated driver code *)
  machine_seed : int;
}

let default_config =
  {
    search_path = [ "models" ];
    parameter_config = [];
    run_bootstrap = true;
    bootstrap_opts = Xpdl_microbench.Bootstrap.default_options;
    resilient_bootstrap = false;
    bootstrap_policy = Xpdl_microbench.Resilient.default_policy;
    bootstrap_faults = None;
    filter_drop = Analysis.default_filtered;
    emit_drivers_to = None;
    machine_seed = 42;
  }

type stage_timing = { stage : string; seconds : float }

type report = {
  system : string;
  runtime_model : Ir.t;
  model : Model.element;  (** analyzed, bootstrapped model *)
  diagnostics : Diagnostic.t list;
  link_reports : Analysis.link_report list;
  bootstrap_results : Xpdl_microbench.Bootstrap.result list;
  bootstrap_health : Xpdl_microbench.Resilient.health option;
      (** attempt/fallback/quarantine account of a resilient bootstrap *)
  descriptors_used : string list;
  timings : stage_timing list;
  runtime_model_bytes : int;
}

let timed timings name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := { stage = name; seconds = Unix.gettimeofday () -. t0 } :: !timings;
  r

(** Run the full pipeline for the concrete system named [system].
    [repo] may be supplied pre-loaded (to amortize parsing across runs);
    otherwise the search path is scanned. *)
let run ?(config = default_config) ?repo ~system () : (report, string) result =
  let timings = ref [] in
  let repo =
    match repo with
    | Some r -> r
    | None ->
        timed timings "browse+parse" (fun () ->
            let r = Xpdl_repo.Repo.create () in
            List.iter (Xpdl_repo.Repo.add_root r) config.search_path;
            r)
  in
  match
    timed timings "compose" (fun () ->
        Xpdl_repo.Repo.compose_by_name ~config:config.parameter_config repo system)
  with
  | Error msg -> Error msg
  | Ok composed ->
      let diags = ref composed.Xpdl_repo.Repo.comp_diags in
      let model = composed.Xpdl_repo.Repo.model in
      (* static analysis: bandwidth downgrading *)
      let model, link_reports =
        timed timings "static-analysis" (fun () -> Analysis.effective_bandwidths model)
      in
      (* microbenchmark driver generation *)
      (match config.emit_drivers_to with
      | None -> ()
      | Some dir ->
          timed timings "driver-codegen" (fun () ->
              let pm = Power.of_element model in
              List.iter
                (fun suite -> ignore (Xpdl_microbench.Driver.emit_suite ~dir suite))
                pm.Power.pm_suites));
      (* deployment-time bootstrap of unspecified energy entries.  The
         resilient harness degrades gracefully on meter faults; the plain
         batch path is kept bit-identical for fault-free configs, but is
         guarded so a broken machine degrades the model instead of
         killing the pipeline. *)
      let model, bootstrap_results, bootstrap_health =
        if not config.run_bootstrap then (model, [], None)
        else if config.resilient_bootstrap || config.bootstrap_faults <> None then
          timed timings "bootstrap" (fun () ->
              let machine = Xpdl_simhw.Machine.create ~seed:config.machine_seed model in
              (match config.bootstrap_faults with
              | Some (seed, rate) ->
                  Xpdl_simhw.Machine.inject_faults machine
                    (Xpdl_simhw.Faults.create ~seed ~rate ())
              | None -> ());
              let model, health =
                Xpdl_microbench.Resilient.run ~policy:config.bootstrap_policy ~machine model
              in
              diags := !diags @ health.Xpdl_microbench.Resilient.h_diags;
              let results =
                List.filter_map
                  (fun (b : Xpdl_microbench.Resilient.bench) ->
                    match b.Xpdl_microbench.Resilient.b_stats with
                    | Some energy ->
                        Some
                          {
                            Xpdl_microbench.Bootstrap.instruction =
                              b.Xpdl_microbench.Resilient.b_instruction;
                            benchmark = b.Xpdl_microbench.Resilient.b_benchmark;
                            energy;
                            per_frequency = b.Xpdl_microbench.Resilient.b_sweep;
                            runs =
                              List.length b.Xpdl_microbench.Resilient.b_attempts
                              + List.length b.Xpdl_microbench.Resilient.b_sweep;
                          }
                    | None -> None)
                  health.Xpdl_microbench.Resilient.h_benches
              in
              (model, results, Some health))
        else
          timed timings "bootstrap" (fun () ->
              let machine = Xpdl_simhw.Machine.create ~seed:config.machine_seed model in
              match Xpdl_microbench.Bootstrap.run ~opts:config.bootstrap_opts ~machine model with
              | model, results -> (model, results, None)
              | exception e ->
                  (* a hung meter or a dead core must not abort the
                     composition: keep the un-bootstrapped model, account
                     for the failure, and let XPDL310 flag the leftovers *)
                  diags :=
                    !diags
                    @ [
                        Diagnostic.error ~code:"XPDL500"
                          "microbenchmark bootstrap failed (%s); continuing with unresolved \
                           entries"
                          (Printexc.to_string e);
                      ];
                  (model, [], None))
      in
      (match Xpdl_microbench.Bootstrap.remaining_placeholders model with
      | [] -> ()
      | missing when config.run_bootstrap ->
          diags :=
            !diags
            @ [
                Diagnostic.warning ~code:"XPDL310" "bootstrap left unresolved energy entries: %s"
                  (String.concat ", " missing);
              ]
      | _ -> ());
      (* filtering *)
      let filtered =
        timed timings "filter" (fun () ->
            Analysis.filter_attributes ~drop:config.filter_drop model)
      in
      (* runtime model build + serialization *)
      let ir = timed timings "runtime-model" (fun () -> Ir.of_model filtered) in
      let bytes = timed timings "serialize" (fun () -> Ir.to_bytes ir) in
      Ok
        {
          system;
          runtime_model = ir;
          model;
          diagnostics = !diags;
          link_reports;
          bootstrap_results;
          bootstrap_health;
          descriptors_used = composed.Xpdl_repo.Repo.descriptors_used;
          timings = List.rev !timings;
          runtime_model_bytes = String.length bytes;
        }

(** Run the pipeline and write the runtime-model file to [output]. *)
let run_to_file ?config ?repo ~system ~output () =
  match run ?config ?repo ~system () with
  | Error _ as e -> e
  | Ok report ->
      Ir.to_file output report.runtime_model;
      Ok report

let pp_timings ppf timings =
  List.iter (fun t -> Fmt.pf ppf "  %-16s %8.3f ms@." t.stage (t.seconds *. 1e3)) timings

(** {1 Incremental sessions}

    A session keeps the pipeline's output alive across model edits: the
    analyzed, bootstrapped model lives in an {!Xpdl_store.Store} and the
    runtime IR is maintained alongside it.  {!refresh} re-runs only the
    stages an edit actually dirtied — the bandwidth analysis only when a
    bandwidth-relevant attribute or the tree shape changed (and then by
    writing annotation {e deltas} back through the store's edit API, so
    the store's own derived caches invalidate along the edit spines),
    and the runtime model by patching attribute edits into the IR nodes
    in place; only structural edits or a compacted journal rebuild it. *)

module Store = Xpdl_store.Store

type session = {
  s_config : config;
  s_system : string;
  s_store : Store.t;
  mutable s_synced_rev : int;  (** store revision the IR/analysis reflect *)
  mutable s_ir : Ir.t;
  mutable s_link_reports : Analysis.link_report list;
}

let session_store s = s.s_store
let session_system s = s.s_system
let session_model s = Store.model s.s_store
let session_ir s = s.s_ir
let session_link_reports s = s.s_link_reports

let open_session ?(config = default_config) ?repo ~system () =
  match run ~config ?repo ~system () with
  | Error _ as e -> e
  | Ok report ->
      Ok
        ( {
            s_config = config;
            s_system = system;
            s_store = Store.of_model report.model;
            s_synced_rev = 0;
            s_ir = report.runtime_model;
            s_link_reports = report.link_reports;
          },
          report )

(* Attributes whose edits can change an interconnect's effective
   bandwidth: the channels' and endpoints' declared bandwidths, the
   link's endpoints, and a directly overwritten annotation (re-analysis
   normalizes it back). *)
let bandwidth_relevant = [ "bandwidth"; "max_bandwidth"; "head"; "tail"; "effective_bandwidth" ]

(* Re-run the (idempotent) bandwidth analysis and write only the changed
   annotations back through the store's edit API. *)
let annotate_bandwidths_via_store store =
  let _, reports = Analysis.effective_bandwidths (Store.model store) in
  List.iter
    (fun (r : Analysis.link_report) ->
      let paths =
        Store.find_paths store (fun e ->
            Schema.equal_kind e.Model.kind Schema.Interconnect
            && Model.identifier e = Some r.lr_ident)
      in
      List.iter
        (fun path ->
          match Store.element_at store path with
          | None -> ()
          | Some e -> (
              let current =
                Option.map Xpdl_units.Units.value (Model.attr_quantity e "effective_bandwidth")
              in
              match (r.lr_effective, current) with
              | None, None -> ()
              | None, Some _ -> Store.remove_attr store path "effective_bandwidth"
              | Some eff, Some cur when Float.equal eff cur -> ()
              | Some eff, _ ->
                  Store.set_attr store path "effective_bandwidth"
                    (Model.Quantity (Xpdl_units.Units.bytes_per_second eff, "B/s"))))
        paths)
    reports;
  reports

type refresh_report = {
  rf_revision : int;  (** store revision the session now reflects *)
  rf_edits : int;  (** journal entries folded in (0 after a compaction rebuild) *)
  rf_analysis_rerun : bool;
  rf_ir_rebuilt : bool;  (** [false]: attribute edits were patched in place *)
  rf_diagnostics : Diagnostic.t list;
  rf_timings : stage_timing list;
}

(* Walk an index path down the IR's derived child spans; [None] if it
   dangles. *)
let ir_index_of_path (ir : Ir.t) path =
  let rec go i = function
    | [] -> Some i
    | c :: rest -> ( match Ir.nth_child ir i c with Some j -> go j rest | None -> None)
  in
  go (Ir.root_index ir) path

let refresh (s : session) : refresh_report =
  let store = s.s_store in
  let rev0 = s.s_synced_rev in
  let timings = ref [] in
  let diags = ref [] in
  let compacted, user_edits =
    match Store.edits_since store rev0 with
    | Some l -> (false, l)
    | None ->
        diags :=
          [
            Diagnostic.info ~code:"XPDL410"
              "edit journal compacted before revision %d was refreshed; incremental view \
               rebuilt from scratch"
              rev0;
          ];
        (true, [])
  in
  if (not compacted) && user_edits = [] then
    {
      rf_revision = Store.revision store;
      rf_edits = 0;
      rf_analysis_rerun = false;
      rf_ir_rebuilt = false;
      rf_diagnostics = [];
      rf_timings = [];
    }
  else begin
    let touches_bandwidth (ed : Store.edit) =
      match ed.Store.e_kind with
      | Store.Structure -> true
      | Store.Attr k -> List.mem k bandwidth_relevant
    in
    let analysis_dirty = compacted || List.exists touches_bandwidth user_edits in
    if analysis_dirty then
      s.s_link_reports <-
        timed timings "static-analysis" (fun () -> annotate_bandwidths_via_store store);
    (* fold everything journaled since [rev0] — the user's edits plus the
       analysis' own annotation writes — into the runtime model *)
    let edits = if compacted then None else Store.edits_since store rev0 in
    let drop = s.s_config.filter_drop in
    let ir_rebuilt = ref false in
    (match edits with
    | None -> ir_rebuilt := true
    | Some l
      when List.exists
             (fun (ed : Store.edit) ->
               match ed.Store.e_kind with Store.Structure -> true | Store.Attr _ -> false)
             l ->
        ir_rebuilt := true
    | Some l ->
        timed timings "ir-patch" (fun () ->
            try
              List.iter
                (fun (ed : Store.edit) ->
                  match ed.Store.e_kind with
                  | Store.Structure -> assert false
                  | Store.Attr k when List.mem k drop -> ()
                  | Store.Attr _ -> (
                      match
                        (ir_index_of_path s.s_ir ed.Store.e_path, Store.element_at store ed.Store.e_path)
                      with
                      | Some i, Some e ->
                          let attrs =
                            List.filter (fun (k, _) -> not (List.mem k drop)) e.Model.attrs
                          in
                          Ir.patch_attrs s.s_ir i attrs
                      | _ -> raise_notrace Exit))
                l
            with Exit -> ir_rebuilt := true));
    if !ir_rebuilt then
      s.s_ir <-
        timed timings "runtime-model" (fun () ->
            Ir.of_model (Analysis.filter_attributes ~drop (Store.model store)));
    s.s_synced_rev <- Store.revision store;
    {
      rf_revision = s.s_synced_rev;
      rf_edits = (match edits with Some l -> List.length l | None -> 0);
      rf_analysis_rerun = analysis_dirty;
      rf_ir_rebuilt = !ir_rebuilt;
      rf_diagnostics = !diags;
      rf_timings = List.rev !timings;
    }
  end
