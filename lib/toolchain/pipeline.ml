(** The XPDL processing tool: the end-to-end static pipeline of Sec. IV.

    "It browses the XPDL model repository for all required XPDL files
    recursively referenced in a concrete model tree, parses them,
    generates an intermediate representation of the composed model,
    generates microbenchmarking driver code, invokes runs of
    microbenchmarks where required to derive attributes with unspecified
    values, filters out uninteresting values, performs static analysis of
    the model, and builds a light-weight run-time data structure that is
    finally written into a file."

    Each stage is timed; the report drives experiments E1–E5. *)

open Xpdl_core

type config = {
  search_path : string list;  (** repository roots *)
  parameter_config : Instantiate.env;  (** deployment-time param choices *)
  run_bootstrap : bool;  (** microbenchmark the ["?"] entries *)
  bootstrap_opts : Xpdl_microbench.Bootstrap.options;
  filter_drop : string list;  (** attributes filtered from the runtime model *)
  emit_drivers_to : string option;  (** directory for generated driver code *)
  machine_seed : int;
}

let default_config =
  {
    search_path = [ "models" ];
    parameter_config = [];
    run_bootstrap = true;
    bootstrap_opts = Xpdl_microbench.Bootstrap.default_options;
    filter_drop = Analysis.default_filtered;
    emit_drivers_to = None;
    machine_seed = 42;
  }

type stage_timing = { stage : string; seconds : float }

type report = {
  system : string;
  runtime_model : Ir.t;
  model : Model.element;  (** analyzed, bootstrapped model *)
  diagnostics : Diagnostic.t list;
  link_reports : Analysis.link_report list;
  bootstrap_results : Xpdl_microbench.Bootstrap.result list;
  descriptors_used : string list;
  timings : stage_timing list;
  runtime_model_bytes : int;
}

let timed timings name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := { stage = name; seconds = Unix.gettimeofday () -. t0 } :: !timings;
  r

(** Run the full pipeline for the concrete system named [system].
    [repo] may be supplied pre-loaded (to amortize parsing across runs);
    otherwise the search path is scanned. *)
let run ?(config = default_config) ?repo ~system () : (report, string) result =
  let timings = ref [] in
  let repo =
    match repo with
    | Some r -> r
    | None ->
        timed timings "browse+parse" (fun () ->
            let r = Xpdl_repo.Repo.create () in
            List.iter (Xpdl_repo.Repo.add_root r) config.search_path;
            r)
  in
  match
    timed timings "compose" (fun () ->
        Xpdl_repo.Repo.compose_by_name ~config:config.parameter_config repo system)
  with
  | Error msg -> Error msg
  | Ok composed ->
      let diags = ref composed.Xpdl_repo.Repo.comp_diags in
      let model = composed.Xpdl_repo.Repo.model in
      (* static analysis: bandwidth downgrading *)
      let model, link_reports =
        timed timings "static-analysis" (fun () -> Analysis.effective_bandwidths model)
      in
      (* microbenchmark driver generation *)
      (match config.emit_drivers_to with
      | None -> ()
      | Some dir ->
          timed timings "driver-codegen" (fun () ->
              let pm = Power.of_element model in
              List.iter
                (fun suite -> ignore (Xpdl_microbench.Driver.emit_suite ~dir suite))
                pm.Power.pm_suites));
      (* deployment-time bootstrap of unspecified energy entries *)
      let model, bootstrap_results =
        if config.run_bootstrap then
          timed timings "bootstrap" (fun () ->
              let machine = Xpdl_simhw.Machine.create ~seed:config.machine_seed model in
              Xpdl_microbench.Bootstrap.run ~opts:config.bootstrap_opts ~machine model)
        else (model, [])
      in
      (match Xpdl_microbench.Bootstrap.remaining_placeholders model with
      | [] -> ()
      | missing when config.run_bootstrap ->
          diags :=
            !diags
            @ [
                Diagnostic.warning ~code:"XPDL310" "bootstrap left unresolved energy entries: %s"
                  (String.concat ", " missing);
              ]
      | _ -> ());
      (* filtering *)
      let filtered =
        timed timings "filter" (fun () ->
            Analysis.filter_attributes ~drop:config.filter_drop model)
      in
      (* runtime model build + serialization *)
      let ir = timed timings "runtime-model" (fun () -> Ir.of_model filtered) in
      let bytes = timed timings "serialize" (fun () -> Ir.to_bytes ir) in
      Ok
        {
          system;
          runtime_model = ir;
          model;
          diagnostics = !diags;
          link_reports;
          bootstrap_results;
          descriptors_used = composed.Xpdl_repo.Repo.descriptors_used;
          timings = List.rev !timings;
          runtime_model_bytes = String.length bytes;
        }

(** Run the pipeline and write the runtime-model file to [output]. *)
let run_to_file ?config ?repo ~system ~output () =
  match run ?config ?repo ~system () with
  | Error _ as e -> e
  | Ok report ->
      Ir.to_file output report.runtime_model;
      Ok report

let pp_timings ppf timings =
  List.iter (fun t -> Fmt.pf ppf "  %-16s %8.3f ms@." t.stage (t.seconds *. 1e3)) timings
