(** The light-weight runtime model: a flat, indexed intermediate
    representation of a composed XPDL model, and its on-disk codec.

    The XPDL processing tool "builds a light-weight run-time data
    structure for the composed model that is finally written into a file";
    the application loads that file at startup and introspects it through
    the query API (Sec. IV).  Flattening the element tree into arrays with
    integer child links and pre-built identifier/kind/path indexes is what
    makes runtime queries cheap compared to re-parsing XML — measured in
    experiment E5.

    The node array is laid out in {e preorder}: the subtree of node [i] is
    exactly the contiguous slice [i .. n_subtree_end-1].  Subtree folds and
    aggregations are therefore array scans, not recursive child-index
    chasing.  Attribute keys are interned in a global string pool and each
    node stores its attributes sorted by key id, so {!attr} is a binary
    search with no string hashing.

    The file format is a small versioned binary codec (magic ["XPDLRT"],
    format version 1): length-prefixed strings, varint-free fixed 64-bit
    ints, IEEE doubles.  A hand-rolled codec rather than [Marshal] so the
    format is stable across compiler versions and checkable.  Spans and
    indexes are derived, never serialized, so the wire format is unchanged
    from the first release. *)

open Xpdl_core
open Xpdl_units

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

let pp_value ppf = function
  | VStr s -> Fmt.pf ppf "%S" s
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.pf ppf "%g" f
  | VBool b -> Fmt.bool ppf b
  | VQty (v, d) -> Fmt.pf ppf "%a" Units.pp (Units.make v d)
  | VUnknown -> Fmt.string ppf "?"

(** {1 Interned attribute keys}

    Attribute names are drawn from a small vocabulary (the schema's
    attribute tables plus extension attributes), so nodes store interned
    key ids rather than strings.  The pool is global and append-only:
    equal strings always map to the same id within a process. *)

module Keys = struct
  let table : (string, int) Hashtbl.t = Hashtbl.create 128
  let names = ref (Array.make 128 "")
  let count = ref 0

  let intern s =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None ->
        let i = !count in
        if i = Array.length !names then begin
          let bigger = Array.make (2 * i) "" in
          Array.blit !names 0 bigger 0 i;
          names := bigger
        end;
        !names.(i) <- s;
        incr count;
        Hashtbl.add table s i;
        i

  let intern_opt s = Hashtbl.find_opt table s

  let name i =
    if i < 0 || i >= !count then invalid_arg "Ir.key_name: unknown key id";
    !names.(i)
end

let intern = Keys.intern
let intern_opt = Keys.intern_opt
let key_name = Keys.name

type node = {
  n_index : int;  (** position in {!t.nodes}; preorder rank *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (int * value) array;  (** interned key id → value, sorted by key *)
  n_parent : int;  (** -1 for the root *)
  n_children : int array;
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SM0"] *)
  n_subtree_end : int;
      (** exclusive end of the preorder span: the subtree of this node is
          the node slice [n_index .. n_subtree_end - 1] *)
}

type t = {
  nodes : node array;
  root : int;
  by_ident : (string, int list) Hashtbl.t;  (** ident → node indexes *)
  by_kind : (string, int list) Hashtbl.t;  (** tag → node indexes *)
  by_path : (string, int) Hashtbl.t;  (** scope path → first node index *)
}

(** {1 Building from a model} *)

let value_of_attr : Model.attr_value -> value = function
  | Model.Str s -> VStr s
  | Model.Int i -> VInt i
  | Model.Float f -> VFloat f
  | Model.Bool b -> VBool b
  | Model.Quantity (q, _) -> VQty (Units.value q, Units.dim q)
  | Model.Expr (_, src) -> VStr src
  | Model.Unknown -> VUnknown

let compare_attr (a, _) (b, _) = Int.compare a b

let attrs_of_pairs pairs =
  let a = Array.of_list pairs in
  Array.sort compare_attr a;
  a

(* Common to both construction paths: document order (= index order)
   indexes over identifiers, tags and scope paths.  [by_path] keeps the
   first node of each path, matching what a linear scan would find. *)
let build_indexes nodes =
  let n = Array.length nodes in
  let by_ident = Hashtbl.create (max 16 n) in
  let by_kind = Hashtbl.create 32 in
  let by_path = Hashtbl.create (max 16 n) in
  Array.iter
    (fun nd ->
      (match nd.n_ident with
      | Some i ->
          Hashtbl.replace by_ident i
            (nd.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_ident i))
      | None -> ());
      let tag = Schema.tag_of_kind nd.n_kind in
      Hashtbl.replace by_kind tag
        (nd.n_index :: Option.value ~default:[] (Hashtbl.find_opt by_kind tag));
      if not (Hashtbl.mem by_path nd.n_path) then Hashtbl.add by_path nd.n_path nd.n_index)
    nodes;
  (* restore document order in the indexes *)
  Hashtbl.iter (fun k v -> Hashtbl.replace by_ident k (List.rev v)) by_ident;
  Hashtbl.iter (fun k v -> Hashtbl.replace by_kind k (List.rev v)) by_kind;
  (by_ident, by_kind, by_path)

(** Flatten a composed model into the runtime representation. *)
let of_model (root_el : Model.element) : t =
  let items = ref [] in
  let count = ref 0 in
  let rec build parent path (e : Model.element) : int =
    let index = !count in
    incr count;
    let path =
      match Model.identifier e with
      | Some i -> if path = "" then i else path ^ "/" ^ i
      | None -> path
    in
    let kids =
      List.rev (List.fold_left (fun ks c -> build index path c :: ks) [] e.Model.children)
    in
    items := (index, e, parent, path, kids, !count) :: !items;
    index
  in
  let root_idx = build (-1) "" root_el in
  let arr = Array.make !count None in
  List.iter
    (fun (index, (e : Model.element), parent, path, kids, stop) ->
      arr.(index) <-
        Some
          {
            n_index = index;
            n_kind = e.Model.kind;
            n_ident = Model.identifier e;
            n_type = e.Model.type_ref;
            n_attrs =
              attrs_of_pairs
                (List.map (fun (k, v) -> (Keys.intern k, value_of_attr v)) e.Model.attrs);
            n_parent = parent;
            n_children = Array.of_list kids;
            n_path = path;
            n_subtree_end = stop;
          })
    !items;
  let nodes = Array.map (function Some n -> n | None -> assert false) arr in
  let by_ident, by_kind, by_path = build_indexes nodes in
  { nodes; root = root_idx; by_ident; by_kind; by_path }

(** {1 Accessors (used by the query API)} *)

let size t = Array.length t.nodes
let node t i = t.nodes.(i)

(** Replace node [i]'s attributes in place (interning keys, re-sorting).
    Spans, child links, indexes and the wire format are untouched: this
    is the incremental store's attribute-edit fast path — the IR is
    patched, not rebuilt.  Raises [Invalid_argument] on a bad index. *)
let patch_attrs t i pairs =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Ir.patch_attrs: node index";
  let n = t.nodes.(i) in
  t.nodes.(i) <-
    {
      n with
      n_attrs = attrs_of_pairs (List.map (fun (k, v) -> (Keys.intern k, value_of_attr v)) pairs);
    }
let root t = t.nodes.(t.root)
let parent t (n : node) = if n.n_parent < 0 then None else Some t.nodes.(n.n_parent)
let children t (n : node) = Array.to_list (Array.map (fun i -> t.nodes.(i)) n.n_children)

let attr_by_key (n : node) key =
  let a = n.n_attrs in
  let rec bs lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = a.(mid) in
      if k = key then Some v else if k < key then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (Array.length a)

let attr (n : node) key =
  (* an attribute name never interned cannot occur on any node *)
  match Keys.intern_opt key with None -> None | Some k -> attr_by_key n k

let find_by_ident t ident =
  match Hashtbl.find_opt t.by_ident ident with
  | Some (i :: _) -> Some t.nodes.(i)
  | Some [] | None -> None

let all_by_ident t ident =
  List.map (fun i -> t.nodes.(i)) (Option.value ~default:[] (Hashtbl.find_opt t.by_ident ident))

let indexes_of_tag t tag = Option.value ~default:[] (Hashtbl.find_opt t.by_kind tag)
let indexes_of_kind t kind = indexes_of_tag t (Schema.tag_of_kind kind)
let all_of_kind t kind = List.map (fun i -> t.nodes.(i)) (indexes_of_kind t kind)

(** O(1) lookup of a scope path (first node in document order). *)
let find_by_path t path =
  match Hashtbl.find_opt t.by_path path with Some i -> Some t.nodes.(i) | None -> None

(** Depth-first fold over the subtree of [n]: a scan of the contiguous
    preorder slice [n_index .. n_subtree_end - 1]. *)
let fold_subtree t f acc (n : node) =
  let r = ref acc in
  for i = n.n_index to n.n_subtree_end - 1 do
    r := f !r t.nodes.(i)
  done;
  !r

(** {1 Binary codec} *)

let magic = "XPDLRT"
let format_version = 1

let dim_code = function
  | Units.Size -> 0
  | Units.Frequency -> 1
  | Units.Power -> 2
  | Units.Energy -> 3
  | Units.Time -> 4
  | Units.Bandwidth -> 5
  | Units.Voltage -> 6
  | Units.Temperature -> 7
  | Units.Scalar -> 8

let dim_of_code = function
  | 0 -> Units.Size
  | 1 -> Units.Frequency
  | 2 -> Units.Power
  | 3 -> Units.Energy
  | 4 -> Units.Time
  | 5 -> Units.Bandwidth
  | 6 -> Units.Voltage
  | 7 -> Units.Temperature
  | 8 -> Units.Scalar
  | n -> Fmt.failwith "Ir: bad dimension code %d" n

let put_int buf i = Buffer.add_int64_le buf (Int64.of_int i)
let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_opt_string buf = function
  | None -> put_int buf (-1)
  | Some s -> put_string buf s

let put_value buf = function
  | VStr s ->
      Buffer.add_char buf 'S';
      put_string buf s
  | VInt i ->
      Buffer.add_char buf 'I';
      put_int buf i
  | VFloat f ->
      Buffer.add_char buf 'F';
      put_float buf f
  | VBool b -> Buffer.add_char buf (if b then 'T' else 'f')
  | VQty (v, d) ->
      Buffer.add_char buf 'Q';
      put_float buf v;
      put_int buf (dim_code d)
  | VUnknown -> Buffer.add_char buf '?'

(** Serialize the runtime model to bytes.  Spans and indexes are derived
    structures and are not written; the wire format is still version 1. *)
let to_bytes t : string =
  let buf = Buffer.create (Array.length t.nodes * 64) in
  Buffer.add_string buf magic;
  put_int buf format_version;
  put_int buf (Array.length t.nodes);
  put_int buf t.root;
  Array.iter
    (fun n ->
      put_string buf (Schema.tag_of_kind n.n_kind);
      put_opt_string buf n.n_ident;
      put_opt_string buf n.n_type;
      put_string buf n.n_path;
      put_int buf n.n_parent;
      put_int buf (Array.length n.n_children);
      Array.iter (put_int buf) n.n_children;
      put_int buf (Array.length n.n_attrs);
      Array.iter
        (fun (k, v) ->
          put_string buf (Keys.name k);
          put_value buf v)
        n.n_attrs)
    t.nodes;
  Buffer.contents buf

exception Corrupt of string

type reader = { src : string; mutable off : int }

let need r n =
  if r.off + n > String.length r.src then raise (Corrupt "truncated runtime model file")

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || n > String.length r.src - r.off then raise (Corrupt "bad string length");
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let get_opt_string r =
  need r 8;
  let n = Int64.to_int (String.get_int64_le r.src r.off) in
  if n = -1 then begin
    r.off <- r.off + 8;
    None
  end
  else Some (get_string r)

let get_value r =
  need r 1;
  let tag = r.src.[r.off] in
  r.off <- r.off + 1;
  match tag with
  | 'S' -> VStr (get_string r)
  | 'I' -> VInt (get_int r)
  | 'F' -> VFloat (get_float r)
  | 'T' -> VBool true
  | 'f' -> VBool false
  | 'Q' ->
      let v = get_float r in
      VQty (v, dim_of_code (get_int r))
  | '?' -> VUnknown
  | c -> raise (Corrupt (Fmt.str "bad value tag %C" c))

(* Subtree spans are not on the wire: recompute them from the child
   arrays, verifying on the way that the stored node order really is the
   preorder of the tree (true of every file the toolchain has ever
   written; anything else is structurally corrupt). *)
let derive_spans ~count ~root_idx children =
  let ends = Array.make count (-1) in
  let next = ref 0 in
  let rec go i =
    if i <> !next then raise (Corrupt "node order is not the preorder of the tree");
    incr next;
    Array.iter go children.(i);
    ends.(i) <- !next
  in
  if root_idx <> 0 then raise (Corrupt "root is not the first node");
  go root_idx;
  if !next <> count then raise (Corrupt "unreachable nodes in model tree");
  ends

(** Deserialize; raises {!Corrupt} on malformed input.  Accepts any
    format-v1 file: the preorder spans, attribute-key interning and
    path/ident/kind indexes are all rebuilt at load time. *)
let of_bytes (s : string) : t =
  let r = { src = s; off = 0 } in
  need r (String.length magic);
  if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    raise (Corrupt "bad magic: not a runtime model file");
  r.off <- String.length magic;
  let version = get_int r in
  if version <> format_version then
    raise (Corrupt (Fmt.str "unsupported format version %d" version));
  let count = get_int r in
  if count < 0 then raise (Corrupt "negative node count");
  let root_idx = get_int r in
  if root_idx < 0 || root_idx >= count then raise (Corrupt "bad root index");
  let raw =
    Array.init count (fun _ ->
        let kind = Schema.kind_of_tag (get_string r) in
        let ident = get_opt_string r in
        let ty = get_opt_string r in
        let path = get_string r in
        let parent = get_int r in
        let n_kids = get_int r in
        if n_kids < 0 || n_kids > count then raise (Corrupt "bad child count");
        let children = Array.init n_kids (fun _ -> get_int r) in
        let n_attrs = get_int r in
        if n_attrs < 0 then raise (Corrupt "bad attribute count");
        let attrs =
          Array.init n_attrs (fun _ ->
              let k = Keys.intern (get_string r) in
              (k, get_value r))
        in
        Array.sort compare_attr attrs;
        (kind, ident, ty, path, parent, children, attrs))
  in
  Array.iter
    (fun (_, _, _, _, parent, children, _) ->
      if parent >= count || parent < -1 then raise (Corrupt "dangling parent index");
      Array.iter
        (fun c -> if c < 0 || c >= count then raise (Corrupt "dangling child index"))
        children)
    raw;
  let ends =
    derive_spans ~count ~root_idx (Array.map (fun (_, _, _, _, _, c, _) -> c) raw)
  in
  let nodes =
    Array.mapi
      (fun index (kind, ident, ty, path, parent, children, attrs) ->
        {
          n_index = index;
          n_kind = kind;
          n_ident = ident;
          n_type = ty;
          n_attrs = attrs;
          n_parent = parent;
          n_children = children;
          n_path = path;
          n_subtree_end = ends.(index);
        })
      raw
  in
  let by_ident, by_kind, by_path = build_indexes nodes in
  { nodes; root = root_idx; by_ident; by_kind; by_path }

(** Write the runtime model file consumed by [xpdl_init]. *)
let to_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_bytes t))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))
