(** The light-weight runtime model: a struct-of-arrays {e arena} whose
    byte image is the wire format (see the interface).

    Layout of a version-2 buffer, all integers little-endian:

    {v
    0   magic "XPDLRT"
    6   u64 format version = 2
    14  u64 x 9: node count n, attr count a, kind count nk,
                 key count nkey, string count nstr,
                 kind/key/string blob lengths, total length
    86  u64 payload checksum (FNV-1a-style, 63-bit)
    94  kind table    (nk+1)  x u32 offsets, then blob
        key table     (nkey+1) x u32 offsets, then blob
        string table  (nstr+1) x u32 offsets, then blob
        kind column   n x u8   (local kind id)
        span column   n x u32  (exclusive preorder subtree end)
        ident column  n x i32  (string id, -1 for none)
        type column   n x i32  (string id, -1 for none)
        attr offsets  (n+1) x u32 (CSR row starts into the attr columns)
        attr keys     a x u16  (local key id)
        attr tags     a x u8   (value constructor)
        attr payloads a x u64  (int / float bits / string id)
    v}

    Nodes are in preorder, so the subtree of node [i] is the id slice
    [i .. span(i)-1] and neither children nor parents need be stored:
    both are recovered from the span column (parents by one lazy stack
    sweep).  [of_bytes] on a v2 buffer validates the header arithmetic
    and the span nesting in one O(n) pass and wraps the buffer —
    nothing is decoded up front.  Node views, parents, scope paths,
    strings and the ident/kind/path indexes materialize lazily on
    first use.

    The full payload checksum is {e not} recomputed on load (it would
    dominate the init budget E15 exists to shrink); {!verify} recomputes
    it on demand and the CI codec drill exercises it.  Structural
    corruption is still caught at load; flipped bits inside attribute
    payloads surface as coded [XPDL606] diagnostics at decode time or
    via {!verify}.

    Version-1 files (length-prefixed node stream) are migrated on load:
    decoded with the original reader — including its preorder and
    dangling-index checks — then re-encoded as an arena. *)

open Xpdl_core
open Xpdl_units

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

let pp_value ppf = function
  | VStr s -> Fmt.pf ppf "%S" s
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.pf ppf "%g" f
  | VBool b -> Fmt.bool ppf b
  | VQty (v, d) -> Fmt.pf ppf "%a" Units.pp (Units.make v d)
  | VUnknown -> Fmt.string ppf "?"

(** {1 Interned attribute keys}

    Attribute names are drawn from a small vocabulary (the schema's
    attribute tables plus extension attributes), so nodes store interned
    key ids rather than strings.  The pool is global and append-only:
    equal strings always map to the same id within a process.  The wire
    format never references this pool — each file carries its own key
    table in first-appearance order, mapped to pool ids at load time —
    so encoded bytes do not depend on process history. *)

module Keys = struct
  let table : (string, int) Hashtbl.t = Hashtbl.create 128
  let names = ref (Array.make 128 "")
  let count = ref 0

  (* The pool is process-global, and models are now built concurrently
     (the DSE engine evaluates sweep points on parallel domains), so the
     table must be guarded: Hashtbl is not safe under concurrent
     mutation, and ids handed out racily would break the equal-string =
     equal-id invariant every index relies on. *)
  let lock = Mutex.create ()

  let intern s =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table s with
        | Some i -> i
        | None ->
            let i = !count in
            if i = Array.length !names then begin
              let bigger = Array.make (2 * i) "" in
              Array.blit !names 0 bigger 0 i;
              names := bigger
            end;
            !names.(i) <- s;
            incr count;
            Hashtbl.add table s i;
            i)

  let intern_opt s = Mutex.protect lock (fun () -> Hashtbl.find_opt table s)

  let name i =
    Mutex.protect lock (fun () ->
        if i < 0 || i >= !count then invalid_arg "Ir.key_name: unknown key id";
        !names.(i))
end

let intern = Keys.intern
let intern_opt = Keys.intern_opt
let key_name = Keys.name

type node = {
  n_index : int;  (** preorder rank = node id *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (int * value) array;  (** interned key id → value, sorted by key *)
  n_parent : int;  (** -1 for the root *)
  n_children : int array;  (** derived from the span column *)
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SM0"] *)
  n_subtree_end : int;
      (** exclusive end of the preorder span: the subtree of this node is
          the id slice [n_index .. n_subtree_end - 1] *)
}

type t = {
  buf : string;  (** the wire-format byte image; the arena IS this buffer *)
  n : int;  (** node count *)
  a : int;  (** attribute count *)
  kind_decode : Schema.kind array;  (** local kind id → kind (eager, tiny) *)
  key_global : int array;  (** local key id → global {!Keys} id *)
  key_of_global : (int, int) Hashtbl.t;  (** global {!Keys} id → local key id *)
  nstr : int;
  o_str_off : int;
  o_str_blob : int;
  str_blob_len : int;
  o_kind : int;
  o_end : int;
  o_ident : int;
  o_type : int;
  o_attr_off : int;
  o_attr_key : int;
  o_attr_tag : int;
  o_attr_val : int;
  mutable strings : string option array;
      (** per-string decode cache, [[||]] until the first string decode *)
  mutable parents : int array;
      (** parent ids, derived from the span column on first use ([[||]]
          until then): parents are not on the wire *)
  mutable paths : string array option;  (** all scope paths, built on first use *)
  mutable by_ident : (string, int list) Hashtbl.t option;
  mutable by_tag : (string, int list) Hashtbl.t option;
  mutable by_path : (string, int) Hashtbl.t option;
  mutable views : node option array;
      (** materialized node records; [[||]] until the first view is built
          so a pure load allocates nothing proportional to [n] *)
  patched : (int, (int * value) array) Hashtbl.t;
      (** attribute-edit overlay: node id → replacement attrs, global-sorted *)
}

let value_of_attr : Model.attr_value -> value = function
  | Model.Str s -> VStr s
  | Model.Int i -> VInt i
  | Model.Float f -> VFloat f
  | Model.Bool b -> VBool b
  | Model.Quantity (q, _) -> VQty (Units.value q, Units.dim q)
  | Model.Expr (_, src) -> VStr src
  | Model.Unknown -> VUnknown

let compare_attr (a, _) (b, _) = Int.compare a b

let attrs_of_pairs pairs =
  let a = Array.of_list pairs in
  Array.sort compare_attr a;
  a

(** {1 Diagnostics} *)

exception Corrupt of Diagnostic.t

let corrupt code fmt =
  Fmt.kstr (fun m -> raise (Corrupt (Diagnostic.error ~code "%s" m))) fmt

(** {1 Primitive readers} *)

(* Little-endian loads.  [String.get_int32_le] compiles to one unaligned
   32-bit load whose boxed [int32] result is eliminated by the compiler's
   local unboxing (measured allocation-free), so these are the fastest
   portable readers available without flambda. *)
let u8 s o = Char.code (String.unsafe_get s o)
let u16 s o = String.get_uint16_le s o
let i32 s o = Int32.to_int (String.get_int32_le s o)
let u32 s o = i32 s o land 0xFFFFFFFF

(** {1 Codec constants} *)

let magic = "XPDLRT"
let format_version = 2
let v1_version = 1

(* magic (6) + version (8) + 9 length fields (72) + checksum (8) *)
let header_size = 94
let checksum_off = 86

let dim_code = function
  | Units.Size -> 0
  | Units.Frequency -> 1
  | Units.Power -> 2
  | Units.Energy -> 3
  | Units.Time -> 4
  | Units.Bandwidth -> 5
  | Units.Voltage -> 6
  | Units.Temperature -> 7
  | Units.Scalar -> 8

let dim_of_code = function
  | 0 -> Units.Size
  | 1 -> Units.Frequency
  | 2 -> Units.Power
  | 3 -> Units.Energy
  | 4 -> Units.Time
  | 5 -> Units.Bandwidth
  | 6 -> Units.Voltage
  | 7 -> Units.Temperature
  | 8 -> Units.Scalar
  | n -> corrupt "XPDL606" "bad dimension code %d" n

(* A 63-bit FNV-1a variant folding eight bytes at a time; the top bit is
   masked off so the value round-trips through the u64 header slot. *)
let fnv_prime = 0x100000001b3

let checksum_sub (s : string) pos len =
  let h = ref 0x2545F4914F6CDD1D in
  let words = len / 8 in
  for w = 0 to words - 1 do
    let c = Int64.to_int (String.get_int64_le s (pos + (8 * w))) in
    h := (!h lxor c) * fnv_prime land max_int
  done;
  for o = pos + (8 * words) to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s o)) * fnv_prime land max_int
  done;
  !h

(** {1 Encoder}

    All construction paths — {!of_model}, v1 migration, re-encoding a
    patched arena — funnel through one encoder over a neutral node
    description, so there is exactly one writer of the v2 layout.
    Tables are interned in first-appearance order (deterministic given
    the input, independent of the process-global {!Keys} pool), and
    per-node attributes are sorted by local key id, so encoding the same
    logical model always yields identical bytes. *)

type enc_node = {
  ek : string;  (** kind tag *)
  eid : string option;
  ety : string option;
  eattrs : (string * value) list;
  eend : int;  (** exclusive preorder span end; parents are derived *)
}

type interner = {
  it_tbl : (string, int) Hashtbl.t;
  mutable it_rev : string list;
  mutable it_cnt : int;
  mutable it_blob : int;
}

let interner () = { it_tbl = Hashtbl.create 64; it_rev = []; it_cnt = 0; it_blob = 0 }

let intern_in it s =
  match Hashtbl.find_opt it.it_tbl s with
  | Some i -> i
  | None ->
      let i = it.it_cnt in
      Hashtbl.add it.it_tbl s i;
      it.it_rev <- s :: it.it_rev;
      it.it_cnt <- i + 1;
      it.it_blob <- it.it_blob + String.length s;
      i

let w32 b o v = Bytes.set_int32_le b o (Int32.of_int v)
let w64 b o v = Bytes.set_int64_le b o (Int64.of_int v)

let encode (nodes : enc_node array) : string =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Ir.encode: empty model";
  let kinds = interner () and keys = interner () and strs = interner () in
  let total_attrs = ref 0 in
  let prep =
    Array.map
      (fun nd ->
        let k = intern_in kinds nd.ek in
        let sid = function None -> -1 | Some s -> intern_in strs s in
        let id = sid nd.eid in
        let ty = sid nd.ety in
        let attrs =
          Array.of_list
            (List.map
               (fun (name, v) ->
                 let lk = intern_in keys name in
                 let tag, payload =
                   match v with
                   | VStr s -> (0, Int64.of_int (intern_in strs s))
                   | VInt i -> (1, Int64.of_int i)
                   | VFloat f -> (2, Int64.bits_of_float f)
                   | VBool false -> (3, 0L)
                   | VBool true -> (4, 0L)
                   | VUnknown -> (5, 0L)
                   | VQty (q, d) -> (6 + dim_code d, Int64.bits_of_float q)
                 in
                 (lk, tag, payload))
               nd.eattrs)
        in
        Array.sort (fun (x, _, _) (y, _, _) -> Int.compare x y) attrs;
        total_attrs := !total_attrs + Array.length attrs;
        (k, id, ty, attrs))
      nodes
  in
  let a = !total_attrs in
  let nk = kinds.it_cnt and nkey = keys.it_cnt and nstr = strs.it_cnt in
  if nk > 255 then invalid_arg "Ir.encode: more than 255 element kinds";
  if nkey > 0xFFFF then invalid_arg "Ir.encode: more than 65535 attribute keys";
  let o_kind_off = header_size in
  let o_kind_blob = o_kind_off + (4 * (nk + 1)) in
  let o_key_off = o_kind_blob + kinds.it_blob in
  let o_key_blob = o_key_off + (4 * (nkey + 1)) in
  let o_str_off = o_key_blob + keys.it_blob in
  let o_str_blob = o_str_off + (4 * (nstr + 1)) in
  let o_kind = o_str_blob + strs.it_blob in
  let o_end = o_kind + n in
  let o_ident = o_end + (4 * n) in
  let o_type = o_ident + (4 * n) in
  let o_attr_off = o_type + (4 * n) in
  let o_attr_key = o_attr_off + (4 * (n + 1)) in
  let o_attr_tag = o_attr_key + (2 * a) in
  let o_attr_val = o_attr_tag + a in
  let total = o_attr_val + (8 * a) in
  let b = Bytes.create total in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  w64 b 6 format_version;
  w64 b 14 n;
  w64 b 22 a;
  w64 b 30 nk;
  w64 b 38 nkey;
  w64 b 46 nstr;
  w64 b 54 kinds.it_blob;
  w64 b 62 keys.it_blob;
  w64 b 70 strs.it_blob;
  w64 b 78 total;
  w64 b checksum_off 0;
  let write_table it o_off o_blob =
    let items = Array.of_list (List.rev it.it_rev) in
    let off = ref 0 in
    Array.iteri
      (fun i s ->
        w32 b (o_off + (4 * i)) !off;
        Bytes.blit_string s 0 b (o_blob + !off) (String.length s);
        off := !off + String.length s)
      items;
    w32 b (o_off + (4 * Array.length items)) !off
  in
  write_table kinds o_kind_off o_kind_blob;
  write_table keys o_key_off o_key_blob;
  write_table strs o_str_off o_str_blob;
  let ai = ref 0 in
  Array.iteri
    (fun i (k, id, ty, attrs) ->
      Bytes.unsafe_set b (o_kind + i) (Char.unsafe_chr k);
      w32 b (o_end + (4 * i)) nodes.(i).eend;
      w32 b (o_ident + (4 * i)) id;
      w32 b (o_type + (4 * i)) ty;
      w32 b (o_attr_off + (4 * i)) !ai;
      Array.iter
        (fun (lk, tag, payload) ->
          let j = !ai in
          Bytes.set_uint16_le b (o_attr_key + (2 * j)) lk;
          Bytes.unsafe_set b (o_attr_tag + j) (Char.unsafe_chr tag);
          Bytes.set_int64_le b (o_attr_val + (8 * j)) payload;
          incr ai)
        attrs)
    prep;
  w32 b (o_attr_off + (4 * n)) !ai;
  let sum = checksum_sub (Bytes.unsafe_to_string b) header_size (total - header_size) in
  Bytes.set_int64_le b checksum_off (Int64.of_int sum);
  Bytes.unsafe_to_string b

(** {1 Version-2 decoder: validate + wrap} *)

let of_bytes_v2 (s : string) : t =
  let len = String.length s in
  if len < header_size then
    corrupt "XPDL603" "runtime model truncated: %d bytes is shorter than the %d-byte header" len
      header_size;
  let field k what =
    let v = String.get_int64_le s (14 + (8 * k)) in
    if Int64.compare v 0L < 0 || Int64.compare v 0x7FFFFFFFL > 0 then
      corrupt "XPDL607" "header %s out of range (%Ld)" what v;
    Int64.to_int v
  in
  let n = field 0 "node count" in
  let a = field 1 "attribute count" in
  let nk = field 2 "kind count" in
  let nkey = field 3 "key count" in
  let nstr = field 4 "string count" in
  let kind_blob_len = field 5 "kind blob length" in
  let key_blob_len = field 6 "key blob length" in
  let str_blob_len = field 7 "string blob length" in
  let total_len = field 8 "total length" in
  if n < 1 then corrupt "XPDL605" "model has no nodes";
  if nk < 1 || nk > 255 then corrupt "XPDL607" "kind table size %d out of range (1..255)" nk;
  if nkey > 0xFFFF then corrupt "XPDL607" "key table size %d out of range (0..65535)" nkey;
  let o_kind_off = header_size in
  let o_kind_blob = o_kind_off + (4 * (nk + 1)) in
  let o_key_off = o_kind_blob + kind_blob_len in
  let o_key_blob = o_key_off + (4 * (nkey + 1)) in
  let o_str_off = o_key_blob + key_blob_len in
  let o_str_blob = o_str_off + (4 * (nstr + 1)) in
  let o_kind = o_str_blob + str_blob_len in
  let o_end = o_kind + n in
  let o_ident = o_end + (4 * n) in
  let o_type = o_ident + (4 * n) in
  let o_attr_off = o_type + (4 * n) in
  let o_attr_key = o_attr_off + (4 * (n + 1)) in
  let o_attr_tag = o_attr_key + (2 * a) in
  let o_attr_val = o_attr_tag + a in
  let computed = o_attr_val + (8 * a) in
  if computed <> total_len then
    corrupt "XPDL607" "sections add up to %d bytes but the header declares %d" computed total_len;
  if total_len <> len then
    corrupt "XPDL603" "runtime model truncated: file is %d bytes, header declares %d" len
      total_len;
  (* the kind and key tables are tiny: decode them eagerly *)
  let table_entry o_off o_blob blob_len k what =
    let off0 = u32 s (o_off + (4 * k)) and off1 = u32 s (o_off + (4 * k) + 4) in
    if off0 > off1 || off1 > blob_len then
      corrupt "XPDL605" "%s table offsets corrupt (entry %d)" what k;
    String.sub s (o_blob + off0) (off1 - off0)
  in
  let kind_decode =
    Array.init nk (fun k -> Schema.kind_of_tag (table_entry o_kind_off o_kind_blob kind_blob_len k "kind"))
  in
  let key_global =
    Array.init nkey (fun k -> Keys.intern (table_entry o_key_off o_key_blob key_blob_len k "key"))
  in
  let key_of_global = Hashtbl.create (max 16 nkey) in
  Array.iteri
    (fun lk g -> if not (Hashtbl.mem key_of_global g) then Hashtbl.add key_of_global g lk)
    key_global;
  (* One O(n) structural pass over the span column: every subtree span
     must nest strictly inside the innermost open span, so the ids form
     a preorder tree.  That is the single invariant the lazy accessors
     rely on for termination (children/parents walk spans); everything
     per-value — kind ids, attr CSR rows, string ids — is re-checked on
     access ([XPDL605]/[XPDL606] from the accessor), and the payload
     checksum is deliberately left to {!verify}. *)
  if u32 s o_end <> n then corrupt "XPDL605" "root span does not cover the model";
  if u32 s o_attr_off <> 0 then corrupt "XPDL605" "attribute offsets do not start at 0";
  (* The innermost open span lives in [cur_i]/[cur_e]; outer ancestors are
     spilled to a small doubling stack (depth, not node count).  Pops
     cannot underflow: the bottom entry is always the root, whose span
     [n] exceeds every i.  All unsafe stack accesses are below [sp],
     which the push path bounds. *)
  let st_e = ref (Array.make 64 0) in
  let sp = ref 0 in
  let cur_e = ref n in
  for i = 1 to n - 1 do
    while !cur_e <= i do
      decr sp;
      cur_e := Array.unsafe_get !st_e !sp
    done;
    let e = u32 s (o_end + (4 * i)) in
    if e <= i || e > !cur_e then
      corrupt "XPDL605" "node %d: subtree span %d escapes its parent" i e;
    if !sp >= Array.length !st_e then begin
      let b = Array.make (2 * Array.length !st_e) 0 in
      Array.blit !st_e 0 b 0 !sp;
      st_e := b
    end;
    Array.unsafe_set !st_e !sp !cur_e;
    incr sp;
    cur_e := e
  done;
  if u32 s (o_attr_off + (4 * n)) <> a then
    corrupt "XPDL605" "attribute offsets do not end at the attribute count";
  {
    buf = s;
    n;
    a;
    kind_decode;
    key_global;
    key_of_global;
    nstr;
    o_str_off;
    o_str_blob;
    str_blob_len;
    o_kind;
    o_end;
    o_ident;
    o_type;
    o_attr_off;
    o_attr_key;
    o_attr_tag;
    o_attr_val;
    strings = [||];
    parents = [||];
    paths = None;
    by_ident = None;
    by_tag = None;
    by_path = None;
    views = [||];
    patched = Hashtbl.create 7;
  }

(** {1 Accessors (used by the query API)} *)

let size t = t.n
let root_index (_ : t) = 0
let check t i fn = if i < 0 || i >= t.n then invalid_arg fn

(* Raw column reads; the index is the caller's responsibility.  Kind ids
   are validated here (lazily, per access) rather than at load time. *)
let kind_raw t i =
  let k = u8 t.buf (t.o_kind + i) in
  if k >= Array.length t.kind_decode then corrupt "XPDL606" "node %d: kind id out of range" i;
  t.kind_decode.(k)

let end_raw t i = u32 t.buf (t.o_end + (4 * i))

(* Parents are not on the wire: the parent of [i] is the innermost span
   covering it, recovered with one stack sweep on first use. *)
let ensure_parents t =
  if Array.length t.parents = 0 then begin
    let p = Array.make t.n (-1) in
    let stack = ref [ (0, t.n) ] in
    for i = 1 to t.n - 1 do
      while (match !stack with (_, e) :: _ -> e <= i | [] -> false) do
        stack := List.tl !stack
      done;
      (match !stack with (par, _) :: _ -> p.(i) <- par | [] -> ());
      stack := (i, end_raw t i) :: !stack
    done;
    t.parents <- p
  end;
  t.parents

let parent_raw t i = if i = 0 then -1 else (ensure_parents t).(i)

let string_at t sid =
  if sid < 0 || sid >= t.nstr then corrupt "XPDL606" "string id %d out of range" sid;
  if Array.length t.strings = 0 then t.strings <- Array.make t.nstr None;
  match t.strings.(sid) with
  | Some s -> s
  | None ->
      let off0 = u32 t.buf (t.o_str_off + (4 * sid)) in
      let off1 = u32 t.buf (t.o_str_off + (4 * sid) + 4) in
      if off0 > off1 || off1 > t.str_blob_len then
        corrupt "XPDL605" "string table offsets corrupt (entry %d)" sid;
      let s = String.sub t.buf (t.o_str_blob + off0) (off1 - off0) in
      t.strings.(sid) <- Some s;
      s

let opt_string_raw t col i =
  let v = i32 t.buf (col + (4 * i)) in
  if v = -1 then None else Some (string_at t v)

let ident_raw t i = opt_string_raw t t.o_ident i
let type_raw t i = opt_string_raw t t.o_type i

let decode_value t tag payload =
  match tag with
  | 0 -> VStr (string_at t (Int64.to_int payload))
  | 1 -> VInt (Int64.to_int payload)
  | 2 -> VFloat (Int64.float_of_bits payload)
  | 3 -> VBool false
  | 4 -> VBool true
  | 5 -> VUnknown
  | tag when tag >= 6 && tag <= 14 -> VQty (Int64.float_of_bits payload, dim_of_code (tag - 6))
  | tag -> corrupt "XPDL606" "bad value tag %d" tag

let wire_attr t j =
  let lk = u16 t.buf (t.o_attr_key + (2 * j)) in
  if lk >= Array.length t.key_global then
    corrupt "XPDL606" "attribute key id %d out of range" lk;
  let tag = u8 t.buf (t.o_attr_tag + j) in
  let payload = String.get_int64_le t.buf (t.o_attr_val + (8 * j)) in
  (lk, tag, payload)

(* CSR row of node [i]'s attributes, validated per access: the loader
   only pins the first and last offsets, not interior monotonicity. *)
let attr_range t i =
  let off0 = u32 t.buf (t.o_attr_off + (4 * i)) in
  let off1 = u32 t.buf (t.o_attr_off + (4 * i) + 4) in
  if off0 > off1 || off1 > t.a then
    corrupt "XPDL605" "node %d: attribute offsets not monotone" i;
  (off0, off1)

(* Node [i]'s attributes as the canonical global-key-sorted array. *)
let attrs_at t i =
  match Hashtbl.find_opt t.patched i with
  | Some arr -> arr
  | None ->
      let off0, off1 = attr_range t i in
      let arr =
        Array.init (off1 - off0) (fun j ->
            let lk, tag, payload = wire_attr t (off0 + j) in
            (t.key_global.(lk), decode_value t tag payload))
      in
      Array.sort compare_attr arr;
      arr

(* Derive the scope path of every node in one pass: unnamed nodes
   inherit their parent's prefix (the load-time structural pass
   guarantees parent(i) < i, so one forward sweep suffices). *)
let ensure_paths t =
  match t.paths with
  | Some p -> p
  | None ->
      let p = Array.make t.n "" in
      (match ident_raw t 0 with Some id -> p.(0) <- id | None -> ());
      for i = 1 to t.n - 1 do
        let prefix = p.(parent_raw t i) in
        p.(i) <-
          (match ident_raw t i with
          | Some id -> if prefix = "" then id else prefix ^ "/" ^ id
          | None -> prefix)
      done;
      t.paths <- Some p;
      p

(* Children of [i], derived from the span column: first child is [i+1]
   (when the span extends past [i]), each next sibling starts where the
   previous subtree ends. *)
let children_raw t i =
  let e = end_raw t i in
  let rec walk j acc = if j >= e then List.rev acc else walk (end_raw t j) (j :: acc) in
  walk (i + 1) []

let ensure_views t =
  if Array.length t.views = 0 then t.views <- Array.make t.n None;
  t.views

let node t i =
  check t i "Ir.node: index out of bounds";
  match (ensure_views t).(i) with
  | Some v -> v
  | None ->
      let v =
        {
          n_index = i;
          n_kind = kind_raw t i;
          n_ident = ident_raw t i;
          n_type = type_raw t i;
          n_attrs = attrs_at t i;
          n_parent = parent_raw t i;
          n_children = Array.of_list (children_raw t i);
          n_path = (ensure_paths t).(i);
          n_subtree_end = end_raw t i;
        }
      in
      t.views.(i) <- Some v;
      v

let kind_at t i =
  check t i "Ir.kind_at: index out of bounds";
  kind_raw t i

let ident_at t i =
  check t i "Ir.ident_at: index out of bounds";
  ident_raw t i

let type_at t i =
  check t i "Ir.type_at: index out of bounds";
  type_raw t i

let parent_index t i =
  check t i "Ir.parent_index: index out of bounds";
  parent_raw t i

let span_end_at t i =
  check t i "Ir.span_end_at: index out of bounds";
  end_raw t i

let path_at t i =
  check t i "Ir.path_at: index out of bounds";
  (ensure_paths t).(i)

let children_ids t i =
  check t i "Ir.children_ids: index out of bounds";
  children_raw t i

let nth_child t i c =
  check t i "Ir.nth_child: index out of bounds";
  let e = end_raw t i in
  let rec walk j k =
    if j >= e then None else if k = c then Some j else walk (end_raw t j) (k + 1)
  in
  if c < 0 then None else walk (i + 1) 0

let search_sorted (a : (int * value) array) key =
  let rec bs lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = a.(mid) in
      if k = key then Some v else if k < key then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (Array.length a)

let attr_by_key_at t i key =
  check t i "Ir.attr_by_key_at: index out of bounds";
  match Hashtbl.find_opt t.patched i with
  | Some arr -> search_sorted arr key
  | None -> (
      match if Array.length t.views = 0 then None else t.views.(i) with
      | Some v -> search_sorted v.n_attrs key
      | None -> (
          match Hashtbl.find_opt t.key_of_global key with
          | None -> None
          | Some lk ->
              let off0, off1 = attr_range t i in
              let rec scan j =
                if j >= off1 then None
                else
                  let lk', tag, payload = wire_attr t j in
                  if lk' = lk then Some (decode_value t tag payload) else scan (j + 1)
              in
              scan off0))

let attr_at t i name =
  match Keys.intern_opt name with None -> None | Some k -> attr_by_key_at t i k

(** Replace node [i]'s attributes (interning keys, re-sorting) in an
    overlay over the immutable arena.  Spans, indexes and previously
    fetched records are untouched: this is the incremental store's
    attribute-edit fast path — the IR is patched, not rebuilt.  Raises
    [Invalid_argument] on a bad index. *)
let patch_attrs t i pairs =
  check t i "Ir.patch_attrs: node index";
  let arr = attrs_of_pairs (List.map (fun (k, v) -> (Keys.intern k, value_of_attr v)) pairs) in
  Hashtbl.replace t.patched i arr;
  if Array.length t.views > 0 then
    match t.views.(i) with
    | Some v -> t.views.(i) <- Some { v with n_attrs = arr }
    | None -> ()

let root t = node t 0
let parent t (n : node) = if n.n_parent < 0 then None else Some (node t n.n_parent)
let children t (n : node) = Array.to_list (Array.map (node t) n.n_children)
let attr_by_key (n : node) key = search_sorted n.n_attrs key

let attr (n : node) key =
  (* an attribute name never interned cannot occur on any node *)
  match Keys.intern_opt key with None -> None | Some k -> attr_by_key n k

(** {2 Lazy document-order indexes} *)

let ensure_by_ident t =
  match t.by_ident with
  | Some h -> h
  | None ->
      let h = Hashtbl.create (max 16 t.n) in
      for i = t.n - 1 downto 0 do
        match ident_raw t i with
        | Some id ->
            Hashtbl.replace h id (i :: Option.value ~default:[] (Hashtbl.find_opt h id))
        | None -> ()
      done;
      t.by_ident <- Some h;
      h

let ensure_by_tag t =
  match t.by_tag with
  | Some h -> h
  | None ->
      let nk = Array.length t.kind_decode in
      let buckets = Array.make nk [] in
      for i = t.n - 1 downto 0 do
        let k = u8 t.buf (t.o_kind + i) in
        if k >= nk then corrupt "XPDL606" "node %d: kind id out of range" i;
        buckets.(k) <- i :: buckets.(k)
      done;
      let h = Hashtbl.create 32 in
      Array.iteri
        (fun k ids ->
          if ids <> [] then
            let tag = Schema.tag_of_kind t.kind_decode.(k) in
            match Hashtbl.find_opt h tag with
            | Some prev -> Hashtbl.replace h tag (prev @ ids)
            | None -> Hashtbl.add h tag ids)
        buckets;
      t.by_tag <- Some h;
      h

let ensure_by_path t =
  match t.by_path with
  | Some h -> h
  | None ->
      let paths = ensure_paths t in
      let h = Hashtbl.create (max 16 t.n) in
      for i = 0 to t.n - 1 do
        if not (Hashtbl.mem h paths.(i)) then Hashtbl.add h paths.(i) i
      done;
      t.by_path <- Some h;
      h

let find_by_ident t ident =
  match Hashtbl.find_opt (ensure_by_ident t) ident with
  | Some (i :: _) -> Some (node t i)
  | Some [] | None -> None

let all_by_ident t ident =
  List.map (node t) (Option.value ~default:[] (Hashtbl.find_opt (ensure_by_ident t) ident))

let indexes_of_tag t tag = Option.value ~default:[] (Hashtbl.find_opt (ensure_by_tag t) tag)
let indexes_of_kind t kind = indexes_of_tag t (Schema.tag_of_kind kind)
let all_of_kind t kind = List.map (node t) (indexes_of_kind t kind)

(** O(1) lookup of a scope path (first node in document order). *)
let find_by_path t path =
  match Hashtbl.find_opt (ensure_by_path t) path with Some i -> Some (node t i) | None -> None

(** Depth-first fold over the subtree of [n]: a scan of the contiguous
    preorder slice [n_index .. n_subtree_end - 1]. *)
let fold_subtree t f acc (n : node) =
  let r = ref acc in
  for i = n.n_index to n.n_subtree_end - 1 do
    r := f !r (node t i)
  done;
  !r

(** {1 Building from a model} *)

let of_model (root_el : Model.element) : t =
  let count = ref 0 in
  let items = ref [] in
  let rec build (e : Model.element) =
    let index = !count in
    incr count;
    List.iter build e.Model.children;
    items := (index, e, !count) :: !items
  in
  build root_el;
  let enc = Array.make !count { ek = ""; eid = None; ety = None; eattrs = []; eend = 0 } in
  List.iter
    (fun (index, (e : Model.element), stop) ->
      enc.(index) <-
        {
          ek = Schema.tag_of_kind e.Model.kind;
          eid = Model.identifier e;
          ety = e.Model.type_ref;
          eattrs = List.map (fun (k, v) -> (k, value_of_attr v)) e.Model.attrs;
          eend = stop;
        })
    !items;
  (* run the encoded image through the one validated load path *)
  of_bytes_v2 (encode enc)

(** {1 Version-1 migration reader}

    The seed release's codec: length-prefixed strings, fixed 64-bit
    ints, explicit child arrays, derived spans.  Retained read-only —
    a v1 file is decoded with all of the original structural checks,
    then re-encoded as an arena. *)

type reader = { src : string; mutable off : int }

let need r n =
  if r.off + n > String.length r.src then corrupt "XPDL603" "truncated runtime model file"

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.off) in
  r.off <- r.off + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || n > String.length r.src - r.off then corrupt "XPDL603" "bad string length";
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let get_opt_string r =
  need r 8;
  let n = Int64.to_int (String.get_int64_le r.src r.off) in
  if n = -1 then begin
    r.off <- r.off + 8;
    None
  end
  else Some (get_string r)

let get_value r =
  need r 1;
  let tag = r.src.[r.off] in
  r.off <- r.off + 1;
  match tag with
  | 'S' -> VStr (get_string r)
  | 'I' -> VInt (get_int r)
  | 'F' -> VFloat (get_float r)
  | 'T' -> VBool true
  | 'f' -> VBool false
  | 'Q' ->
      let v = get_float r in
      VQty (v, dim_of_code (get_int r))
  | '?' -> VUnknown
  | c -> corrupt "XPDL606" "bad value tag %C" c

(* Subtree spans are not on the v1 wire: recompute them from the child
   arrays, verifying on the way that the stored node order really is the
   preorder of the tree (true of every file the toolchain has ever
   written; anything else is structurally corrupt). *)
let derive_spans ~count ~root_idx children =
  let ends = Array.make count (-1) in
  let next = ref 0 in
  let rec go i =
    if i <> !next then corrupt "XPDL605" "node order is not the preorder of the tree";
    incr next;
    Array.iter go children.(i);
    ends.(i) <- !next
  in
  if root_idx <> 0 then corrupt "XPDL605" "root is not the first node";
  go root_idx;
  if !next <> count then corrupt "XPDL605" "unreachable nodes in model tree";
  ends

let of_bytes_v1 (s : string) : t =
  let r = { src = s; off = String.length magic + 8 } in
  let count = get_int r in
  if count < 1 then corrupt "XPDL605" "bad node count %d" count;
  let root_idx = get_int r in
  if root_idx < 0 || root_idx >= count then corrupt "XPDL605" "bad root index %d" root_idx;
  let raw =
    Array.init count (fun _ ->
        let tag = get_string r in
        let ident = get_opt_string r in
        let ty = get_opt_string r in
        let _stored_path = get_string r in
        let parent = get_int r in
        let n_kids = get_int r in
        if n_kids < 0 || n_kids > count then corrupt "XPDL605" "bad child count %d" n_kids;
        let children = Array.init n_kids (fun _ -> get_int r) in
        let n_attrs = get_int r in
        if n_attrs < 0 then corrupt "XPDL605" "bad attribute count %d" n_attrs;
        let attrs = ref [] in
        for _ = 1 to n_attrs do
          let k = get_string r in
          let v = get_value r in
          attrs := (k, v) :: !attrs
        done;
        (tag, ident, ty, parent, children, List.rev !attrs))
  in
  Array.iter
    (fun (_, _, _, parent, children, _) ->
      if parent >= count || parent < -1 then corrupt "XPDL605" "dangling parent index";
      Array.iter
        (fun c -> if c < 0 || c >= count then corrupt "XPDL605" "dangling child index")
        children)
    raw;
  let ends = derive_spans ~count ~root_idx (Array.map (fun (_, _, _, _, c, _) -> c) raw) in
  let enc =
    Array.mapi
      (fun i (tag, ident, ty, _parent, _children, attrs) ->
        { ek = tag; eid = ident; ety = ty; eattrs = attrs; eend = ends.(i) })
      raw
  in
  of_bytes_v2 (encode enc)

(** {1 Codec entry points} *)

let of_bytes (s : string) : t =
  let mlen = String.length magic in
  if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic) then
    corrupt "XPDL601" "bad magic: not a runtime model file";
  if String.length s < mlen + 8 then
    corrupt "XPDL603" "runtime model truncated before the version field";
  let v = String.get_int64_le s mlen in
  if Int64.equal v 2L then of_bytes_v2 s
  else if Int64.equal v 1L then of_bytes_v1 s
  else corrupt "XPDL602" "unsupported runtime model format version %Ld" v

let of_bytes_result s = match of_bytes s with t -> Ok t | exception Corrupt d -> Error d

(* Re-encode only when the attribute overlay is non-empty; otherwise the
   load-time byte image is returned as-is (save/load/save is the
   identity on bytes). *)
let enc_of_arena t =
  Array.init t.n (fun i ->
      let v = node t i in
      {
        ek = Schema.tag_of_kind v.n_kind;
        eid = v.n_ident;
        ety = v.n_type;
        eattrs = Array.to_list (Array.map (fun (k, value) -> (Keys.name k, value)) v.n_attrs);
        eend = v.n_subtree_end;
      })

let to_bytes t = if Hashtbl.length t.patched = 0 then t.buf else encode (enc_of_arena t)

let verify t =
  let bytes = to_bytes t in
  let stored = Int64.to_int (String.get_int64_le bytes checksum_off) in
  let got = checksum_sub bytes header_size (String.length bytes - header_size) in
  if got = stored then Ok ()
  else
    Error
      (Diagnostic.error ~code:"XPDL604"
         "runtime model checksum mismatch: stored %016x, computed %016x" stored got)

(** {1 Legacy version-1 writer}

    Byte-compatible with the seed release's [to_bytes]; kept so the
    migration path stays testable (and benchable) without checked-in v1
    artifacts for every model.  New files are always written as v2. *)

let put_int buf i = Buffer.add_int64_le buf (Int64.of_int i)
let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_opt_string buf = function
  | None -> put_int buf (-1)
  | Some s -> put_string buf s

let put_value buf = function
  | VStr s ->
      Buffer.add_char buf 'S';
      put_string buf s
  | VInt i ->
      Buffer.add_char buf 'I';
      put_int buf i
  | VFloat f ->
      Buffer.add_char buf 'F';
      put_float buf f
  | VBool b -> Buffer.add_char buf (if b then 'T' else 'f')
  | VQty (v, d) ->
      Buffer.add_char buf 'Q';
      put_float buf v;
      put_int buf (dim_code d)
  | VUnknown -> Buffer.add_char buf '?'

let to_bytes_v1 t : string =
  let buf = Buffer.create (t.n * 64) in
  Buffer.add_string buf magic;
  put_int buf v1_version;
  put_int buf t.n;
  put_int buf 0;
  for i = 0 to t.n - 1 do
    let nd = node t i in
    put_string buf (Schema.tag_of_kind nd.n_kind);
    put_opt_string buf nd.n_ident;
    put_opt_string buf nd.n_type;
    put_string buf nd.n_path;
    put_int buf nd.n_parent;
    put_int buf (Array.length nd.n_children);
    Array.iter (put_int buf) nd.n_children;
    put_int buf (Array.length nd.n_attrs);
    Array.iter
      (fun (k, v) ->
        put_string buf (Keys.name k);
        put_value buf v)
      nd.n_attrs
  done;
  Buffer.contents buf

(** Write the runtime model file consumed by [xpdl_init]. *)
let to_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_bytes t))

(* One [openfile]/[read] round trip instead of the buffered channel
   stack: model init is on the application startup path, so the read
   itself is worth a few tens of microseconds on a 10k-node model.
   Errors surface as [Sys_error] like the channel API would raise. *)
let of_file path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      let rec fill off =
        if off >= len then off
        else
          match Unix.read fd b off (len - off) with 0 -> off | r -> fill (off + r)
      in
      let got = fill 0 in
      (* a short read means the file shrank underneath us; let the codec
         report it as truncation *)
      of_bytes (if got = len then Bytes.unsafe_to_string b else Bytes.sub_string b 0 got))

let of_file_result path =
  match of_file path with t -> Ok t | exception Corrupt d -> Error d
