(** The XPDL processing tool: the end-to-end static pipeline of Sec. IV —
    browse + parse the repository, compose, static analysis, driver
    generation, microbenchmark bootstrap, filtering, runtime-model build
    and serialization.  Each stage is timed. *)

open Xpdl_core

type config = {
  search_path : string list;  (** repository roots *)
  parameter_config : Instantiate.env;  (** deployment-time param choices *)
  run_bootstrap : bool;
  bootstrap_opts : Xpdl_microbench.Bootstrap.options;
  resilient_bootstrap : bool;  (** use the fault-tolerant harness *)
  bootstrap_policy : Xpdl_microbench.Resilient.policy;  (** retry/deadline policy *)
  bootstrap_faults : (int * float) option;
      (** attach a [Faults] plan (seed, per-read rate) to the bootstrap
          machine — forces the resilient harness *)
  filter_drop : string list;
  emit_drivers_to : string option;  (** directory for generated driver code *)
  machine_seed : int;
}

val default_config : config

type stage_timing = { stage : string; seconds : float }

type report = {
  system : string;
  runtime_model : Ir.t;
  model : Model.element;  (** analyzed, bootstrapped model *)
  diagnostics : Diagnostic.t list;
  link_reports : Analysis.link_report list;
  bootstrap_results : Xpdl_microbench.Bootstrap.result list;
  bootstrap_health : Xpdl_microbench.Resilient.health option;
      (** attempt/fallback/quarantine account of a resilient bootstrap *)
  descriptors_used : string list;
  timings : stage_timing list;
  runtime_model_bytes : int;
}

(** Run the pipeline for the system named [system].  [repo] may be
    supplied pre-loaded to amortize parsing across runs. *)
val run :
  ?config:config -> ?repo:Xpdl_repo.Repo.t -> system:string -> unit -> (report, string) result

(** Run and write the runtime-model file. *)
val run_to_file :
  ?config:config ->
  ?repo:Xpdl_repo.Repo.t ->
  system:string ->
  output:string ->
  unit ->
  (report, string) result

val pp_timings : Format.formatter -> stage_timing list -> unit

(** {1 Incremental sessions}

    A session keeps the pipeline output alive across model edits.  The
    analyzed, bootstrapped model lives in an {!Xpdl_store.Store}; edits
    go through the store's edit API, and {!refresh} re-runs only the
    stages the edits dirtied: the bandwidth analysis only when a
    bandwidth-relevant attribute or the tree shape changed (annotation
    deltas are written back through the store), and the runtime IR by
    patching edited nodes' attributes in place — it is rebuilt only on
    structural edits or after journal compaction (diagnosed XPDL410). *)

type session

(** Run the batch pipeline once and wrap its result; also returns the
    initial {!report}. *)
val open_session :
  ?config:config ->
  ?repo:Xpdl_repo.Repo.t ->
  system:string ->
  unit ->
  (session * report, string) result

(** The session's model store — edit through this handle. *)
val session_store : session -> Xpdl_store.Store.t

val session_system : session -> string

(** The current (analyzed, bootstrapped) model snapshot. *)
val session_model : session -> Xpdl_core.Model.element

(** The runtime IR as of the last {!refresh} (filtered per the config). *)
val session_ir : session -> Ir.t

(** Link reports as of the last analysis run. *)
val session_link_reports : session -> Analysis.link_report list

type refresh_report = {
  rf_revision : int;  (** store revision the session now reflects *)
  rf_edits : int;  (** journal entries folded in (0 after a compaction rebuild) *)
  rf_analysis_rerun : bool;
  rf_ir_rebuilt : bool;  (** [false]: attribute edits were patched in place *)
  rf_diagnostics : Diagnostic.t list;
  rf_timings : stage_timing list;
}

(** Bring the session's analysis and runtime IR up to the store's
    current revision, re-running only dirty stages. *)
val refresh : session -> refresh_report
