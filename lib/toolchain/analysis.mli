(** Static model analysis (Sec. IV): bandwidth downgrading, the
    interconnect graph, and configurable attribute filtering. *)

open Xpdl_core

type link_report = {
  lr_ident : string;
  lr_head : string option;
  lr_tail : string option;
  lr_declared : float option;  (** B/s: min over channel max_bandwidths *)
  lr_effective : float option;  (** B/s after endpoint downgrade *)
  lr_downgraded : bool;
}

(** Effective bandwidth per interconnect = min of its channels' and the
    endpoint components' memory bandwidths ("the effective bandwidth
    should be determined by the slowest hardware components involved");
    annotated back onto the model as [effective_bandwidth].

    Idempotent: prior [effective_bandwidth] annotations are stripped
    before recomputing, so re-running the analysis — after an edit, or
    on a model deserialized with annotations — never downgrades to a
    stale value and never keeps one that no longer derives. *)
val effective_bandwidths : Model.element -> Model.element * link_report list

type graph = {
  g_nodes : string list;  (** component identifiers *)
  g_edges : (string * string * float) list;  (** head, tail, B/s; bidirectional *)
}

val build_graph : Model.element -> graph

(** Maximum-bottleneck (widest-path) bandwidth between two components;
    [None] if disconnected. *)
val path_bandwidth : graph -> src:string -> dst:string -> float option

(** Connected components (sorted member lists). *)
val connected_components : graph -> string list list

(** Attributes dropped from the runtime model by default (build flags
    and source file names; installation [path]s are kept — composition
    constraints read them). *)
val default_filtered : string list

(** The configurable "filter out uninteresting values" stage. *)
val filter_attributes : ?drop:string list -> Model.element -> Model.element
