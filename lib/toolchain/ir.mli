(** The light-weight runtime model (Sec. IV): a composed XPDL model
    flattened into a {e preorder} node array with integer child links,
    per-node subtree spans, interned attribute keys and pre-built
    identifier/kind/path indexes, plus a small versioned binary codec
    (magic ["XPDLRT"]) for the file loaded by [xpdl_init] at application
    startup.

    Because the array is in preorder, the subtree of node [i] is the
    contiguous slice [i .. n_subtree_end-1]: subtree folds are array
    scans.  Spans and indexes are derived at build/load time and never
    serialized — the wire format is unchanged (still version 1). *)

open Xpdl_core

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Xpdl_units.Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

val pp_value : Format.formatter -> value -> unit

(** {1 Interned attribute keys}

    A global, append-only string pool: equal key strings map to the same
    id within a process.  Node attribute arrays are sorted by key id. *)

(** Intern an attribute name (allocates an id on first sight). *)
val intern : string -> int

(** The id of an attribute name, if it was ever interned. *)
val intern_opt : string -> int option

(** The name behind a key id; raises [Invalid_argument] on unknown ids. *)
val key_name : int -> string

type node = {
  n_index : int;  (** position in the node array; preorder rank *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (int * value) array;  (** interned key id → value, sorted by key *)
  n_parent : int;  (** -1 for the root *)
  n_children : int array;
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SMs/SM0"] *)
  n_subtree_end : int;
      (** exclusive end of the preorder span: the subtree of this node is
          the node slice [n_index .. n_subtree_end - 1] *)
}

type t = {
  nodes : node array;
  root : int;
  by_ident : (string, int list) Hashtbl.t;  (** ident → node indexes *)
  by_kind : (string, int list) Hashtbl.t;  (** tag → node indexes *)
  by_path : (string, int) Hashtbl.t;  (** scope path → first node index *)
}

val value_of_attr : Model.attr_value -> value

(** Flatten a composed model into the runtime representation. *)
val of_model : Model.element -> t

(** {1 Accessors} *)

val size : t -> int
val node : t -> int -> node

(** Replace node [i]'s attributes in place (interning keys, re-sorting);
    spans, child links, indexes and the wire format are untouched — the
    incremental store's attribute-edit fast path (the IR is patched, not
    rebuilt).  Previously fetched {!node} records keep the old
    attributes: handles are snapshots.  Raises [Invalid_argument] on a
    bad index. *)
val patch_attrs : t -> int -> (string * Model.attr_value) list -> unit
val root : t -> node
val parent : t -> node -> node option
val children : t -> node -> node list

(** Attribute lookup by name: interned-id binary search (no string
    hashing beyond one pool probe). *)
val attr : node -> string -> value option

(** Attribute lookup by pre-interned key id (the fastest path; use
    {!intern} once and reuse the id). *)
val attr_by_key : node -> int -> value option

val find_by_ident : t -> string -> node option
val all_by_ident : t -> string -> node list

(** O(1) lookup of a scope path (first node in document order). *)
val find_by_path : t -> string -> node option

val all_of_kind : t -> Schema.kind -> node list

(** Node indexes of a kind/tag in document order, without materializing
    the node list (cheap emptiness/cardinality checks, selector seeds). *)
val indexes_of_kind : t -> Schema.kind -> int list

val indexes_of_tag : t -> string -> int list

(** Depth-first (= document-order) fold over the subtree of the node: a
    scan of its contiguous preorder slice. *)
val fold_subtree : t -> ('a -> node -> 'a) -> 'a -> node -> 'a

(** {1 Binary codec} *)

val magic : string
val format_version : int

exception Corrupt of string

val to_bytes : t -> string

(** Deserialize; raises {!Corrupt} on malformed input (bad magic or
    version, truncation, dangling indexes, non-preorder node order).
    Accepts any format-v1 file: spans, interning and indexes are rebuilt
    at load time. *)
val of_bytes : string -> t

val to_file : string -> t -> unit
val of_file : string -> t
