(** The light-weight runtime model (Sec. IV): a composed XPDL model
    flattened into a {e struct-of-arrays arena} laid out in preorder —
    a flat subtree-span column (parents and children are both derived
    from it), interned kind/attr-key/string tables and columnar
    attribute storage — whose byte image {e is} the wire format (magic
    ["XPDLRT"], version 2).

    Loading a version-2 file is read + validate + wrap: no per-node
    decoding, no index building, no string copying happens at
    {!of_file} time (experiment E15 measures this).  Node records,
    scope paths and the ident/kind/path indexes are materialized lazily
    from the arena columns on first use and cached, so steady-state
    query latency is unchanged from the pointer-y representation it
    replaces (experiment E5).

    Because the arena is in preorder, the subtree of node [i] is the
    contiguous id slice [i .. subtree_end i - 1]: subtree folds are
    array scans.  Children are not stored — the first child of [i] is
    [i+1] (if inside the span) and the next sibling of [j] is
    [subtree_end j].

    Version-1 files (the seed release's length-prefixed node stream)
    still load through a one-time migration path that decodes the old
    stream and re-encodes it as an arena.  Corrupt or truncated input
    of either version raises {!Corrupt} carrying a coded [XPDL6xx]
    diagnostic (or use {!of_bytes_result}/{!of_file_result}). *)

open Xpdl_core

type value =
  | VStr of string
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VQty of float * Xpdl_units.Units.dimension  (** SI-normalized quantity *)
  | VUnknown  (** an unresolved ["?"] that survived bootstrap *)

val pp_value : Format.formatter -> value -> unit

(** {1 Interned attribute keys}

    A global, append-only string pool: equal key strings map to the same
    id within a process.  Node attribute arrays are sorted by key id.
    The wire format does {e not} depend on this pool — each file carries
    its own key table, mapped to pool ids at load time — so serialized
    bytes are stable across processes. *)

(** Intern an attribute name (allocates an id on first sight). *)
val intern : string -> int

(** The id of an attribute name, if it was ever interned. *)
val intern_opt : string -> int option

(** The name behind a key id; raises [Invalid_argument] on unknown ids. *)
val key_name : int -> string

(** A node view, materialized (and cached) from the arena columns on
    first access.  Records are snapshots: a later {!patch_attrs} does
    not mutate records fetched earlier. *)
type node = {
  n_index : int;  (** preorder rank = node id *)
  n_kind : Schema.kind;
  n_ident : string option;  (** name or id *)
  n_type : string option;  (** retained [type] reference *)
  n_attrs : (int * value) array;  (** interned key id → value, sorted by key *)
  n_parent : int;  (** -1 for the root *)
  n_children : int array;  (** derived from the span column *)
  n_path : string;  (** scope path, e.g. ["liu_gpu_server/gpu1/SMs/SM0"] *)
  n_subtree_end : int;
      (** exclusive end of the preorder span: the subtree of this node is
          the id slice [n_index .. n_subtree_end - 1] *)
}

(** The arena.  Owns the wire-format byte image plus lazily built
    caches (node views, scope paths, ident/kind/path indexes). *)
type t

val value_of_attr : Model.attr_value -> value

(** Flatten a composed model into the runtime representation (builds
    the version-2 byte image directly; {!to_bytes} returns it without
    re-encoding). *)
val of_model : Model.element -> t

(** {1 Accessors} *)

val size : t -> int

(** The root's node id — always [0] (the arena is in preorder). *)
val root_index : t -> int

(** Materialize the view of node [i]; raises [Invalid_argument] on a
    bad index. *)
val node : t -> int -> node

(** {2 Id-level accessors}

    Column reads without materializing a {!node} view — the arena-native
    hot paths used by the query layer's folds and selectors. *)

val kind_at : t -> int -> Schema.kind
val ident_at : t -> int -> string option
val type_at : t -> int -> string option
val parent_index : t -> int -> int
val span_end_at : t -> int -> int

(** Scope path of node [i] (derives and caches all paths on first use). *)
val path_at : t -> int -> string

(** Children ids of node [i], in document order (a span walk). *)
val children_ids : t -> int -> int list

(** The [c]-th child id of node [i], or [None] if out of range. *)
val nth_child : t -> int -> int -> int option

(** Attribute of node [i] by pre-interned global key id. *)
val attr_by_key_at : t -> int -> int -> value option

(** Attribute of node [i] by name. *)
val attr_at : t -> int -> string -> value option

(** Replace node [i]'s attributes (interning keys, re-sorting) in an
    overlay over the immutable arena; spans, indexes and previously
    fetched {!node} records are untouched — the incremental store's
    attribute-edit fast path.  A subsequent {!to_bytes} re-encodes.
    Raises [Invalid_argument] on a bad index. *)
val patch_attrs : t -> int -> (string * Model.attr_value) list -> unit

val root : t -> node
val parent : t -> node -> node option
val children : t -> node -> node list

(** Attribute lookup by name: interned-id binary search (no string
    hashing beyond one pool probe). *)
val attr : node -> string -> value option

(** Attribute lookup by pre-interned key id (the fastest path; use
    {!intern} once and reuse the id). *)
val attr_by_key : node -> int -> value option

val find_by_ident : t -> string -> node option
val all_by_ident : t -> string -> node list

(** O(1) lookup of a scope path (first node in document order). *)
val find_by_path : t -> string -> node option

val all_of_kind : t -> Schema.kind -> node list

(** Node ids of a kind/tag in document order, without materializing
    node views (cheap emptiness/cardinality checks, selector seeds). *)
val indexes_of_kind : t -> Schema.kind -> int list

val indexes_of_tag : t -> string -> int list

(** Depth-first (= document-order) fold over the subtree of the node: a
    scan of its contiguous preorder slice. *)
val fold_subtree : t -> ('a -> node -> 'a) -> 'a -> node -> 'a

(** {1 Binary codec}

    Version 2: the file {e is} the arena — a checksummed header,
    interned kind/key/string tables, then little-endian column arrays.
    {!of_bytes} validates the header arithmetic, the preorder span
    structure and the table offsets in one O(n) pass and wraps the
    buffer; it does {e not} re-verify the full payload checksum on the
    hot path (use {!verify} for that, e.g. on artifacts at rest). *)

val magic : string
val format_version : int

(** Raised on malformed input; the payload is a coded [XPDL6xx]
    diagnostic (bad magic [XPDL601], unsupported version [XPDL602],
    truncation [XPDL603], checksum mismatch [XPDL604], structural
    corruption [XPDL605], bad value encoding [XPDL606], length
    overflow [XPDL607]). *)
exception Corrupt of Diagnostic.t

(** Serialize.  For an unpatched arena this returns the load-time byte
    image itself (zero-copy, byte-identical across save/load/save);
    after {!patch_attrs} it re-encodes. *)
val to_bytes : t -> string

(** Deserialize; raises {!Corrupt} on malformed input.  Version-2
    buffers are validated and wrapped without rebuilding; version-1
    files are migrated (decoded and re-encoded) transparently. *)
val of_bytes : string -> t

(** Exception-free variants of {!of_bytes}/{!of_file} returning the
    coded diagnostic instead of raising. *)
val of_bytes_result : string -> (t, Diagnostic.t) result

val of_file_result : string -> (t, Diagnostic.t) result

(** Verify the full payload checksum of the arena's byte image
    ([Error] carries an [XPDL604] diagnostic).  O(file size); load
    keeps this off the init path so callers choose when to pay it. *)
val verify : t -> (unit, Diagnostic.t) result

(** Serialize in the legacy version-1 node-stream format (the seed
    release's codec).  Kept for migration round-trip tests and the
    before/after arm of experiment E15; new files are always v2. *)
val to_bytes_v1 : t -> string

val to_file : string -> t -> unit
val of_file : string -> t
