(** Hierarchical energy modeling: synthesized attributes (Sec. III-D).

    "Every node in such a system model tree has explicitly or implicitly
    defined attributes such as static_power ... Synthesized attributes can
    be calculated by applying a rule combining attribute values of the
    node's children in the model tree, such as adding up static power
    values over the direct hardware subcomponents of the node."  (The
    paper notes the analogy to attribute grammars.)

    {!synthesize} is the generic bottom-up engine; {!static_power} and
    friends are the concrete rules the toolchain and query API use.  A
    node's own declared value takes part in the combination, so a CPU with
    [static_power="10 W"] plus caches declaring their own share aggregates
    both. *)

open Xpdl_core
open Xpdl_units

(** A synthesized attribute: how to read a node's own contribution and how
    to combine it with the children's synthesized values. *)
type 'a rule = {
  own : Model.element -> 'a option;  (** the node's directly given value *)
  combine : 'a option -> 'a list -> 'a;  (** own value + children results *)
}

(** Bottom-up evaluation of [rule] over the tree: the attribute-grammar
    engine.  Returns the synthesized value of the root. *)
let rec synthesize (rule : 'a rule) (e : Model.element) : 'a =
  let children =
    List.filter_map
      (fun (c : Model.element) ->
        if Model.is_metadata_subtree c.Model.kind then None else Some (synthesize rule c))
      e.Model.children
  in
  rule.combine (rule.own e) children

(** Like {!synthesize} but also returning the per-node table (preorder
    path-keyed), for breakdown reports.

    Path keys are unique and stable: when two identified nodes compute
    the same scope path — sibling id collisions, or group expansion
    whose [prefix]/[quantity] replicas collide with existing ids — the
    second and later occurrences (preorder = document order) get a
    [#2], [#3], ... suffix.  Unnamed nodes still report under their
    nearest identified ancestor's path (they are breakdown rows of that
    component, not components themselves). *)
let synthesize_table (rule : 'a rule) (e : Model.element) : 'a * (string * 'a) list =
  let table = ref [] in
  let used = Hashtbl.create 64 in
  let unique p =
    match Hashtbl.find_opt used p with
    | None ->
        Hashtbl.add used p 1;
        p
    | Some k ->
        Hashtbl.replace used p (k + 1);
        Fmt.str "%s#%d" p (k + 1)
  in
  let rec go path (e : Model.element) : 'a =
    let path =
      match Model.identifier e with
      | Some i -> unique (if path = "" then i else path ^ "/" ^ i)
      | None -> path
    in
    let children =
      List.filter_map
        (fun (c : Model.element) ->
          if Model.is_metadata_subtree c.Model.kind then None else Some (go path c))
        e.Model.children
    in
    let v = rule.combine (rule.own e) children in
    table := (path, v) :: !table;
    v
  in
  let total = go "" e in
  (total, List.rev !table)

(** {1 Concrete rules} *)

let quantity_of e key =
  if Schema.is_hardware e.Model.kind then
    Option.map Units.value (Model.attr_quantity e key)
  else None

let sum_rule key : float rule =
  {
    own = (fun e -> quantity_of e key);
    combine =
      (fun own children ->
        Option.value ~default:0. own +. List.fold_left ( +. ) 0. children);
  }

(* The concrete rules are exposed as named values so the incremental
   store can register them as memoized per-node computations: the rule
   is the unit of caching and invalidation, not the whole-tree pass. *)

let static_power_rule : float rule = sum_rule "static_power"

let core_count_rule : int rule =
  {
    own = (fun x -> if Schema.equal_kind x.Model.kind Schema.Core then Some 1 else None);
    combine = (fun own kids -> Option.value ~default:0 own + List.fold_left ( + ) 0 kids);
  }

let memory_bytes_rule : float rule =
  {
    own =
      (fun x ->
        if Schema.equal_kind x.Model.kind Schema.Memory then
          Option.map Units.value (Model.attr_quantity x "size")
        else None);
    combine = (fun own kids -> Option.value ~default:0. own +. List.fold_left ( +. ) 0. kids);
  }

(** Total static power (W) of the subtree: declared values summed over
    all hardware components. *)
let static_power (e : Model.element) : float = synthesize static_power_rule e

(** Static power with per-component breakdown. *)
let static_power_breakdown e = synthesize_table static_power_rule e

(** Total core count — the derived-attribute example of Sec. IV. *)
let core_count (e : Model.element) : int = synthesize core_count_rule e

(** Total memory capacity in bytes. *)
let memory_bytes (e : Model.element) : float = synthesize memory_bytes_rule e

(** The motherboard share (Sec. III-B): hardware not modeled explicitly
    still costs energy; its static share is attributed to the node.
    [node_static_power ~measured_total] distributes the difference between
    an externally measured machine idle power and the modeled sum onto the
    root node. *)
let unmodeled_share ~measured_total (e : Model.element) : float =
  Float.max 0. (measured_total -. static_power e)

(** Static energy (J) of keeping the subtree powered for [duration] s. *)
let static_energy ~duration (e : Model.element) : float = static_power e *. duration
