(** Hierarchical energy modeling: synthesized attributes computed
    bottom-up over the model tree, attribute-grammar style (Sec. III-D).
    Metadata subtrees (power models, software) are excluded from the
    walk. *)

open Xpdl_core

(** A synthesized attribute: a node's own contribution and the rule
    combining it with the children's synthesized values. *)
type 'a rule = {
  own : Model.element -> 'a option;
  combine : 'a option -> 'a list -> 'a;
}

(** Bottom-up evaluation over the tree; returns the root's value. *)
val synthesize : 'a rule -> Model.element -> 'a

(** Like {!synthesize} but also returning the per-node table (preorder,
    path-keyed) for breakdown reports.  Path keys are unique and stable:
    identified nodes whose scope path collides with an earlier one
    (sibling id collisions, group [prefix]/[quantity] replicas) get a
    [#2], [#3], ... suffix in document order. *)
val synthesize_table : 'a rule -> Model.element -> 'a * (string * 'a) list

(** Sum a quantity attribute over all hardware components. *)
val sum_rule : string -> float rule

(** The concrete rules as named values — the unit the incremental store
    registers for per-node caching. *)
val static_power_rule : float rule

val core_count_rule : int rule
val memory_bytes_rule : float rule

(** Total static power (W) of the subtree. *)
val static_power : Model.element -> float

val static_power_breakdown : Model.element -> float * (string * float) list

(** Total core count — the derived-attribute example of Sec. IV. *)
val core_count : Model.element -> int

(** Total memory capacity in bytes. *)
val memory_bytes : Model.element -> float

(** The unmodeled (motherboard etc.) share: max(0, measured − modeled)
    attributed to the root node (Sec. III-B). *)
val unmodeled_share : measured_total:float -> Model.element -> float

(** Static energy (J) of keeping the subtree powered for [duration] s. *)
val static_energy : duration:float -> Model.element -> float
