(** Power-state-machine simulation (Sec. III-C, Listing 13): state
    residency power plus modeled transition time/energy; unmodeled
    direct transitions are routed over the cheapest multi-hop path. *)

open Xpdl_core

type t

exception Psm_error of string

(** Start in [initial] (default: the machine's first declared state). *)
val create : ?initial:string -> Power.state_machine -> t

val state : t -> string
val clock : t -> float
val consumed : t -> float
val switch_count : t -> int

(** (time, state) history, oldest first. *)
val history : t -> (float * string) list

val frequency : t -> float
val power : t -> float

(** Cheapest transition path minimizing switching energy (Dijkstra);
    [None] if unreachable, [Some []] for from = to.  Raises {!Psm_error}
    (never a bare [Not_found]) if the machine's transition table is
    internally inconsistent. *)
val transition_path :
  Power.state_machine ->
  from_state:string ->
  to_state:string ->
  Power.transition list option

(** Total (time, energy) cost of switching along the cheapest path. *)
val switch_cost :
  Power.state_machine -> from_state:string -> to_state:string -> (float * float) option

(** Reside in the current state for [duration] s (accrues power·t). *)
val dwell : t -> duration:float -> unit

(** Switch to a target state, paying the costs along the cheapest path;
    raises {!Psm_error} if no path is modeled. *)
val switch_to : t -> string -> unit

(** Execute [cycles] of work in the current state (time = cycles/f);
    raises {!Psm_error} in a sleep state.  Returns the duration. *)
val execute : t -> cycles:float -> ?dynamic_energy:float -> unit -> float
