(** Power-state-machine simulation (Sec. III-C, Listing 13).

    A {!t} tracks the current power state of one domain and accounts for
    every cost the language models: static power while residing in a
    state, and the time/energy overheads of transitions.  Transitions not
    modeled directly are routed over the cheapest multi-hop path ("a power
    state machine ... must model all possible transitions that the
    programmer can initiate" — so a missing edge means the switch must go
    through intermediate states). *)

open Xpdl_core

type t = {
  machine : Power.state_machine;
  mutable current : string;
  mutable clock : float;  (** s, simulated time *)
  mutable consumed : float;  (** J, accumulated *)
  mutable switches : int;
  log : (float * string) list ref;  (** (time, state) history, newest first *)
}

exception Psm_error of string

let error fmt = Fmt.kstr (fun m -> raise (Psm_error m)) fmt

(** Start in [initial] (default: the machine's first declared state). *)
let create ?initial (machine : Power.state_machine) : t =
  let initial =
    match initial with
    | Some s -> s
    | None -> (
        match machine.Power.sm_states with
        | s :: _ -> s.Power.ps_name
        | [] -> error "power state machine %s has no states" machine.Power.sm_name)
  in
  if Power.find_state machine initial = None then
    error "no state %S in machine %s" initial machine.Power.sm_name;
  { machine; current = initial; clock = 0.; consumed = 0.; switches = 0; log = ref [ (0., initial) ] }

let state t = t.current
let clock t = t.clock
let consumed t = t.consumed
let switch_count t = t.switches
let history t = List.rev !(t.log)

let current_state t =
  match Power.find_state t.machine t.current with
  | Some s -> s
  | None -> assert false

let frequency t = (current_state t).Power.ps_frequency
let power t = (current_state t).Power.ps_power

(** Cheapest transition path [from → ... → to] minimizing switching
    energy (Dijkstra over the transition graph); returns the edge list. *)
let transition_path (machine : Power.state_machine) ~from_state ~to_state :
    Power.transition list option =
  if String.equal from_state to_state then Some []
  else begin
    let dist = Hashtbl.create 8 and via = Hashtbl.create 8 in
    Hashtbl.replace dist from_state 0.;
    let visited = Hashtbl.create 8 in
    let rec loop () =
      (* extract the unvisited state with the smallest distance *)
      let best =
        Hashtbl.fold
          (fun s d acc ->
            if Hashtbl.mem visited s then acc
            else
              match acc with Some (_, d') when d' <= d -> acc | _ -> Some (s, d))
          dist None
      in
      match best with
      | None -> ()
      | Some (s, d) ->
          Hashtbl.add visited s ();
          List.iter
            (fun (tr : Power.transition) ->
              if String.equal tr.Power.tr_from s then begin
                let nd = d +. tr.Power.tr_energy in
                let better =
                  match Hashtbl.find_opt dist tr.Power.tr_to with
                  | None -> true
                  | Some old -> nd < old
                in
                if better then begin
                  Hashtbl.replace dist tr.Power.tr_to nd;
                  Hashtbl.replace via tr.Power.tr_to tr
                end
              end)
            machine.Power.sm_transitions;
          loop ()
    in
    loop ();
    if not (Hashtbl.mem dist to_state) then None
    else begin
      let rec rebuild acc s =
        if String.equal s from_state then acc
        else
          match Hashtbl.find_opt via s with
          | Some tr -> rebuild (tr :: acc) tr.Power.tr_from
          | None ->
              (* a reachable state always has a predecessor edge; a hole
                 means the machine's transition table is inconsistent —
                 diagnose it instead of escaping with Not_found *)
              error
                "machine %s: broken predecessor chain at state %S while routing %s -> %s"
                machine.Power.sm_name s from_state to_state
      in
      Some (rebuild [] to_state)
    end
  end

(** Total (time, energy) cost of switching between two states along the
    cheapest path; [None] if unreachable. *)
let switch_cost (machine : Power.state_machine) ~from_state ~to_state =
  Option.map
    (fun path ->
      List.fold_left
        (fun (ti, en) (tr : Power.transition) -> (ti +. tr.Power.tr_time, en +. tr.Power.tr_energy))
        (0., 0.) path)
    (transition_path machine ~from_state ~to_state)

(** Reside in the current state for [duration] seconds: accumulates
    static energy power·t. *)
let dwell t ~duration =
  if duration < 0. then error "negative dwell duration";
  t.clock <- t.clock +. duration;
  t.consumed <- t.consumed +. (power t *. duration)

(** Switch to [target], paying the transition costs along the cheapest
    modeled path.  Raises {!Psm_error} if no path is modeled. *)
let switch_to t target =
  if Power.find_state t.machine target = None then
    error "no state %S in machine %s" target t.machine.Power.sm_name;
  match transition_path t.machine ~from_state:t.current ~to_state:target with
  | None -> error "no modeled transition path %s -> %s" t.current target
  | Some path ->
      List.iter
        (fun (tr : Power.transition) ->
          t.clock <- t.clock +. tr.Power.tr_time;
          t.consumed <- t.consumed +. tr.Power.tr_energy;
          t.switches <- t.switches + 1;
          t.current <- tr.Power.tr_to;
          t.log := (t.clock, t.current) :: !(t.log))
        path

(** Execute [cycles] of work in the current state: time = cycles/f,
    energy = P·t (+ [dynamic_energy] if given).  In a C state (f = 0)
    this is an error. *)
let execute t ~cycles ?(dynamic_energy = 0.) () =
  let f = frequency t in
  if f <= 0. then error "cannot execute in sleep state %s" t.current;
  let duration = cycles /. f in
  dwell t ~duration;
  t.consumed <- t.consumed +. dynamic_energy;
  duration
