(** MVCC session logic for the model-query server (see the interface). *)

open Xpdl_core
module Store = Xpdl_store.Store
module Query = Xpdl_query.Query
module Ir = Xpdl_toolchain.Ir

type session = {
  sid : int;
  pins : (Store.revision, int) Hashtbl.t;  (** rev -> nested pin count *)
  mutable subscribed : bool;
  events : Protocol.event Queue.t;
  mutable closed : bool;
}

(* A snapshot handle shared by every pin of one revision; [refs] counts
   pins across sessions and the handle is reclaimed when it drops to 0
   (the store-side retention floor is released pin by pin). *)
type snap = { sq : Query.t; mutable refs : int }

type t = {
  st : Store.t;
  head : Query.t;  (** tracked handle following the store's journal *)
  snapshots : (Store.revision, snap) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  mutable served : int;  (** requests dispatched, for [Stats] *)
  dedup : (int, int * int) Hashtbl.t;  (** req_id -> payload fingerprint, answered rev *)
  dedup_fifo : int Queue.t;  (** req_ids in arrival order, for window eviction *)
  dedup_window : int;
  mutable applied_edits : int;  (** edits actually applied to the store *)
  mutable deduped : int;  (** duplicate req_ids answered from the window *)
}

let default_dedup_window = 4096

let of_store ?(dedup_window = default_dedup_window) st =
  {
    st;
    head = Query.of_store ~source:"serve:head" st;
    snapshots = Hashtbl.create 7;
    sessions = Hashtbl.create 7;
    next_sid = 1;
    served = 0;
    dedup = Hashtbl.create 64;
    dedup_fifo = Queue.create ();
    dedup_window = max 1 dedup_window;
    applied_edits = 0;
    deduped = 0;
  }

let create ?journal_capacity ?dedup_window m =
  of_store ?dedup_window (Store.of_model ?journal_capacity m)
let store t = t.st

let session t =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s =
    { sid; pins = Hashtbl.create 4; subscribed = false; events = Queue.create (); closed = false }
  in
  Hashtbl.replace t.sessions sid s;
  s

let session_id s = s.sid

let drop_snapshot_ref t rev =
  match Hashtbl.find_opt t.snapshots rev with
  | None -> ()
  | Some snap ->
      snap.refs <- snap.refs - 1;
      if snap.refs <= 0 then Hashtbl.remove t.snapshots rev

let close_session t s =
  if not s.closed then begin
    s.closed <- true;
    Hashtbl.iter
      (fun rev count ->
        for _ = 1 to count do
          Store.unpin t.st rev;
          drop_snapshot_ref t rev
        done)
      s.pins;
    Hashtbl.reset s.pins;
    s.subscribed <- false;
    Queue.clear s.events;
    Hashtbl.remove t.sessions s.sid
  end

(* ------------------------------------------------------------------ *)
(* dispatch *)

let err code fmt = Fmt.kstr (fun msg -> Protocol.Err { code; msg }) fmt
let err_not_pinned rev = err "XPDL706" "revision %d is not a pinned snapshot of this session" rev

let session_pin_count s rev = Option.value ~default:0 (Hashtbl.find_opt s.pins rev)

(* The handle a [rev] field selects: the moving head for [-1], the
   revision's shared snapshot handle when this session holds a pin. *)
let resolve_handle t s rev =
  if rev < 0 then Result.Ok t.head
  else if session_pin_count s rev = 0 then Error (err_not_pinned rev)
  else
    match Hashtbl.find_opt t.snapshots rev with
    | Some snap -> Result.Ok snap.sq
    | None -> Error (err_not_pinned rev)

(* The query mini-language: the [xpdltool query] expressions, answered
   as protocol values (floats travel bit-exactly). *)
let eval_query q expr : Protocol.response =
  let starts_with prefix s =
    String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  let after prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix) in
  let unanswerable fmt = err "XPDL704" fmt in
  let float_opt what = function
    | Some v -> Protocol.Ok (Float v)
    | None -> unanswerable "%s is not defined on this model" what
  in
  match expr with
  | "cores" -> Ok (Int (Query.count_cores q))
  | "cuda-devices" -> Ok (Int (Query.count_cuda_devices q))
  | "static-power" -> Ok (Float (Query.total_static_power q))
  | "memory" -> Ok (Float (Query.total_memory_bytes q))
  | "min-freq" -> float_opt expr (Query.min_frequency q)
  | "max-freq" -> float_opt expr (Query.max_frequency q)
  | "size" -> Ok (Int (Query.size q))
  | "multi-node" -> Ok (Int (if Query.is_multi_node q then 1 else 0))
  | "software" -> Ok (Strs (List.map Query.path (Query.installed_software q)))
  | "degraded" ->
      Ok (Strs (List.map (fun (path, quality) -> quality ^ " " ^ path) (Query.degraded_entries q)))
  | s when starts_with "id:" s -> (
      match Query.find_by_id q (after "id:" s) with
      | Some e -> Ok (Str (Query.path e))
      | None -> unanswerable "no element has identifier %S" (after "id:" s))
  | s when starts_with "ipath:" s -> (
      (* the element's index path (decimal child positions), the address
         an [Edit] request wants — how a load generator finds targets *)
      let name = after "ipath:" s in
      match
        match Query.find_by_id q name with Some e -> Some e | None -> Query.find_by_path q name
      with
      | None -> unanswerable "no element has identifier or path %S" name
      | Some e ->
          let ir = Query.runtime_ir q in
          let position parent i =
            let cs = Ir.children_ids ir parent in
            match List.find_index (Int.equal i) cs with
            | Some pos -> pos
            | None -> invalid_arg "ipath: child not under parent"
          in
          let rec up i acc =
            let p = Ir.parent_index ir i in
            if p < 0 then acc else up p (position p i :: acc)
          in
          Ok (Strs (List.map string_of_int (up e.Ir.n_index []))))
  | s when starts_with "path:" s -> (
      match Query.find_by_path q (after "path:" s) with
      | Some e -> Ok (Str (Option.value ~default:"?" (Query.ident e)))
      | None -> unanswerable "no element at path %S" (after "path:" s))
  | s when starts_with "prop:" s -> (
      match Query.property q (after "prop:" s) with
      | Some v -> Ok (Str v)
      | None -> unanswerable "property %S is unset" (after "prop:" s))
  | s when starts_with "bw:" s -> float_opt s (Query.link_bandwidth q (after "bw:" s))
  | s when starts_with "sel:" s -> Ok (Int (List.length (Query.select q (after "sel:" s))))
  | other -> unanswerable "unknown query %S" other

let event_of_edit (e : Store.edit) =
  {
    Protocol.ev_rev = e.e_rev;
    ev_path = e.e_path;
    ev_kind = (match e.e_kind with Store.Attr name -> name | Store.Structure -> "#structure");
  }

let publish t ev =
  Hashtbl.iter (fun _ s -> if s.subscribed then Queue.push ev s.events) t.sessions

let snapshot_count t = Hashtbl.length t.snapshots
let session_count t = Hashtbl.length t.sessions
let applied_edits t = t.applied_edits
let deduped t = t.deduped

let stats_json t =
  Fmt.str
    "{\"revision\":%d,\"size\":%d,\"journal_length\":%d,\"pinned\":[%a],\"sessions\":%d,\"snapshots\":%d,\"served\":%d,\"applied_edits\":%d,\"deduped\":%d,\"durable\":%b,\"wal_appended\":%d,\"model_fnv\":\"%016x\"}"
    (Store.revision t.st) (Store.size t.st) (Store.journal_length t.st)
    Fmt.(list ~sep:comma int)
    (Store.pinned_revisions t.st) (session_count t) (snapshot_count t) t.served t.applied_edits
    t.deduped (Store.durable t.st) (Store.wal_appended t.st)
    (Xpdl_store.Wal.model_fingerprint (Store.model t.st))

let do_pin t s =
  let rev = Store.pin t.st in
  Hashtbl.replace s.pins rev (session_pin_count s rev + 1);
  (match Hashtbl.find_opt t.snapshots rev with
  | Some snap -> snap.refs <- snap.refs + 1
  | None ->
      (* [Store.model] returns an immutable tree: this handle is the
         frozen revision, never synchronized again *)
      let sq = Query.of_model ~source:(Fmt.str "serve:pin@%d" rev) (Store.model t.st) in
      Hashtbl.replace t.snapshots rev { sq; refs = 1 });
  Protocol.Ok (Int rev)

let do_unpin t s rev =
  if session_pin_count s rev = 0 then err_not_pinned rev
  else begin
    (match Hashtbl.find_opt s.pins rev with
    | Some 1 | None -> Hashtbl.remove s.pins rev
    | Some n -> Hashtbl.replace s.pins rev (n - 1));
    Store.unpin t.st rev;
    drop_snapshot_ref t rev;
    Ok Unit
  end

(* A canonical fingerprint of an edit's payload (request id excluded):
   the id-less wire encoding hashed.  Good enough to tell "same edit
   retransmitted" from "same id reused for different work". *)
let edit_fingerprint path key value unit_spelling =
  Hashtbl.hash
    (Protocol.encode_request (Protocol.Edit { path; key; value; unit_spelling; req_id = None }))

let remember_dedup t id fp rev =
  if not (Hashtbl.mem t.dedup id) then begin
    Queue.push id t.dedup_fifo;
    if Queue.length t.dedup_fifo > t.dedup_window then
      Hashtbl.remove t.dedup (Queue.pop t.dedup_fifo)
  end;
  Hashtbl.replace t.dedup id (fp, rev)

let apply_edit t path key value unit_spelling =
  match Store.set_attr_raw t.st path ?unit_spelling key value with
  | (_ : Diagnostic.t list) ->
      let rev = Store.revision t.st in
      t.applied_edits <- t.applied_edits + 1;
      publish t { Protocol.ev_rev = rev; ev_path = path; ev_kind = key };
      Result.Ok rev
  | exception Store.Store_error d ->
      Error (err "XPDL705" "edit rejected: [%s] %s" d.Diagnostic.code d.Diagnostic.message)

let do_edit t path key value unit_spelling req_id =
  match req_id with
  | None -> (
      match apply_edit t path key value unit_spelling with
      | Result.Ok rev -> Protocol.Ok (Int rev)
      | Error e -> e)
  | Some id -> (
      let fp = edit_fingerprint path key value unit_spelling in
      match Hashtbl.find_opt t.dedup id with
      | Some (fp', rev) when fp' = fp ->
          (* idempotent replay: a retransmit of an already-acknowledged
             edit answers the originally assigned revision *)
          t.deduped <- t.deduped + 1;
          Protocol.Ok (Int rev)
      | Some _ -> err "XPDL905" "edit request id %d replayed with a different payload" id
      | None -> (
          match apply_edit t path key value unit_spelling with
          | Result.Ok rev ->
              remember_dedup t id fp rev;
              Protocol.Ok (Int rev)
          | Error e -> e))

let handle t s (req : Protocol.request) : Protocol.response =
  t.served <- t.served + 1;
  try
    match req with
    | Ping -> Ok Unit
    | Stats -> Ok (Str (stats_json t))
    | Pin -> do_pin t s
    | Unpin rev -> do_unpin t s rev
    | Query { rev; q } -> (
        match resolve_handle t s rev with Result.Ok h -> eval_query h q | Error e -> e)
    | Edit { path; key; value; unit_spelling; req_id } ->
        do_edit t path key value unit_spelling req_id
    | Subscribe ->
        s.subscribed <- true;
        Ok Unit
    | Unsubscribe ->
        s.subscribed <- false;
        Queue.clear s.events;
        Ok Unit
    | Fetch rev -> (
        match resolve_handle t s rev with
        | Result.Ok h -> Ok (Blob (Ir.to_bytes (Query.runtime_ir h)))
        | Error e -> e)
    | EditsSince rev -> (
        match Store.edits_since t.st rev with
        | Some edits -> Ok (Edits (List.map event_of_edit edits))
        | None ->
            (* XPDL707: compacted past [rev]; the client must resync *)
            Ok (Compacted (Store.revision t.st)))
  with
  | Query.Query_error msg -> err "XPDL704" "query failed: %s" msg
  | Store.Store_error d -> err "XPDL705" "store error: [%s] %s" d.Diagnostic.code d.Diagnostic.message

let handle_frame t s payload =
  let resp =
    match Protocol.decode_request payload with
    | Result.Ok req -> handle t s req
    | Error d -> Protocol.Err { code = d.Diagnostic.code; msg = d.Diagnostic.message }
  in
  Protocol.encode_response resp

let drain_events s =
  let evs = List.of_seq (Queue.to_seq s.events) in
  Queue.clear s.events;
  evs

let pp ppf t =
  Fmt.pf ppf "hub: rev %d, %d sessions, %d snapshots, %d served" (Store.revision t.st)
    (session_count t) (snapshot_count t) t.served
