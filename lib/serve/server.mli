(** The concurrent model-query server: socket transport around a
    {!Hub}.

    A single event-loop domain multiplexes every connection with
    [Unix.select] over nonblocking descriptors: partial reads feed each
    connection's {!Frame.decoder}, complete frames dispatch through
    {!Hub.handle_frame}, and responses (plus subscription [Event]
    pushes) drain through per-connection outboxes that tolerate short
    writes.  Keeping all hub traffic on the one loop domain is what
    makes the hub's session logic safe without locks; the {!Xpdl_query}
    handles it shares are domain-safe for the read side regardless.

    {!start} binds and listens {e before} spawning the loop domain, so a
    client may connect the moment it returns. *)

type addr =
  | Unix_socket of string  (** filesystem path; unlinked on bind and on {!stop} *)
  | Tcp of string * int  (** host, port (0 picks an ephemeral port) *)

type t

(** Bind, listen, and spawn the event-loop domain.

    [max_clients] (default 64) bounds simultaneous connections — excess
    accepts are closed immediately.  [deadline_s] stops the server that
    many seconds after start (a safety net for CI smoke runs).  Raises
    [Unix.Unix_error] if the address cannot be bound. *)
val start : ?max_clients:int -> ?deadline_s:float -> addr -> Hub.t -> t

(** The bound address ([Tcp] with the actual port when 0 was asked). *)
val sockaddr : t -> Unix.sockaddr

val hub : t -> Hub.t

(** True until the loop domain exits (deadline hit or {!stop}). *)
val running : t -> bool

(** Block until the loop domain exits on its own. *)
val wait : t -> unit

(** Ask the loop to exit (self-pipe), join it, close every connection,
    and release the socket.  Idempotent. *)
val stop : t -> unit
