(** Blocking protocol client (see the interface). *)

open Xpdl_core

type t = { fd : Unix.file_descr; pending : Protocol.event Queue.t; mutable closed : bool }

exception Client_error of Diagnostic.t

let fail d = raise (Client_error d)

let connect addr =
  let sa, dom =
    match addr with
    | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.ADDR_INET (ip, port), Unix.PF_INET)
  in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     Unix.close fd;
     raise e);
  { fd; pending = Queue.create (); closed = false }

let read_response t =
  match Frame.read_frame t.fd with
  | Error d -> fail d
  | Ok None -> fail (Diagnostic.error ~code:"XPDL700" "connection closed while awaiting a response")
  | Ok (Some payload) -> (
      match Protocol.decode_response payload with Ok resp -> resp | Error d -> fail d)

let rec await_reply t =
  match read_response t with
  | Protocol.Event ev ->
      Queue.push ev t.pending;
      await_reply t
  | resp -> resp

let request t req =
  Frame.write_frame t.fd (Protocol.encode_request req);
  await_reply t

let events t =
  let evs = List.of_seq (Queue.to_seq t.pending) in
  Queue.clear t.pending;
  evs

let wait_events t n =
  while Queue.length t.pending < n do
    match read_response t with
    | Protocol.Event ev -> Queue.push ev t.pending
    | resp ->
        fail
          (Diagnostic.error ~code:"XPDL703" "expected an event, got %a" Protocol.pp_response resp)
  done;
  events t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
