(** Blocking protocol client (see the interface). *)

open Xpdl_core
module Rng = Xpdl_simhw.Rng

type t = {
  addr : Server.addr;
  mutable fd : Unix.file_descr;
  mutable dec : Frame.decoder;
  pending : Protocol.event Queue.t;
  mutable closed : bool;
}

exception Client_error of Diagnostic.t

let fail d = raise (Client_error d)

let deadline_exceeded () =
  Diagnostic.error ~code:"XPDL906" "client request deadline exceeded"

(* A write to a freshly reset peer must surface as a coded failure the
   retry loop can catch, not a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  | _ -> ()

let open_fd addr =
  let sa, dom =
    match addr with
    | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.ADDR_INET (ip, port), Unix.PF_INET)
  in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect addr =
  ignore_sigpipe ();
  { addr; fd = open_fd addr; dec = Frame.decoder (); pending = Queue.create (); closed = false }

(* Drop the current socket and dial the server again.  Buffered partial
   input and undelivered events die with the old connection: a new
   connection is a new session (fresh pins, fresh subscription). *)
let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- open_fd t.addr;
  t.dec <- Frame.decoder ();
  Queue.clear t.pending

(* ------------------------------------------------------------------ *)
(* deadline-aware response reads *)

let read_chunk = 65536

(* Pull one decoded response, reading more bytes as needed.  [deadline]
   is an absolute [Unix.gettimeofday] instant: when it passes while we
   are still waiting for bytes, the read fails with [XPDL906] and the
   connection is left with a possibly half-received frame (the caller
   must reconnect before reusing it). *)
let read_response ?deadline t =
  let buf = Bytes.create read_chunk in
  let rec pull () =
    match Frame.next t.dec with
    | Error d -> fail d
    | Ok (Some payload) -> (
        match Protocol.decode_response payload with Ok resp -> resp | Error d -> fail d)
    | Ok None ->
        (match deadline with
        | None -> ()
        | Some dl ->
            let remaining = dl -. Unix.gettimeofday () in
            if remaining <= 0. then fail (deadline_exceeded ())
            else
              let rec wait left =
                match Unix.select [ t.fd ] [] [] left with
                | [], _, _ -> fail (deadline_exceeded ())
                | _ -> ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    let left = dl -. Unix.gettimeofday () in
                    if left <= 0. then fail (deadline_exceeded ()) else wait left
              in
              wait remaining);
        (match Unix.read t.fd buf 0 read_chunk with
        | 0 ->
            if Frame.mid_frame t.dec then
              fail (Diagnostic.error ~code:"XPDL700" "connection closed in the middle of a frame")
            else
              fail
                (Diagnostic.error ~code:"XPDL700" "connection closed while awaiting a response")
        | n -> Frame.feed t.dec ~len:n (Bytes.unsafe_to_string buf)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
            fail (Diagnostic.error ~code:"XPDL708" "connection reset by peer during a read"));
        pull ()
  in
  pull ()

let rec await_reply ?deadline t =
  match read_response ?deadline t with
  | Protocol.Event ev ->
      Queue.push ev t.pending;
      await_reply ?deadline t
  | resp -> resp

let request ?timeout t req =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  Frame.write_frame t.fd (Protocol.encode_request req);
  await_reply ?deadline t

(* ------------------------------------------------------------------ *)
(* retries *)

type retry_policy = {
  attempts : int;
  deadline_s : float option;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_jitter : float;
  retry_seed : int;
}

let default_retry =
  {
    attempts = 5;
    deadline_s = Some 2.0;
    backoff_base_s = 0.05;
    backoff_factor = 2.0;
    backoff_jitter = 0.25;
    retry_seed = 42;
  }

(* Transport-level failures worth another attempt: timeouts, resets,
   truncated frames, and a server that is momentarily down ([ECONNREFUSED]
   or, for unix sockets, [ENOENT] while it re-binds). *)
let retryable = function
  | Client_error d -> (
      match d.Diagnostic.code with "XPDL700" | "XPDL708" | "XPDL906" -> true | _ -> false)
  | Frame.Closed _ -> true
  | Unix.Unix_error
      ((Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ENOTCONN), _, _) ->
      true
  | _ -> false

let backoff_delay policy rng k =
  let base = policy.backoff_base_s *. (policy.backoff_factor ** float_of_int k) in
  let j = policy.backoff_jitter in
  if j <= 0. then base else base *. (1. -. j +. (2. *. j *. Rng.float rng))

let request_retry ?(policy = default_retry) t req =
  let rng = Rng.create ~seed:policy.retry_seed in
  let attempts = max 1 policy.attempts in
  let rec attempt k last =
    if k >= attempts then
      fail
        (Diagnostic.error ~code:"XPDL906" "retry budget exhausted after %d attempts (last: %s)"
           attempts last)
    else
      match
        if k > 0 then begin
          Unix.sleepf (backoff_delay policy rng (k - 1));
          (* the old connection may be half-dead or mid-frame: start clean *)
          reconnect t
        end;
        request ?timeout:policy.deadline_s t req
      with
      | resp -> resp
      | exception e when retryable e -> attempt (k + 1) (Printexc.to_string e)
  in
  attempt 0 "no attempt made"

let events t =
  let evs = List.of_seq (Queue.to_seq t.pending) in
  Queue.clear t.pending;
  evs

let wait_events t n =
  while Queue.length t.pending < n do
    match read_response t with
    | Protocol.Event ev -> Queue.push ev t.pending
    | resp ->
        fail
          (Diagnostic.error ~code:"XPDL703" "expected an event, got %a" Protocol.pp_response resp)
  done;
  events t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
