(** Length-prefixed framing for the model-query server wire protocol.

    Every message travels as one frame: a 4-byte big-endian payload
    length followed by the payload bytes.  Frames up to {!max_frame}
    bytes are accepted (large enough for a whole v2 runtime-model image
    on a [Fetch]); longer announced lengths are rejected with [XPDL701]
    before any payload is buffered.

    Two consumption styles:

    {ul
    {- {!read_frame}/{!write_frame} — blocking helpers that loop on
       short [Unix.read]/[Unix.write] transfers and retry [EINTR] and
       [EAGAIN]/[EWOULDBLOCK] (waiting for readiness), so a frame
       arriving one byte at a time, or a 300 KB frame pushed through a
       small socket buffer, is reassembled correctly;}
    {- {!decoder} — an incremental reassembly state machine for
       nonblocking event loops: feed whatever chunk arrived, pull zero
       or more complete frames out.}}

    A connection that closes in the middle of a frame is a protocol
    error ([XPDL700], from {!close} or {!read_frame}); closing exactly
    at a frame boundary is a clean shutdown. *)

open Xpdl_core

(** Maximum payload size (16 MiB). *)
val max_frame : int

(** [encode payload] is the wire form: 4-byte big-endian length +
    payload.  Raises [Invalid_argument] beyond {!max_frame}. *)
val encode : string -> string

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

(** Buffer [len] bytes of [s] starting at [off] (defaults: all of [s]).
    Feeding after an error is a no-op. *)
val feed : decoder -> ?off:int -> ?len:int -> string -> unit

(** Pull the next complete frame: [Ok (Some payload)], [Ok None] when
    more input is needed, or [Error] (sticky) when the announced length
    exceeds {!max_frame} ([XPDL701]). *)
val next : decoder -> (string option, Diagnostic.t) result

(** True while buffered bytes form an incomplete frame. *)
val mid_frame : decoder -> bool

(** Declare end-of-input: [Error] with [XPDL700] if the input ended
    mid-frame, [Ok ()] on a clean frame boundary. *)
val close : decoder -> (unit, Diagnostic.t) result

(** {1 Blocking transfers} *)

(** Raised by {!write_frame} when the peer closed or reset the
    connection mid-write ([EPIPE]/[ECONNRESET]).  The diagnostic
    carries [XPDL708]: a session-level close the caller handles by
    tearing down the one session (reclaiming its pins), never an
    uncaught [Unix.Unix_error] that kills the process. *)
exception Closed of Diagnostic.t

(** Write the whole encoded frame, looping on short writes, [EINTR] and
    [EAGAIN].  Raises {!Closed} ([XPDL708]) when the peer reset the
    connection, [Unix.Unix_error] on other transport failures. *)
val write_frame : Unix.file_descr -> string -> unit

(** Read one whole frame, looping on short reads, [EINTR] and [EAGAIN]:
    [Ok (Some payload)]; [Ok None] on a clean EOF between frames;
    [Error] on EOF mid-frame ([XPDL700]) or an oversized announced
    length ([XPDL701]). *)
val read_frame : Unix.file_descr -> (string option, Diagnostic.t) result
