(** The model-query server's binary protocol: the payloads carried
    inside {!Frame} frames.

    A request is one opcode byte followed by op-specific fields; a
    response is one status byte followed by a tagged value.  Integers
    are signed 64-bit big-endian; floats travel as their IEEE-754 bit
    pattern (queries answer {e bit-identically} across the wire — the
    MVCC acceptance criterion); strings and byte blobs are a 32-bit
    length plus bytes; index paths are a 16-bit count of 32-bit steps.

    See docs/SERVING.md for the full frame layout and the op-code
    table. *)

open Xpdl_core

(** A journaled edit as seen on the wire: pushed to subscribers as an
    [Event] frame and returned in batches by [EditsSince].  [ev_kind] is
    the edited attribute name, or ["#structure"] for structural edits. *)
type event = { ev_rev : int; ev_path : int list; ev_kind : string }

type request =
  | Ping
  | Stats  (** server/hub introspection snapshot as JSON *)
  | Pin  (** pin the head revision; answers [Int rev] *)
  | Unpin of int
  | Query of { rev : int; q : string }
      (** evaluate query [q] against revision [rev] ([-1] = head; other
          revisions must be pinned by this session) *)
  | Edit of {
      path : int list;
      key : string;
      value : string;
      unit_spelling : string option;
      req_id : int option;
    }
      (** elaborate [value] (with an optional unit spelling) and set
          attribute [key] at index path [path]; answers the new [Int]
          revision.  [req_id] is a client-assigned identifier for
          idempotent replay: retransmitting the same id with the same
          payload answers the originally assigned revision without
          re-applying ([deduped] in the hub stats); the same id with a
          {e different} payload is rejected with [XPDL905].  An edit
          without an id travels as opcode [0x06] (byte-identical to the
          pre-req-id wire form); with an id, as [0x0b]. *)
  | Subscribe
  | Unsubscribe
  | Fetch of int
      (** the v2 runtime-model image of a revision ([-1] = head) *)
  | EditsSince of int  (** journal catch-up; [Compacted] if unreplayable *)

type value =
  | Unit
  | Int of int
  | Float of float  (** bit-exact: encoded as IEEE-754 bits *)
  | Str of string
  | Blob of string  (** opaque bytes (a runtime-model image) *)
  | Strs of string list
  | Edits of event list
  | Compacted of int
      (** journal compacted past the requested revision; the payload is
          the head revision to resync to ([XPDL707] semantics) *)

type response =
  | Ok of value
  | Err of { code : string; msg : string }  (** [code] is an [XPDL7xx] *)
  | Event of event  (** server-initiated push to a subscribed session *)

(** {1 Codec}

    Decoders return a coded diagnostic on malformed input: [XPDL702]
    for an unknown opcode/status/tag, [XPDL703] for a payload that does
    not parse (truncated fields, trailing bytes, bad counts). *)

val encode_request : request -> string
val decode_request : string -> (request, Diagnostic.t) result
val encode_response : response -> string
val decode_response : string -> (response, Diagnostic.t) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
