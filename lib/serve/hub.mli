(** The serving hub: MVCC session logic over one hot model.

    A hub owns an incremental {!Xpdl_store.Store} (the single writer's
    model of record), a tracked head {!Xpdl_query.Query} handle that
    follows its edit journal, and a table of pinned snapshots.  Sessions
    — one per connected client — pin revisions, query either the moving
    head or a pinned snapshot, push edits, and subscribe to the edit
    stream.

    MVCC semantics: {!Protocol.Pin} captures the store's current
    immutable model tree as a dedicated snapshot handle and registers a
    retention floor with the store ({!Xpdl_store.Store.pin}), so journal
    compaction never reaches past the oldest pin and every pinned
    [Query { rev; _ }] answers {e bit-identically} no matter how far the
    writer has advanced.  Snapshot handles are shared across sessions
    pinning the same revision and reclaimed when the last pin drops.

    The hub is deliberately transport-free — {!handle} maps requests to
    responses and {!handle_frame} does the same over encoded payloads —
    so the differential fuzzer drives it in-process while {!Server}
    wraps it in sockets.  A hub instance is domain-confined: all calls
    for one hub must come from a single domain (the server keeps hub
    traffic on its event-loop domain). *)

open Xpdl_core

type t

(** One client's view: its pins, its subscription flag, and its queue of
    undelivered edit events. *)
type session

(** Wrap a model (fresh store with [journal_capacity], default
    {!Xpdl_store.Store.journal_capacity}).  [dedup_window] bounds the
    idempotent-replay window: the hub remembers the last that many
    distinct edit request ids (with the payload fingerprint and the
    revision they were answered with), so a client retransmitting an
    acknowledged edit after a timeout gets the original revision back
    instead of applying the edit twice; the same id reused with a
    different payload is rejected with [XPDL905].  Default 4096. *)
val create : ?journal_capacity:int -> ?dedup_window:int -> Model.element -> t

(** Serve an existing store (shares the journal and revisions) — the
    way a WAL-recovered store ({!Xpdl_store.Store.recover}) is served. *)
val of_store : ?dedup_window:int -> Xpdl_store.Store.t -> t

val store : t -> Xpdl_store.Store.t

(** Open a new session. *)
val session : t -> session

val session_id : session -> int

(** Release everything the session holds: pins (and their snapshot
    handles, when last), subscription, queued events.  Idempotent. *)
val close_session : t -> session -> unit

(** {1 Dispatch} *)

(** Answer one request on behalf of a session.  Never raises: model and
    store errors come back as [Err] responses carrying [XPDL7xx] codes
    (see docs/SERVING.md for the per-op error table). *)
val handle : t -> session -> Protocol.request -> Protocol.response

(** [handle_frame t s payload] decodes, dispatches, and re-encodes; an
    undecodable payload becomes an encoded [Err] ([XPDL702]/[XPDL703]). *)
val handle_frame : t -> session -> string -> string

(** Edit events queued for a subscribed session since the last drain,
    oldest first. *)
val drain_events : session -> Protocol.event list

(** {1 Introspection} *)

(** Live snapshot handles (distinct pinned revisions with a handle). *)
val snapshot_count : t -> int

val session_count : t -> int

(** Edits actually applied to the store (idempotent replays excluded).
    [loadgen]'s acknowledged-edit counter must equal this after a run
    with request ids — the exactly-once accounting check. *)
val applied_edits : t -> int

(** Duplicate request ids answered from the dedup window. *)
val deduped : t -> int

(** The [Stats] payload: a one-line JSON object with the head revision,
    model size, journal length, pinned revisions, session and snapshot
    counts, requests served, [applied_edits]/[deduped] edit accounting,
    durability state, and the head model's [model_fnv] fingerprint (the
    crash drill's bit-identity probe). *)
val stats_json : t -> string

val pp : Format.formatter -> t -> unit
