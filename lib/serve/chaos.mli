(** A seeded fault-injecting proxy between protocol clients and the
    model-query server — the drill harness's network.

    The proxy accepts client connections on [listen], dials [upstream]
    for each, and shuttles bytes both ways while rolling per-write
    fault dice from a deterministic splitmix64 stream ({!Xpdl_simhw.Rng},
    split per connection from [seed] — a seed replays the same fault
    schedule against the same traffic):

    {ul
    {- {e write splits} — relay at most [max_split] bytes at a time,
       tearing frames across packets (exercises incremental reassembly
       and, with a crash, torn WAL tails);}
    {- {e stalls} — freeze one direction for [stall_s] seconds
       (exercises client deadlines [XPDL906]);}
    {- {e resets} — close both sides mid-flight (exercises retry with
       reconnect, server-side session reclamation [XPDL708], and
       idempotent edit replay).}}

    Chances are per buffered write, in [0, 1].  The proxy is a
    transparent byte shuttle otherwise: no protocol knowledge, so it
    also stresses nothing but the transport contract. *)

type plan = {
  split_chance : float;
  max_split : int;  (** max bytes relayed by a split write *)
  stall_chance : float;
  stall_s : float;
  reset_chance : float;
}

(** 30 % splits of at most 7 bytes, 10 % stalls of 20 ms, 1 % resets. *)
val default_plan : plan

type t

(** Start proxying on [listen] towards [upstream] on a background
    domain.  [deadline_s] auto-stops the loop (CI hygiene). *)
val start :
  ?max_clients:int ->
  ?deadline_s:float ->
  seed:int ->
  plan:plan ->
  listen:Server.addr ->
  upstream:Server.addr ->
  unit ->
  t

(** The bound listening address (resolves port 0). *)
val sockaddr : t -> Unix.sockaddr

val running : t -> bool

(** Fault counters as a one-line JSON object: connections accepted and
    active, splits, stalls, resets, and the seed. *)
val stats_json : t -> string

(** Block until the loop exits (deadline or {!stop}). *)
val wait : t -> unit

(** Stop the loop, close every proxied connection, release the socket. *)
val stop : t -> unit
