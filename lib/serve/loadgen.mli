(** The driver-side load generator for the model-query server.

    Spawns [clients] domains, each with its own socket connection and
    its own deterministic {!Xpdl_simhw.Rng} stream (splitmix64, split
    from [seed] by client index — identical configs replay identical
    request sequences).  Each client draws operations from a weighted
    {!mix} of attribute getters, derived-attribute queries, attribute
    edits, and pinned-snapshot round-trips (pin → query at the pinned
    revision → unpin, the MVCC path).

    Two pacing disciplines:
    {ul
    {- {!Closed} — send the next request the moment the previous
       response lands (measures saturated service latency);}
    {- {!Open} [rate] — each client fires on an independent fixed
       schedule of [rate] requests/second; latency is measured from the
       {e scheduled} send time, so queueing delay behind a slow server
       is charged to the server (no coordinated omission).}}

    Reported latencies are microseconds; percentiles come from the
    merged, sorted sample of every client's operations. *)

(** An editable attribute slot: the generator cycles [et_values]
    pseudo-randomly at [et_path]. *)
type edit_target = { et_path : int list; et_key : string; et_values : string array }

type mix = {
  getters : string array;  (** query expressions answered from stored attrs *)
  derived : string array;  (** derived-attribute query expressions *)
  edits : edit_target array;
  w_getter : int;
  w_derived : int;
  w_edit : int;
  w_pinned : int;  (** weight of the pin/query/unpin round-trip *)
}

(** 60% getters / 25% derived / 10% edits / 5% pinned over the stock
    expressions ([cores], [static-power], …); no edit targets. *)
val default_mix : mix

type mode = Closed | Open of float  (** requests/second per client *)

type config = { clients : int; duration_s : float; mode : mode; mix : mix; seed : int }

type report = {
  ops : int;  (** operations completed (a pinned round-trip counts once) *)
  errors : int;  (** [Err] responses (still timed) *)
  elapsed_s : float;
  throughput : float;  (** ops/s across all clients *)
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

(** Run the workload against a live server.  Raises if a client cannot
    connect or a framing error occurs. *)
val run : Server.addr -> config -> report

val report_to_json : report -> string
val pp_report : Format.formatter -> report -> unit
