(** The driver-side load generator for the model-query server.

    Spawns [clients] domains, each with its own socket connection and
    its own deterministic {!Xpdl_simhw.Rng} stream (splitmix64, split
    from [seed] by client index — identical configs replay identical
    request sequences).  Each client draws operations from a weighted
    {!mix} of attribute getters, derived-attribute queries, attribute
    edits, and pinned-snapshot round-trips (pin → query at the pinned
    revision → unpin, the MVCC path).

    Two pacing disciplines:
    {ul
    {- {!Closed} — send the next request the moment the previous
       response lands (measures saturated service latency);}
    {- {!Open} [rate] — each client fires on an independent fixed
       schedule of [rate] requests/second; latency is measured from the
       {e scheduled} send time, so queueing delay behind a slow server
       is charged to the server (no coordinated omission).}}

    Reported latencies are microseconds; percentiles come from the
    merged, sorted sample of every client's operations. *)

(** An editable attribute slot: the generator cycles [et_values]
    pseudo-randomly at [et_path]. *)
type edit_target = { et_path : int list; et_key : string; et_values : string array }

type mix = {
  getters : string array;  (** query expressions answered from stored attrs *)
  derived : string array;  (** derived-attribute query expressions *)
  edits : edit_target array;
  w_getter : int;
  w_derived : int;
  w_edit : int;
  w_pinned : int;  (** weight of the pin/query/unpin round-trip *)
}

(** 60% getters / 25% derived / 10% edits / 5% pinned over the stock
    expressions ([cores], [static-power], …); no edit targets. *)
val default_mix : mix

type mode = Closed | Open of float  (** requests/second per client *)

type config = {
  clients : int;
  duration_s : float;
  mode : mode;
  mix : mix;
  seed : int;
  req_ids : bool;
      (** stamp every edit with a client-assigned request id (drawn from
          the seeded stream, unique per client per run) so server-side
          dedup makes retried edits idempotent *)
  retry : Client.retry_policy option;
      (** retry transport failures with backoff + reconnect; [None]
          fails the op on the first transport error *)
}

type report = {
  ops : int;  (** operations completed (a pinned round-trip counts once) *)
  errors : int;  (** [Err] responses and transport failures (still timed) *)
  elapsed_s : float;
  throughput : float;  (** ops/s across all clients *)
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
  acknowledged : int;  (** edits answered [Ok] to some client *)
  applied : int;
      (** this run's delta of the server's [applied_edits] stats counter
          (sampled before and after, so a long-lived server's earlier
          runs do not contaminate the accounting); [-1] when the server
          could not answer (e.g. killed mid-drill) *)
  max_edit_rev : int;  (** highest revision any edit was acknowledged at *)
}

(** Run the workload against a live server.  A server that dies
    mid-run stops the affected clients (counted as errors) instead of
    crashing the generator — the crash drill kills the server under
    load on purpose. *)
val run : Server.addr -> config -> report

(** Exactly-once accounting violated: the server answered [Stats] and
    its applied-edit count differs from the clients' acknowledged
    count.  [xpdltool loadgen] exits nonzero on this. *)
val edits_diverged : report -> bool

val report_to_json : report -> string
val pp_report : Format.formatter -> report -> unit
