(** Length-prefixed framing (see the interface). *)

open Xpdl_core

let max_frame = 16 * 1024 * 1024

let truncated () =
  Diagnostic.error ~code:"XPDL700" "connection closed in the middle of a frame"

let oversized n =
  Diagnostic.error ~code:"XPDL701" "announced frame length %d exceeds the %d-byte maximum" n
    max_frame

exception Closed of Diagnostic.t

let reset_by_peer err =
  Closed
    (Diagnostic.error ~code:"XPDL708" "connection reset by peer during a frame write (%s)"
       (Unix.error_message err))

let encode payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Frame.encode: payload exceeds max_frame";
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* incremental decoder *)

(* Buffered input lives in [buf]; [pos] is the read cursor.  Consumed
   prefixes are reclaimed whenever the buffer drains completely (the
   steady state of a request/response protocol), so the buffer does not
   grow beyond one partially received frame plus one read chunk. *)
type decoder = {
  buf : Buffer.t;
  mutable pos : int;
  mutable failed : Diagnostic.t option;  (** sticky oversize error *)
}

let decoder () = { buf = Buffer.create 4096; pos = 0; failed = None }

let feed d ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if d.failed = None && len > 0 then Buffer.add_substring d.buf s off len

let available d = Buffer.length d.buf - d.pos

let peek_len d =
  let b i = Char.code (Buffer.nth d.buf (d.pos + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let next d =
  match d.failed with
  | Some e -> Error e
  | None ->
      if available d < 4 then begin
        if available d = 0 && Buffer.length d.buf > 0 then begin
          Buffer.clear d.buf;
          d.pos <- 0
        end;
        Ok None
      end
      else
        let n = peek_len d in
        if n > max_frame then begin
          let e = oversized n in
          d.failed <- Some e;
          Error e
        end
        else if available d < 4 + n then Ok None
        else begin
          let payload = Buffer.sub d.buf (d.pos + 4) n in
          d.pos <- d.pos + 4 + n;
          if available d = 0 then begin
            Buffer.clear d.buf;
            d.pos <- 0
          end;
          Ok (Some payload)
        end

let mid_frame d = available d > 0
let close d = match d.failed with Some e -> Error e | None -> if mid_frame d then Error (truncated ()) else Ok ()

(* ------------------------------------------------------------------ *)
(* blocking transfers *)

(* Wait until [fd] is ready in the given direction; used to turn
   EAGAIN/EWOULDBLOCK on a nonblocking descriptor into a bounded wait
   instead of a busy spin. *)
let wait_readable fd = ignore (Unix.select [ fd ] [] [] 1.0)
let wait_writable fd = ignore (Unix.select [] [ fd ] [] 1.0)

let write_frame fd payload =
  let s = encode payload in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> wait_writable fd
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET) as err, _, _) ->
        raise (reset_by_peer err)
  done

(* Read exactly [want] bytes into [b] at [off..]; false on EOF before
   the first byte, raises on EOF in the middle (the caller labels it). *)
exception Eof_mid_read

let read_exactly fd b off want =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < want do
    match Unix.read fd b (off + !got) (want - !got) with
    | 0 -> if !got = 0 then eof := true else raise Eof_mid_read
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> wait_readable fd
  done;
  not !eof

let read_frame fd =
  try
    let hdr = Bytes.create 4 in
    if not (read_exactly fd hdr 0 4) then Ok None
    else begin
      let b i = Bytes.get_uint8 hdr i in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_frame then Error (oversized n)
      else if n = 0 then Ok (Some "")
      else
        let payload = Bytes.create n in
        if read_exactly fd payload 0 n then Ok (Some (Bytes.unsafe_to_string payload))
        else Error (truncated ())
    end
  with Eof_mid_read -> Error (truncated ())
