(** Multi-domain load generator (see the interface). *)

module Rng = Xpdl_simhw.Rng

type edit_target = { et_path : int list; et_key : string; et_values : string array }

type mix = {
  getters : string array;
  derived : string array;
  edits : edit_target array;
  w_getter : int;
  w_derived : int;
  w_edit : int;
  w_pinned : int;
}

let default_mix =
  {
    getters = [| "size"; "multi-node"; "software"; "degraded" |];
    derived = [| "cores"; "static-power"; "memory"; "cuda-devices" |];
    edits = [||];
    w_getter = 60;
    w_derived = 25;
    w_edit = 10;
    w_pinned = 5;
  }

type mode = Closed | Open of float

type config = { clients : int; duration_s : float; mode : mode; mix : mix; seed : int }

type report = {
  ops : int;
  errors : int;
  elapsed_s : float;
  throughput : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

(* ------------------------------------------------------------------ *)
(* one client *)

let pick rng (a : string array) = a.(Rng.int rng (Array.length a))

(* Draw an operation class by weight, then perform it; the returned
   request list is sent back-to-back and timed as one operation. *)
let draw_requests cfg rng : Protocol.request list =
  let m = cfg.mix in
  let w_edit = if Array.length m.edits = 0 then 0 else m.w_edit in
  let total = m.w_getter + m.w_derived + w_edit + m.w_pinned in
  let total = if total = 0 then invalid_arg "Loadgen: empty mix" else total in
  let r = Rng.int rng total in
  if r < m.w_getter then [ Protocol.Query { rev = -1; q = pick rng m.getters } ]
  else if r < m.w_getter + m.w_derived then [ Protocol.Query { rev = -1; q = pick rng m.derived } ]
  else if r < m.w_getter + m.w_derived + w_edit then begin
    let et = m.edits.(Rng.int rng (Array.length m.edits)) in
    [
      Protocol.Edit
        {
          path = et.et_path;
          key = et.et_key;
          value = et.et_values.(Rng.int rng (Array.length et.et_values));
          unit_spelling = None;
        };
    ]
  end
  else [ Protocol.Pin ]

(* A pinned round-trip needs the revision [Pin] answered before it can
   query and unpin, so it is driven reply-by-reply here. *)
let perform cl cfg rng errors = function
  | [ Protocol.Pin ] -> (
      match Client.request cl Protocol.Pin with
      | Protocol.Ok (Int rev) ->
          let q = pick rng cfg.mix.derived in
          (match Client.request cl (Protocol.Query { rev; q }) with
          | Protocol.Ok _ -> ()
          | _ -> incr errors);
          (match Client.request cl (Protocol.Unpin rev) with
          | Protocol.Ok _ -> ()
          | _ -> incr errors)
      | _ -> incr errors)
  | reqs ->
      List.iter
        (fun req ->
          match Client.request cl req with Protocol.Ok _ -> () | _ -> incr errors)
        reqs

let client_run addr cfg idx =
  let cl = Client.connect addr in
  let rng = Rng.split (Rng.create ~seed:cfg.seed) (Fmt.str "client-%d" idx) in
  let lats = ref [] and ops = ref 0 and errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.duration_s in
  (match cfg.mode with
  | Closed ->
      while Unix.gettimeofday () < deadline do
        let reqs = draw_requests cfg rng in
        let s = Unix.gettimeofday () in
        perform cl cfg rng errors reqs;
        lats := (Unix.gettimeofday () -. s) *. 1e6 :: !lats;
        incr ops
      done
  | Open rate ->
      let period = 1. /. rate in
      let next = ref t0 in
      while !next < deadline do
        let now = Unix.gettimeofday () in
        if now < !next then Unix.sleepf (!next -. now);
        let reqs = draw_requests cfg rng in
        perform cl cfg rng errors reqs;
        (* latency from the scheduled send instant: queueing behind a
           slow server is the server's latency, not omitted *)
        lats := (Unix.gettimeofday () -. !next) *. 1e6 :: !lats;
        incr ops;
        next := !next +. period
      done);
  Client.close cl;
  (!lats, !ops, !errors)

(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. p)))

let run addr cfg =
  if cfg.clients <= 0 then invalid_arg "Loadgen: clients must be positive";
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init cfg.clients (fun idx -> Domain.spawn (fun () -> client_run addr cfg idx))
  in
  let results = List.map Domain.join workers in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list (List.concat_map (fun (l, _, _) -> l) results) in
  Array.sort compare lats;
  let ops = List.fold_left (fun acc (_, o, _) -> acc + o) 0 results in
  let errors = List.fold_left (fun acc (_, _, e) -> acc + e) 0 results in
  let mean_us =
    if Array.length lats = 0 then Float.nan
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  {
    ops;
    errors;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int ops /. elapsed_s else 0.);
    p50_us = percentile lats 0.50;
    p95_us = percentile lats 0.95;
    p99_us = percentile lats 0.99;
    mean_us;
    max_us = (if Array.length lats = 0 then Float.nan else lats.(Array.length lats - 1));
  }

let report_to_json r =
  Fmt.str
    "{\"ops\":%d,\"errors\":%d,\"elapsed_s\":%.3f,\"throughput_ops_s\":%.1f,\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"mean_us\":%.1f,\"max_us\":%.1f}"
    r.ops r.errors r.elapsed_s r.throughput r.p50_us r.p95_us r.p99_us r.mean_us r.max_us

let pp_report ppf r =
  Fmt.pf ppf "%d ops (%d errors) in %.2fs: %.0f ops/s, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs"
    r.ops r.errors r.elapsed_s r.throughput r.p50_us r.p95_us r.p99_us
