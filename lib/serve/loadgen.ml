(** Multi-domain load generator (see the interface). *)

module Rng = Xpdl_simhw.Rng

type edit_target = { et_path : int list; et_key : string; et_values : string array }

type mix = {
  getters : string array;
  derived : string array;
  edits : edit_target array;
  w_getter : int;
  w_derived : int;
  w_edit : int;
  w_pinned : int;
}

let default_mix =
  {
    getters = [| "size"; "multi-node"; "software"; "degraded" |];
    derived = [| "cores"; "static-power"; "memory"; "cuda-devices" |];
    edits = [||];
    w_getter = 60;
    w_derived = 25;
    w_edit = 10;
    w_pinned = 5;
  }

type mode = Closed | Open of float

type config = {
  clients : int;
  duration_s : float;
  mode : mode;
  mix : mix;
  seed : int;
  req_ids : bool;
  retry : Client.retry_policy option;
}

type report = {
  ops : int;
  errors : int;
  elapsed_s : float;
  throughput : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
  acknowledged : int;
  applied : int;
  max_edit_rev : int;
}

(* ------------------------------------------------------------------ *)
(* one client *)

let pick rng (a : string array) = a.(Rng.int rng (Array.length a))

(* Per-client mutable run state: the request-id sequence and the
   edit-accounting counters the report aggregates. *)
type client_state = {
  idx : int;
  id_base : int;
  mutable seq : int;
  mutable acked : int;
  mutable max_rev : int;
  mutable dead : bool;  (** server unreachable: stop this client's loop *)
}

let next_req_id cfg st =
  if not cfg.req_ids then None
  else begin
    let id = (st.id_base lsl 24) lor (st.seq land 0xffffff) in
    st.seq <- st.seq + 1;
    Some id
  end

(* Draw an operation class by weight, then perform it; the returned
   request list is sent back-to-back and timed as one operation. *)
let draw_requests cfg st rng : Protocol.request list =
  let m = cfg.mix in
  let w_edit = if Array.length m.edits = 0 then 0 else m.w_edit in
  let total = m.w_getter + m.w_derived + w_edit + m.w_pinned in
  let total = if total = 0 then invalid_arg "Loadgen: empty mix" else total in
  let r = Rng.int rng total in
  if r < m.w_getter then [ Protocol.Query { rev = -1; q = pick rng m.getters } ]
  else if r < m.w_getter + m.w_derived then [ Protocol.Query { rev = -1; q = pick rng m.derived } ]
  else if r < m.w_getter + m.w_derived + w_edit then begin
    let et = m.edits.(Rng.int rng (Array.length m.edits)) in
    [
      Protocol.Edit
        {
          path = et.et_path;
          key = et.et_key;
          value = et.et_values.(Rng.int rng (Array.length et.et_values));
          unit_spelling = None;
          req_id = next_req_id cfg st;
        };
    ]
  end
  else [ Protocol.Pin ]

(* One request over the wire.  Transport failures (reset, deadline,
   dead server) come back as [None]: the op counts as an error and the
   client stops — a crashed server must not crash the generator. *)
let send cfg st cl req =
  match
    match cfg.retry with
    | Some policy -> Client.request_retry ~policy cl req
    | None -> Client.request cl req
  with
  | resp -> Some resp
  | exception (Client.Client_error _ | Frame.Closed _ | Unix.Unix_error _) ->
      st.dead <- true;
      None

let note_edit_ok st (req : Protocol.request) (resp : Protocol.response) =
  match (req, resp) with
  | Protocol.Edit _, Protocol.Ok (Int rev) ->
      st.acked <- st.acked + 1;
      if rev > st.max_rev then st.max_rev <- rev
  | _ -> ()

(* A pinned round-trip needs the revision [Pin] answered before it can
   query and unpin, so it is driven reply-by-reply here. *)
let perform cl cfg st rng errors = function
  | [ Protocol.Pin ] -> (
      match send cfg st cl Protocol.Pin with
      | Some (Protocol.Ok (Int rev)) ->
          let q = pick rng cfg.mix.derived in
          (match send cfg st cl (Protocol.Query { rev; q }) with
          | Some (Protocol.Ok _) -> ()
          | _ -> incr errors);
          (match send cfg st cl (Protocol.Unpin rev) with
          | Some (Protocol.Ok _) -> ()
          | _ -> incr errors)
      | _ -> incr errors)
  | reqs ->
      List.iter
        (fun req ->
          match send cfg st cl req with
          | Some (Protocol.Ok _ as resp) -> note_edit_ok st req resp
          | _ -> incr errors)
        reqs

let client_run addr cfg idx =
  let rng = Rng.split (Rng.create ~seed:cfg.seed) (Fmt.str "client-%d" idx) in
  (* request ids must not collide across runs against one server: the
     per-client base is drawn from the seeded stream, so distinct seeds
     give distinct id spaces while a config replays deterministically *)
  let st =
    { idx; id_base = 1 + Rng.int rng ((1 lsl 30) - 1); seq = 0; acked = 0; max_rev = 0; dead = false }
  in
  ignore st.idx;
  match Client.connect addr with
  | exception Unix.Unix_error _ -> ([], 0, 1, st)
  | cl ->
      let lats = ref [] and ops = ref 0 and errors = ref 0 in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. cfg.duration_s in
      (match cfg.mode with
      | Closed ->
          while (not st.dead) && Unix.gettimeofday () < deadline do
            let reqs = draw_requests cfg st rng in
            let s = Unix.gettimeofday () in
            perform cl cfg st rng errors reqs;
            lats := (Unix.gettimeofday () -. s) *. 1e6 :: !lats;
            incr ops
          done
      | Open rate ->
          let period = 1. /. rate in
          let next = ref t0 in
          while (not st.dead) && !next < deadline do
            let now = Unix.gettimeofday () in
            if now < !next then Unix.sleepf (!next -. now);
            let reqs = draw_requests cfg st rng in
            perform cl cfg st rng errors reqs;
            (* latency from the scheduled send instant: queueing behind a
               slow server is the server's latency, not omitted *)
            lats := (Unix.gettimeofday () -. !next) *. 1e6 :: !lats;
            incr ops;
            next := !next +. period
          done);
      Client.close cl;
      (!lats, !ops, !errors, st)

(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. p)))

(* Pull an integer field out of the hub's stats JSON (flat, known keys:
   a full JSON parser would be overkill for ["\"key\":123"]). *)
let scan_int_field json key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and n = String.length json in
  let rec find i =
    if i + plen > n then None
    else if String.sub json i plen = pat then begin
      let j = ref (i + plen) in
      let start = !j in
      while !j < n && (match json.[!j] with '0' .. '9' | '-' -> true | _ -> false) do incr j done;
      if !j > start then int_of_string_opt (String.sub json start (!j - start)) else None
    end
    else find (i + 1)
  in
  find 0

(* The server-side edit count, for exactly-once accounting against the
   clients' acknowledgements; [-1] when the server cannot answer. *)
let fetch_applied addr =
  match Client.connect addr with
  | exception Unix.Unix_error _ -> -1
  | cl ->
      let applied =
        match Client.request ~timeout:2.0 cl Protocol.Stats with
        | Protocol.Ok (Str json) -> Option.value ~default:(-1) (scan_int_field json "applied_edits")
        | _ -> -1
        | exception (Client.Client_error _ | Frame.Closed _ | Unix.Unix_error _) -> -1
      in
      Client.close cl;
      applied

let run addr cfg =
  if cfg.clients <= 0 then invalid_arg "Loadgen: clients must be positive";
  (* snapshot the server's cumulative edit counter up front so [applied]
     reports only this run's delta — a second run against a long-lived
     server must not inherit earlier runs' edits *)
  let applied_before = fetch_applied addr in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init cfg.clients (fun idx -> Domain.spawn (fun () -> client_run addr cfg idx))
  in
  let results = List.map Domain.join workers in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list (List.concat_map (fun (l, _, _, _) -> l) results) in
  Array.sort compare lats;
  let ops = List.fold_left (fun acc (_, o, _, _) -> acc + o) 0 results in
  let errors = List.fold_left (fun acc (_, _, e, _) -> acc + e) 0 results in
  let acknowledged = List.fold_left (fun acc (_, _, _, st) -> acc + st.acked) 0 results in
  let max_edit_rev = List.fold_left (fun acc (_, _, _, st) -> max acc st.max_rev) 0 results in
  let applied =
    match fetch_applied addr with
    | -1 -> -1
    | after when applied_before >= 0 -> after - applied_before
    | after -> after
  in
  let mean_us =
    if Array.length lats = 0 then Float.nan
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  {
    ops;
    errors;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int ops /. elapsed_s else 0.);
    p50_us = percentile lats 0.50;
    p95_us = percentile lats 0.95;
    p99_us = percentile lats 0.99;
    mean_us;
    max_us = (if Array.length lats = 0 then Float.nan else lats.(Array.length lats - 1));
    acknowledged;
    applied;
    max_edit_rev;
  }

(* Exactly-once accounting: every acknowledged edit was applied exactly
   once.  Only meaningful when the run used request ids (otherwise a
   retried edit can legitimately apply twice) and the server answered
   [Stats]; a dead server reports [applied = -1] and does not diverge
   here (the crash drill checks it offline via [walcheck]). *)
let edits_diverged r = r.applied >= 0 && r.acknowledged <> r.applied

let report_to_json r =
  Fmt.str
    "{\"ops\":%d,\"errors\":%d,\"elapsed_s\":%.3f,\"throughput_ops_s\":%.1f,\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"mean_us\":%.1f,\"max_us\":%.1f,\"acknowledged\":%d,\"applied\":%d,\"max_edit_rev\":%d,\"edits_diverged\":%b}"
    r.ops r.errors r.elapsed_s r.throughput r.p50_us r.p95_us r.p99_us r.mean_us r.max_us
    r.acknowledged r.applied r.max_edit_rev (edits_diverged r)

let pp_report ppf r =
  Fmt.pf ppf
    "%d ops (%d errors) in %.2fs: %.0f ops/s, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs; %d edits acked, %d applied"
    r.ops r.errors r.elapsed_s r.throughput r.p50_us r.p95_us r.p99_us r.acknowledged r.applied
