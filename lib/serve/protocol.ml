(** The server's binary protocol codec (see the interface). *)

open Xpdl_core

type event = { ev_rev : int; ev_path : int list; ev_kind : string }

type request =
  | Ping
  | Stats
  | Pin
  | Unpin of int
  | Query of { rev : int; q : string }
  | Edit of {
      path : int list;
      key : string;
      value : string;
      unit_spelling : string option;
      req_id : int option;
    }
  | Subscribe
  | Unsubscribe
  | Fetch of int
  | EditsSince of int

type value =
  | Unit
  | Int of int
  | Float of float
  | Str of string
  | Blob of string
  | Strs of string list
  | Edits of event list
  | Compacted of int

type response = Ok of value | Err of { code : string; msg : string } | Event of event

(* ------------------------------------------------------------------ *)
(* writer *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let w_str b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let w_path b path =
  Buffer.add_uint16_be b (List.length path);
  List.iter (fun i -> Buffer.add_int32_be b (Int32.of_int i)) path

let w_event b ev =
  w_i64 b ev.ev_rev;
  w_path b ev.ev_path;
  w_str b ev.ev_kind

(* ------------------------------------------------------------------ *)
(* reader *)

exception Malformed of string

let mal fmt = Fmt.kstr (fun m -> raise (Malformed m)) fmt

type reader = { s : string; mutable pos : int }

let r_need r n = if r.pos + n > String.length r.s then mal "payload truncated (need %d bytes)" n

let r_u8 r =
  r_need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  r_need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let r_f64 r =
  r_need r 8;
  let v = Int64.float_of_bits (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_u16 r =
  r_need r 2;
  let v = String.get_uint16_be r.s r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  r_need r 4;
  let v = Int32.to_int (String.get_int32_be r.s r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then mal "negative length";
  v

let r_str r =
  let n = r_u32 r in
  r_need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let r_path r =
  let n = r_u16 r in
  List.init n (fun _ ->
      r_need r 4;
      let v = Int32.to_int (String.get_int32_be r.s r.pos) in
      r.pos <- r.pos + 4;
      v)

let r_event r =
  let ev_rev = r_i64 r in
  let ev_path = r_path r in
  let ev_kind = r_str r in
  { ev_rev; ev_path; ev_kind }

let r_done r = if r.pos <> String.length r.s then mal "%d trailing bytes" (String.length r.s - r.pos)

(* ------------------------------------------------------------------ *)
(* requests *)

let encode_request req =
  let b = Buffer.create 32 in
  (match req with
  | Ping -> w_u8 b 0x01
  | Stats -> w_u8 b 0x02
  | Pin -> w_u8 b 0x03
  | Unpin r ->
      w_u8 b 0x04;
      w_i64 b r
  | Query { rev; q } ->
      w_u8 b 0x05;
      w_i64 b rev;
      w_str b q
  | Edit { path; key; value; unit_spelling; req_id } ->
      (* 0x06 stays byte-identical to the pre-req-id wire form; edits
         carrying a request id travel as 0x0b with the id first. *)
      (match req_id with
      | None -> w_u8 b 0x06
      | Some id ->
          w_u8 b 0x0b;
          w_i64 b id);
      w_path b path;
      w_str b key;
      w_str b value;
      (match unit_spelling with
      | None -> w_u8 b 0
      | Some u ->
          w_u8 b 1;
          w_str b u)
  | Subscribe -> w_u8 b 0x07
  | Unsubscribe -> w_u8 b 0x08
  | Fetch rev ->
      w_u8 b 0x09;
      w_i64 b rev
  | EditsSince rev ->
      w_u8 b 0x0a;
      w_i64 b rev);
  Buffer.contents b

exception Unknown_op of int

let err_unknown what v = Diagnostic.error ~code:"XPDL702" "unknown %s 0x%02x in request" what v
let err_malformed msg = Diagnostic.error ~code:"XPDL703" "malformed payload: %s" msg

let decode_request s : (request, Diagnostic.t) result =
  let r = { s; pos = 0 } in
  match
    let op = r_u8 r in
    let req =
      match op with
      | 0x01 -> Ping
      | 0x02 -> Stats
      | 0x03 -> Pin
      | 0x04 -> Unpin (r_i64 r)
      | 0x05 ->
          let rev = r_i64 r in
          let q = r_str r in
          Query { rev; q }
      | 0x06 | 0x0b ->
          let req_id = if op = 0x0b then Some (r_i64 r) else None in
          let path = r_path r in
          let key = r_str r in
          let value = r_str r in
          let unit_spelling = match r_u8 r with 0 -> None | _ -> Some (r_str r) in
          Edit { path; key; value; unit_spelling; req_id }
      | 0x07 -> Subscribe
      | 0x08 -> Unsubscribe
      | 0x09 -> Fetch (r_i64 r)
      | 0x0a -> EditsSince (r_i64 r)
      | op -> raise (Unknown_op op)
    in
    r_done r;
    req
  with
  | req -> Result.Ok req
  | exception Unknown_op op -> Error (err_unknown "opcode" op)
  | exception Malformed m -> Error (err_malformed m)

(* ------------------------------------------------------------------ *)
(* responses *)

let w_value b = function
  | Unit -> w_u8 b 0
  | Int v ->
      w_u8 b 1;
      w_i64 b v
  | Float v ->
      w_u8 b 2;
      w_f64 b v
  | Str s ->
      w_u8 b 3;
      w_str b s
  | Blob s ->
      w_u8 b 4;
      w_str b s
  | Strs l ->
      w_u8 b 5;
      Buffer.add_int32_be b (Int32.of_int (List.length l));
      List.iter (w_str b) l
  | Edits l ->
      w_u8 b 6;
      Buffer.add_int32_be b (Int32.of_int (List.length l));
      List.iter (w_event b) l
  | Compacted head ->
      w_u8 b 7;
      w_i64 b head

let r_value r =
  match r_u8 r with
  | 0 -> Unit
  | 1 -> Int (r_i64 r)
  | 2 -> Float (r_f64 r)
  | 3 -> Str (r_str r)
  | 4 -> Blob (r_str r)
  | 5 ->
      let n = r_u32 r in
      Strs (List.init n (fun _ -> r_str r))
  | 6 ->
      let n = r_u32 r in
      Edits (List.init n (fun _ -> r_event r))
  | 7 -> Compacted (r_i64 r)
  | t -> mal "unknown value tag %d" t

let encode_response resp =
  let b = Buffer.create 32 in
  (match resp with
  | Ok v ->
      w_u8 b 0x00;
      w_value b v
  | Err { code; msg } ->
      w_u8 b 0x01;
      w_str b code;
      w_str b msg
  | Event ev ->
      w_u8 b 0x02;
      w_event b ev);
  Buffer.contents b

let decode_response s : (response, Diagnostic.t) result =
  let r = { s; pos = 0 } in
  match
    let status = r_u8 r in
    let resp =
      match status with
      | 0x00 -> Ok (r_value r)
      | 0x01 ->
          let code = r_str r in
          let msg = r_str r in
          Err { code; msg }
      | 0x02 -> Event (r_event r)
      | st -> mal "unknown status byte %d" st
    in
    r_done r;
    resp
  with
  | resp -> Result.Ok resp
  | exception Malformed m -> Error (err_malformed m)

(* ------------------------------------------------------------------ *)

let pp_path ppf p = Fmt.pf ppf "[%a]" Fmt.(list ~sep:sp int) p

let pp_request ppf = function
  | Ping -> Fmt.pf ppf "ping"
  | Stats -> Fmt.pf ppf "stats"
  | Pin -> Fmt.pf ppf "pin"
  | Unpin r -> Fmt.pf ppf "unpin %d" r
  | Query { rev; q } -> Fmt.pf ppf "query@%d %S" rev q
  | Edit { path; key; value; unit_spelling; req_id } ->
      Fmt.pf ppf "edit%a %a %s=%S%a"
        Fmt.(option (fmt "#%d"))
        req_id pp_path path key value
        Fmt.(option (fmt ":%s"))
        unit_spelling
  | Subscribe -> Fmt.pf ppf "subscribe"
  | Unsubscribe -> Fmt.pf ppf "unsubscribe"
  | Fetch rev -> Fmt.pf ppf "fetch@%d" rev
  | EditsSince rev -> Fmt.pf ppf "edits-since %d" rev

let pp_value ppf = function
  | Unit -> Fmt.pf ppf "()"
  | Int v -> Fmt.pf ppf "%d" v
  | Float v -> Fmt.pf ppf "%h" v
  | Str s -> Fmt.pf ppf "%S" s
  | Blob s -> Fmt.pf ppf "<%d bytes>" (String.length s)
  | Strs l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi (quote string)) l
  | Edits l -> Fmt.pf ppf "<%d edits>" (List.length l)
  | Compacted head -> Fmt.pf ppf "compacted (head %d)" head

let pp_response ppf = function
  | Ok v -> Fmt.pf ppf "ok %a" pp_value v
  | Err { code; msg } -> Fmt.pf ppf "err [%s] %s" code msg
  | Event ev -> Fmt.pf ppf "event rev=%d %a %s" ev.ev_rev pp_path ev.ev_path ev.ev_kind
