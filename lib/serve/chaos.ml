(** Seeded fault-injecting TCP/unix-socket proxy (see the interface). *)

module Rng = Xpdl_simhw.Rng

type plan = {
  split_chance : float;
  max_split : int;
  stall_chance : float;
  stall_s : float;
  reset_chance : float;
}

let default_plan =
  { split_chance = 0.3; max_split = 7; stall_chance = 0.1; stall_s = 0.02; reset_chance = 0.01 }

(* One proxied connection: a client-side and an upstream-side socket
   shuttling bytes both ways through bounded relay buffers, plus the
   per-connection fault state (its own rng stream and stall clocks). *)
type pipe = {
  buf : Buffer.t;  (** bytes received and not yet relayed *)
  mutable pos : int;  (** relay cursor into [buf] *)
  mutable stall_until : float;  (** absolute instant writes resume *)
  mutable src_eof : bool;  (** the feeding side reached EOF *)
}

type conn = {
  cid : int;
  down : Unix.file_descr;  (** the client's socket *)
  up : Unix.file_descr;  (** our socket to the real server *)
  c2s : pipe;  (** client -> server direction *)
  s2c : pipe;  (** server -> client direction *)
  rng : Rng.t;
  mutable dead : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  upstream : Server.addr;
  plan : plan;
  seed : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  max_clients : int;
  deadline : float option;
  cleanup : unit -> unit;
  mutable conns : conn list;
  mutable next_cid : int;
  mutable alive : bool;
  mutable domain : unit Domain.t option;
  mutable stopped : bool;
  rbuf : Bytes.t;
  (* fault counters, for [stats_json] *)
  mutable accepted : int;
  mutable splits : int;
  mutable stalls : int;
  mutable resets : int;
}

let sockaddr t = t.bound
let running t = t.alive

let fresh_pipe () = { buf = Buffer.create 4096; pos = 0; stall_until = 0.; src_eof = false }

let pending p = Buffer.length p.buf - p.pos

let resolve_addr = function
  | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (ip, port), Unix.PF_INET)

let close_conn t c =
  if not c.dead then begin
    c.dead <- true;
    (try Unix.close c.down with Unix.Unix_error _ -> ());
    (try Unix.close c.up with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

(* Injected connection reset: kill both sides at once, so the client
   sees ECONNRESET/EOF and the server reclaims the session. *)
let inject_reset t c =
  t.resets <- t.resets + 1;
  close_conn t c

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | down, _peer ->
      if List.length t.conns >= t.max_clients then Unix.close down
      else begin
        let sa, dom = resolve_addr t.upstream in
        match
          let up = Unix.socket dom Unix.SOCK_STREAM 0 in
          (try Unix.connect up sa
           with e ->
             Unix.close up;
             raise e);
          up
        with
        | exception (Unix.Unix_error _ as _e) -> Unix.close down
        | up ->
            Unix.set_nonblock down;
            Unix.set_nonblock up;
            let cid = t.next_cid in
            t.next_cid <- cid + 1;
            t.accepted <- t.accepted + 1;
            let c =
              {
                cid;
                down;
                up;
                c2s = fresh_pipe ();
                s2c = fresh_pipe ();
                rng = Rng.split (Rng.create ~seed:t.seed) (Fmt.str "conn-%d" cid);
                dead = false;
              }
            in
            t.conns <- c :: t.conns
      end

(* Read whatever arrived on [src] into the pipe; a read error or EOF
   marks the pipe draining (relay what is buffered, then close). *)
let pump_in t c p src =
  match Unix.read src t.rbuf 0 (Bytes.length t.rbuf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | 0 -> p.src_eof <- true
  | n -> Buffer.add_subbytes p.buf t.rbuf 0 n

(* Relay buffered bytes to [dst], rolling the fault dice per write:
   maybe reset the whole connection, maybe stall the direction, maybe
   split the write to a few bytes (tears frames across packets — the
   torn-write generator for the WAL/recovery drill). *)
let pump_out t c p dst =
  let now = Unix.gettimeofday () in
  if (not c.dead) && now >= p.stall_until && pending p > 0 then begin
    if Rng.float c.rng < t.plan.reset_chance then inject_reset t c
    else if Rng.float c.rng < t.plan.stall_chance then begin
      t.stalls <- t.stalls + 1;
      p.stall_until <- now +. t.plan.stall_s
    end
    else begin
      let want = pending p in
      let want =
        if Rng.float c.rng < t.plan.split_chance && t.plan.max_split > 0 then begin
          t.splits <- t.splits + 1;
          min want (1 + Rng.int c.rng t.plan.max_split)
        end
        else want
      in
      match Unix.write_substring dst (Buffer.contents p.buf) p.pos want with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> close_conn t c
      | written ->
          p.pos <- p.pos + written;
          if pending p = 0 then begin
            Buffer.clear p.buf;
            p.pos <- 0
          end
    end
  end

let loop t =
  let stop = ref false in
  while not !stop do
    (match t.deadline with Some d when Unix.gettimeofday () >= d -> stop := true | _ -> ());
    if not !stop then begin
      let readables =
        t.stop_r :: t.listen_fd
        :: List.concat_map
             (fun c ->
               (if c.c2s.src_eof then [] else [ c.down ])
               @ if c.s2c.src_eof then [] else [ c.up ])
             t.conns
      in
      let writables =
        List.concat_map
          (fun c ->
            (if pending c.c2s > 0 then [ c.up ] else [])
            @ if pending c.s2c > 0 then [ c.down ] else [])
          t.conns
      in
      (* a short tick so stalled directions resume without new IO *)
      match Unix.select readables writables [] 0.01 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rs, ws, _ ->
          if List.mem t.stop_r rs then stop := true
          else begin
            if List.mem t.listen_fd rs then accept_conn t;
            List.iter
              (fun c ->
                if not c.dead then begin
                  if List.mem c.down rs then pump_in t c c.c2s c.down;
                  if (not c.dead) && List.mem c.up rs then pump_in t c c.s2c c.up
                end)
              t.conns;
            List.iter
              (fun c ->
                if not c.dead then begin
                  if List.mem c.up ws || pending c.c2s > 0 then pump_out t c c.c2s c.up;
                  if (not c.dead) && (List.mem c.down ws || pending c.s2c > 0) then
                    pump_out t c c.s2c c.down
                end)
              t.conns;
            (* a direction that drained after its source EOF closes the
               whole connection (request/response traffic does not use
               half-close) *)
            List.iter
              (fun c ->
                if
                  (not c.dead)
                  && ((c.c2s.src_eof && pending c.c2s = 0)
                     || (c.s2c.src_eof && pending c.s2c = 0))
                then close_conn t c)
              t.conns
          end
    end
  done;
  List.iter (fun c -> close_conn t c) t.conns;
  t.alive <- false

let stats_json t =
  Fmt.str
    "{\"accepted\":%d,\"active\":%d,\"splits\":%d,\"stalls\":%d,\"resets\":%d,\"seed\":%d}"
    t.accepted (List.length t.conns) t.splits t.stalls t.resets t.seed

let start ?(max_clients = 64) ?deadline_s ~seed ~plan ~listen ~upstream () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sa, dom, cleanup =
    match listen with
    | Server.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        ( Unix.ADDR_UNIX path,
          Unix.PF_UNIX,
          fun () -> try Unix.unlink path with Unix.Unix_error _ -> () )
    | Server.Tcp _ ->
        let sa, dom = resolve_addr listen in
        (sa, dom, fun () -> ())
  in
  let listen_fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (match listen with Server.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true | _ -> ());
  Unix.bind listen_fd sa;
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      listen_fd;
      bound = Unix.getsockname listen_fd;
      upstream;
      plan;
      seed;
      stop_r;
      stop_w;
      max_clients;
      deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
      cleanup;
      conns = [];
      next_cid = 1;
      alive = true;
      domain = None;
      stopped = false;
      rbuf = Bytes.create 65536;
      accepted = 0;
      splits = 0;
      stalls = 0;
      resets = 0;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let wait t =
  match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ());
    wait t;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ];
    t.cleanup ()
  end
