(** select-based socket transport for the hub (see the interface). *)

type addr = Unix_socket of string | Tcp of string * int

(* One connection: incremental frame reassembly on the way in, an
   outbox (buffer + cursor) surviving short writes on the way out. *)
type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  out : Buffer.t;
  mutable out_pos : int;
  session : Hub.session;
  mutable closing : bool;  (** flush the outbox, then close *)
}

type t = {
  hub : Hub.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  stop_r : Unix.file_descr;  (** self-pipe: loop exit signal *)
  stop_w : Unix.file_descr;
  max_clients : int;
  deadline : float option;  (** absolute, [Unix.gettimeofday] clock *)
  cleanup : unit -> unit;  (** unlink a unix-domain socket path *)
  mutable conns : conn list;
  mutable alive : bool;
  mutable domain : unit Domain.t option;
  mutable stopped : bool;
  rbuf : Bytes.t;  (** loop-domain read scratch (one loop per server) *)
}

let sockaddr t = t.bound
let hub t = t.hub
let running t = t.alive

(* ------------------------------------------------------------------ *)
(* per-connection IO *)

let enqueue c payload =
  Buffer.add_string c.out (Frame.encode payload)

let outbox_empty c = c.out_pos >= Buffer.length c.out

let close_conn t c =
  Hub.close_session t.hub c.session;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

(* Push queued subscription events out as [Event] frames. *)
let flush_events c =
  List.iter
    (fun ev -> enqueue c (Protocol.encode_response (Protocol.Event ev)))
    (Hub.drain_events c.session)

let handle_readable t c =
  match Unix.read c.fd t.rbuf 0 (Bytes.length t.rbuf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | 0 ->
      (* EOF: mid-frame truncation is the client's problem now — just
         release the session *)
      close_conn t c
  | n ->
      Frame.feed c.dec ~len:n (Bytes.unsafe_to_string t.rbuf);
      let rec drain () =
        match Frame.next c.dec with
        | Ok (Some payload) ->
            enqueue c (Hub.handle_frame t.hub c.session payload);
            drain ()
        | Ok None -> ()
        | Error d ->
            (* oversized announced length: answer once, then hang up *)
            enqueue c
              (Protocol.encode_response
                 (Protocol.Err { code = d.Xpdl_core.Diagnostic.code; msg = d.message }));
            c.closing <- true
      in
      drain ()

let handle_writable t c =
  let len = Buffer.length c.out - c.out_pos in
  if len > 0 then begin
    match Unix.write_substring c.fd (Buffer.contents c.out) c.out_pos len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t c
    | written ->
        c.out_pos <- c.out_pos + written;
        if outbox_empty c then begin
          Buffer.clear c.out;
          c.out_pos <- 0;
          if c.closing then close_conn t c
        end
  end

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | fd, _peer ->
      if List.length t.conns >= t.max_clients then Unix.close fd
      else begin
        Unix.set_nonblock fd;
        let c =
          {
            fd;
            dec = Frame.decoder ();
            out = Buffer.create 4096;
            out_pos = 0;
            session = Hub.session t.hub;
            closing = false;
          }
        in
        t.conns <- c :: t.conns
      end

(* ------------------------------------------------------------------ *)
(* event loop *)

let loop t =
  let stop = ref false in
  while not !stop do
    (match t.deadline with Some d when Unix.gettimeofday () >= d -> stop := true | _ -> ());
    if not !stop then begin
      let readables = (t.stop_r :: t.listen_fd :: List.map (fun c -> c.fd) t.conns) in
      let writables =
        List.filter_map (fun c -> if outbox_empty c then None else Some c.fd) t.conns
      in
      match Unix.select readables writables [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rs, ws, _ ->
          if List.mem t.stop_r rs then stop := true
          else begin
            if List.mem t.listen_fd rs then accept_conn t;
            List.iter
              (fun c -> if List.mem c.fd rs then handle_readable t c)
              t.conns;
            (* edits dispatched above may have published events to any
               subscribed session *)
            List.iter flush_events t.conns;
            List.iter (fun c -> if List.mem c.fd ws then handle_writable t c) t.conns;
            (* outboxes filled this round get their first write without
               waiting for the next select tick *)
            List.iter
              (fun c -> if (not (List.mem c.fd ws)) && not (outbox_empty c) then handle_writable t c)
              t.conns
          end
    end
  done;
  List.iter (fun c -> close_conn t c) t.conns;
  t.alive <- false

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let start ?(max_clients = 64) ?deadline_s addr hub =
  (* a peer that resets mid-write must cost one connection (close +
     session pin reclamation), not a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain_sock, sa, cleanup =
    match addr with
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        ( Unix.PF_UNIX,
          Unix.ADDR_UNIX path,
          fun () -> try Unix.unlink path with Unix.Unix_error _ -> () )
    | Tcp (host, port) ->
        let ip = try Unix.inet_addr_of_string host with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port), fun () -> ())
  in
  let listen_fd = Unix.socket domain_sock Unix.SOCK_STREAM 0 in
  (match addr with Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true | _ -> ());
  Unix.bind listen_fd sa;
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      hub;
      listen_fd;
      bound = Unix.getsockname listen_fd;
      stop_r;
      stop_w;
      max_clients;
      deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
      cleanup;
      conns = [];
      alive = true;
      domain = None;
      stopped = false;
      rbuf = Bytes.create 65536;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let wait t =
  match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ());
    wait t;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ];
    t.cleanup ()
  end
