(** A blocking protocol client (load generator, tests, tools).

    One connected socket with request/response framing on top of
    {!Frame}, plus the resilience layer the crash drills exercise:
    per-request deadlines, and a retry loop with exponential backoff and
    deterministic jitter that reconnects between attempts.  {!request}
    demultiplexes server-initiated [Event] pushes (which interleave with
    replies on a subscribed connection) into a local queue read by
    {!events}.

    Retrying an [Edit] is only safe when it carries a request id
    ({!Protocol.request.Edit}): the hub's dedup window then answers a
    retransmit of an acknowledged edit with the original revision
    instead of applying it twice. *)

open Xpdl_core

type t

exception Client_error of Diagnostic.t

(** Connect to a server address ([SIGPIPE] is set to ignore, so a write
    to a reset peer fails with a catchable error instead of killing the
    process).  Raises [Unix.Unix_error]. *)
val connect : Server.addr -> t

(** Close the current socket and dial the server again.  The new
    connection is a new session: pins, subscription and undelivered
    events of the old one are gone.  Raises [Unix.Unix_error] when the
    server is unreachable. *)
val reconnect : t -> unit

(** Send one request and block for its (non-event) response.  [Event]
    frames received while waiting are queued.  [timeout] (seconds)
    bounds the wait for the response: on expiry the call raises
    {!Client_error} with [XPDL906] and the connection may hold a
    half-received frame — {!reconnect} before reusing it.  Also raises
    {!Client_error} on a framing violation ([XPDL700]/[XPDL701]) or
    unexpected EOF, and {!Frame.Closed} ([XPDL708]) when the peer reset
    the connection mid-write. *)
val request : ?timeout:float -> t -> Protocol.request -> Protocol.response

(** {1 Retries} *)

type retry_policy = {
  attempts : int;  (** total tries, including the first (min 1) *)
  deadline_s : float option;  (** per-attempt response deadline *)
  backoff_base_s : float;  (** delay before the first retry *)
  backoff_factor : float;  (** delay multiplier per further retry *)
  backoff_jitter : float;
      (** relative jitter: each delay is scaled by a deterministic
          uniform factor in [1-j, 1+j] *)
  retry_seed : int;  (** seed of the jitter stream (reproducible runs) *)
}

(** 5 attempts, 2 s deadline, 50 ms base delay doubling with 25 %
    jitter from seed 42. *)
val default_retry : retry_policy

(** Like {!request}, but on a transport-level failure (deadline
    [XPDL906], reset [XPDL708], truncated frame [XPDL700], refused
    connection) sleep the jittered backoff, {!reconnect}, and try again
    up to [attempts] times.  Raises {!Client_error} ([XPDL906]) when the
    budget is exhausted.  Protocol-level [Err] responses are returned,
    never retried. *)
val request_retry : ?policy:retry_policy -> t -> Protocol.request -> Protocol.response

(** {1 Events} *)

(** Events received so far, oldest first; clears the queue. *)
val events : t -> Protocol.event list

(** Block until at least [n] events are queued (reading frames), then
    return all queued events. *)
val wait_events : t -> int -> Protocol.event list

val close : t -> unit
