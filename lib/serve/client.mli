(** A blocking protocol client (load generator, tests, tools).

    One connected socket with request/response framing on top of
    {!Frame}'s blocking transfers.  {!request} demultiplexes
    server-initiated [Event] pushes (which interleave with replies on a
    subscribed connection) into a local queue read by {!events}. *)

open Xpdl_core

type t

exception Client_error of Diagnostic.t

(** Connect to a server address.  Raises [Unix.Unix_error]. *)
val connect : Server.addr -> t

(** Send one request and block for its (non-event) response.  [Event]
    frames received while waiting are queued.  Raises {!Client_error}
    on a framing violation ([XPDL700]/[XPDL701]) or unexpected EOF. *)
val request : t -> Protocol.request -> Protocol.response

(** Events received so far, oldest first; clears the queue. *)
val events : t -> Protocol.event list

(** Block until at least [n] events are queued (reading frames), then
    return all queued events. *)
val wait_events : t -> int -> Protocol.event list

val close : t -> unit
