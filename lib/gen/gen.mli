(** Seeded random generation of XPDL models for differential testing.

    Everything is driven by the deterministic {!Xpdl_simhw.Rng}
    (splitmix64), so a printed seed replays a failing case exactly —
    across machines and CI runs.  Three families of inputs:

    {ul
    {- {!document}: well-formed XPDL documents — meta-models with
       [extends] chains, [group] prefix/quantity replication, power
       domains and power state machines, unit-bearing attributes, and
       [const]/[param]/[constraint] expressions;}
    {- {!xml}: arbitrary XML trees with adversarial text, CDATA and
       attribute content for print/parse round-trip fuzzing;}
    {- {!corrupt}: deliberately damaged serialized documents for
       parser-recovery fuzzing.}}

    Greedy shrinking ({!minimize}) reduces failing inputs to small
    reproductions by dropping children, dropping attributes and
    simplifying values while the failure predicate stays true. *)

open Xpdl_xml

type t

(** A fresh generator; equal seeds yield equal output streams. *)
val create : seed:int -> t

(** Derive the per-case generator used by the harness: the same
    [(seed, salt)] pair always denotes the same input. *)
val case : seed:int -> salt:string -> t

(** {1 Primitive draws} *)

val int : t -> int -> int
val pick : t -> 'a list -> 'a
val chance : t -> float -> bool

(** {1 XPDL documents}

    A document is an [<xpdl>] element whose children are meta-model
    descriptors followed by exactly one concrete [<system>].  Meta-models
    only extend earlier meta-models, so chains are acyclic by
    construction. *)

val document : t -> Dom.element

(** The concrete system of a generated document. *)
val system_of_document : Dom.element -> Dom.element

(** Meta-model descriptors of a generated document (document order). *)
val metamodels_of_document : Dom.element -> Dom.element list

(** {1 Arbitrary XML} *)

(** A small tree exercising serialization edge cases: quotes, [<] [>]
    [&], ["]]>"] inside text and CDATA, tabs/newlines/CR in attribute
    values, multi-byte UTF-8, comments, mixed content. *)
val xml : t -> Dom.element

(** {1 Corruption}

    [corrupt g s] applies 1–3 random syntax-destroying mutations
    (deletions, truncations, stray markup, broken entities, quote flips)
    to a serialized document. *)
val corrupt : t -> string -> string

(** {1 Power state machines}

    Random machines with 2–7 states and random transition tables:
    sometimes strongly connected, sometimes with unreachable islands;
    costs are non-negative and finite. *)
val state_machine : t -> Xpdl_core.Power.state_machine

(** {1 Bootstrap bench models}

    A self-contained [<system>] exercising the fault-tolerant bootstrap:
    cores, an instruction table rich in ["?"] placeholders, a partial
    microbenchmark suite, and optional [<data>] sweeps / [default_energy]
    attributes feeding the degradation ladder. *)
val bench_model : t -> Dom.element

(** {1 Design-space sweep templates}

    A small parameterized [<system>] for the dse-pareto property: 2-3
    ranged [<param>] axes (grid at or under 64 points), a replicated-core
    host driven by those axes, and a compact power model with ["?"]
    entries so every point runs a tiny bootstrap.  Some templates carry a
    pruning or divide-by-zero [<constraint>]. *)
val dse_template : t -> Dom.element

(** {1 Synthetic repositories}

    A whole on-disk model repository for the fleet-scale experiments
    (E18) and the [repo-lazy] fuzz property: meta-models with [extends]
    chains crossing file and directory boundaries, multi-descriptor
    [<xpdl>] wrapper files, a fraction of duplicate-ident shadowing
    (cross-file XPDL302), a fraction of corrupted files (parser recovery
    and quarantine at volume), and finally concrete [<system>]
    descriptors ([sys0000], [sys0001], ...) that reference the
    meta-models — so composition loads a real transitive closure. *)

type repo_spec = {
  rs_models : int;  (** meta-model descriptor count *)
  rs_dirs : int;  (** subdirectory fan-out ([d00/] ... ) *)
  rs_corrupt : float;  (** fraction of descriptor files corrupted *)
  rs_shadow : float;  (** fraction of descriptors renamed to an earlier name *)
  rs_wrapper : float;  (** fraction of files holding several descriptors *)
  rs_systems : int;  (** concrete systems appended (never corrupted) *)
}

(** 200 models over 8 directories, 2% corrupt, 3% shadowed, 4 systems. *)
val default_repo_spec : repo_spec

(** Generate the repository as (root-relative path, file content) pairs
    in generation order. *)
val repo_files : t -> repo_spec -> (string * string) list

(** Materialize generated files under [dir], creating directories as
    needed. *)
val write_repo : dir:string -> (string * string) list -> unit

(** {1 Character references}

    A raw reference body (without [&] and [;]), e.g. ["#x41"], ["#970"],
    ["amp"] — valid and deliberately malformed ones. *)
val charref : t -> string

(** {1 Shrinking} *)

(** Strictly-smaller variants of an element, most aggressive first:
    hoisted children, dropped children, dropped attributes, simplified
    attribute values and text. *)
val shrink_element : Dom.element -> Dom.element list

(** [minimize ~max_steps still_failing el] greedily walks {!shrink_element}
    while [still_failing] holds, returning a (locally) minimal failing
    input.  [still_failing el] must be true on entry. *)
val minimize : ?max_steps:int -> (Dom.element -> bool) -> Dom.element -> Dom.element

(** Greedy chunk-removal minimizer for corrupted strings. *)
val minimize_string : ?max_steps:int -> (string -> bool) -> string -> string

(** Drop states/transitions while the failure predicate holds. *)
val minimize_machine :
  ?max_steps:int ->
  (Xpdl_core.Power.state_machine -> bool) ->
  Xpdl_core.Power.state_machine ->
  Xpdl_core.Power.state_machine

val pp_machine : Format.formatter -> Xpdl_core.Power.state_machine -> unit
