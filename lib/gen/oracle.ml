(** Naive reference oracles (see the interface for the contract: dumb,
    spec-faithful, independently re-stated — no sharing with the fast
    paths under test). *)

open Xpdl_core
module Units = Xpdl_units.Units

(* The metadata kinds whose subtrees are not physical hardware.  Restated
   from Sec. III rather than imported, so a regression in the shared
   definition cannot hide itself. *)
let is_metadata = function
  | Schema.Power_model | Schema.Power_domains | Schema.Power_domain
  | Schema.Power_state_machine | Schema.Instructions | Schema.Microbenchmarks
  | Schema.Software | Schema.Properties | Schema.Constraints ->
      true
  | _ -> false

let rec hardware_elements (e : Model.element) : Model.element list =
  if is_metadata e.Model.kind then []
  else e :: List.concat_map hardware_elements e.Model.children

let count_cores e =
  List.length
    (List.filter
       (fun (x : Model.element) -> Schema.equal_kind x.Model.kind Schema.Core)
       (hardware_elements e))

let has_cuda_pm (d : Model.element) =
  List.exists
    (fun (c : Model.element) ->
      Schema.equal_kind c.Model.kind Schema.Programming_model
      &&
      match c.Model.type_ref with
      | Some ty -> String.length ty >= 4 && String.lowercase_ascii (String.sub ty 0 4) = "cuda"
      | None -> false)
    d.Model.children

let count_cuda_devices e =
  List.length
    (List.filter
       (fun (x : Model.element) ->
         Schema.equal_kind x.Model.kind Schema.Device && has_cuda_pm x)
       (hardware_elements e))

let quantity_attr (e : Model.element) name =
  match Model.attr e name with
  | Some (Model.Quantity (q, _)) -> Some (Units.value q)
  | _ -> None

let total_static_power e =
  List.fold_left
    (fun acc (x : Model.element) ->
      if Schema.is_hardware x.Model.kind then
        match quantity_attr x "static_power" with Some v -> acc +. v | None -> acc
      else acc)
    0. (hardware_elements e)

let total_memory_bytes e =
  List.fold_left
    (fun acc (x : Model.element) ->
      if Schema.equal_kind x.Model.kind Schema.Memory then
        match quantity_attr x "size" with Some v -> acc +. v | None -> acc
      else acc)
    0. (hardware_elements e)

let core_frequencies e =
  List.filter_map
    (fun (x : Model.element) ->
      if Schema.equal_kind x.Model.kind Schema.Core then quantity_attr x "frequency" else None)
    (hardware_elements e)

(* Scope paths, by the book: a node with an identifier extends its
   parent's path by one segment; a node without one lives in its parent's
   scope.  Preorder rank doubles as the IR node index. *)
let paths (root : Model.element) =
  let out = ref [] in
  let rank = ref 0 in
  let rec walk parent_path (e : Model.element) =
    let path =
      match Model.identifier e with
      | Some i -> if parent_path = "" then i else parent_path ^ "/" ^ i
      | None -> parent_path
    in
    out := (path, !rank, e) :: !out;
    incr rank;
    List.iter (walk path) e.Model.children
  in
  walk "" root;
  List.rev !out

let find_by_path root p =
  List.find_map (fun (path, rank, e) -> if String.equal path p then Some (rank, e) else None)
    (paths root)

let find_by_id root id =
  List.find_map
    (fun (_, rank, (e : Model.element)) ->
      if Model.identifier e = Some id then Some (rank, e) else None)
    (paths root)

let count_of_kind root kind =
  List.length
    (List.filter (fun (_, _, (e : Model.element)) -> Schema.equal_kind e.Model.kind kind)
       (paths root))

let rec subtree_size (e : Model.element) =
  1 + List.fold_left (fun acc c -> acc + subtree_size c) 0 e.Model.children

(* --- character references --- *)

(* XML 1.0 Char production. *)
let is_xml_char code =
  code = 0x9 || code = 0xA || code = 0xD
  || (code >= 0x20 && code <= 0xD7FF)
  || (code >= 0xE000 && code <= 0xFFFD)
  || (code >= 0x10000 && code <= 0x10FFFF)

let utf8_encode code =
  let b = Buffer.create 4 in
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end;
  Buffer.contents b

let digit_value base c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' when base = 16 -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' when base = 16 -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode_charref body =
  match body with
  | "lt" -> Some "<"
  | "gt" -> Some ">"
  | "amp" -> Some "&"
  | "quot" -> Some "\""
  | "apos" -> Some "'"
  | _ ->
      if String.length body < 2 || body.[0] <> '#' then None
      else begin
        let digits, base =
          if String.length body > 2 && (body.[1] = 'x' || body.[1] = 'X') then
            (String.sub body 2 (String.length body - 2), 16)
          else (String.sub body 1 (String.length body - 1), 10)
        in
        if String.equal digits "" then None
        else
          let code =
            String.fold_left
              (fun acc c ->
                match (acc, digit_value base c) with
                (* clamp so huge references stay invalid without overflow *)
                | Some v, Some d -> Some (min ((v * base) + d) 0x110000)
                | _ -> None)
              (Some 0) digits
          in
          match code with
          | Some code when is_xml_char code -> Some (utf8_encode code)
          | _ -> None
      end

(* --- power state machines --- *)

(* Exhaustive search over simple paths: follow every transition chain
   that never revisits a state, track the cheapest total energy.  Only
   feasible because generated machines are tiny — which is the point. *)
let psm_min_energy (sm : Power.state_machine) ~from_state ~to_state =
  if String.equal from_state to_state then Some 0.
  else begin
    let best = ref None in
    let rec search visited here cost =
      List.iter
        (fun (tr : Power.transition) ->
          if String.equal tr.Power.tr_from here && not (List.mem tr.Power.tr_to visited) then begin
            let cost = cost +. tr.Power.tr_energy in
            if String.equal tr.Power.tr_to to_state then (
              match !best with
              | Some b when b <= cost -> ()
              | _ -> best := Some cost)
            else search (tr.Power.tr_to :: visited) tr.Power.tr_to cost
          end)
        sm.Power.sm_transitions
    in
    search [ from_state ] from_state 0.;
    !best
  end
