(** Differential properties: optimized fast paths vs. naive oracles on
    generated inputs, with replayable seeds and greedy shrinking.

    Nine property families (see docs/TESTING.md):

    {ul
    {- [query-vs-oracle]: indexed {!Xpdl_query.Query}/{!Xpdl_toolchain.Ir}
       results ≡ the naive {!Oracle} tree walks on composed generated
       models (counts, aggregations, path/id lookups, subtree spans,
       selectors);}
    {- [store-incremental]: a random edit sequence applied through the
       incremental {!Xpdl_store.Store} leaves every derived value
       bit-identical to a from-scratch recomputation on the current
       model after each step, including a tracked {!Xpdl_query.Query}
       handle vs. a rebuilt one, and the edit journal stays replayable;}
    {- [serve-mvcc]: random interleavings of query/edit/pin/subscribe
       requests from several simulated client sessions against an
       in-process {!Xpdl_serve.Hub} answer exactly as a sequential
       oracle replay — head queries match a fresh handle on the current
       model, pinned queries match (bit-identically) a fresh handle on
       the model captured at pin time even across journal compaction,
       pinned revisions stay journal-replayable, subscribers see exactly
       the edits journaled while subscribed, and closing every session
       reclaims all pins and snapshot handles;}
    {- [print-parse-roundtrip]: [Parse.string ∘ Print.to_string] is the
       identity up to insignificant whitespace, and printing is a
       fixpoint;}
    {- [parse-recovery]: recovering parse of corrupted documents never
       raises and reports only positioned [XPDLnnn] diagnostics;}
    {- [psm-optimal]: {!Xpdl_energy.Psm.transition_path} never raises on
       generated machines and its cost equals the exhaustive-search
       minimum; unreachable pairs yield [None] on both sides;}
    {- [elaborate-deterministic]: composing the same document twice
       yields byte-identical runtime models;}
    {- [charref-oracle]: the parser accepts a character reference iff the
       spec-faithful {!Oracle.decode_charref} does, with equal
       decodings;}
    {- [bootstrap-fault-tolerant]: the resilient bootstrap
       ({!Xpdl_microbench.Resilient}) on fault-injected generated bench
       models always terminates within its simulated budget envelope,
       resolves or quarantines every ["?"] placeholder with a [quality]
       label and matching XPDL5xx diagnostics, and produces byte-identical
       health reports when replayed from the same seeds.}}

    Every failure carries the [(seed, case)] pair that regenerates it and
    a shrunk minimal reproduction. *)

type failure = {
  f_property : string;
  f_seed : int;
  f_case : int;  (** 0-based index within the property's case stream *)
  f_message : string;  (** what diverged *)
  f_repro : string;  (** minimized failing input, printable *)
}

type report = {
  r_seed : int;
  r_count : int;  (** requested cases per property *)
  r_properties : int;  (** properties actually run (after filtering) *)
  r_cases : int;  (** total cases actually executed *)
  r_failures : failure list;
}

(** The seed used when none is given — fixed so local runs and CI
    default to the same corpus. *)
val default_seed : int

(** Names accepted by [run]'s [properties] filter, in execution order. *)
val property_names : string list

(** Run [count] cases (default 500) of each selected property (default
    all) from [seed] (default {!default_seed}).  Failures stop a
    property's stream early — one minimized counterexample is worth more
    than a flood.  [on_case] is called before each case (progress
    reporting). *)
val run :
  ?seed:int ->
  ?count:int ->
  ?properties:string list ->
  ?on_case:(string -> int -> unit) ->
  unit ->
  report

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
