(** Naive reference oracles for differential testing.

    Every function here is a small, obviously-correct tree walk (or
    exhaustive search) restating the {e specified} semantics of an
    optimized fast path elsewhere in the toolchain: the indexed
    {!Xpdl_query.Query}/{!Xpdl_toolchain.Ir} lookups, the parser's
    character-reference decoder, and the PSM Dijkstra routing.  The
    harness asserts optimized ≡ naive on generated inputs; keep these
    implementations dumb — their only virtue is being checkable by
    eye. *)

open Xpdl_core

(** {1 Query / aggregation oracles over the composed model tree} *)

(** Preorder walk skipping metadata subtrees (power models, software,
    properties, constraints) — the physical-hardware traversal. *)
val hardware_elements : Model.element -> Model.element list

val count_cores : Model.element -> int
val count_cuda_devices : Model.element -> int

(** Sum of SI-normalized [static_power] over hardware kinds. *)
val total_static_power : Model.element -> float

(** Sum of SI-normalized [size] over memory elements. *)
val total_memory_bytes : Model.element -> float

val core_frequencies : Model.element -> float list

(** Every node paired with its scope path and preorder rank, in document
    order.  The scope path extends the parent path with the node's
    identifier (nodes without one share their parent's path) — the
    specification {!Xpdl_toolchain.Ir.find_by_path} must agree with. *)
val paths : Model.element -> (string * int * Model.element) list

(** First preorder node whose scope path is [path] (linear scan). *)
val find_by_path : Model.element -> string -> (int * Model.element) option

(** First preorder node with the identifier (linear scan). *)
val find_by_id : Model.element -> string -> (int * Model.element) option

(** Number of nodes of one kind anywhere in the tree. *)
val count_of_kind : Model.element -> Schema.kind -> int

(** Nodes in the subtree, including the root. *)
val subtree_size : Model.element -> int

(** {1 Character references}

    [decode_charref body] decodes the body of an XML reference (without
    [&]/[;]): the five predefined entities or a decimal/hex character
    reference per XML 1.0 ([Char] production, strict digits), returning
    the UTF-8 encoding or [None] when the reference is malformed. *)
val decode_charref : string -> string option

(** {1 Power state machines}

    [psm_min_energy sm ~from_state ~to_state] exhaustively searches all
    simple paths and returns the minimal total transition energy;
    [Some 0.] when [from_state = to_state], [None] when unreachable. *)
val psm_min_energy :
  Power.state_machine -> from_state:string -> to_state:string -> float option
